(* Unified access to multiple databases (§1): two departmental heaps are
   merged without any schema integration, reconciled with a synonym
   bridge (§3.3), and then viewed relationally (§6.1) — structure as an
   output, not an input.

   Run with: dune exec examples/org_federation.exe *)

open Lsdb

let db_of facts =
  let db = Database.create () in
  List.iter (fun (s, r, t) -> ignore (Database.insert_names db s r t)) facts;
  db

let () =
  (* The HR system knows employees; the sales system knows accounts.
     Nobody ever agreed on a schema — there is none to agree on. *)
  let hr =
    db_of
      [
        ("JON-SMITH", "in", "EMPLOYEE");
        ("JON-SMITH", "EARNS", "$52000");
        ("JON-SMITH", "WORKS-FOR", "SALES");
        ("MAY-CHEN", "in", "EMPLOYEE");
        ("MAY-CHEN", "EARNS", "$61000");
        ("MAY-CHEN", "WORKS-FOR", "ENGINEERING");
        ("EMPLOYEE", "isa", "PERSON");
        ("SALES", "in", "DEPARTMENT");
        ("ENGINEERING", "in", "DEPARTMENT");
      ]
  in
  let crm =
    db_of
      [
        ("JOHNNY-SMITH", "in", "REP");
        ("JOHNNY-SMITH", "MANAGES-ACCOUNT", "ACME-CORP");
        ("JOHNNY-SMITH", "MANAGES-ACCOUNT", "GLOBEX");
        ("REP", "isa", "PERSON");
        ("ACME-CORP", "in", "ACCOUNT");
        ("GLOBEX", "in", "ACCOUNT");
      ]
  in

  let fed = Federation.create [ ("hr", hr); ("crm", crm) ] in
  let db = Federation.database fed in
  Printf.printf "merged %s: %d base facts\n"
    (String.concat " + " (Federation.members fed))
    (Database.base_cardinal db);

  (* Before bridging, JON-SMITH and JOHNNY-SMITH are strangers. *)
  let e = Database.entity db in
  let accounts who =
    Eval.eval db
      (Query_parser.parse db (Printf.sprintf "(%s, MANAGES-ACCOUNT, ?a)" who))
  in
  Printf.printf "\nJON-SMITH's accounts before bridging: %d\n"
    (List.length (accounts "JON-SMITH").Eval.rows);

  (* One synonym fact consolidates the two spellings (§3.3). *)
  Federation.add_bridge fed "JON-SMITH" "JOHNNY-SMITH";
  Printf.printf "JON-SMITH's accounts after bridging:  %d\n"
    (List.length (accounts "JON-SMITH").Eval.rows);

  (* Browse the merged person. *)
  print_endline "\n== (JON-SMITH, *, *) across both systems ==";
  print_endline (Navigation.render_source_table db (e "JON-SMITH"));

  (* Structured views on demand (§6.1): the heap tabulated. *)
  print_endline "== relation(EMPLOYEE, WORKS-FOR DEPARTMENT, MANAGES-ACCOUNT ACCOUNT) ==";
  let view =
    Operators.relation db "EMPLOYEE"
      [ ("WORKS-FOR", "DEPARTMENT"); ("MANAGES-ACCOUNT", "ACCOUNT") ]
  in
  print_endline (View.render db view);

  (* Export to the relational baseline and restructure there, to feel the
     §1 trade-off: the relational side must rewrite tuples; the heap
     would just gain facts. *)
  print_endline "== export to a typed catalog and evolve the schema ==";
  let catalog = Lsdb_relational.Catalog.create () in
  let relation =
    Lsdb_relational.Bridge.export db catalog ~instance_of:"EMPLOYEE"
      ~columns:[ ("WORKS-FOR", "DEPARTMENT") ]
  in
  Printf.printf "exported %d tuples\n" (Lsdb_relational.Relation.cardinal relation);
  let rewritten =
    Lsdb_relational.Catalog.add_attribute catalog ~relation:"EMPLOYEE" ~attr:"badge"
      ~default:"UNISSUED"
  in
  Printf.printf "adding a 'badge' column rewrote %d tuples\n" rewritten;
  ignore (Database.insert_names db "MAY-CHEN" "BADGE" "B-0117");
  print_endline "the heap needed 1 fact insertion for the same evolution";

  (* Where did a merged fact come from? *)
  let fact = Fact.of_names (Database.symtab db) "JON-SMITH" "EARNS" "$52000" in
  Printf.printf "\n(JON-SMITH, EARNS, $52000) came from: %s\n"
    (String.concat ", " (Federation.origins fed fact))
