(* Quickstart: a loosely structured database in a dozen lines.

   Run with: dune exec examples/quickstart.exe *)

open Lsdb

let () =
  (* A database is just a heap of facts — no schema, no tables. *)
  let db = Database.create () in
  List.iter
    (fun (s, r, t) -> ignore (Database.insert_names db s r t))
    [
      (* data facts and "schema" facts go into the same heap (§2.6) *)
      ("JOHN", "in", "EMPLOYEE");
      ("EMPLOYEE", "isa", "PERSON");
      ("EMPLOYEE", "EARNS", "SALARY");
      ("JOHN", "EARNS", "$25000");
      ("JOHN", "WORKS-FOR", "SHIPPING");
      ("SHIPPING", "in", "DEPARTMENT");
      ("WORKS-FOR", "isa", "IS-PAID-BY");
    ];

  (* Inference (§3) is on by default: membership, generalization,
     synonyms, inversion. Ask about facts that were never stored. *)
  let e = Database.entity db in
  let show (s, r, t) =
    Printf.printf "%-45s %b\n"
      (Printf.sprintf "(%s, %s, %s) ?" s r t)
      (Database.mem db (Fact.make (e s) (e r) (e t)))
  in
  print_endline "== inferred facts ==";
  List.iter show
    [
      ("JOHN", "EARNS", "SALARY");       (* membership: John is an employee *)
      ("JOHN", "in", "PERSON");          (* membership up the hierarchy *)
      ("JOHN", "IS-PAID-BY", "SHIPPING") (* relationship generalization *);
    ];

  (* The standard query language (§2.7): predicate logic over templates. *)
  print_endline "\n== query: who earns more than $20000? ==";
  let query =
    Query_parser.parse db
      "(?who, in, EMPLOYEE) & exists s . (?who, EARNS, ?s) & (?s, gt, 20000)"
  in
  let answer = Eval.eval db query in
  List.iter (fun row -> print_endline (String.concat ", " row))
    (Eval.rows_named (Database.symtab db) answer);

  (* Browsing by navigation (§4.1): look around an entity. *)
  print_endline "\n== navigate: the neighborhood of JOHN ==";
  print_endline (Navigation.render_source_table db (e "JOHN"));

  (* Browsing by probing (§5): failures retract automatically. *)
  print_endline "== probe: employees earning over $90000 (fails, retracts) ==";
  let probe_query =
    Query_parser.parse db "(?who, FULL-TIME, SHIPPING)"
  in
  print_endline (Probing.render_menu db probe_query (Probing.probe db probe_query));

  (* Explanations: why is an inferred fact in the database? *)
  print_endline "== explain (JOHN, IS-PAID-BY, SHIPPING) ==";
  print_string
    (Explain.render db (Explain.explain db (Fact.make (e "JOHN") (e "IS-PAID-BY") (e "SHIPPING"))))
