examples/campus_probing.mli:
