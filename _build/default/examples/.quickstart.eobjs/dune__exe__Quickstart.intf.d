examples/quickstart.mli:
