examples/evolving_world.ml: Closure Database Definitions Entity Eval Fact Integrity List Lsdb Navigation Printf Query_parser Rule String Template
