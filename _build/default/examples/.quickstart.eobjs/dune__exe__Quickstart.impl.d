examples/quickstart.ml: Database Eval Explain Fact List Lsdb Navigation Printf Probing Query_parser String
