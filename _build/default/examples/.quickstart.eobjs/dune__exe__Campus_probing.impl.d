examples/campus_probing.ml: Broadness Database Eval Fact Integrity List Lsdb Paper_examples Printf Probing Query Query_parser Retraction String
