examples/durable_heap.mli:
