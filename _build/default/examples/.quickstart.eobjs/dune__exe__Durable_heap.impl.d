examples/durable_heap.ml: Array Bptree Database Entity Fact Filename Format Heap_file List Lsdb Lsdb_storage Option Pager Paper_examples Persistent Printf Store Sys Triple_index Unix
