examples/org_federation.mli:
