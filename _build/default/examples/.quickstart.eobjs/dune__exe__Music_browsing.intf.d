examples/music_browsing.mli:
