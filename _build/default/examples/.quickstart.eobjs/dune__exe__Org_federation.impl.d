examples/org_federation.ml: Database Eval Fact Federation List Lsdb Lsdb_relational Navigation Operators Printf Query_parser String View
