examples/evolving_world.mli:
