examples/music_browsing.ml: Database Eval Explain Fact List Lsdb Navigation Operators Paper_examples Printf Query_parser String
