(* The §5 probing walkthrough: hit-and-miss querying with automatic
   retraction — the opera retraction set, the students/FREE menu, the
   quarterback example, and the misspelling diagnosis.

   Run with: dune exec examples/campus_probing.exe *)

open Lsdb

let probe_and_print db text =
  let query, unknowns = Query_parser.parse_with_unknowns db text in
  if unknowns <> [] then
    Printf.printf "(parser note: names not seen before: %s)\n"
      (String.concat ", " unknowns);
  print_endline (Probing.render_menu db query (Probing.probe db query))

let () =
  let campus = Paper_examples.campus () in

  (* §5.1: the retraction set of "who loves opera". *)
  print_endline "== §5.1 minimally broader queries of (?z, LOVES, OPERA) ==";
  let broadness = Broadness.compute campus in
  let query = Query_parser.parse campus "(?z, LOVES, OPERA)" in
  List.iter
    (fun (br : Retraction.broader) ->
      Printf.printf "  %-28s via %s\n"
        (Query.to_string (Database.symtab campus) br.Retraction.query)
        (Retraction.describe campus br.Retraction.step))
    (Retraction.retraction_set campus broadness query);

  (* §5.2: the automatic retraction menu. *)
  print_endline "\n== §5.2 the free things all students love ==";
  probe_and_print campus "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";

  (* The quarterback example from §5's introduction. *)
  print_endline "== §5 quarterbacks who graduated from USC ==";
  let library = Paper_examples.library () in
  probe_and_print library "(?x, in, QUARTERBACK) & (?x, GRADUATE-OF, USC)";

  (* Misspellings: queries that can no longer be broadened. *)
  print_endline "== §5.2 a misspelled entity ==";
  probe_and_print campus "(JOHM, LOVES, ?x)";

  (* Deeper waves: data two levels below the query's vocabulary. *)
  print_endline "== a second-wave retraction ==";
  let deep =
    Database.create ()
  in
  List.iter
    (fun (s, r, t) -> ignore (Database.insert_names deep s r t))
    [
      ("ADORES", "isa", "LOVES");
      ("LOVES", "isa", "LIKES");
      ("SUE", "LIKES", "SKIING");
    ];
  probe_and_print deep "(SUE, ADORES, ?what)";

  (* The generalize-source policy (§5.2's other reading). *)
  print_endline "== source position under the `Generalize policy ==";
  let policy = { Retraction.source_mode = `Generalize } in
  let q2 = Query_parser.parse campus "(FRESHMAN, LOVE, ?z) & (?z, COSTS, CHEAP)" in
  (match Probing.probe ~policy campus q2 with
  | Probing.Answered answer ->
      Printf.printf "answered directly with %d row(s)\n" (List.length answer.Eval.rows)
  | Probing.Retracted { successes; _ } ->
      List.iter
        (fun s ->
          Printf.printf "  success via %s\n"
            (String.concat ", " (List.map (Retraction.describe campus) s.Probing.steps)))
        successes
  | Probing.Exhausted _ -> print_endline "exhausted");

  (* Integrity (§2.5/§3.5): constraints are rules; violations are
     contradictions in the closure. *)
  print_endline "\n== integrity: loves ⊥ hates ==";
  let db = Database.create () in
  List.iter
    (fun (s, r, t) -> ignore (Database.insert_names db s r t))
    [ ("LOVES", "contra", "HATES"); ("PAT", "LOVES", "OPERA") ];
  (match Integrity.insert_checked db (Fact.of_names (Database.symtab db) "PAT" "HATES" "OPERA") with
  | Ok _ -> print_endline "inserted (unexpected)"
  | Error violations ->
      List.iter (fun v -> print_endline ("  rejected: " ^ Integrity.describe db v)) violations)
