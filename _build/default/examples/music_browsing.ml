(* The §4.1 navigation walkthrough: John → PC#9-WAM → Leopold/Mozart,
   exactly the browsing session the paper prints, including the composed
   relationship paths found by (LEOPOLD, *, MOZART).

   Run with: dune exec examples/music_browsing.exe *)

open Lsdb

let () =
  let db = Paper_examples.music () in
  let e = Database.entity db in
  let session = Navigation.start db in

  (* A browser who knows nothing starts with try(e) (§6.1). *)
  print_endline "== try(MOZART): find a starting point ==";
  print_endline (Operators.try_render db "MOZART");

  (* First stop: the all-star template of JOHN. *)
  print_endline "\n== step 1: (JOHN, *, *) ==";
  ignore (Navigation.visit session (e "JOHN"));
  print_endline (Navigation.render_source_table db (e "JOHN"));

  (* The user spots PC#9-WAM and looks at its neighborhood. *)
  print_endline "== step 2: (PC#9-WAM, *, *) ==";
  ignore (Navigation.visit session (e "PC#9-WAM"));
  print_endline (Navigation.render_source_table db (e "PC#9-WAM"));

  (* Finally: every association between Leopold and Mozart — composition
     (§3.7) surfaces the FAVORITE-MUSIC·COMPOSED-BY path alongside the
     direct FATHER-OF fact. The composition limit is 3 (§6.1 limit(n)). *)
  print_endline "== step 3: (LEOPOLD, *, MOZART) ==";
  print_endline (Navigation.render_associations db ~src:(e "LEOPOLD") ~tgt:(e "MOZART"));

  Printf.printf "\nbrowsing trail: %s\n"
    (String.concat " → "
       (List.rev_map (Database.entity_name db) (Navigation.history session)));

  (* Navigation interleaves with standard queries (§4.1): use a query
     answer as the next starting point. *)
  print_endline "\n== interleaved query: performers of John's favorites ==";
  let query =
    Query_parser.parse db
      "exists m . (JOHN, FAVORITE-MUSIC, ?m) & (?m, PERFORMED-BY, ?p)"
  in
  let answer = Eval.eval db query in
  List.iter
    (fun row -> print_endline ("  " ^ String.concat ", " row))
    (Eval.rows_named (Database.symtab db) answer);

  (* Composition limits matter: at limit(1) the path disappears. *)
  print_endline "\n== limit(1): composition disabled ==";
  Operators.limit db 1;
  let rels = Navigation.associations db ~src:(e "LEOPOLD") ~tgt:(e "MOZART") in
  List.iter (fun r -> print_endline ("  " ^ Database.entity_name db r)) rels;
  Operators.limit db 3;

  (* Why does (PC#9-WAM, FAVORITE-OF, JOHN) hold? It was never stored. *)
  print_endline "\n== explain the inverse-derived fact ==";
  print_string
    (Explain.render db
       (Explain.explain db (Fact.make (e "PC#9-WAM") (e "FAVORITE-OF") (e "JOHN"))))
