(* Storage strategies (§6.2, left open by the paper): a durable loosely
   structured database backed by a checksummed operation log and binary
   snapshots, plus the ordered B+tree triple index as an alternative to
   the in-memory hash store.

   Run with: dune exec examples/durable_heap.exe *)

open Lsdb
open Lsdb_storage

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "lsdb-durable-demo" in
  (* Start clean. *)
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end;

  (* Session 1: create, insert, crash (no compaction — just the log). *)
  let session1 = Persistent.open_dir dir in
  ignore (Persistent.insert_names session1 "REX" "in" "DOG");
  ignore (Persistent.insert_names session1 "DOG" "isa" "ANIMAL");
  ignore (Persistent.insert_names session1 "REX" "CHASES" "POSTMAN");
  Persistent.set_limit session1 2;
  Persistent.sync session1;
  Printf.printf "session 1: %d log records, no snapshot yet\n"
    (Persistent.log_length session1);
  Persistent.close session1;

  (* Session 2: reopen — the log replays; inference still works. *)
  let session2 = Persistent.open_dir dir in
  let db = Persistent.database session2 in
  let e = Database.entity db in
  Printf.printf "session 2 after replay: (REX, in, ANIMAL) inferred: %b\n"
    (Database.mem db (Fact.make (e "REX") Entity.member (e "ANIMAL")));

  (* Grow it, then compact: the log folds into a snapshot. *)
  for i = 1 to 1000 do
    ignore (Persistent.insert_names session2 (Printf.sprintf "SHEEP-%04d" i) "in" "SHEEP")
  done;
  Printf.printf "before compaction: %d log records\n" (Persistent.log_length session2);
  Persistent.compact session2;
  Printf.printf "after compaction:  %d log records, snapshot at %s\n"
    (Persistent.log_length session2)
    (Persistent.snapshot_path session2);
  Persistent.close session2;

  (* Session 3: reopen from the snapshot (no replay of 1000 inserts). *)
  let t0 = Unix.gettimeofday () in
  let session3 = Persistent.open_dir dir in
  let elapsed = (Unix.gettimeofday () -. t0) *. 1e3 in
  Printf.printf "session 3 open from snapshot: %d facts in %.2f ms\n"
    (Database.base_cardinal (Persistent.database session3))
    elapsed;
  Persistent.close session3;

  (* The ordered storage strategy: three B+trees (SPO/POS/OSP). *)
  print_endline "\n== B+tree triple index ==";
  let db = Paper_examples.organization () in
  let idx = Triple_index.of_database db in
  Printf.printf "indexed %d facts, SPO tree height %d\n"
    (Triple_index.cardinal idx)
    (let t = Bptree.create () in
     Triple_index.iter (fun (f : Fact.t) -> ignore (Bptree.insert t (f.s, f.r, f.t))) idx;
     Bptree.height t);
  let john = Database.entity db "JOHN" in
  print_endline "prefix scan (JOHN, *, *):";
  Triple_index.match_pattern idx (Store.pattern ~s:john ()) (fun fact ->
      print_endline ("  " ^ Fact.to_string (Database.symtab db) fact));

  (* Raw substrate: slotted pages in a paged file. *)
  print_endline "\n== slotted-page heap file ==";
  let path = Filename.temp_file "lsdb-heap" ".pages" in
  let pager = Pager.open_ path in
  let heap = Heap_file.create pager in
  let rids =
    List.map (fun i -> Heap_file.insert heap (Printf.sprintf "record %d" i)) [ 1; 2; 3 ]
  in
  List.iter
    (fun rid ->
      Printf.printf "  %s -> %s\n"
        (Format.asprintf "%a" Heap_file.pp_rid rid)
        (Option.value ~default:"?" (Heap_file.get heap rid)))
    rids;
  let (`Records records), (`Pages pages) = Heap_file.stats heap in
  Printf.printf "  %d records on %d page(s)\n" records pages;
  Pager.close pager;
  Sys.remove path
