(* The paper's motivating scenario (§1): an environment under constant
   evolution. A structured database would need restructuring; the heap of
   facts just absorbs new kinds of information, fact by fact, while the
   closure is maintained incrementally and browsing keeps working.

   Run with: dune exec examples/evolving_world.exe *)

open Lsdb

let () =
  let db = Database.create () in
  let insert s r t = ignore (Database.insert_names db s r t) in

  (* Day 1: a tiny company. Nobody designed anything. *)
  insert "ACME" "in" "COMPANY";
  insert "ADA" "in" "EMPLOYEE";
  insert "ADA" "WORKS-FOR" "ACME";
  insert "EMPLOYEE" "isa" "PERSON";
  ignore (Database.closure db);
  Printf.printf "day 1: %d base facts, closure %d\n" (Database.base_cardinal db)
    (Closure.cardinal (Database.closure db));

  (* Day 30: the world grows new *kinds* of facts — customers, products,
     a pet policy. No restructuring happens because there is no
     structure; the cached closure is extended, not recomputed. *)
  insert "WIDGET" "in" "PRODUCT";
  insert "ACME" "SELLS" "WIDGET";
  insert "BOB" "in" "CUSTOMER";
  insert "CUSTOMER" "isa" "PERSON";
  insert "BOB" "BOUGHT" "WIDGET";
  insert "ADA" "BRINGS-TO-WORK" "REX";
  insert "REX" "in" "DOG";
  ignore (Database.closure db);
  Printf.printf "day 30: %d base facts, closure %d — %d full computation(s), %d incremental extension(s)\n"
    (Database.base_cardinal db)
    (Closure.cardinal (Database.closure db))
    (Database.closure_computations db)
    (Database.closure_extensions db);

  (* Day 60: our *perception* evolves (the paper's other case): we learn
     that buying makes you a client, and that client ≈ customer. Rules
     and synonyms are facts/rules like everything else. *)
  insert "CLIENT" "syn" "CUSTOMER";
  Database.add_rule db
    (Rule.make ~name:"buyers-are-clients"
       ~body:
         [ Template.make (Template.Var "x")
             (Template.Ent (Database.entity db "BOUGHT"))
             (Template.Var "y") ]
       ~heads:
         [ Template.make (Template.Var "x")
             (Template.Ent Entity.member)
             (Template.Ent (Database.entity db "CLIENT")) ]
       ());
  Printf.printf "\nday 60: BOB is now a CUSTOMER too: %b\n"
    (Database.mem db
       (Fact.make (Database.entity db "BOB") Entity.member (Database.entity db "CUSTOMER")));

  (* Browsing keeps working with zero knowledge of what changed. *)
  print_endline "\n== browse BOB ==";
  print_endline (Navigation.render_source_table db (Database.entity db "BOB"));

  (* Two-dimensional navigation tables (§4.1's second form). *)
  print_endline "== who bought what: (?who, BOUGHT, ?what) ==";
  print_endline
    (Navigation.render_template db (Query_parser.parse_template db "(?who, BOUGHT, ?what)"));

  (* User-defined operators (§6's definition facility) adapt as fast as
     the data does. *)
  let defs = Definitions.create () in
  Definitions.define_text db defs
    "profile(?e) := (?e, in, ?class) | (?e, BOUGHT, ?class)";
  ignore defs;
  Definitions.define_text db defs "people() := (?p, in, PERSON)";
  print_endline "== call people() ==";
  let answer = Definitions.invoke db defs "people" [] in
  List.iter
    (fun row -> print_endline ("  " ^ String.concat ", " row))
    (Eval.rows_named (Database.symtab db) answer);

  (* And when the world contradicts itself, integrity notices. *)
  insert "PROFITABLE-IN" "contra" "BANKRUPT-IN";
  insert "ACME" "PROFITABLE-IN" "FY-2025";
  Printf.printf "\nvalid today: %b\n" (Integrity.is_valid db);
  (match
     Integrity.insert_checked db
       (Fact.of_names (Database.symtab db) "ACME" "BANKRUPT-IN" "FY-2025")
   with
  | Error _ -> print_endline "a contradictory rating was rejected"
  | Ok _ -> print_endline "unexpected")
