lib/storage/snapshot.ml: Array Codec Database Entity Fact Fun Hashtbl List Lsdb Printf Relclass Rule String Symtab
