lib/storage/codec.ml: Array Buffer Bytes Char Int32 Lazy String
