lib/storage/heap_file.mli: Format Pager
