lib/storage/pager.mli:
