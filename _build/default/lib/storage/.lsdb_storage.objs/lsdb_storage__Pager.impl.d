lib/storage/pager.ml: Bytes Hashtbl Int List Printf Unix
