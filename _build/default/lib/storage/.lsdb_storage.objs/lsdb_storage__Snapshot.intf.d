lib/storage/snapshot.mli: Lsdb
