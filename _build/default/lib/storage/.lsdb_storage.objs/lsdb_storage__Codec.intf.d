lib/storage/codec.mli:
