lib/storage/persistent.ml: Filename Log Lsdb Printf Snapshot Sys
