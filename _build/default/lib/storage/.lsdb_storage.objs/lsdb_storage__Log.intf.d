lib/storage/log.mli: Format Lsdb
