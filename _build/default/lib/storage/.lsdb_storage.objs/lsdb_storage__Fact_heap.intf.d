lib/storage/fact_heap.mli: Lsdb
