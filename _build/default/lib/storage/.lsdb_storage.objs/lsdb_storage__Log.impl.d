lib/storage/log.ml: Codec Format Fun List Lsdb Printf Sys
