lib/storage/bptree.mli:
