lib/storage/triple_index.ml: Bptree Database Fact Lsdb Store
