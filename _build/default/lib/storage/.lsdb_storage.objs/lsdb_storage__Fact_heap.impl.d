lib/storage/fact_heap.ml: Codec Hashtbl Heap_file Lsdb Pager
