lib/storage/bptree.ml: Array Int List Printf
