lib/storage/heap_file.ml: Bytes Char Format Pager String
