lib/storage/triple_index.mli: Lsdb
