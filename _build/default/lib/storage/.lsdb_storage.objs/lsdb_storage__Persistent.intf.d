lib/storage/persistent.mli: Lsdb
