type op =
  | Insert of string * string * string
  | Remove of string * string * string
  | Declare_class of string
  | Declare_individual of string
  | Set_limit of int
  | Exclude_rule of string
  | Include_rule of string

let op_equal (a : op) (b : op) = a = b

let pp_op ppf = function
  | Insert (s, r, t) -> Format.fprintf ppf "insert (%s, %s, %s)" s r t
  | Remove (s, r, t) -> Format.fprintf ppf "remove (%s, %s, %s)" s r t
  | Declare_class r -> Format.fprintf ppf "class %s" r
  | Declare_individual r -> Format.fprintf ppf "individual %s" r
  | Set_limit n -> Format.fprintf ppf "limit %d" n
  | Exclude_rule name -> Format.fprintf ppf "exclude %s" name
  | Include_rule name -> Format.fprintf ppf "include %s" name

let tag = function
  | Insert _ -> 1
  | Remove _ -> 2
  | Declare_class _ -> 3
  | Declare_individual _ -> 4
  | Set_limit _ -> 5
  | Exclude_rule _ -> 6
  | Include_rule _ -> 7

let encode op =
  let w = Codec.writer () in
  Codec.write_byte w (tag op);
  (match op with
  | Insert (s, r, t) | Remove (s, r, t) ->
      Codec.write_string w s;
      Codec.write_string w r;
      Codec.write_string w t
  | Declare_class name | Declare_individual name | Exclude_rule name | Include_rule name
    ->
      Codec.write_string w name
  | Set_limit n -> Codec.write_varint w n);
  Codec.contents w

let decode payload =
  let r = Codec.reader payload in
  let op =
    match Codec.read_byte r with
    | 1 ->
        let s = Codec.read_string r in
        let rel = Codec.read_string r in
        let t = Codec.read_string r in
        Insert (s, rel, t)
    | 2 ->
        let s = Codec.read_string r in
        let rel = Codec.read_string r in
        let t = Codec.read_string r in
        Remove (s, rel, t)
    | 3 -> Declare_class (Codec.read_string r)
    | 4 -> Declare_individual (Codec.read_string r)
    | 5 -> Set_limit (Codec.read_varint r)
    | 6 -> Exclude_rule (Codec.read_string r)
    | 7 -> Include_rule (Codec.read_string r)
    | n -> raise (Codec.Corrupt (Printf.sprintf "unknown log tag %d" n))
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes in log record");
  op

type t = { oc : out_channel; path : string }

let open_ path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { oc; path }

let append t op = Codec.write_frame t.oc (encode op)
let sync t = flush t.oc
let close t = close_out t.oc

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let read_all path =
  match read_file path with
  | None -> []
  | Some data ->
      let rec go pos acc =
        match Codec.read_frame data ~pos with
        | Some (payload, next) -> go next (decode payload :: acc)
        | None -> List.rev acc
      in
      go 0 []

let apply db = function
  | Insert (s, r, t) -> ignore (Lsdb.Database.insert_names db s r t)
  | Remove (s, r, t) -> ignore (Lsdb.Database.remove_names db s r t)
  | Declare_class name ->
      Lsdb.Database.declare_class_relationship db (Lsdb.Database.entity db name)
  | Declare_individual name ->
      Lsdb.Database.declare_individual_relationship db (Lsdb.Database.entity db name)
  | Set_limit n -> Lsdb.Database.set_limit db n
  | Exclude_rule name -> ignore (Lsdb.Database.exclude db name)
  | Include_rule name -> ignore (Lsdb.Database.include_rule db name)

let replay path db =
  let ops = read_all path in
  List.iter (apply db) ops;
  List.length ops

let op_of_insert db fact =
  let s, r, t = Lsdb.Fact.names (Lsdb.Database.symtab db) fact in
  Insert (s, r, t)

let op_of_remove db fact =
  let s, r, t = Lsdb.Fact.names (Lsdb.Database.symtab db) fact in
  Remove (s, r, t)
