(** A durable loosely structured database: a directory holding a binary
    snapshot plus an append-only operation log. Opening replays
    [snapshot ∥ log]; {!compact} folds the log into a fresh snapshot.
    All mutators mirror {!Lsdb.Database} and log before returning. *)

type t

(** [open_dir dir] — create the directory if needed, load snapshot if
    present, replay the log. *)
val open_dir : string -> t

(** The in-memory database (query/browse freely; do not mutate directly —
    unlogged mutations are lost at the next open). *)
val database : t -> Lsdb.Database.t

(** {1 Logged mutations} *)

val insert : t -> Lsdb.Fact.t -> bool
val insert_names : t -> string -> string -> string -> bool
val remove : t -> Lsdb.Fact.t -> bool
val declare_class_relationship : t -> Lsdb.Entity.t -> unit
val declare_individual_relationship : t -> Lsdb.Entity.t -> unit
val set_limit : t -> int -> unit
val exclude : t -> string -> bool
val include_rule : t -> string -> bool

(** {1 Durability} *)

(** Flush the log. *)
val sync : t -> unit

(** Write a snapshot of the current state and truncate the log. *)
val compact : t -> unit

val close : t -> unit

(** Number of log records since the last compaction. *)
val log_length : t -> int

val snapshot_path : t -> string
val log_path : t -> string
