(** The ordered storage strategy: three B+trees holding each fact in SPO,
    POS and OSP key order, so every bound-position pattern is a prefix or
    point scan. Drop-in alternative to the hash-indexed {!Lsdb.Store} for
    experiment B2/B6 comparisons. *)

type t

val create : ?branching:int -> unit -> t

val add : t -> Lsdb.Fact.t -> bool
val remove : t -> Lsdb.Fact.t -> bool
val mem : t -> Lsdb.Fact.t -> bool
val cardinal : t -> int

val iter : (Lsdb.Fact.t -> unit) -> t -> unit

(** Same contract as [Lsdb.Store.match_pattern]. *)
val match_pattern : t -> Lsdb.Store.pattern -> (Lsdb.Fact.t -> unit) -> unit

val match_list : t -> Lsdb.Store.pattern -> Lsdb.Fact.t list

(** Load every base fact of a database. *)
val of_database : Lsdb.Database.t -> t
