(** Binary snapshots: a compact full dump of a database's base state
    (name dictionary, fact triples over dictionary ids, relationship
    declarations, composition limit, disabled rules). Loading a snapshot
    is O(data) with no log replay — the fast-restart half of experiment
    B6. User-defined rules are not captured (they live in code or in
    {!Lsdb.Fact_file} form); builtin rule enablement is. *)

val magic : string

(** Serialize the base state. *)
val encode : Lsdb.Database.t -> string

exception Corrupt of string

(** Rebuild a fresh database from a snapshot. *)
val decode : string -> Lsdb.Database.t

val save : Lsdb.Database.t -> string -> unit
val load : string -> Lsdb.Database.t
