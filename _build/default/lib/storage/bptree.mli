(** A B+tree over triple keys [(a, b, c)] in lexicographic order — the
    ordered-index storage strategy: unlike the hash {!Lsdb.Store}, it
    supports prefix scans ([all triples with a = s], [with a = s, b = r])
    in one seek plus a sequential walk. Three trees with permuted
    components (SPO/POS/OSP) cover every bound-position pattern, the
    classical triple-store layout. *)

type key = int * int * int

type t

val create : ?branching:int -> unit -> t

(** [true] iff newly inserted. *)
val insert : t -> key -> bool

(** [true] iff present (and now removed). *)
val delete : t -> key -> bool

val mem : t -> key -> bool
val cardinal : t -> int

(** Ordered iteration over the whole tree. *)
val iter : (key -> unit) -> t -> unit

(** [iter_range t ~lo ~hi f] — keys with [lo <= k < hi]. *)
val iter_range : t -> lo:key -> hi:key -> (key -> unit) -> unit

(** Prefix scans. *)
val iter_prefix1 : t -> int -> (key -> unit) -> unit

val iter_prefix2 : t -> int -> int -> (key -> unit) -> unit

val to_list : t -> key list

(** Tree height (for tests/benches). *)
val height : t -> int

(** Internal structural invariants (for property tests): sorted leaves,
    linked-list order, node occupancy. Raises [Failure] when violated. *)
val check_invariants : t -> unit
