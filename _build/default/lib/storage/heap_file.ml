(* Page layout:
     [0..2)   u16 nslots
     [2..4)   u16 rec_start (lowest byte used by records; page_size if none)
     [4..)    slot directory: per slot, u16 offset (0 = tombstone), u16 length
   Records grow downward from the page end; the free gap lies between the
   slot directory and rec_start. *)

type t = { pager : Pager.t; mutable current : int (* insertion cursor *) }

type rid = { page : int; slot : int }

let rid_equal a b = a.page = b.page && a.slot = b.slot
let pp_rid ppf { page; slot } = Format.fprintf ppf "%d.%d" page slot

let header = 4
let slot_bytes = 4
let max_record = Pager.page_size - header - slot_bytes

let get_u16 data off = Char.code (Bytes.get data off) lor (Char.code (Bytes.get data (off + 1)) lsl 8)

let set_u16 data off v =
  Bytes.set data off (Char.chr (v land 0xff));
  Bytes.set data (off + 1) (Char.chr ((v lsr 8) land 0xff))

let nslots data = get_u16 data 0
let rec_start data = match get_u16 data 2 with 0 -> Pager.page_size | v -> v
let slot_off data i = (get_u16 data (header + (slot_bytes * i)), get_u16 data (header + (slot_bytes * i) + 2))

let create pager = { pager; current = 0 }

let free_space data =
  rec_start data - (header + (slot_bytes * nslots data))

(* A tombstoned slot can be reused if the payload fits in the gap. *)
let find_tombstone data =
  let n = nslots data in
  let rec go i = if i >= n then None else if fst (slot_off data i) = 0 then Some i else go (i + 1) in
  go 0

let insert_into_page t page payload =
  let data = Pager.read t.pager page in
  let len = String.length payload in
  let need_slot = match find_tombstone data with None -> slot_bytes | Some _ -> 0 in
  if free_space data < len + need_slot then None
  else begin
    let slot =
      match find_tombstone data with
      | Some slot -> slot
      | None ->
          let slot = nslots data in
          set_u16 data 0 (slot + 1);
          slot
    in
    let off = rec_start data - len in
    Bytes.blit_string payload 0 data off len;
    set_u16 data 2 off;
    set_u16 data (header + (slot_bytes * slot)) off;
    set_u16 data (header + (slot_bytes * slot) + 2) len;
    Pager.write t.pager page data;
    Some { page; slot }
  end

let insert t payload =
  if String.length payload > max_record then
    invalid_arg "Heap_file.insert: record too large";
  if String.length payload = 0 then invalid_arg "Heap_file.insert: empty record";
  let pages = Pager.page_count t.pager in
  let rec try_from n attempts =
    if attempts >= pages then begin
      let page = Pager.alloc t.pager in
      t.current <- page;
      match insert_into_page t page payload with
      | Some rid -> rid
      | None -> assert false (* a fresh page always fits max_record *)
    end
    else
      let page = (t.current + n) mod max 1 pages in
      match insert_into_page t page payload with
      | Some rid ->
          t.current <- page;
          rid
      | None -> try_from (n + 1) (attempts + 1)
  in
  try_from 0 0

let get t { page; slot } =
  if page < 0 || page >= Pager.page_count t.pager then None
  else
    let data = Pager.read t.pager page in
    if slot < 0 || slot >= nslots data then None
    else
      let off, len = slot_off data slot in
      if off = 0 then None else Some (Bytes.sub_string data off len)

let delete t ({ page; slot } as rid) =
  match get t rid with
  | None -> false
  | Some _ ->
      let data = Pager.read t.pager page in
      set_u16 data (header + (slot_bytes * slot)) 0;
      set_u16 data (header + (slot_bytes * slot) + 2) 0;
      Pager.write t.pager page data;
      true

let iter f t =
  for page = 0 to Pager.page_count t.pager - 1 do
    let data = Pager.read t.pager page in
    for slot = 0 to nslots data - 1 do
      let off, len = slot_off data slot in
      if off <> 0 then f { page; slot } (Bytes.sub_string data off len)
    done
  done

let count t =
  let n = ref 0 in
  iter (fun _ _ -> incr n) t;
  !n

let stats t = (`Records (count t), `Pages (Pager.page_count t.pager))
