(** A disk-resident heap of facts: name triples stored as slotted-page
    records through {!Heap_file}/{!Pager} — the paper's "heap of facts"
    taken literally onto pages. An in-memory rid map provides membership
    and deletion; records are decoded on scan.

    This is the third storage strategy next to the operation log and the
    snapshot (experiment B6): unlike the log it supports in-place
    deletion; unlike the snapshot it is updated incrementally, record by
    record. *)

type t

(** Open or create the paged file. Existing records are indexed. *)
val open_ : string -> t

(** [insert t (s, r, tgt)] — [true] iff the fact was not present. *)
val insert : t -> string * string * string -> bool

val delete : t -> string * string * string -> bool
val mem : t -> string * string * string -> bool
val cardinal : t -> int
val iter : (string * string * string -> unit) -> t -> unit

(** Flush pages to disk. *)
val sync : t -> unit

val close : t -> unit

(** Load every fact into a fresh database. *)
val to_database : t -> Lsdb.Database.t

(** Append every base fact of a database (names preserved); returns how
    many were new. *)
val add_database : t -> Lsdb.Database.t -> int

(** Pages used (for the B6 report). *)
val pages : t -> int
