type t = {
  dir : string;
  db : Lsdb.Database.t;
  mutable log : Log.t;
  mutable log_length : int;
}

let snapshot_file dir = Filename.concat dir "snapshot.lsdb"
let log_file dir = Filename.concat dir "log.lsdb"

let open_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Persistent.open_dir: %s is not a directory" dir);
  let db =
    if Sys.file_exists (snapshot_file dir) then Snapshot.load (snapshot_file dir)
    else Lsdb.Database.create ()
  in
  let replayed = Log.replay (log_file dir) db in
  let log = Log.open_ (log_file dir) in
  { dir; db; log; log_length = replayed }

let database t = t.db

let record t op =
  Log.append t.log op;
  t.log_length <- t.log_length + 1

let insert t fact =
  let added = Lsdb.Database.insert t.db fact in
  if added then record t (Log.op_of_insert t.db fact);
  added

let insert_names t s r tgt =
  insert t (Lsdb.Fact.of_names (Lsdb.Database.symtab t.db) s r tgt)

let remove t fact =
  let op = Log.op_of_remove t.db fact in
  let removed = Lsdb.Database.remove t.db fact in
  if removed then record t op;
  removed

let declare_class_relationship t e =
  Lsdb.Database.declare_class_relationship t.db e;
  record t (Log.Declare_class (Lsdb.Database.entity_name t.db e))

let declare_individual_relationship t e =
  Lsdb.Database.declare_individual_relationship t.db e;
  record t (Log.Declare_individual (Lsdb.Database.entity_name t.db e))

let set_limit t n =
  Lsdb.Database.set_limit t.db n;
  record t (Log.Set_limit n)

let exclude t name =
  let ok = Lsdb.Database.exclude t.db name in
  if ok then record t (Log.Exclude_rule name);
  ok

let include_rule t name =
  let ok = Lsdb.Database.include_rule t.db name in
  if ok then record t (Log.Include_rule name);
  ok

let sync t = Log.sync t.log

let compact t =
  Log.close t.log;
  Snapshot.save t.db (snapshot_file t.dir);
  (* Truncate by recreating. *)
  let oc = open_out_bin (log_file t.dir) in
  close_out oc;
  t.log <- Log.open_ (log_file t.dir);
  t.log_length <- 0

let close t =
  Log.sync t.log;
  Log.close t.log

let log_length t = t.log_length
let snapshot_path t = snapshot_file t.dir
let log_path t = log_file t.dir
