type key = int * int * int

let key_compare (a1, b1, c1) (a2, b2, c2) =
  let c = Int.compare a1 a2 in
  if c <> 0 then c
  else
    let c = Int.compare b1 b2 in
    if c <> 0 then c else Int.compare c1 c2

type leaf = { mutable lkeys : key array; mutable next : leaf option }

type node = Leaf of leaf | Internal of internal

and internal = { mutable seps : key array; mutable children : node array }

type t = { mutable root : node; mutable count : int; max_keys : int }

let create ?(branching = 16) () =
  if branching < 2 then invalid_arg "Bptree.create: branching must be >= 2";
  { root = Leaf { lkeys = [||]; next = None }; count = 0; max_keys = 2 * branching }

(* Index of the first key >= k, by binary search. *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr i v =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then v else arr.(j - 1))

let array_remove arr i =
  let n = Array.length arr in
  Array.init (n - 1) (fun j -> if j < i then arr.(j) else arr.(j + 1))

(* Child index for key k: first separator greater than k decides. *)
let child_index seps k =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if key_compare k seps.(mid) >= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

type split = No_split | Split of key * node

let rec insert_node t node k =
  match node with
  | Leaf leaf ->
      let i = lower_bound leaf.lkeys k in
      if i < Array.length leaf.lkeys && key_compare leaf.lkeys.(i) k = 0 then (false, No_split)
      else begin
        leaf.lkeys <- array_insert leaf.lkeys i k;
        if Array.length leaf.lkeys <= t.max_keys then (true, No_split)
        else begin
          let n = Array.length leaf.lkeys in
          let mid = n / 2 in
          let right =
            { lkeys = Array.sub leaf.lkeys mid (n - mid); next = leaf.next }
          in
          leaf.lkeys <- Array.sub leaf.lkeys 0 mid;
          leaf.next <- Some right;
          (true, Split (right.lkeys.(0), Leaf right))
        end
      end
  | Internal inner -> (
      let i = child_index inner.seps k in
      let added, split = insert_node t inner.children.(i) k in
      match split with
      | No_split -> (added, No_split)
      | Split (sep, right) ->
          inner.seps <- array_insert inner.seps i sep;
          inner.children <- array_insert inner.children (i + 1) right;
          if Array.length inner.children <= t.max_keys then (added, No_split)
          else begin
            let n = Array.length inner.seps in
            let mid = n / 2 in
            let up = inner.seps.(mid) in
            let right_inner =
              {
                seps = Array.sub inner.seps (mid + 1) (n - mid - 1);
                children = Array.sub inner.children (mid + 1) (Array.length inner.children - mid - 1);
              }
            in
            inner.seps <- Array.sub inner.seps 0 mid;
            inner.children <- Array.sub inner.children 0 (mid + 1);
            (added, Split (up, Internal right_inner))
          end)

let insert t k =
  let added, split = insert_node t t.root k in
  (match split with
  | No_split -> ()
  | Split (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] });
  if added then t.count <- t.count + 1;
  added

(* Deletion is lazy: the key is removed from its leaf, but nodes are not
   rebalanced — empty leaves persist until the tree is rebuilt. This keeps
   deletion O(log n) and all read paths exact. *)
let rec delete_node node k =
  match node with
  | Leaf leaf ->
      let i = lower_bound leaf.lkeys k in
      if i < Array.length leaf.lkeys && key_compare leaf.lkeys.(i) k = 0 then begin
        leaf.lkeys <- array_remove leaf.lkeys i;
        true
      end
      else false
  | Internal inner -> delete_node inner.children.(child_index inner.seps k) k

let delete t k =
  let removed = delete_node t.root k in
  if removed then t.count <- t.count - 1;
  removed

let rec mem_node node k =
  match node with
  | Leaf leaf ->
      let i = lower_bound leaf.lkeys k in
      i < Array.length leaf.lkeys && key_compare leaf.lkeys.(i) k = 0
  | Internal inner -> mem_node inner.children.(child_index inner.seps k) k

let mem t k = mem_node t.root k
let cardinal t = t.count

let rec leftmost = function
  | Leaf leaf -> leaf
  | Internal inner -> leftmost inner.children.(0)

let rec leaf_for node k =
  match node with
  | Leaf leaf -> leaf
  | Internal inner -> leaf_for inner.children.(child_index inner.seps k) k

let iter f t =
  let rec walk = function
    | None -> ()
    | Some leaf ->
        Array.iter f leaf.lkeys;
        walk leaf.next
  in
  walk (Some (leftmost t.root))

let iter_range t ~lo ~hi f =
  if key_compare lo hi < 0 then begin
    let leaf = leaf_for t.root lo in
    let exception Done in
    let visit leaf =
      Array.iter
        (fun k ->
          if key_compare k hi >= 0 then raise Done
          else if key_compare k lo >= 0 then f k)
        leaf.lkeys
    in
    try
      let rec walk = function
        | None -> ()
        | Some leaf ->
            visit leaf;
            walk leaf.next
      in
      walk (Some leaf)
    with Done -> ()
  end

let iter_prefix1 t a f = iter_range t ~lo:(a, min_int, min_int) ~hi:(a + 1, min_int, min_int) f
let iter_prefix2 t a b f = iter_range t ~lo:(a, b, min_int) ~hi:(a, b + 1, min_int) f

let to_list t =
  let acc = ref [] in
  iter (fun k -> acc := k :: !acc) t;
  List.rev !acc

let height t =
  let rec go = function Leaf _ -> 1 | Internal inner -> 1 + go inner.children.(0) in
  go t.root

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Keys in order across the leaf chain. *)
  let last = ref None in
  iter
    (fun k ->
      (match !last with
      | Some prev when key_compare prev k >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      last := Some k)
    t;
  (* Separators bound their subtrees. *)
  let rec bounds node lo hi =
    (match node with
    | Leaf leaf ->
        Array.iter
          (fun k ->
            (match lo with Some l when key_compare k l < 0 -> fail "key below lower bound" | _ -> ());
            match hi with Some h when key_compare k h >= 0 -> fail "key above upper bound" | _ -> ())
          leaf.lkeys
    | Internal inner ->
        if Array.length inner.children <> Array.length inner.seps + 1 then
          fail "child/separator arity mismatch";
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some inner.seps.(i - 1) in
            let hi' = if i = Array.length inner.seps then hi else Some inner.seps.(i) in
            bounds child lo' hi')
          inner.children);
    ()
  in
  bounds t.root None None;
  (* Count agrees. *)
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  if !n <> t.count then fail "cardinal mismatch: counted %d, recorded %d" !n t.count
