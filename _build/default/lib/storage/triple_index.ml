open Lsdb

type t = { spo : Bptree.t; pos : Bptree.t; osp : Bptree.t }

let create ?branching () =
  {
    spo = Bptree.create ?branching ();
    pos = Bptree.create ?branching ();
    osp = Bptree.create ?branching ();
  }

let keys (fact : Fact.t) =
  ((fact.s, fact.r, fact.t), (fact.r, fact.t, fact.s), (fact.t, fact.s, fact.r))

let add t fact =
  let spo, pos, osp = keys fact in
  let added = Bptree.insert t.spo spo in
  if added then begin
    ignore (Bptree.insert t.pos pos);
    ignore (Bptree.insert t.osp osp)
  end;
  added

let remove t fact =
  let spo, pos, osp = keys fact in
  let removed = Bptree.delete t.spo spo in
  if removed then begin
    ignore (Bptree.delete t.pos pos);
    ignore (Bptree.delete t.osp osp)
  end;
  removed

let mem t fact =
  let spo, _, _ = keys fact in
  Bptree.mem t.spo spo

let cardinal t = Bptree.cardinal t.spo

let iter f t = Bptree.iter (fun (s, r, tgt) -> f (Fact.make s r tgt)) t.spo

let match_pattern t (pat : Store.pattern) f =
  match (pat.s, pat.r, pat.t) with
  | Some s, Some r, Some tgt ->
      let fact = Fact.make s r tgt in
      if mem t fact then f fact
  | Some s, Some r, None -> Bptree.iter_prefix2 t.spo s r (fun (s, r, tgt) -> f (Fact.make s r tgt))
  | Some s, None, None -> Bptree.iter_prefix1 t.spo s (fun (s, r, tgt) -> f (Fact.make s r tgt))
  | None, Some r, Some tgt ->
      Bptree.iter_prefix2 t.pos r tgt (fun (r, tgt, s) -> f (Fact.make s r tgt))
  | None, Some r, None -> Bptree.iter_prefix1 t.pos r (fun (r, tgt, s) -> f (Fact.make s r tgt))
  | Some s, None, Some tgt ->
      Bptree.iter_prefix2 t.osp tgt s (fun (tgt, s, r) -> f (Fact.make s r tgt))
  | None, None, Some tgt -> Bptree.iter_prefix1 t.osp tgt (fun (tgt, s, r) -> f (Fact.make s r tgt))
  | None, None, None -> iter f t

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let of_database db =
  let t = create () in
  Store.iter (fun fact -> ignore (add t fact)) (Database.store db);
  t
