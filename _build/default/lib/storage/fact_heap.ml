type t = {
  pager : Pager.t;
  heap : Heap_file.t;
  rids : (string * string * string, Heap_file.rid) Hashtbl.t;
}

let encode (s, r, tgt) =
  let w = Codec.writer () in
  Codec.write_string w s;
  Codec.write_string w r;
  Codec.write_string w tgt;
  Codec.contents w

let decode payload =
  let reader = Codec.reader payload in
  let s = Codec.read_string reader in
  let r = Codec.read_string reader in
  let tgt = Codec.read_string reader in
  if not (Codec.at_end reader) then raise (Codec.Corrupt "trailing bytes in fact record");
  (s, r, tgt)

let open_ path =
  let pager = Pager.open_ path in
  let heap = Heap_file.create pager in
  let rids = Hashtbl.create 256 in
  Heap_file.iter (fun rid payload -> Hashtbl.replace rids (decode payload) rid) heap;
  { pager; heap; rids }

let insert t fact =
  if Hashtbl.mem t.rids fact then false
  else begin
    let rid = Heap_file.insert t.heap (encode fact) in
    Hashtbl.replace t.rids fact rid;
    true
  end

let delete t fact =
  match Hashtbl.find_opt t.rids fact with
  | None -> false
  | Some rid ->
      ignore (Heap_file.delete t.heap rid);
      Hashtbl.remove t.rids fact;
      true

let mem t fact = Hashtbl.mem t.rids fact
let cardinal t = Hashtbl.length t.rids
let iter f t = Hashtbl.iter (fun fact _ -> f fact) t.rids
let sync t = Pager.sync t.pager
let close t = Pager.close t.pager

let to_database t =
  let db = Lsdb.Database.create () in
  iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t;
  db

let add_database t db =
  let added = ref 0 in
  let symtab = Lsdb.Database.symtab db in
  Lsdb.Store.iter
    (fun fact -> if insert t (Lsdb.Fact.names symtab fact) then incr added)
    (Lsdb.Database.store db);
  !added

let pages t = Pager.page_count t.pager
