(** A slotted-page heap file over {!Pager}: variable-length records
    addressed by stable record ids (page, slot). The classical layout —
    slot directory at the page head, records growing from the tail —
    so deletions leave reusable holes and record ids survive. *)

type t

(** A record id. *)
type rid = { page : int; slot : int }

val rid_equal : rid -> rid -> bool
val pp_rid : Format.formatter -> rid -> unit

(** Attach to a pager (page 0 onward is owned by the heap). *)
val create : Pager.t -> t

(** Maximal record payload. *)
val max_record : int

(** Insert a record; raises [Invalid_argument] if larger than
    [max_record]. *)
val insert : t -> string -> rid

val get : t -> rid -> string option

(** [delete t rid] — [true] iff the record existed. The slot becomes a
    tombstone; its space is reclaimed by the next in-page compaction. *)
val delete : t -> rid -> bool

val iter : (rid -> string -> unit) -> t -> unit
val count : t -> int

(** Bytes of live payload vs. pages used (for the B6 report). *)
val stats : t -> [ `Records of int ] * [ `Pages of int ]
