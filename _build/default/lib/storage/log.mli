(** The append-only operation log: every database mutation as one framed,
    checksummed record. Replaying a log onto a fresh database rebuilds the
    state; names (not ids) are logged so logs survive re-interning. *)

type op =
  | Insert of string * string * string
  | Remove of string * string * string
  | Declare_class of string
  | Declare_individual of string
  | Set_limit of int
  | Exclude_rule of string
  | Include_rule of string

val op_equal : op -> op -> bool
val pp_op : Format.formatter -> op -> unit

(** [encode op] / [decode payload] — one record. *)
val encode : op -> string

val decode : string -> op  (** raises {!Codec.Corrupt} *)

(** {1 Files} *)

type t

(** Open (creating if missing) for appending. *)
val open_ : string -> t

val append : t -> op -> unit

(** Flush buffered records to the OS. *)
val sync : t -> unit

val close : t -> unit

(** Read every intact record of a log file ([[]] if absent); tolerates a
    torn final record. *)
val read_all : string -> op list

(** Apply an operation to a database. *)
val apply : Lsdb.Database.t -> op -> unit

(** [replay path db] applies all records; returns how many. *)
val replay : string -> Lsdb.Database.t -> int

(** Derive the op that records a mutation, for callers wrapping
    {!Lsdb.Database}. *)
val op_of_insert : Lsdb.Database.t -> Lsdb.Fact.t -> op

val op_of_remove : Lsdb.Database.t -> Lsdb.Fact.t -> op
