(** Side conditions attached to rules.

    The paper's standard inference rules are guarded: e.g. inference by
    generalization applies only when the relationship is an *individual*
    relationship ([r ∈ R_i]). Guards are checked once all their terms are
    bound; a guard whose terms are not yet all bound is deferred. *)

type t =
  | Distinct of Term.t * Term.t
      (** the two terms denote different constants *)
  | Same of Term.t * Term.t  (** the two terms denote the same constant *)
  | Holds of string * (int -> bool) * Term.t
      (** named unary predicate over the denoted constant; the name is used
          only for printing and equality *)

val pp : Format.formatter -> t -> unit

(** Variables the guard mentions. *)
val vars : t -> int list

(** [check binding guard] is [Some true]/[Some false] once every term is
    bound, [None] while some variable is still unbound. *)
val check : int array -> t -> bool option
