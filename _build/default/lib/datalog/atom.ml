type t = { s : Term.t; r : Term.t; t : Term.t }

let make s r t = { s; r; t }

let equal a b = Term.equal a.s b.s && Term.equal a.r b.r && Term.equal a.t b.t

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Term.compare a.r b.r in
    if c <> 0 then c else Term.compare a.t b.t

let vars { s; r; t } =
  let add acc = function Term.Var v -> v :: acc | Term.Const _ -> acc in
  List.rev (add (add (add [] s) r) t)

let max_var atom = List.fold_left max (-1) (vars atom)

let match_term binding term value newly =
  match term with
  | Term.Const c -> if c = value then Some newly else None
  | Term.Var v ->
      if binding.(v) < 0 then begin
        binding.(v) <- value;
        Some (v :: newly)
      end
      else if binding.(v) = value then Some newly
      else None

let undo binding newly = List.iter (fun v -> binding.(v) <- -1) newly

let match_against binding atom (triple : Triple.t) =
  match match_term binding atom.s triple.s [] with
  | None -> None
  | Some newly -> (
      match match_term binding atom.r triple.r newly with
      | None ->
          undo binding newly;
          None
      | Some newly -> (
          match match_term binding atom.t triple.t newly with
          | None ->
              undo binding newly;
              None
          | Some newly -> Some newly))

let instantiate binding atom =
  match
    (Term.subst binding atom.s, Term.subst binding atom.r, Term.subst binding atom.t)
  with
  | Some s, Some r, Some t -> Some (Triple.make s r t)
  | _ -> None

let pp ppf { s; r; t } =
  Format.fprintf ppf "(%a,%a,%a)" Term.pp s Term.pp r Term.pp t
