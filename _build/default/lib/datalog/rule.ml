type t = {
  name : string;
  body : Atom.t list;
  guards : Guard.t list;
  heads : Atom.t list;
  nvars : int;
}

exception Unsafe of string

module Int_set = Set.Make (Int)

let make ~name ~body ?(guards = []) ~heads () =
  let body_vars =
    List.fold_left
      (fun acc atom -> List.fold_left (fun acc v -> Int_set.add v acc) acc (Atom.vars atom))
      Int_set.empty body
  in
  let check_covered what vars =
    List.iter
      (fun v ->
        if not (Int_set.mem v body_vars) then
          raise
            (Unsafe
               (Printf.sprintf "rule %s: %s variable ?%d does not occur in the body"
                  name what v)))
      vars
  in
  List.iter (fun atom -> check_covered "head" (Atom.vars atom)) heads;
  List.iter (fun g -> check_covered "guard" (Guard.vars g)) guards;
  let max_in atoms =
    List.fold_left (fun acc atom -> max acc (Atom.max_var atom)) (-1) atoms
  in
  let nvars = 1 + max (max_in body) (max_in heads) in
  if heads = [] then raise (Unsafe (Printf.sprintf "rule %s: no head" name));
  if body = [] then raise (Unsafe (Printf.sprintf "rule %s: no body" name));
  { name; body; guards; heads; nvars }

let pp ppf { name; body; guards; heads; _ } =
  Format.fprintf ppf "@[<hov 2>%s:@ %a" name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Atom.pp)
    body;
  if guards <> [] then
    Format.fprintf ppf "@ where %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Guard.pp)
      guards;
  Format.fprintf ppf "@ =>@ %a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Atom.pp)
    heads
