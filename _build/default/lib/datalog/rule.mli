(** Conjunctive rules <L, R>: a set of body templates (plus guards) implying
    a set of head templates — the paper's single mechanism for both inference
    rules and integrity constraints (§2.6). *)

type t = private {
  name : string;  (** for display and provenance *)
  body : Atom.t list;
  guards : Guard.t list;
  heads : Atom.t list;
  nvars : int;  (** size of the variable frame *)
}

exception Unsafe of string

(** [make ~name ~body ~guards ~heads] builds a rule, renumbering nothing:
    callers use variable indices [0..n-1]. Raises [Unsafe] if a head or guard
    variable does not occur in the body (such rules could derive non-ground
    facts). *)
val make : name:string -> body:Atom.t list -> ?guards:Guard.t list -> heads:Atom.t list -> unit -> t

val pp : Format.formatter -> t -> unit
