(** Evaluation index over ground triples.

    Append-only (the fixpoint only ever adds facts); every bound-position
    pattern is answered from the most selective available hash index. *)

type t

val create : ?size_hint:int -> unit -> t

(** [add t triple] is [true] if the triple was new, [false] if already
    present (in which case the index is unchanged). *)
val add : t -> Triple.t -> bool

val mem : t -> Triple.t -> bool
val cardinal : t -> int
val iter : (Triple.t -> unit) -> t -> unit
val to_seq : t -> Triple.t Seq.t

(** [candidates t ~s ~r ~t:tgt f] applies [f] to every stored triple
    compatible with the pattern; [None] positions are wildcards. The
    triples passed to [f] are guaranteed to match the bound positions. *)
val candidates :
  t -> s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit
