(** Terms of rule atoms: rule-local variables or interned constants.

    Variables are identified by their index in the rule's variable frame;
    a rule with [n] distinct variables uses indices [0 .. n-1]. *)

type t =
  | Var of int    (** rule-local variable slot *)
  | Const of int  (** interned constant (entity id) *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_var : t -> bool
val is_const : t -> bool

(** [subst binding term] is the constant denoted by [term] under [binding],
    or [None] if [term] is an unbound variable. [binding.(v) = -1] marks
    slot [v] unbound. *)
val subst : int array -> t -> int option

val pp : Format.formatter -> t -> unit
