type t = { s : int; r : int; t : int }

let make s r t = { s; r; t }

let equal a b = a.s = b.s && a.r = b.r && a.t = b.t

let compare a b =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.r b.r in
    if c <> 0 then c else Int.compare a.t b.t

(* A cheap mixing hash; triples are hot keys in the closure fixpoint. *)
let hash { s; r; t } =
  let h = s * 0x9e3779b1 in
  let h = (h lxor r) * 0x85ebca77 in
  let h = (h lxor t) * 0xc2b2ae3d in
  h land max_int

let pp ppf { s; r; t } = Format.fprintf ppf "(%d,%d,%d)" s r t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hash)
