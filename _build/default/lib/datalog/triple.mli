(** Integer triples: the ground facts manipulated by the Datalog engine.

    The engine is deliberately ignorant of what the integers denote; the
    [lsdb] core library interns entity names to non-negative integers and
    maps its facts down to triples before invoking the engine. *)

type t = { s : int; r : int; t : int }

val make : int -> int -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
