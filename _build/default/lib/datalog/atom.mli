(** Rule atoms: triples of terms, matched against ground triples. *)

type t = { s : Term.t; r : Term.t; t : Term.t }

val make : Term.t -> Term.t -> Term.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Variables occurring in the atom, in source-relationship-target order,
    with duplicates preserved. *)
val vars : t -> int list

(** Largest variable index occurring in the atom, or [-1] if ground. *)
val max_var : t -> int

(** [match_against binding atom triple] attempts to unify [atom] with the
    ground [triple] under the partial [binding] ([-1] = unbound). On success
    it returns the list of variable slots it newly bound (so the caller can
    undo them); on failure it returns [None] and leaves [binding] exactly as
    it was. *)
val match_against : int array -> t -> Triple.t -> int list option

(** [instantiate binding atom] is the ground triple denoted by [atom] under
    [binding], or [None] if some variable is unbound. *)
val instantiate : int array -> t -> Triple.t option

val pp : Format.formatter -> t -> unit
