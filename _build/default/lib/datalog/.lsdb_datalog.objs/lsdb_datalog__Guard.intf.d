lib/datalog/guard.mli: Format Term
