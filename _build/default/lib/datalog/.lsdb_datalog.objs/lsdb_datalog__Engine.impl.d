lib/datalog/engine.ml: Array Atom Fun Guard Index List Rule Seq Term Triple
