lib/datalog/index.ml: Hashtbl Int List Triple
