lib/datalog/index.mli: Seq Triple
