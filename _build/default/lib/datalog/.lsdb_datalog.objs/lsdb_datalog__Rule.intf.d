lib/datalog/rule.mli: Atom Format Guard
