lib/datalog/engine.mli: Index Rule Seq Triple
