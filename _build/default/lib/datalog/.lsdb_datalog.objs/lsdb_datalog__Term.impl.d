lib/datalog/term.ml: Array Format Int
