lib/datalog/triple.ml: Format Hashtbl Int Set
