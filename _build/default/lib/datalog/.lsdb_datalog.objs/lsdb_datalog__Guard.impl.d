lib/datalog/guard.ml: Format Term
