lib/datalog/atom.ml: Array Format List Term Triple
