lib/datalog/rule.ml: Atom Format Guard Int List Printf Set
