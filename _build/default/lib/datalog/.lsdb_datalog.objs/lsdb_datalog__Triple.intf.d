lib/datalog/triple.mli: Format Hashtbl Set
