module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) land max_int
end

module Pair_tbl = Hashtbl.Make (Pair)
module Int_tbl = Hashtbl.Make (Int)

type t = {
  all : unit Triple.Tbl.t;
  by_sr : Triple.t list ref Pair_tbl.t;
  by_st : Triple.t list ref Pair_tbl.t;
  by_rt : Triple.t list ref Pair_tbl.t;
  by_s : Triple.t list ref Int_tbl.t;
  by_r : Triple.t list ref Int_tbl.t;
  by_t : Triple.t list ref Int_tbl.t;
}

let create ?(size_hint = 1024) () =
  {
    all = Triple.Tbl.create size_hint;
    by_sr = Pair_tbl.create size_hint;
    by_st = Pair_tbl.create size_hint;
    by_rt = Pair_tbl.create size_hint;
    by_s = Int_tbl.create size_hint;
    by_r = Int_tbl.create size_hint;
    by_t = Int_tbl.create size_hint;
  }

let push_pair tbl key triple =
  match Pair_tbl.find_opt tbl key with
  | Some cell -> cell := triple :: !cell
  | None -> Pair_tbl.add tbl key (ref [ triple ])

let push_int tbl key triple =
  match Int_tbl.find_opt tbl key with
  | Some cell -> cell := triple :: !cell
  | None -> Int_tbl.add tbl key (ref [ triple ])

let add idx (triple : Triple.t) =
  if Triple.Tbl.mem idx.all triple then false
  else begin
    Triple.Tbl.add idx.all triple ();
    push_pair idx.by_sr (triple.s, triple.r) triple;
    push_pair idx.by_st (triple.s, triple.t) triple;
    push_pair idx.by_rt (triple.r, triple.t) triple;
    push_int idx.by_s triple.s triple;
    push_int idx.by_r triple.r triple;
    push_int idx.by_t triple.t triple;
    true
  end

let mem idx triple = Triple.Tbl.mem idx.all triple
let cardinal idx = Triple.Tbl.length idx.all
let iter f idx = Triple.Tbl.iter (fun triple () -> f triple) idx.all
let to_seq idx = Triple.Tbl.to_seq_keys idx.all

let iter_pair tbl key f =
  match Pair_tbl.find_opt tbl key with
  | Some cell -> List.iter f !cell
  | None -> ()

let iter_int tbl key f =
  match Int_tbl.find_opt tbl key with
  | Some cell -> List.iter f !cell
  | None -> ()

let candidates idx ~s ~r ~tgt f =
  match (s, r, tgt) with
  | Some s, Some r, Some t ->
      let triple = Triple.make s r t in
      if mem idx triple then f triple
  | Some s, Some r, None -> iter_pair idx.by_sr (s, r) f
  | Some s, None, Some t -> iter_pair idx.by_st (s, t) f
  | None, Some r, Some t -> iter_pair idx.by_rt (r, t) f
  | Some s, None, None -> iter_int idx.by_s s f
  | None, Some r, None -> iter_int idx.by_r r f
  | None, None, Some t -> iter_int idx.by_t t f
  | None, None, None -> iter f idx
