type t = Var of int | Const of int

let equal a b =
  match (a, b) with
  | Var x, Var y -> x = y
  | Const x, Const y -> x = y
  | Var _, Const _ | Const _, Var _ -> false

let compare a b =
  match (a, b) with
  | Var x, Var y -> Int.compare x y
  | Const x, Const y -> Int.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let subst binding = function
  | Const c -> Some c
  | Var v -> if binding.(v) < 0 then None else Some binding.(v)

let pp ppf = function
  | Var v -> Format.fprintf ppf "?%d" v
  | Const c -> Format.fprintf ppf "%d" c
