type provenance = { rule : string; premises : Triple.t list }

type result = {
  index : Index.t;
  derived : Triple.t list;
  provenance : provenance Triple.Tbl.t;
  rounds : int;
}

exception Diverged of int

(* Check every guard that is fully bound; fail fast on the first violated
   one. Guards whose variables are still unbound are deferred to a later
   atom (and are guaranteed checkable at the end because rules are safe). *)
let guards_ok binding guards =
  List.for_all
    (fun g -> match Guard.check binding g with Some false -> false | Some true | None -> true)
    guards

let atom_pattern binding (atom : Atom.t) =
  ( Term.subst binding atom.s,
    Term.subst binding atom.r,
    Term.subst binding atom.t )

(* Semi-naive body evaluation: for each position [k], match atom [k]
   against [delta] and every other atom against [full], so that every
   produced binding uses at least one new premise. The delta atom is
   matched {e first} — the delta is the smallest relation by far, and
   leading with it binds variables that make the remaining full-index
   probes selective (leading with an unconstrained atom would scan the
   whole index once per rule per round). [emit binding premises] is
   called for each complete match, premises in body order. *)
let eval_rule (rule : Rule.t) ~full ~delta ~emit =
  let binding = Array.make (max rule.nvars 1) (-1) in
  let body = Array.of_list rule.body in
  let n = Array.length body in
  let premises = Array.make n (Triple.make (-1) (-1) (-1)) in
  for k = 0 to n - 1 do
    let order = k :: List.filter (fun i -> i <> k) (List.init n Fun.id) in
    let rec go = function
      | [] ->
          if guards_ok binding rule.guards then emit binding (Array.to_list premises)
      | i :: rest ->
          let atom = body.(i) in
          let s, r, tgt = atom_pattern binding atom in
          let source = if i = k then delta else full in
          Index.candidates source ~s ~r ~tgt (fun triple ->
              match Atom.match_against binding atom triple with
              | None -> ()
              | Some newly ->
                  premises.(i) <- triple;
                  if guards_ok binding rule.guards then go rest;
                  List.iter (fun v -> binding.(v) <- -1) newly)
    in
    go order
  done

(* The shared semi-naive driver: iterate rules from [initial] as the
   first delta against [full], adding consequences to [full] and
   recording provenance, until no new triples appear. Returns the derived
   triples (in order) and the number of rounds. *)
let fixpoint ~max_facts rules ~full ~provenance initial =
  let derived_rev = ref [] in
  let delta = ref initial in
  let rounds = ref 0 in
  while !delta <> [] do
    incr rounds;
    let delta_index = Index.create ~size_hint:(List.length !delta) () in
    List.iter (fun triple -> ignore (Index.add delta_index triple)) !delta;
    let next = ref [] in
    List.iter
      (fun (rule : Rule.t) ->
        eval_rule rule ~full ~delta:delta_index ~emit:(fun binding premises ->
            List.iter
              (fun head ->
                match Atom.instantiate binding head with
                | None -> ()
                | Some triple ->
                    if Index.add full triple then begin
                      if Index.cardinal full > max_facts then
                        raise (Diverged (Index.cardinal full));
                      next := triple :: !next;
                      derived_rev := triple :: !derived_rev;
                      Triple.Tbl.replace provenance triple
                        { rule = rule.name; premises }
                    end)
              rule.heads))
      rules;
    delta := !next
  done;
  (List.rev !derived_rev, !rounds)

let closure ?(max_facts = 10_000_000) rules base =
  let full = Index.create () in
  let provenance = Triple.Tbl.create 256 in
  let initial = ref [] in
  Seq.iter
    (fun triple -> if Index.add full triple then initial := triple :: !initial)
    base;
  let derived, rounds = fixpoint ~max_facts rules ~full ~provenance !initial in
  { index = full; derived; provenance; rounds }

let extend ?(max_facts = 10_000_000) rules result extra =
  let fresh = ref [] in
  Seq.iter
    (fun triple -> if Index.add result.index triple then fresh := triple :: !fresh)
    extra;
  let fresh = List.rev !fresh in
  let derived, rounds =
    fixpoint ~max_facts rules ~full:result.index ~provenance:result.provenance fresh
  in
  (* [derived] is deliberately NOT concatenated onto [result.derived]:
     that would make each extension O(closure size). Callers that track
     the full derivation order accumulate the returned segment. *)
  ({ result with rounds = result.rounds + rounds }, fresh @ derived)

let step rules index =
  let out = ref [] in
  List.iter
    (fun (rule : Rule.t) ->
      eval_rule rule ~full:index ~delta:index ~emit:(fun binding _premises ->
          List.iter
            (fun head ->
              match Atom.instantiate binding head with
              | Some triple -> if not (Index.mem index triple) then out := triple :: !out
              | None -> ())
            rule.heads))
    rules;
  !out
