type t =
  | Distinct of Term.t * Term.t
  | Same of Term.t * Term.t
  | Holds of string * (int -> bool) * Term.t

let pp ppf = function
  | Distinct (a, b) -> Format.fprintf ppf "%a <> %a" Term.pp a Term.pp b
  | Same (a, b) -> Format.fprintf ppf "%a = %a" Term.pp a Term.pp b
  | Holds (name, _, t) -> Format.fprintf ppf "%s(%a)" name Term.pp t

let term_vars = function Term.Var v -> [ v ] | Term.Const _ -> []

let vars = function
  | Distinct (a, b) | Same (a, b) -> term_vars a @ term_vars b
  | Holds (_, _, t) -> term_vars t

let check binding = function
  | Distinct (a, b) -> (
      match (Term.subst binding a, Term.subst binding b) with
      | Some x, Some y -> Some (x <> y)
      | _ -> None)
  | Same (a, b) -> (
      match (Term.subst binding a, Term.subst binding b) with
      | Some x, Some y -> Some (x = y)
      | _ -> None)
  | Holds (_, pred, t) -> (
      match Term.subst binding t with Some x -> Some (pred x) | None -> None)
