type term = Var of string | Ent of Entity.t

type t = { src : term; rel : term; tgt : term }

let make src rel tgt = { src; rel; tgt }

let term_equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Ent x, Ent y -> Entity.equal x y
  | Var _, Ent _ | Ent _, Var _ -> false

let term_compare a b =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Ent x, Ent y -> Entity.compare x y
  | Var _, Ent _ -> -1
  | Ent _, Var _ -> 1

let equal a b = term_equal a.src b.src && term_equal a.rel b.rel && term_equal a.tgt b.tgt

let compare a b =
  let c = term_compare a.src b.src in
  if c <> 0 then c
  else
    let c = term_compare a.rel b.rel in
    if c <> 0 then c else term_compare a.tgt b.tgt

let vars { src; rel; tgt } =
  let add acc = function Var v -> v :: acc | Ent _ -> acc in
  List.rev (add (add (add [] src) rel) tgt)

let distinct_vars tpl =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    (vars tpl)

let is_ground tpl = vars tpl = []

let to_fact { src; rel; tgt } =
  match (src, rel, tgt) with
  | Ent s, Ent r, Ent t -> Some (Fact.make s r t)
  | _ -> None

let of_fact (fact : Fact.t) = { src = Ent fact.s; rel = Ent fact.r; tgt = Ent fact.t }

let subst_term env = function
  | Ent _ as t -> t
  | Var v as t -> ( match env v with Some e -> Ent e | None -> t)

let subst env { src; rel; tgt } =
  { src = subst_term env src; rel = subst_term env rel; tgt = subst_term env tgt }

let matches tpl (fact : Fact.t) =
  let bind env term value =
    match term with
    | Ent e -> if Entity.equal e value then Some env else None
    | Var v -> (
        match List.assoc_opt v env with
        | Some bound -> if Entity.equal bound value then Some env else None
        | None -> Some ((v, value) :: env))
  in
  match bind [] tpl.src fact.s with
  | None -> None
  | Some env -> (
      match bind env tpl.rel fact.r with
      | None -> None
      | Some env -> (
          match bind env tpl.tgt fact.t with
          | None -> None
          | Some env -> Some (List.rev env)))

let constants { src; rel; tgt } =
  let add pos acc = function Ent e -> (pos, e) :: acc | Var _ -> acc in
  List.rev (add 2 (add 1 (add 0 [] src) rel) tgt)

let replace_at tpl ~pos ~by =
  match pos with
  | 0 -> { tpl with src = Ent by }
  | 1 -> { tpl with rel = Ent by }
  | 2 -> { tpl with tgt = Ent by }
  | _ -> invalid_arg "Template.replace_at: position must be 0, 1 or 2"

let pp_term symtab ppf = function
  | Var v -> Format.fprintf ppf "?%s" v
  | Ent e -> Format.pp_print_string ppf (Symtab.name symtab e)

let pp symtab ppf { src; rel; tgt } =
  Format.fprintf ppf "(%a, %a, %a)" (pp_term symtab) src (pp_term symtab) rel
    (pp_term symtab) tgt

let to_string symtab tpl = Format.asprintf "%a" (pp symtab) tpl
