(** Integrity (§2.5, §3.5): a loosely structured database is a set of facts
    and rules whose closure is free of contradictions.

    Integrity constraints are ordinary rules — they derive required facts
    into the closure — so checking reduces to finding contradictions in
    the closure itself:
    - two closure facts [(x,r,y)] and [(x,r',y)] with [(r,⊥,r')] in the
      closure (the paper's contradiction facts, e.g. (LOVES,⊥,HATES));
    - a closure fact the mathematical oracle refutes, e.g. a derived
      [(x,>,0)] when [x] is a non-positive number — this is how a
      constraint like "(x,∈,AGE) ⇒ (x,>,0)" fails. *)

type conflict =
  | Contradictory of Fact.t  (** the closure fact it clashes with *)
  | Math  (** refuted by the §3.6 oracle *)

type violation = { fact : Fact.t; conflict : conflict }

(** All contradictions in the current closure. Pairs are reported once. *)
val violations : Database.t -> violation list

val is_valid : Database.t -> bool

(** [insert_checked db fact] inserts, validates the new closure, and rolls
    the insertion back if it created violations. Already-present facts
    yield [Ok false]. *)
val insert_checked : Database.t -> Fact.t -> (bool, violation list) result

(** [add_rule_checked db rule] — same discipline for rules (a new
    integrity constraint may be violated by existing data). *)
val add_rule_checked : Database.t -> Rule.t -> (unit, violation list) result

val describe : Database.t -> violation -> string
