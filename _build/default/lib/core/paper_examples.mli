(** The example databases the paper's walkthroughs presuppose,
    reconstructed from the prose so that the worked examples of §3–§6 can
    be regenerated and compared cell by cell (experiments EX1–EX7). *)

(** §4.1: John, his cats, Mozart's piano concerto PC#9-WAM, Leopold — the
    three navigation tables. Composition limit is set to 3 so that
    (LEOPOLD, *, MOZART) finds the FAVORITE-MUSIC·COMPOSED-BY path. *)
val music : unit -> Database.t

(** §3.1–§3.5: the organization database — employees, departments,
    works-for/is-paid-by generalization, Johnny synonym, teaches/taught-by
    inversion, loves ⊥ hates. *)
val organization : unit -> Database.t

(** §5.1/§5.2: students, freshmen, opera/music/theater, LOVE ⊑ LIKE,
    FREE ⊑ CHEAP — the probing and retraction walkthroughs. *)
val campus : unit -> Database.t

(** §2.7/§3.6/§5.1: books, citations, authors, quarterbacks and USC. *)
val library : unit -> Database.t

(** §6.1: the employee relation table (JOHN/TOM/MARY with departments and
    salaries). *)
val payroll : unit -> Database.t
