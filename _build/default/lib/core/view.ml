type t = { headers : string list; rows : Entity.t list list list }

let default_opts =
  (* Composition off: the §6.1 relation operator tabulates direct
     relationships; composed paths would flood the cells. *)
  { Match_layer.eval_opts with composition = false }

let sorted_by_name symtab entities =
  List.sort_uniq
    (fun a b ->
      let c = String.compare (Symtab.name symtab a) (Symtab.name symtab b) in
      if c <> 0 then c else Entity.compare a b)
    entities

let relation ?(opts = default_opts) db ~instance_of columns =
  let symtab = Database.symtab db in
  let name = Symtab.name symtab in
  let headers =
    name instance_of
    :: List.map (fun (r, t) -> Printf.sprintf "%s %s" (name r) (name t)) columns
  in
  let instances = ref [] in
  Match_layer.candidates ~opts db
    (Store.pattern ~r:Entity.member ~t:instance_of ())
    (fun fact -> instances := fact.s :: !instances);
  let instances = sorted_by_name symtab !instances in
  let cell y (r, target_class) =
    let values = ref [] in
    Match_layer.candidates ~opts db (Store.pattern ~s:y ~r ()) (fun fact ->
        if
          Match_layer.holds ~opts db (Fact.make fact.t Entity.member target_class)
        then values := fact.t :: !values);
    sorted_by_name symtab !values
  in
  let rows = List.map (fun y -> [ y ] :: List.map (cell y) columns) instances in
  { headers; rows }

let relation_names db class_name columns =
  let e = Database.entity db in
  relation db ~instance_of:(e class_name)
    (List.map (fun (r, t) -> (e r, e t)) columns)

let apply ?(opts = default_opts) db ~rel e =
  let out = ref [] in
  Match_layer.candidates ~opts db (Store.pattern ~s:e ~r:rel ()) (fun fact ->
      out := fact.t :: !out);
  sorted_by_name (Database.symtab db) !out

let row_count t = List.length t.rows

let rows_named db t =
  let symtab = Database.symtab db in
  List.map (List.map (Pretty.cell symtab)) t.rows

let render db t =
  Pretty.grid ~headers:t.headers (rows_named db t)
