type t = {
  mutable names : string array;  (* id -> canonical name *)
  mutable numeric : float array;  (* id -> value, nan when not numeric *)
  table : (string, int) Hashtbl.t;
  mutable next : int;
}

let parse_numeric s =
  let n = String.length s in
  if n = 0 then None
  else
    let start = if s.[0] = '$' then 1 else 0 in
    if start >= n then None
    else
      let buf = Buffer.create n in
      let ok = ref true in
      for i = start to n - 1 do
        match s.[i] with
        | ',' -> ()
        | ('0' .. '9' | '.' | '-' | '+' | 'e' | 'E') as c -> Buffer.add_char buf c
        | _ -> ok := false
      done;
      if not !ok then None else float_of_string_opt (Buffer.contents buf)

let grow t =
  let cap = Array.length t.names in
  if t.next >= cap then begin
    let cap' = max 16 (cap * 2) in
    let names = Array.make cap' "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names;
    let numeric = Array.make cap' nan in
    Array.blit t.numeric 0 numeric 0 cap;
    t.numeric <- numeric
  end

let raw_add t name =
  grow t;
  let id = t.next in
  t.names.(id) <- name;
  t.numeric.(id) <- (match parse_numeric name with Some v -> v | None -> nan);
  Hashtbl.replace t.table name id;
  t.next <- id + 1;
  id

let create () =
  let t =
    {
      names = Array.make 64 "";
      numeric = Array.make 64 nan;
      table = Hashtbl.create 64;
      next = 0;
    }
  in
  Array.iteri
    (fun expected (canonical, aliases) ->
      let id = raw_add t canonical in
      assert (id = expected);
      (* Specials are relationship names, never numbers. *)
      t.numeric.(id) <- nan;
      List.iter (fun a -> Hashtbl.replace t.table a id) aliases)
    Entity.special_names;
  t

let find t name = Hashtbl.find_opt t.table name
let mem t name = Hashtbl.mem t.table name

let intern t name =
  match Hashtbl.find_opt t.table name with Some id -> id | None -> raw_add t name

let name t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Symtab.name: unknown entity id %d" id)
  else t.names.(id)

let alias t alias_name id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Symtab.alias: unknown entity id %d" id);
  match Hashtbl.find_opt t.table alias_name with
  | Some existing when existing <> id ->
      invalid_arg
        (Printf.sprintf "Symtab.alias: %S already names entity %d" alias_name existing)
  | Some _ -> ()
  | None -> Hashtbl.add t.table alias_name id

let cardinal t = t.next
let numeric_value t id = if Float.is_nan t.numeric.(id) then None else Some t.numeric.(id)
let is_numeric t id = not (Float.is_nan t.numeric.(id))

let iter f t =
  for id = 0 to t.next - 1 do
    f id
  done

let iter_user f t =
  for id = Entity.special_count to t.next - 1 do
    f id
  done

let iter_numeric f t =
  for id = 0 to t.next - 1 do
    if not (Float.is_nan t.numeric.(id)) then f id
  done
