type opts = { virtual_math : bool; virtual_hierarchy : bool; composition : bool }

let eval_opts = { virtual_math = true; virtual_hierarchy = true; composition = true }
let nav_opts = { virtual_math = false; virtual_hierarchy = false; composition = true }
let plain_opts = { virtual_math = false; virtual_hierarchy = false; composition = false }

let domain db () = Closure.active_entities (Database.closure db)

(* The oracle owns a ground triple when it can decide it; stored facts in
   that region are suppressed to avoid double emission and to keep the
   §3.6 semantics ("never actually stored") authoritative. *)
let oracle_owns opts symtab (fact : Fact.t) =
  let relevant =
    if Entity.is_comparator fact.r then opts.virtual_math
    else if fact.r = Entity.gen then opts.virtual_hierarchy
    else false
  in
  relevant && Virtual_facts.decides symtab fact.s fact.r fact.t

(* Δ/∇ extremity semantics over the virtual hierarchy (§2.3 + §3.1): every
   fact generalizes its relationship and target to Δ (gen-rel/gen-target
   with the virtual (e,⊑,Δ)) and specializes its source to ∇ (gen-source
   with the virtual (∇,⊑,e)). A bound Δ in relationship or target position,
   or ∇ in source position, therefore acts as a wildcard whose matches are
   re-labelled with the extreme. Δ in source position and ∇ elsewhere match
   nothing — exactly why §5.2's (Δ, LOVES, x) fails. *)
let extremity_rewrite (pat : Store.pattern) =
  let rewrap = ref None in
  let s =
    match pat.s with
    | Some s when s = Entity.bottom ->
        rewrap := Some ();
        None
    | other -> other
  in
  let r =
    match pat.r with
    | Some r when r = Entity.top ->
        rewrap := Some ();
        None
    | other -> other
  in
  let t =
    match pat.t with
    | Some t when t = Entity.top ->
        rewrap := Some ();
        None
    | other -> other
  in
  if !rewrap = None then None
  else
    let relabel (fact : Fact.t) =
      Fact.make
        (if pat.s = Some Entity.bottom then Entity.bottom else fact.s)
        (if pat.r = Some Entity.top then Entity.top else fact.r)
        (if pat.t = Some Entity.top then Entity.top else fact.t)
    in
    Some ({ Store.s; r; t }, relabel)

let rec candidates ?(opts = eval_opts) db (pat : Store.pattern) emit =
  (* Hierarchy patterns (r = ⊑) belong to the oracle and are never
     rewritten; for other relationships the extremes relabel {e real}
     facts only — counting the trivially-true reflexive ⊑ among "related
     in any way" would make every Δ-template succeed and defeat the §5.2
     misspelling diagnosis. *)
  let rewritable = pat.r <> Some Entity.gen in
  match (if opts.virtual_hierarchy && rewritable then extremity_rewrite pat else None) with
  | Some (rewritten, relabel) ->
      let seen = Fact.Tbl.create 16 in
      candidates ~opts:{ opts with virtual_hierarchy = false } db rewritten (fun fact ->
          let fact = relabel fact in
          if not (Fact.Tbl.mem seen fact) then begin
            Fact.Tbl.add seen fact ();
            emit fact
          end)
  | None ->
  let closure = Database.closure db in
  let symtab = Database.symtab db in
  Closure.match_pattern closure pat (fun fact ->
      if not (oracle_owns opts symtab fact) then emit fact);
  let wants_virtual =
    match pat.r with
    | Some r when Entity.is_comparator r -> opts.virtual_math
    | Some r when r = Entity.gen -> opts.virtual_hierarchy
    | Some _ -> false
    | None -> opts.virtual_hierarchy
  in
  if wants_virtual then Virtual_facts.candidates symtab ~domain:(domain db) pat emit;
  if opts.composition then Composition.candidates db pat emit

let match_list ?opts db pat =
  let acc = ref [] in
  candidates ?opts db pat (fun fact -> acc := fact :: !acc);
  !acc

let count ?opts db pat =
  let n = ref 0 in
  candidates ?opts db pat (fun _ -> incr n);
  !n

exception Found

let exists ?opts db pat =
  try
    candidates ?opts db pat (fun _ -> raise Found);
    false
  with Found -> true

let holds ?(opts = eval_opts) db (fact : Fact.t) =
  let symtab = Database.symtab db in
  match Virtual_facts.holds symtab fact.s fact.r fact.t with
  | Some answer
    when (Entity.is_comparator fact.r && opts.virtual_math)
         || (fact.r = Entity.gen && opts.virtual_hierarchy) ->
      answer
  | _ ->
      Closure.mem (Database.closure db) fact
      || exists ~opts db (Store.pattern ~s:fact.s ~r:fact.r ~t:fact.t ())
