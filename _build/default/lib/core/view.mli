(** Structured views over the heap (§6.1): the [relation] operator returns
    a tabulated — possibly non-first-normal-form — relation, demonstrating
    that the unstructured representation does not preclude structured
    (relational or functional) views. *)

(** A non-1NF table: each cell holds any number of entities. *)
type t = {
  headers : string list;
  rows : Entity.t list list list;  (** rows → columns → cell entities *)
}

(** [relation db ~instance_of columns] — the paper's
    [relation(s, r1 t1, …, rn tn)]: one row per instance [y] of
    [instance_of]; the first column holds [y]; column [i+1] holds every
    [z] with [(y, ri, z)] and [(z, ∈, ti)]. *)
val relation :
  ?opts:Match_layer.opts ->
  Database.t ->
  instance_of:Entity.t ->
  (Entity.t * Entity.t) list ->
  t

(** Same, from names: [relation_names db "employee" [("works-for",
    "department"); ("earns", "salary")]]. *)
val relation_names : Database.t -> string -> (string * string) list -> t

(** A functional view: [apply db ~rel e] is every target related to [e]
    via [rel] — entities as functions, the "functional model" reading. *)
val apply : ?opts:Match_layer.opts -> Database.t -> rel:Entity.t -> Entity.t -> Entity.t list

val row_count : t -> int

(** Rows with every cell rendered (entities comma-separated). *)
val rows_named : Database.t -> t -> string list list

val render : Database.t -> t -> string
