lib/core/fact.ml: Entity Format Lsdb_datalog Symtab
