lib/core/composition.ml: Closure Database Entity Fact Hashtbl List Seq Store String Symtab
