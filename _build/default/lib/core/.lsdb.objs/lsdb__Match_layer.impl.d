lib/core/match_layer.ml: Closure Composition Database Entity Fact Store Virtual_facts
