lib/core/eval.mli: Database Entity Match_layer Query Symtab
