lib/core/explain.ml: Buffer Closure Composition Database Fact List Match_layer Printf String Virtual_facts
