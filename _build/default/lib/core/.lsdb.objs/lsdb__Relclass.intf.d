lib/core/relclass.mli: Entity
