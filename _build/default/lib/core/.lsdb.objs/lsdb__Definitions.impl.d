lib/core/definitions.ml: Database Eval Hashtbl List Option Printf Query Query_parser String Template
