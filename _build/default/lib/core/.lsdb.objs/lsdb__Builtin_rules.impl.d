lib/core/builtin_rules.ml: Entity List Rule String Template
