lib/core/explain.mli: Database Fact
