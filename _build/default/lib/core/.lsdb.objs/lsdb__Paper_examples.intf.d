lib/core/paper_examples.mli: Database
