lib/core/closure.ml: Hashtbl Int List Lsdb_datalog Option Store
