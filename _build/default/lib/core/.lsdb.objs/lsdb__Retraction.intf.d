lib/core/retraction.mli: Broadness Database Entity Query Template
