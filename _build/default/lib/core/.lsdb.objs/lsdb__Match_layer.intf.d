lib/core/match_layer.mli: Database Entity Fact Seq Store
