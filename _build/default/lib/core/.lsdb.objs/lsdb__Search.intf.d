lib/core/search.mli: Database Entity
