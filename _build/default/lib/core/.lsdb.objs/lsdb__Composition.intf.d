lib/core/composition.mli: Database Entity Fact Store Symtab
