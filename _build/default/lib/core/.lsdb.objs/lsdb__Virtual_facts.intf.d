lib/core/virtual_facts.mli: Entity Fact Seq Store Symtab
