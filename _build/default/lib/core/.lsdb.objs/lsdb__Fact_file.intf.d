lib/core/fact_file.mli: Database
