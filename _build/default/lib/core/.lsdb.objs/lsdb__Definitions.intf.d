lib/core/definitions.mli: Database Entity Eval Match_layer Query Symtab
