lib/core/store.mli: Entity Fact Seq
