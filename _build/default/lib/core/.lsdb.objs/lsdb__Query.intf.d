lib/core/query.mli: Database Entity Format Symtab Template
