lib/core/broadness.mli: Database Entity
