lib/core/relclass.ml: Entity Hashtbl Int List
