lib/core/pretty.ml: Buffer Char Fact List Printf String Symtab
