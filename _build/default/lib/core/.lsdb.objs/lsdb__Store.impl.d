lib/core/store.ml: Entity Fact Hashtbl Int List
