lib/core/prover.mli: Database Entity Fact Template
