lib/core/query.ml: Closure Database Entity Format Hashtbl Int List Printf Seq String Symtab Template
