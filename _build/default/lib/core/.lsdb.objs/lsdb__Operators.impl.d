lib/core/operators.ml: Database List Navigation Pretty Printf Rule String View
