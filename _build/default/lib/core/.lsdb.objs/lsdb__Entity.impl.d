lib/core/entity.ml: Array Int
