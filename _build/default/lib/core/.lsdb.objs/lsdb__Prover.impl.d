lib/core/prover.ml: Database Entity Fact Hashtbl List Option Relclass Rule Store String Template Virtual_facts
