lib/core/symtab.mli: Entity
