lib/core/fact_file.ml: Buffer Builtin_rules Database Fact Fun List Printf Query_parser Relclass Rule String Symtab Template
