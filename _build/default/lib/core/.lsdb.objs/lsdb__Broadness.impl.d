lib/core/broadness.ml: Closure Database Entity Hashtbl Int List Option Store
