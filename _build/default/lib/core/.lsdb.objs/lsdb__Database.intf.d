lib/core/database.mli: Closure Entity Fact Relclass Rule Store Symtab
