lib/core/pretty.mli: Entity Fact Symtab
