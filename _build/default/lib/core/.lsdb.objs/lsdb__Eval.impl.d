lib/core/eval.ml: Array Entity Fact Hashtbl List Match_layer Option Printf Query Seq Store Symtab Template
