lib/core/transaction.mli: Database Fact Integrity
