lib/core/fact.mli: Entity Format Hashtbl Lsdb_datalog Set Symtab
