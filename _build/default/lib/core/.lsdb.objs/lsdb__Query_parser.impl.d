lib/core/query_parser.ml: Database List Printf Query String Template
