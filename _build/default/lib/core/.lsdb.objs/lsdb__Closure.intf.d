lib/core/closure.mli: Entity Fact Lsdb_datalog Seq Store
