lib/core/navigation.mli: Database Entity Fact Match_layer Template
