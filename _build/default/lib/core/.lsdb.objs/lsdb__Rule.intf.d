lib/core/rule.mli: Entity Format Lsdb_datalog Symtab Template
