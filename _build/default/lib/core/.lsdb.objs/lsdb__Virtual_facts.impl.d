lib/core/virtual_facts.ml: Entity Fact Seq Store Symtab
