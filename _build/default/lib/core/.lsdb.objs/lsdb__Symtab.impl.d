lib/core/symtab.ml: Array Buffer Entity Float Hashtbl List Printf String
