lib/core/database.ml: Builtin_rules Closure Entity Fact List Relclass Rule Store String Symtab
