lib/core/transaction.ml: Database Fact Integrity List
