lib/core/integrity.ml: Closure Database Entity Fact List Printf Rule Store Virtual_facts
