lib/core/operators.mli: Database Fact View
