lib/core/view.mli: Database Entity Match_layer
