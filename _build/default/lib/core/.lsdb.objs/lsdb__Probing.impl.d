lib/core/probing.ml: Broadness Buffer Database Entity Eval Hashtbl List Printf Query Retraction Search String
