lib/core/search.ml: Array Closure Database Entity Fun Hashtbl Int List Seq String Symtab
