lib/core/navigation.ml: Array Database Entity Eval Fact Hashtbl Int List Match_layer Option Pretty Printf Query Store String Symtab Template
