lib/core/view.ml: Database Entity Fact List Match_layer Pretty Printf Store String Symtab
