lib/core/paper_examples.ml: Database List
