lib/core/query_parser.mli: Database Query Template
