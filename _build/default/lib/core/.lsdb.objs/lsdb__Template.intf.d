lib/core/template.mli: Entity Fact Format Symtab
