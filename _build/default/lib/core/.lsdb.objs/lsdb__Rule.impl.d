lib/core/rule.ml: Format Hashtbl List Lsdb_datalog Printf String Template
