lib/core/federation.mli: Database Fact
