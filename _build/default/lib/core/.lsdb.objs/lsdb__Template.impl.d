lib/core/template.ml: Entity Fact Format Hashtbl List String Symtab
