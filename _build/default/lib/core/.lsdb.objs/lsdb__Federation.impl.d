lib/core/federation.ml: Builtin_rules Database Fact List Option Relclass Rule Store Symtab
