lib/core/builtin_rules.mli: Rule
