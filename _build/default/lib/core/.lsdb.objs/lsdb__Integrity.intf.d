lib/core/integrity.mli: Database Fact Rule
