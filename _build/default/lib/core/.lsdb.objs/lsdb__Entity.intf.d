lib/core/entity.mli:
