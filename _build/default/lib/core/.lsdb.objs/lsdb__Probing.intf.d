lib/core/probing.mli: Database Entity Eval Match_layer Query Retraction
