lib/core/retraction.ml: Broadness Database Entity Hashtbl List Printf Query Template
