(** Concrete syntax for the standard query language (§2.7) and navigation
    templates (§4.1).

    Grammar (ASCII-friendly; the Unicode connectives also work):

    {v
    query    ::= disj
    disj     ::= conj  { ("|" | "∨" | "or")  conj }
    conj     ::= unit  { ("&" | "∧" | "and") unit }
    unit     ::= template
               | ("exists" | "∃") var { "," var } "." conj
               | ("forall" | "∀") var { "," var } "." conj
               | "(" query ")"
    template ::= "(" term "," term "," term ")"
    term     ::= "?" ident        — named variable
               | "*"              — fresh anonymous variable (§4.1)
               | name             — entity (interned on sight)
               | '"' chars '"'    — quoted entity name
    v}

    Entity names may contain any characters except whitespace, parens,
    commas, ampersands, bars, question marks and double quotes; use quotes
    otherwise. Special entities go by their aliases
    ([isa], [in], [syn], [inv], [contra], [top], [bottom], [lt], [gt],
    [eq], [neq], [le], [ge]) or their Unicode forms. *)

exception Parse_error of string

(** Parse a query, interning entity names into the database. *)
val parse : Database.t -> string -> Query.t

(** Parse, also reporting entity names that were {e not} interned before
    the parse — the §5.2 misspelling candidates. *)
val parse_with_unknowns : Database.t -> string -> Query.t * string list

(** Parse a single template such as the all-star template of JOHN. *)
val parse_template : Database.t -> string -> Template.t
