type source = Stored | Derived of string | Virtual | Composed | Unknown

type tree = { fact : Fact.t; source : source; premises : tree list }

let source_of db (fact : Fact.t) =
  let symtab = Database.symtab db in
  if Database.mem_base db fact then Stored
  else
    let closure = Database.closure db in
    match Closure.provenance closure fact with
    | Some (rule, _) -> Derived rule
    | None -> (
        match Virtual_facts.holds symtab fact.s fact.r fact.t with
        | Some true -> Virtual
        | Some false | None ->
            if
              Composition.is_composed symtab fact.r
              && Match_layer.holds db fact
            then Composed
            else if Match_layer.holds db fact then Virtual
            else Unknown)

let explain db fact =
  let closure = Database.closure db in
  let rec go visited fact =
    let source = source_of db fact in
    let premises =
      match source with
      | Derived _ when not (List.exists (Fact.equal fact) visited) -> (
          match Closure.provenance closure fact with
          | Some (_, premises) -> List.map (go (fact :: visited)) premises
          | None -> [])
      | Derived _ | Stored | Virtual | Composed | Unknown -> []
    in
    { fact; source; premises }
  in
  go [] fact

let source_label = function
  | Stored -> "stored"
  | Derived rule -> "by rule " ^ rule
  | Virtual -> "virtual (mathematical/hierarchy)"
  | Composed -> "by composition"
  | Unknown -> "NOT in the database"

let render db tree =
  let symtab = Database.symtab db in
  let buf = Buffer.create 128 in
  let rec go indent { fact; source; premises } =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  [%s]\n"
         (String.make indent ' ')
         (Fact.to_string symtab fact)
         (source_label source));
    List.iter (go (indent + 2)) premises
  in
  go 0 tree;
  Buffer.contents buf
