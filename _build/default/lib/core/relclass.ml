module Int_tbl = Hashtbl.Make (Int)

type t = { overrides : bool Int_tbl.t (* entity -> is_class *) }

let create () = { overrides = Int_tbl.create 16 }
let declare_class t e = Int_tbl.replace t.overrides e true
let declare_individual t e = Int_tbl.replace t.overrides e false

(* ⊑ is individual (§2.3: "Generalization is an individual relationship");
   membership is a class relationship (§2.3); the remaining specials are
   structural and must not be propagated by the §3.1/§3.2 rules. *)
let default_is_class e = Entity.is_special e && e <> Entity.gen

let is_class t e =
  match Int_tbl.find_opt t.overrides e with
  | Some b -> b
  | None -> default_is_class e

let is_individual t e = not (is_class t e)

let declarations t =
  Int_tbl.fold (fun e b acc -> (e, b) :: acc) t.overrides []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let copy t =
  let fresh = create () in
  Int_tbl.iter (fun e b -> Int_tbl.replace fresh.overrides e b) t.overrides;
  fresh
