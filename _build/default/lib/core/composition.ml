let separator = "\xc2\xb7" (* "·" *)

let contains_separator name =
  let sep0 = separator.[0] and sep1 = separator.[1] in
  let n = String.length name in
  let rec scan i = i + 1 < n && ((name.[i] = sep0 && name.[i + 1] = sep1) || scan (i + 1)) in
  scan 0

let split_on_separator name =
  let sep0 = separator.[0] and sep1 = separator.[1] in
  let n = String.length name in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if name.[!i] = sep0 && name.[!i + 1] = sep1 then begin
      parts := String.sub name !start (!i - !start) :: !parts;
      start := !i + 2;
      i := !i + 2
    end
    else incr i
  done;
  parts := String.sub name !start (n - !start) :: !parts;
  List.rev !parts

let compose_name symtab rels =
  match rels with
  | [] | [ _ ] -> invalid_arg "Composition.compose_name: need at least two relationships"
  | _ ->
      let name = String.concat separator (List.map (Symtab.name symtab) rels) in
      Symtab.intern symtab name

let decompose symtab e =
  let name = Symtab.name symtab e in
  if not (contains_separator name) then None
  else
    let parts = split_on_separator name in
    let rec resolve acc = function
      | [] -> Some (List.rev acc)
      | part :: rest -> (
          match Symtab.find symtab part with
          | Some id -> resolve (id :: acc) rest
          | None -> None)
    in
    resolve [] parts

let is_composed symtab e = contains_separator (Symtab.name symtab e)

type path = { source : Entity.t; chain : Entity.t list; target : Entity.t }

(* Only ordinary relationships compose: specials (⊑, ∈, comparators, …)
   and already-composed entities are excluded from chains. *)
let composable symtab r = (not (Entity.is_special r)) && not (is_composed symtab r)

exception Enough

let paths ?(max_paths = 10_000) db ~src ~tgt =
  let limit = Database.limit db in
  if limit < 2 || Entity.equal src tgt then []
  else begin
    let closure = Database.closure db in
    let symtab = Database.symtab db in
    let found = ref [] in
    let count = ref 0 in
    let rec dfs node chain_rev depth =
      if depth < limit then
        Closure.match_pattern closure (Store.pattern ~s:node ()) (fun fact ->
            if composable symtab fact.r then begin
              let chain_rev' = fact.r :: chain_rev in
              if Entity.equal fact.t tgt && depth + 1 >= 2 then begin
                found := { source = src; chain = List.rev chain_rev'; target = tgt } :: !found;
                incr count;
                if !count >= max_paths then raise Enough
              end;
              dfs fact.t chain_rev' (depth + 1)
            end)
    in
    (try dfs src [] 0 with Enough -> ());
    List.rev !found
  end

let walk db ~chain ~src =
  let closure = Database.closure db in
  let step frontier r =
    let next = Hashtbl.create 16 in
    List.iter
      (fun node ->
        Closure.match_pattern closure (Store.pattern ~s:node ~r ()) (fun fact ->
            Hashtbl.replace next fact.t ()))
      frontier;
    Hashtbl.fold (fun e () acc -> e :: acc) next []
  in
  List.fold_left step [ src ] chain

let walk_backward db ~chain ~tgt =
  let closure = Database.closure db in
  let step r frontier =
    let prev = Hashtbl.create 16 in
    List.iter
      (fun node ->
        Closure.match_pattern closure (Store.pattern ~r ~t:node ()) (fun fact ->
            Hashtbl.replace prev fact.s ()))
      frontier;
    Hashtbl.fold (fun e () acc -> e :: acc) prev []
  in
  List.fold_right step chain [ tgt ]

let candidates ?max_paths db (pat : Store.pattern) emit =
  let limit = Database.limit db in
  if limit >= 2 then
    let symtab = Database.symtab db in
    match pat.r with
    | None -> (
        match (pat.s, pat.t) with
        | Some src, Some tgt ->
            List.iter
              (fun path ->
                emit (Fact.make path.source (compose_name symtab path.chain) path.target))
              (paths ?max_paths db ~src ~tgt)
        | _ -> ())
    | Some r -> (
        match decompose symtab r with
        | None -> ()
        | Some chain when List.length chain > limit -> ()
        | Some chain -> (
            match (pat.s, pat.t) with
            | Some src, Some tgt ->
                if
                  (not (Entity.equal src tgt))
                  && List.exists (Entity.equal tgt) (walk db ~chain ~src)
                then emit (Fact.make src r tgt)
            | Some src, None ->
                List.iter
                  (fun tgt -> if not (Entity.equal src tgt) then emit (Fact.make src r tgt))
                  (walk db ~chain ~src)
            | None, Some tgt ->
                List.iter
                  (fun src -> if not (Entity.equal src tgt) then emit (Fact.make src r tgt))
                  (walk_backward db ~chain ~tgt)
            | None, None ->
                (* Enumerate from every entity that sources the chain head. *)
                let closure = Database.closure db in
                let first = List.hd chain in
                let seen = Hashtbl.create 64 in
                Closure.match_pattern closure (Store.pattern ~r:first ()) (fun fact ->
                    if not (Hashtbl.mem seen fact.s) then begin
                      Hashtbl.add seen fact.s ();
                      List.iter
                        (fun tgt ->
                          if not (Entity.equal fact.s tgt) then emit (Fact.make fact.s r tgt))
                        (walk db ~chain ~src:fact.s)
                    end)))

let count_compositions ?(max_paths = 1_000_000) db =
  let limit = Database.limit db in
  if limit < 2 then 0
  else begin
    let closure = Database.closure db in
    let symtab = Database.symtab db in
    let seen = Hashtbl.create 1024 in
    let count = ref 0 in
    let rec dfs origin node chain_rev depth =
      if depth < limit then
        Closure.match_pattern closure (Store.pattern ~s:node ()) (fun fact ->
            if composable symtab fact.r then begin
              let chain_rev' = fact.r :: chain_rev in
              if depth + 1 >= 2 && not (Entity.equal origin fact.t) then begin
                let key = (origin, chain_rev', fact.t) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  incr count;
                  if !count >= max_paths then raise Enough
                end
              end;
              dfs origin fact.t chain_rev' (depth + 1)
            end)
    in
    (try
       Seq.iter
         (fun e -> if not (Entity.is_special e) then dfs e e [] 0)
         (Closure.active_entities closure)
     with Enough -> ());
    !count
  end
