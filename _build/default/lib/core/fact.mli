(** Facts: named pairs of entities [(source, relationship, target)] — the
    basic units of information (§2.1).

    A fact is the same datum as a Datalog {!Lsdb_datalog.Triple.t}; this
    module re-exports it under database vocabulary and adds name-aware
    construction and printing. *)

type t = Lsdb_datalog.Triple.t = { s : Entity.t; r : Entity.t; t : Entity.t }

val make : Entity.t -> Entity.t -> Entity.t -> t

val source : t -> Entity.t
val relationship : t -> Entity.t
val target : t -> Entity.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [of_names symtab s r t] interns the three names and builds the fact. *)
val of_names : Symtab.t -> string -> string -> string -> t

(** [names symtab fact] is the [(source, relationship, target)] names. *)
val names : Symtab.t -> t -> string * string * string

(** Print as [(SOURCE, REL, TARGET)] using canonical names. *)
val pp : Symtab.t -> Format.formatter -> t -> unit

val to_string : Symtab.t -> t -> string

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
