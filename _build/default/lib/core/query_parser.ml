exception Parse_error of string

type token =
  | Lparen
  | Rparen
  | Comma
  | Amp
  | Bar
  | Dot
  | Star
  | Exists
  | Forall
  | Variable of string
  | Name of string

let error fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_delim c =
  c = '(' || c = ')' || c = ',' || c = '&' || c = '|' || c = '?' || c = '"'

(* Multi-byte connectives accepted as aliases: ∧ ∨ ∃ ∀. *)
let unicode_tokens = [ ("\xe2\x88\xa7", Amp); ("\xe2\x88\xa8", Bar); ("\xe2\x88\x83", Exists); ("\xe2\x88\x80", Forall) ]

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let starts_with prefix =
    let lp = String.length prefix in
    !i + lp <= n && String.equal (String.sub input !i lp) prefix
  in
  while !i < n do
    let c = input.[!i] in
    if is_space c then incr i
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '&' then (push Amp; incr i)
    else if c = '|' then (push Bar; incr i)
    else if c = '"' then begin
      let close = try String.index_from input (!i + 1) '"' with Not_found -> error "unterminated quote" in
      push (Name (String.sub input (!i + 1) (close - !i - 1)));
      i := close + 1
    end
    else if c = '?' then begin
      let start = !i + 1 in
      let stop = ref start in
      while !stop < n && (not (is_space input.[!stop])) && not (is_delim input.[!stop]) do
        incr stop
      done;
      if !stop = start then error "'?' must be followed by a variable name";
      push (Variable (String.sub input start (!stop - start)));
      i := !stop
    end
    else
      match List.find_opt (fun (prefix, _) -> starts_with prefix) unicode_tokens with
      | Some (prefix, tok) ->
          push tok;
          i := !i + String.length prefix
      | None ->
          let start = !i in
          let stop = ref start in
          while !stop < n && (not (is_space input.[!stop])) && not (is_delim input.[!stop]) do
            incr stop
          done;
          let word = String.sub input start (!stop - start) in
          i := !stop;
          let lower = String.lowercase_ascii word in
          if String.equal word "*" then push Star
          else if String.equal lower "exists" then push Exists
          else if String.equal lower "forall" then push Forall
          else if String.equal lower "and" then push Amp
          else if String.equal lower "or" then push Bar
          else if String.equal word "." then push Dot
          else if String.length word > 1 && word.[String.length word - 1] = '.' then begin
            (* "x." after a quantified variable list *)
            push (Name (String.sub word 0 (String.length word - 1)));
            push Dot
          end
          else push (Name word)
  done;
  List.rev !tokens

type state = { mutable tokens : token list; db : Database.t; mutable fresh : int }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> error "unexpected end of query"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st expected what =
  let got = advance st in
  if got <> expected then error "expected %s" what

let fresh_var st =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "*%d" st.fresh

let term st =
  match advance st with
  | Variable v -> Template.Var v
  | Star -> Template.Var (fresh_var st)
  | Name name -> Template.Ent (Database.entity st.db name)
  | Lparen | Rparen | Comma | Amp | Bar | Dot | Exists | Forall ->
      error "expected an entity, ?variable or *"

(* After '(' we may be reading a template or a parenthesized formula;
   templates are recognized by the comma after the first term. *)
let rec parse_unit st =
  match peek st with
  | Some Lparen -> (
      let saved = st.tokens in
      ignore (advance st);
      match try_template st with
      | Some tpl -> Query.Atom tpl
      | None ->
          st.tokens <- saved;
          ignore (advance st);
          let q = parse_disj st in
          expect st Rparen "')'";
          q)
  | Some (Exists | Forall) ->
      let quant = advance st in
      let rec vars acc =
        match advance st with
        | Variable v | Name v -> (
            match peek st with
            | Some Comma ->
                ignore (advance st);
                vars (v :: acc)
            | Some Dot ->
                ignore (advance st);
                List.rev (v :: acc)
            | _ -> error "expected '.' after quantified variables")
        | _ -> error "expected a variable after the quantifier"
      in
      let vs = vars [] in
      (* The quantifier's scope extends over the following conjunction:
         "exists s . A & B" reads ∃s.(A ∧ B). *)
      let body = parse_conj st in
      let wrap v q = match quant with
        | Exists -> Query.Exists (v, q)
        | Forall -> Query.Forall (v, q)
        | _ -> assert false
      in
      List.fold_right wrap vs body
  | _ -> error "expected a template, quantifier or '('"

and try_template st =
  let saved = st.tokens in
  try
    let a = term st in
    match peek st with
    | Some Comma ->
        ignore (advance st);
        let b = term st in
        expect st Comma "','";
        let c = term st in
        expect st Rparen "')'";
        Some (Template.make a b c)
    | _ ->
        st.tokens <- saved;
        None
  with Parse_error _ ->
    st.tokens <- saved;
    None

and parse_conj st =
  let first = parse_unit st in
  let rec loop acc =
    match peek st with
    | Some Amp ->
        ignore (advance st);
        loop (Query.And (acc, parse_unit st))
    | _ -> acc
  in
  loop first

and parse_disj st =
  let first = parse_conj st in
  let rec loop acc =
    match peek st with
    | Some Bar ->
        ignore (advance st);
        loop (Query.Or (acc, parse_conj st))
    | _ -> acc
  in
  loop first

let names_in input =
  List.filter_map (function Name n -> Some n | _ -> None) (lex input)

let parse db input =
  let st = { tokens = lex input; db; fresh = 0 } in
  let q = parse_disj st in
  if st.tokens <> [] then error "trailing input after query";
  q

let parse_with_unknowns db input =
  let unknown =
    List.sort_uniq String.compare
      (List.filter (fun name -> Database.find_entity db name = None) (names_in input))
  in
  (parse db input, unknown)

let parse_template db input =
  let st = { tokens = lex input; db; fresh = 0 } in
  match peek st with
  | Some Lparen -> (
      ignore (advance st);
      match try_template st with
      | Some tpl when st.tokens = [] -> tpl
      | Some _ -> error "trailing input after template"
      | None -> error "not a template")
  | _ -> error "templates start with '('"
