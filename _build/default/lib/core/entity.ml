type t = int

let equal = Int.equal
let compare = Int.compare
let hash x = x land max_int

let special_names =
  [|
    ("⊑", [ "isa"; "kind-of" ]);
    ("∈", [ "in"; "member-of" ]);
    ("≈", [ "syn"; "same-as" ]);
    ("↔", [ "inv"; "inverse-of" ]);
    ("⊥", [ "contra"; "contradicts" ]);
    ("Δ", [ "top"; "anything" ]);
    ("∇", [ "bottom"; "nothing" ]);
    ("<", [ "lt" ]);
    (">", [ "gt" ]);
    ("=", [ "eq" ]);
    ("≠", [ "neq"; "<>" ]);
    ("≤", [ "le"; "<=" ]);
    ("≥", [ "ge"; ">=" ]);
  |]

let gen = 0
let member = 1
let syn = 2
let inv = 3
let contra = 4
let top = 5
let bottom = 6
let lt = 7
let gt = 8
let eq = 9
let neq = 10
let le = 11
let ge = 12
let special_count = Array.length special_names
let is_special e = e >= 0 && e < special_count
let is_comparator e = e >= lt && e <= ge

let converse_comparator e =
  if e = lt then gt
  else if e = gt then lt
  else if e = le then ge
  else if e = ge then le
  else if e = eq then eq
  else if e = neq then neq
  else invalid_arg "Entity.converse_comparator: not a comparator"

let comparator_holds cmp a b =
  if cmp = lt then a < b
  else if cmp = gt then a > b
  else if cmp = eq then a = b
  else if cmp = neq then a <> b
  else if cmp = le then a <= b
  else if cmp = ge then a >= b
  else invalid_arg "Entity.comparator_holds: not a comparator"
