type t = Lsdb_datalog.Triple.t = { s : Entity.t; r : Entity.t; t : Entity.t }

let make = Lsdb_datalog.Triple.make
let source (fact : t) = fact.s
let relationship (fact : t) = fact.r
let target (fact : t) = fact.t
let equal = Lsdb_datalog.Triple.equal
let compare = Lsdb_datalog.Triple.compare
let hash = Lsdb_datalog.Triple.hash

let of_names symtab s r t =
  make (Symtab.intern symtab s) (Symtab.intern symtab r) (Symtab.intern symtab t)

let names symtab (fact : t) =
  (Symtab.name symtab fact.s, Symtab.name symtab fact.r, Symtab.name symtab fact.t)

let pp symtab ppf (fact : t) =
  let s, r, t = names symtab fact in
  Format.fprintf ppf "(%s, %s, %s)" s r t

let to_string symtab fact = Format.asprintf "%a" (pp symtab) fact

module Set = Lsdb_datalog.Triple.Set
module Tbl = Lsdb_datalog.Triple.Tbl
