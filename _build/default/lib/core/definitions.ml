type definition = { params : string list; query : Query.t }

type t = { table : (string, definition) Hashtbl.t }

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let create () = { table = Hashtbl.create 16 }

let define t ~name ~params query =
  if name = "" then error "operator name may not be empty";
  let free = Query.free_vars query in
  List.iter
    (fun p ->
      if not (List.mem p free) then
        error "parameter ?%s is not a free variable of the body" p)
    params;
  let seen = Hashtbl.create 4 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then error "duplicate parameter ?%s" p;
      Hashtbl.add seen p ())
    params;
  Hashtbl.replace t.table name { params; query }

let strip_question p =
  let p = String.trim p in
  if String.length p > 1 && p.[0] = '?' then String.sub p 1 (String.length p - 1) else p

let define_text db t text =
  (* name(params) := query *)
  let split_define s =
    let rec find i =
      if i + 2 > String.length s then None
      else if String.sub s i 2 = ":=" then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> error "definition needs ':=' (name(?p) := query)"
    | Some i ->
        (String.trim (String.sub s 0 i), String.sub s (i + 2) (String.length s - i - 2))
  in
  let head, body = split_define text in
  let name, params =
    match String.index_opt head '(' with
    | None -> (head, [])
    | Some open_paren ->
        let close =
          match String.rindex_opt head ')' with
          | Some i when i > open_paren -> i
          | _ -> error "unbalanced parameter list in %S" head
        in
        let name = String.trim (String.sub head 0 open_paren) in
        let inside = String.sub head (open_paren + 1) (close - open_paren - 1) in
        let params =
          String.split_on_char ',' inside
          |> List.map strip_question
          |> List.filter (fun p -> p <> "")
        in
        (name, params)
  in
  let query =
    try Query_parser.parse db body
    with Query_parser.Parse_error msg -> error "in body of %s: %s" name msg
  in
  define t ~name ~params query

let remove t name =
  let existed = Hashtbl.mem t.table name in
  Hashtbl.remove t.table name;
  existed

let find t name =
  Option.map (fun { params; query } -> (params, query)) (Hashtbl.find_opt t.table name)

let list t =
  Hashtbl.fold (fun name { params; _ } acc -> (name, params) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let invoke ?opts db t name args =
  match Hashtbl.find_opt t.table name with
  | None -> error "no operator named %s" name
  | Some { params; query } ->
      if List.length args <> List.length params then
        error "%s expects %d argument(s), got %d" name (List.length params)
          (List.length args);
      let bindings = List.combine params args in
      let bound =
        Query.map_atoms
          (Template.subst (fun v -> List.assoc_opt v bindings))
          query
      in
      (* Bound parameters may leave residual quantifier-free atoms that
         are now ground; Eval handles those as propositional conjuncts. *)
      Eval.eval ?opts db bound

let invoke_names ?opts db t name args =
  invoke ?opts db t name (List.map (Database.entity db) args)

let show symtab t =
  list t
  |> List.map (fun (name, params) ->
         let { query; _ } = Hashtbl.find t.table name in
         Printf.sprintf "%s(%s) := %s" name
           (String.concat ", " (List.map (fun p -> "?" ^ p) params))
           (Query.to_string symtab query))
  |> String.concat "\n"
