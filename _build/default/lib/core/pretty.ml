let display_width s =
  let n = String.length s in
  let count = ref 0 in
  for i = 0 to n - 1 do
    (* Count every byte that is not a UTF-8 continuation byte. *)
    if Char.code s.[i] land 0xC0 <> 0x80 then incr count
  done;
  !count

let pad width s =
  let w = display_width s in
  if w >= width then s else s ^ String.make (width - w) ' '

let center width s =
  let w = display_width s in
  if w >= width then s
  else
    let left = (width - w) / 2 in
    String.make left ' ' ^ s ^ String.make (width - w - left) ' '

let rule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let row widths cells =
  "| "
  ^ String.concat " | " (List.map2 (fun w c -> pad w c) widths cells)
  ^ " |"

let normalize_heights cols =
  let height = List.fold_left (fun acc (_, cells) -> max acc (List.length cells)) 0 cols in
  List.map
    (fun (header, cells) ->
      (header, cells @ List.init (height - List.length cells) (fun _ -> "")))
    cols

let columns ~title cols =
  match cols with
  | [] -> Printf.sprintf "+--- %s ---+\n| (empty) |\n+%s+" title (String.make (display_width title + 8) '-')
  | _ ->
      let cols = normalize_heights cols in
      let widths =
        List.map
          (fun (header, cells) ->
            List.fold_left (fun acc s -> max acc (display_width s)) (display_width header) cells)
          cols
      in
      let total = List.fold_left ( + ) 0 widths + (3 * List.length widths) - 1 in
      let buf = Buffer.create 256 in
      let add line =
        Buffer.add_string buf line;
        Buffer.add_char buf '\n'
      in
      add ("+" ^ String.make total '-' ^ "+");
      add ("|" ^ center total title ^ "|");
      add (rule widths);
      add (row widths (List.map fst cols));
      add (rule widths);
      let height = List.length (snd (List.hd cols)) in
      for i = 0 to height - 1 do
        add (row widths (List.map (fun (_, cells) -> List.nth cells i) cols))
      done;
      Buffer.add_string buf (rule widths);
      Buffer.contents buf

let grid ?title ~headers rows =
  let ncols = List.length headers in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc r -> max acc (display_width (List.nth r i)))
          (display_width header) rows)
      headers
  in
  let buf = Buffer.create 256 in
  let add line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  (match title with
  | Some title ->
      let total = List.fold_left ( + ) 0 widths + (3 * List.length widths) - 1 in
      add ("+" ^ String.make total '-' ^ "+");
      add ("|" ^ center total title ^ "|")
  | None -> ());
  add (rule widths);
  add (row widths headers);
  add (rule widths);
  List.iter (fun r -> add (row widths r)) rows;
  Buffer.add_string buf (rule widths);
  Buffer.contents buf

let column ~title cells = grid ~headers:[ title ] (List.map (fun c -> [ c ]) cells)

let facts symtab fact_list =
  String.concat "\n" (List.map (Fact.to_string symtab) fact_list)

let cell symtab entities = String.concat ", " (List.map (Symtab.name symtab) entities)
