let numeric symtab e = Symtab.numeric_value symtab e

let holds symtab s r t =
  if Entity.is_comparator r then
    match (numeric symtab s, numeric symtab t) with
    | Some a, Some b -> Some (Entity.comparator_holds r a b)
    | _ ->
        (* Identity is decidable for every pair of entities (§3.6); the
           ordering comparators have no authority over non-numbers, so
           stored facts like (CHEAP, <, EXPENSIVE) remain possible. *)
        if r = Entity.eq then Some (Entity.equal s t)
        else if r = Entity.neq then Some (not (Entity.equal s t))
        else None
  else if r = Entity.gen then
    if Entity.equal s t then Some true
    else if Entity.equal t Entity.top then Some true
    else if Entity.equal s Entity.bottom then Some true
    else None
  else None

let decides symtab s r t = holds symtab s r t <> None

let emit_if symtab f s r t =
  match holds symtab s r t with Some true -> f (Fact.make s r t) | Some false | None -> ()

let comparator_candidates symtab ~domain cmp (pat : Store.pattern) f =
  match (pat.s, pat.t) with
  | Some s, Some t -> emit_if symtab f s cmp t
  | Some s, None ->
      if cmp = Entity.eq then emit_if symtab f s cmp s;
      Seq.iter (fun e -> if cmp <> Entity.eq || e <> s then emit_if symtab f s cmp e) (domain ())
  | None, Some t ->
      if cmp = Entity.eq then emit_if symtab f t cmp t;
      Seq.iter (fun e -> if cmp <> Entity.eq || e <> t then emit_if symtab f e cmp t) (domain ())
  | None, None ->
      Seq.iter
        (fun a -> Seq.iter (fun b -> emit_if symtab f a cmp b) (domain ()))
        (domain ())

(* The extremes are {e checkable} but never {e enumerable}: a fully bound
   (E,⊑,Δ) or (∇,⊑,E) is affirmed, but a free position is never bound to
   Δ or ∇ — otherwise query answers would depend on which atom happened
   to enumerate first (∇ inherits every fact, so it would satisfy almost
   any conjunction). Answers therefore contain the extremes only when
   the query names them. *)
let gen_candidates ~domain (pat : Store.pattern) f =
  let top = Entity.top and bottom = Entity.bottom in
  let emit s t = f (Fact.make s Entity.gen t) in
  match (pat.s, pat.t) with
  | Some s, Some t -> if s = t || t = top || s = bottom then emit s t
  | Some s, None ->
      emit s s;
      if s = bottom then
        Seq.iter (fun e -> if e <> bottom && e <> top then emit bottom e) (domain ())
  | None, Some t ->
      emit t t;
      if t = top then
        Seq.iter (fun e -> if e <> top && e <> bottom then emit e top) (domain ())
  | None, None -> Seq.iter (fun e -> emit e e) (domain ())

let candidates symtab ~domain (pat : Store.pattern) f =
  match pat.r with
  | Some r when Entity.is_comparator r -> comparator_candidates symtab ~domain r pat f
  | Some r when r = Entity.gen -> gen_candidates ~domain pat f
  | Some _ -> ()
  | None ->
      (* Free relationship: hierarchy facts are enumerated (reflexive ⊑,
         Δ, ∇); comparators are not — between every pair of entities they
         would drown the answer, and §4.1's tables show none. *)
      gen_candidates ~domain pat f
