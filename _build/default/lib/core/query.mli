(** The standard query language (§2.7): formulas built from template
    predicates with conjunction, disjunction and quantifiers. No negation —
    the paper prescribes complementary relationships instead. *)

type t =
  | Atom of Template.t
  | And of t * t
  | Or of t * t
  | Exists of string * t
  | Forall of string * t

val atom : Template.t -> t
val conj : t list -> t  (** right-nested; raises on [[]] *)

val disj : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Free variables, first-occurrence order. A query's value is the set of
    tuples over these (§2.7); a formula with none is a proposition. *)
val free_vars : t -> string list

val is_proposition : t -> bool

(** All atoms, left-to-right, with quantifier context ignored. *)
val atoms : t -> Template.t list

(** [map_atoms f q] rebuilds the query with every atom transformed. *)
val map_atoms : (Template.t -> Template.t) -> t -> t

(** [replace_atom q ~index ~by] replaces the [index]-th atom (in [atoms]
    order); raises [Invalid_argument] on out-of-range. [by = None] deletes
    the atom (§5.2: all-Δ templates are dropped), which fails if it was the
    only atom of a conjunct side that cannot be collapsed. *)
val replace_atom : t -> index:int -> by:Template.t option -> t option

(** Entities mentioned by the query: [(atom_index, position, entity)]. *)
val constants : t -> (int * int * Entity.t) list

(** Entity names in the query that are not interned in [symtab] — the §5.2
    misspelling diagnosis works on these. With an interned-only
    representation unknown names can only enter through the parser, which
    interns on sight; the parser therefore reports them via
    {!Query_parser.unknown_names}. This function instead reports entities
    that no longer occur in any closure fact. *)
val unmatched_entities : Database.t -> t -> Entity.t list

val pp : Symtab.t -> Format.formatter -> t -> unit
val to_string : Symtab.t -> t -> string
