let try_ db name =
  match Database.find_entity db name with
  | None -> None
  | Some e -> Some (Navigation.try_entity db e)

let try_render db name =
  match try_ db name with
  | None -> Printf.sprintf "try(%s): no such database entity" name
  | Some [] -> Printf.sprintf "try(%s): no facts include this entity" name
  | Some facts ->
      Printf.sprintf "try(%s):\n%s" name (Pretty.facts (Database.symtab db) facts)

let include_rule = Database.include_rule
let exclude = Database.exclude
let limit = Database.set_limit
let relation = View.relation_names

let show_rules db =
  let symtab = Database.symtab db in
  Database.rules db
  |> List.map (fun (rule, enabled) ->
         Printf.sprintf "[%c] %s" (if enabled then 'x' else ' ') (Rule.to_string symtab rule))
  |> String.concat "\n"
