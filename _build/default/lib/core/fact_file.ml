exception Syntax_error of { line : int; message : string }

let error line fmt =
  Printf.ksprintf (fun message -> raise (Syntax_error { line; message })) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_rule db line_no text =
  (* "name: body => heads" with templates separated by '&'. *)
  match String.index_opt text ':' with
  | None -> error line_no "rule needs 'name: body => heads'"
  | Some colon -> (
      let name = String.trim (String.sub text 0 colon) in
      let rest = String.sub text (colon + 1) (String.length text - colon - 1) in
      let split_on_arrow s =
        let arrow = "=>" in
        let rec find i =
          if i + 2 > String.length s then None
          else if String.equal (String.sub s i 2) arrow then Some i
          else find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some i ->
            Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
      in
      match split_on_arrow rest with
      | None -> error line_no "rule needs '=>'"
      | Some (body_text, heads_text) -> (
          let templates text =
            String.split_on_char '&' text
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map (fun s ->
                   try Query_parser.parse_template db s
                   with Query_parser.Parse_error msg -> error line_no "%s" msg)
          in
          try Rule.make ~name ~body:(templates body_text) ~heads:(templates heads_text) ()
          with Rule.Unsafe msg -> error line_no "unsafe rule: %s" msg))

let load_string db text =
  let inserted = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        if line.[0] = '(' then begin
          let tpl =
            try Query_parser.parse_template db line
            with Query_parser.Parse_error msg -> error line_no "%s" msg
          in
          match Template.to_fact tpl with
          | Some fact -> if Database.insert db fact then incr inserted
          | None -> error line_no "facts may not contain variables"
        end
        else
          let directive, argument =
            match String.index_opt line ' ' with
            | Some i ->
                ( String.sub line 0 i,
                  String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> (line, "")
          in
          match directive with
          | "class" -> Database.declare_class_relationship db (Database.entity db argument)
          | "individual" ->
              Database.declare_individual_relationship db (Database.entity db argument)
          | "limit" -> (
              match int_of_string_opt argument with
              | Some n when n >= 1 -> Database.set_limit db n
              | Some _ | None -> error line_no "limit needs a positive integer")
          | "rule" -> Database.add_rule db (parse_rule db line_no argument)
          | "exclude" ->
              if not (Database.exclude db argument) then
                error line_no "no rule named %s" argument
          | "include" ->
              if not (Database.include_rule db argument) then
                error line_no "no rule named %s" argument
          | other -> error line_no "unknown directive %S" other)
    lines;
  !inserted

let load_file db path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string db text

let needs_quotes name =
  name = ""
  || String.exists
       (fun c ->
         c = ' ' || c = '\t' || c = '(' || c = ')' || c = ',' || c = '&' || c = '|'
         || c = '?' || c = '"' || c = '#')
       name

let quote name = if needs_quotes name then "\"" ^ name ^ "\"" else name

let save_string db =
  let symtab = Database.symtab db in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "# loosely structured database (generated)";
  List.iter
    (fun (e, is_class) ->
      add "%s %s" (if is_class then "class" else "individual") (quote (Symtab.name symtab e)))
    (Relclass.declarations (Database.relclass db));
  if Database.limit db <> 1 then add "limit %d" (Database.limit db);
  List.iter
    (fun ((rule : Rule.t), enabled) ->
      let builtin = Builtin_rules.find rule.name <> None in
      if not builtin then begin
        let templates tpls =
          String.concat " & " (List.map (Template.to_string symtab) tpls)
        in
        if rule.guards <> [] then
          add "# note: guards of rule %s are not representable in this format" rule.name;
        add "rule %s: %s => %s" rule.name (templates rule.body) (templates rule.heads)
      end;
      if not enabled then add "exclude %s" rule.name)
    (Database.rules db);
  let axioms = Fact.Set.of_list Database.axiom_facts in
  let facts =
    Database.facts db
    |> List.filter (fun fact -> not (Fact.Set.mem fact axioms))
    |> List.map (fun fact ->
           let s, r, t = Fact.names symtab fact in
           Printf.sprintf "(%s, %s, %s)" (quote s) (quote r) (quote t))
    |> List.sort String.compare
  in
  List.iter (fun line -> add "%s" line) facts;
  Buffer.contents buf

let save_file db path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (save_string db))
