(** Rendering answers the way the paper prints them (§4.1, §6.1):
    one-column answers, ragged multi-column neighborhood tables, and
    two-dimensional grids. All output is plain text with box borders. *)

(** Display width of a UTF-8 string (code points, good enough for the
    entity names this system prints). *)
val display_width : string -> int

(** A ragged table: a title spanning the full width, one header per
    column, and columns of possibly different heights (the §4.1 layout). *)
val columns : title:string -> (string * string list) list -> string

(** A regular grid with one header row; short rows are padded. *)
val grid : ?title:string -> headers:string list -> string list list -> string

(** One-column answer (single-free-variable queries). *)
val column : title:string -> string list -> string

(** Render a list of facts, one per line. *)
val facts : Symtab.t -> Fact.t list -> string

(** Non-1NF cell: entities separated by [", "] (§6.1's relation tables may
    hold any number of entities per position). *)
val cell : Symtab.t -> Entity.t list -> string
