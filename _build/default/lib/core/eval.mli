(** Query evaluation (§2.7): the value of a query [Q(x1,…,xn)] is the set
    of tuples [(c1,…,cn)] satisfying it.

    Semantics notes (recorded in DESIGN.md):
    - Templates match the fused {!Match_layer} view: closure facts, virtual
      mathematical/hierarchy facts, and composition under the current
      [limit].
    - Quantifiers range over the active domain (entities occurring in the
      closure) — the standard finite reading of the paper's logic.
    - A disjunct must bind every free variable of the query; otherwise
      {!Unsafe} is raised. A [∀] body's other free variables, if still
      unbound, range over the active domain. Conjuncts are dynamically
      reordered (most-bound first), so "(x,EARNS,y) ∧ (y,>,20000)" works
      in any written order. *)

type answer = {
  vars : string list;  (** free variables, first-occurrence order *)
  rows : Entity.t array list;  (** distinct satisfying tuples *)
}

exception Unsafe of string

(** [reorder] (default [true]) enables the dynamic most-bound-first
    conjunct ordering; with [false], conjuncts evaluate in written order
    — exposed for the ablation experiment B10. *)
val eval : ?opts:Match_layer.opts -> ?reorder:bool -> Database.t -> Query.t -> answer

(** [holds db q] — the predicate reading: [q] is satisfied iff it matches a
    non-empty set of facts (for propositions: iff true). *)
val holds : ?opts:Match_layer.opts -> Database.t -> Query.t -> bool

(** Convenience: the answer's single column, for one-variable queries.
    Raises [Invalid_argument] if the query does not have exactly one free
    variable. *)
val column : answer -> Entity.t list

(** Answers as name tuples. *)
val rows_named : Symtab.t -> answer -> string list list
