(** Entities: the basic units of data (§2.1).

    An entity is an interned identifier; names live in the database's
    {!Symtab}. The special entities of the paper — generalization [⊑],
    membership [∈], synonym [≈], inversion [↔], contradiction [⊥], the
    hierarchy extremes [Δ]/[∇], and the mathematical comparators — are
    pre-interned at fixed, well-known ids so hot paths can compare ints. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Special entities}

    Ids are guaranteed stable across databases: a fresh {!Symtab} interns
    the special names first, in this order. *)

val gen : t  (** [⊑] — generalization, "is a kind of" (§2.3) *)

val member : t  (** [∈] — membership, "is an instance of" (§2.3) *)

val syn : t  (** [≈] — synonym (§3.3) *)

val inv : t  (** [↔] — inversion (§3.4) *)

val contra : t  (** [⊥] — contradiction (§3.5) *)

val top : t  (** [Δ] — the most abstract entity (§2.3) *)

val bottom : t  (** [∇] — the most specific entity (§2.3) *)

val lt : t  (** [<] *)

val gt : t  (** [>] *)

val eq : t  (** [=] *)

val neq : t  (** [≠] *)

val le : t  (** [≤] *)

val ge : t  (** [≥] *)

(** Canonical names and their ASCII aliases, in interning order. The id of
    the [i]-th pair is [i]. *)
val special_names : (string * string list) array

(** Number of special entities; the first user entity gets this id. *)
val special_count : int

val is_special : t -> bool

(** Comparator entities ([<], [>], [=], [≠], [≤], [≥]) denote the virtual
    mathematical relationships of §3.6. *)
val is_comparator : t -> bool

(** The comparator with swapped operand order: [< ↔ >], [≤ ↔ ≥], [=] and
    [≠] are their own converses. *)
val converse_comparator : t -> t

(** [comparator_holds cmp a b] decides a comparator over floats (used by
    the virtual-fact oracle for numeric entities). *)
val comparator_holds : t -> float -> float -> bool
