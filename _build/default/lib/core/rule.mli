(** Rules <L, R>: one set of templates implies another (§2.6).

    This single mechanism expresses both inference rules and integrity
    constraints. Rules may carry guards restricting relationship variables
    to [R_i]/[R_c] (the paper's [∀ r ∈ R_i] quantifications) or requiring
    distinctness; guards are resolved against the database's {!Relclass}
    when the rule is compiled for the Datalog engine. *)

type guard =
  | Individual of string  (** variable must denote an [R_i] relationship *)
  | Class of string  (** variable must denote an [R_c] relationship *)
  | Distinct of string * string  (** the two variables denote different entities *)

type t = private {
  name : string;
  body : Template.t list;
  guards : guard list;
  heads : Template.t list;
}

exception Unsafe of string

(** [make ~name ~body ?guards ~heads ()] — raises {!Unsafe} when a head or
    guard variable does not occur in the body, or body/heads are empty. *)
val make :
  name:string ->
  body:Template.t list ->
  ?guards:guard list ->
  heads:Template.t list ->
  unit ->
  t

val equal_name : t -> t -> bool

(** [map_entities f rule] rewrites every entity constant (used to move a
    rule between databases with different symbol tables). *)
val map_entities : (Entity.t -> Entity.t) -> t -> t

(** Compile for the engine, resolving [Individual]/[Class] guards through
    the given predicate. *)
val compile : is_class:(Entity.t -> bool) -> t -> Lsdb_datalog.Rule.t

val pp : Symtab.t -> Format.formatter -> t -> unit
val to_string : Symtab.t -> t -> string
