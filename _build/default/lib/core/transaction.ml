type op = [ `Insert of Fact.t | `Remove of Fact.t ]

type t = { db : Database.t; mutable ops : op list }

let start db = { db; ops = [] }

let insert t fact =
  let added = Database.insert t.db fact in
  if added then t.ops <- `Insert fact :: t.ops;
  added

let insert_names t s r tgt =
  insert t (Fact.of_names (Database.symtab t.db) s r tgt)

let remove t fact =
  let removed = Database.remove t.db fact in
  if removed then t.ops <- `Remove fact :: t.ops;
  removed

let journal t = t.ops

let rollback t =
  List.iter
    (function
      | `Insert fact -> ignore (Database.remove t.db fact)
      | `Remove fact -> ignore (Database.insert t.db fact))
    t.ops;
  t.ops <- []

let atomically ?(check = true) db f =
  let t = start db in
  match f t with
  | result ->
      if not check then Ok result
      else begin
        match Integrity.violations db with
        | [] -> Ok result
        | violations ->
            rollback t;
            Error violations
      end
  | exception e ->
      rollback t;
      raise e
