(** Atomic update groups (§6 lists "update of the facts and the rules"
    among the operators a usable system needs).

    A transaction records the fact insertions/removals performed through
    it; on [rollback] — explicit, or implicit when the body of
    {!atomically} raises or the final integrity check fails — the
    mutations are undone in reverse order. Rules and declarations are not
    transactional (they are code-like, rarely batched). *)

type t

(** Begin recording against a database. *)
val start : Database.t -> t

val insert : t -> Fact.t -> bool
val insert_names : t -> string -> string -> string -> bool
val remove : t -> Fact.t -> bool

(** Mutations applied so far (most recent first). *)
val journal : t -> [ `Insert of Fact.t | `Remove of Fact.t ] list

(** Undo everything this transaction applied. Idempotent. *)
val rollback : t -> unit

(** [atomically ?check db f] runs [f] with a fresh transaction. If [f]
    raises, every mutation is rolled back and the exception re-raised.
    If [check] is [true] (default), the closure is then validated with
    {!Integrity.violations}; violations roll the transaction back and
    are returned as [Error]. *)
val atomically :
  ?check:bool ->
  Database.t ->
  (t -> 'a) ->
  ('a, Integrity.violation list) result
