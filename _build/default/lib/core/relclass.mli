(** Classification of relationships into individual ([R_i]) and class
    ([R_c]) relationships (§2.2).

    Individual relationships (EARN) characterize every instance of their
    source; class relationships (TOTAL-NUMBER) characterize the aggregate
    and must not propagate to members. Defaults: user relationships are
    individual; generalization [⊑] is individual (the paper states so, and
    transitivity depends on it); membership, synonym, inversion,
    contradiction and the comparators are class relationships. *)

type t

val create : unit -> t

val declare_class : t -> Entity.t -> unit
val declare_individual : t -> Entity.t -> unit

val is_class : t -> Entity.t -> bool
val is_individual : t -> Entity.t -> bool

(** Entities explicitly declared (for persistence/round-trips):
    [(entity, is_class)] pairs. *)
val declarations : t -> (Entity.t * bool) list

val copy : t -> t
