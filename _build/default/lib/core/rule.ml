module D = Lsdb_datalog

type guard =
  | Individual of string
  | Class of string
  | Distinct of string * string

type t = {
  name : string;
  body : Template.t list;
  guards : guard list;
  heads : Template.t list;
}

exception Unsafe of string

let guard_vars = function
  | Individual v | Class v -> [ v ]
  | Distinct (a, b) -> [ a; b ]

let make ~name ~body ?(guards = []) ~heads () =
  if body = [] then raise (Unsafe (name ^ ": empty body"));
  if heads = [] then raise (Unsafe (name ^ ": empty head"));
  let body_vars = List.concat_map Template.vars body in
  let covered v = List.mem v body_vars in
  let check what vs =
    List.iter
      (fun v ->
        if not (covered v) then
          raise (Unsafe (Printf.sprintf "%s: %s variable ?%s not in body" name what v)))
      vs
  in
  List.iter (fun tpl -> check "head" (Template.vars tpl)) heads;
  List.iter (fun g -> check "guard" (guard_vars g)) guards;
  { name; body; guards; heads }

let equal_name a b = String.equal a.name b.name

let map_entities f rule =
  let term = function
    | Template.Ent e -> Template.Ent (f e)
    | Template.Var _ as v -> v
  in
  let tpl (t : Template.t) = Template.make (term t.src) (term t.rel) (term t.tgt) in
  { rule with body = List.map tpl rule.body; heads = List.map tpl rule.heads }

let compile ~is_class rule =
  let var_ids = Hashtbl.create 8 in
  let next = ref 0 in
  let var_id v =
    match Hashtbl.find_opt var_ids v with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.add var_ids v i;
        i
  in
  let term = function
    | Template.Var v -> D.Term.Var (var_id v)
    | Template.Ent e -> D.Term.Const e
  in
  let atom (tpl : Template.t) = D.Atom.make (term tpl.src) (term tpl.rel) (term tpl.tgt) in
  let body = List.map atom rule.body in
  let heads = List.map atom rule.heads in
  let guard = function
    | Individual v ->
        D.Guard.Holds ("individual", (fun e -> not (is_class e)), D.Term.Var (var_id v))
    | Class v -> D.Guard.Holds ("class", is_class, D.Term.Var (var_id v))
    | Distinct (a, b) -> D.Guard.Distinct (D.Term.Var (var_id a), D.Term.Var (var_id b))
  in
  let guards = List.map guard rule.guards in
  D.Rule.make ~name:rule.name ~body ~guards ~heads ()

let pp_guard ppf = function
  | Individual v -> Format.fprintf ppf "?%s ∈ R_i" v
  | Class v -> Format.fprintf ppf "?%s ∈ R_c" v
  | Distinct (a, b) -> Format.fprintf ppf "?%s ≠ ?%s" a b

let pp symtab ppf rule =
  let pp_templates =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      (Template.pp symtab)
  in
  Format.fprintf ppf "@[<hov 2>%s:@ %a" rule.name pp_templates rule.body;
  if rule.guards <> [] then
    Format.fprintf ppf "@ [%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_guard)
      rule.guards;
  Format.fprintf ppf "@ ⇒@ %a@]" pp_templates rule.heads

let to_string symtab rule = Format.asprintf "%a" (pp symtab) rule
