(** Finding entry points: name search over the universe of entities.

    Browsing needs a first foothold (§6.1's [try] assumes you can spell
    the entity). [Search] finds candidates by substring and by bounded
    edit distance, which also upgrades the §5.2 misspelling diagnosis
    from "no such database entities" to a "did you mean …?" list. *)

(** Case-insensitive substring match over entity names, best (shortest
    name) first, capped at [limit] (default 20). *)
val substring : ?limit:int -> Database.t -> string -> Entity.t list

(** [fuzzy db name] — entities whose name is within edit distance
    [max_distance] (default 2, case-insensitive), nearest first;
    excludes exact matches of [name] itself. *)
val fuzzy : ?limit:int -> ?max_distance:int -> Database.t -> string -> Entity.t list

(** Damerau-ish Levenshtein distance (insert/delete/substitute, unit
    costs), case-sensitive; exposed for tests. *)
val edit_distance : string -> string -> int

(** [suggestions db name] — the "did you mean" list for an unknown name:
    fuzzy matches that actually occur in some closure fact. *)
val suggestions : ?limit:int -> Database.t -> string -> Entity.t list
