(** A plain-text exchange format for loosely structured databases.

    One directive per line; [#] starts a comment. Since there is no schema,
    a database file is just its facts plus a handful of declarations:

    {v
    # facts: templates without variables
    (JOHN, LIKES, FELIX)
    (JOHN, EARNS, $25000)

    # declare a class relationship (default is individual)
    class TOTAL-NUMBER
    individual WORKS-FOR

    # composition limit (§6.1)
    limit 3

    # rule NAME: body-templates => head-templates  (variables: ?x)
    rule adults: (?x, in, EMPLOYEE) => (?x, in, ADULT)

    # disable / enable a rule by name
    exclude syn-rel
    include syn-rel
    v} *)

exception Syntax_error of { line : int; message : string }

(** Apply the directives of [text] to [db]. Returns the number of facts
    inserted. *)
val load_string : Database.t -> string -> int

(** Load a file. *)
val load_file : Database.t -> string -> int

(** Serialize the database: declarations, limit, non-builtin rules,
    excluded builtins, then every base fact (axiom facts omitted). *)
val save_string : Database.t -> string

val save_file : Database.t -> string -> unit
