(** Virtual facts (§3.6 and §2.3): mathematical relationships and the
    generalization hierarchy's built-in extent, answered without storage.

    The paper assumes "the existence of all relevant mathematical
    relationships, without actually storing them as ordinary facts": for
    numeric entities all comparator facts; for every pair of entities
    exactly one of [(E1,=,E2)] / [(E1,≠,E2)]. Likewise [⊑] is reflexive and
    bounded by [Δ]/[∇] for every entity: [(E,⊑,E)], [(E,⊑,Δ)], [(∇,⊑,E)].

    Enumeration uses active-domain semantics: free positions range over the
    entities known to [domain] (typically the closure's active entities).
    The extremes Δ/∇ are {e checkable but never enumerable}: they are
    affirmed when the caller names them, but a free position is never
    bound to them, so query answers contain them only when the query
    says them — otherwise answers would depend on evaluation order (∇
    inherits every fact). *)

(** [holds symtab s r t] decides a fully ground virtual fact:
    [Some true/false] if the triple falls under the oracle's authority
    (comparator with decidable operands, or hierarchy extent), [None] if it
    is an ordinary fact the oracle knows nothing about. *)
val holds : Symtab.t -> Entity.t -> Entity.t -> Entity.t -> bool option

(** [decides symtab s r t] — whether the oracle has authority over the
    triple (i.e. [holds] would answer [Some _]). *)
val decides : Symtab.t -> Entity.t -> Entity.t -> Entity.t -> bool

(** [candidates symtab ~domain pattern emit] enumerates the virtual facts
    matching [pattern] ([None] = free position, ranging over [domain]).
    Comparator positions with a free relationship are {e not} enumerated
    (they would add [=]/[≠] noise between every pair); callers that want
    comparators must bind the relationship. Hierarchy facts {e are}
    enumerated for a free relationship when source or target is [Δ]/[∇]. *)
val candidates :
  Symtab.t ->
  domain:(unit -> Entity.t Seq.t) ->
  Store.pattern ->
  (Fact.t -> unit) ->
  unit
