type position = Source | Relationship | Target

type step =
  | Replace of {
      atom_index : int;
      position : position;
      replaced : Entity.t;
      by : Entity.t;
    }
  | Delete_atom of { atom_index : int; template : Template.t }

type broader = { query : Query.t; step : step }

type policy = { source_mode : [ `Specialize | `Generalize ] }

let default_policy = { source_mode = `Specialize }

let pos_index = function Source -> 0 | Relationship -> 1 | Target -> 2

let is_weak (tpl : Template.t) =
  let weak_term = function
    | Template.Var _ -> true
    | Template.Ent e -> e = Entity.top || e = Entity.bottom
  in
  weak_term tpl.src && weak_term tpl.rel && weak_term tpl.tgt

(* An entity that can still be substituted: the extremes are terminal and
   the comparators denote fixed mathematical relationships. *)
let substitutable e =
  (not (Entity.equal e Entity.top))
  && (not (Entity.equal e Entity.bottom))
  && not (Entity.is_comparator e)

let replacements policy broadness position e =
  match position with
  | Relationship | Target -> Broadness.minimal_generalizations broadness e
  | Source -> (
      match policy.source_mode with
      | `Specialize ->
          (* A ∇ source inherits every fact (gen-source over the virtual
             (∇,⊑,s)), so substituting it would make any query "succeed"
             and mask the §5.2 misspelling diagnosis; only stored
             specializations are attempted. *)
          List.filter
            (fun e' -> not (Entity.equal e' Entity.bottom))
            (Broadness.minimal_specializations broadness e)
      | `Generalize -> Broadness.minimal_generalizations broadness e)

let retraction_set ?(policy = default_policy) db broadness q =
  ignore db;
  let atoms = Query.atoms q in
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  let push broader_query step =
    let key = broader_query in
    if (not (Query.equal key q)) && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := { query = broader_query; step } :: !out
    end
  in
  List.iteri
    (fun atom_index tpl ->
      if is_weak tpl then begin
        (* Weak templates are broadened by deletion (§5.2). *)
        match Query.replace_atom q ~index:atom_index ~by:None with
        | Some query -> push query (Delete_atom { atom_index; template = tpl })
        | None -> ()
      end
      else
        List.iter
          (fun position ->
            let constant =
              match (position, (tpl : Template.t)) with
              | Source, { src = Template.Ent e; _ } -> Some e
              | Relationship, { rel = Template.Ent e; _ } -> Some e
              | Target, { tgt = Template.Ent e; _ } -> Some e
              | (Source | Relationship | Target), _ -> None
            in
            match constant with
            | Some e when substitutable e ->
                List.iter
                  (fun by ->
                    let tpl' = Template.replace_at tpl ~pos:(pos_index position) ~by in
                    match Query.replace_atom q ~index:atom_index ~by:(Some tpl') with
                    | Some query ->
                        push query (Replace { atom_index; position; replaced = e; by })
                    | None -> ())
                  (replacements policy broadness position e)
            | Some _ | None -> ())
          [ Source; Relationship; Target ])
    atoms;
  List.rev !out

let describe db step =
  let name = Database.entity_name db in
  match step with
  | Replace { replaced; by; position; _ } ->
      let where =
        match position with
        | Source -> "source"
        | Relationship -> "relationship"
        | Target -> "target"
      in
      Printf.sprintf "%s instead of %s (%s)" (name by) (name replaced) where
  | Delete_atom { template; _ } ->
      Printf.sprintf "dropped weak template %s"
        (Template.to_string (Database.symtab db) template)
