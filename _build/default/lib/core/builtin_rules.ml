open Template

let v name = Var name
let e entity = Ent entity
let tpl a b c = Template.make a b c

(* Shorthands for the special relationship entities. *)
let gen = e Entity.gen
let mem = e Entity.member
let syn = e Entity.syn
let inv_rel = e Entity.inv

let gen_source =
  Rule.make ~name:"gen-source"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "s'") gen (v "s") ]
    ~guards:[ Rule.Individual "r"; Rule.Distinct ("s'", "s") ]
    ~heads:[ tpl (v "s'") (v "r") (v "t") ]
    ()

let gen_rel =
  Rule.make ~name:"gen-rel"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "r") gen (v "r'") ]
    ~guards:[ Rule.Individual "r"; Rule.Distinct ("r", "r'") ]
    ~heads:[ tpl (v "s") (v "r'") (v "t") ]
    ()

let gen_target =
  Rule.make ~name:"gen-target"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "t") gen (v "t'") ]
    ~guards:[ Rule.Individual "r"; Rule.Distinct ("t", "t'") ]
    ~heads:[ tpl (v "s") (v "r") (v "t'") ]
    ()

let mem_source =
  Rule.make ~name:"mem-source"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "s'") mem (v "s") ]
    ~guards:[ Rule.Individual "r" ]
    ~heads:[ tpl (v "s'") (v "r") (v "t") ]
    ()

let mem_target =
  Rule.make ~name:"mem-target"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "t") mem (v "t'") ]
    ~guards:[ Rule.Individual "r" ]
    ~heads:[ tpl (v "s") (v "r") (v "t'") ]
    ()

let mem_up =
  Rule.make ~name:"mem-up"
    ~body:[ tpl (v "x") mem (v "c"); tpl (v "c") gen (v "c'") ]
    ~guards:[ Rule.Distinct ("c", "c'") ]
    ~heads:[ tpl (v "x") mem (v "c'") ]
    ()

let syn_def =
  Rule.make ~name:"syn-def"
    ~body:[ tpl (v "s") syn (v "t") ]
    ~heads:[ tpl (v "s") gen (v "t"); tpl (v "t") gen (v "s") ]
    ()

let syn_intro =
  Rule.make ~name:"syn-intro"
    ~body:[ tpl (v "s") gen (v "t"); tpl (v "t") gen (v "s") ]
    ~guards:[ Rule.Distinct ("s", "t") ]
    ~heads:[ tpl (v "s") syn (v "t") ]
    ()

let syn_source =
  Rule.make ~name:"syn-source"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "s") syn (v "s'") ]
    ~heads:[ tpl (v "s'") (v "r") (v "t") ]
    ()

let syn_rel =
  Rule.make ~name:"syn-rel"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "r") syn (v "r'") ]
    ~heads:[ tpl (v "s") (v "r'") (v "t") ]
    ()

let syn_target =
  Rule.make ~name:"syn-target"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "t") syn (v "t'") ]
    ~heads:[ tpl (v "s") (v "r") (v "t'") ]
    ()

let inversion =
  Rule.make ~name:"inversion"
    ~body:[ tpl (v "s") (v "r") (v "t"); tpl (v "r") inv_rel (v "r'") ]
    ~heads:[ tpl (v "t") (v "r'") (v "s") ]
    ()

let all =
  [
    gen_source;
    gen_rel;
    gen_target;
    mem_source;
    mem_target;
    mem_up;
    syn_def;
    syn_intro;
    syn_source;
    syn_rel;
    syn_target;
    inversion;
  ]

let names = List.map (fun (rule : Rule.t) -> rule.name) all

let find name = List.find_opt (fun (rule : Rule.t) -> String.equal rule.name name) all
