let db_of_facts ?(class_relationships = []) ?(limit = 1) facts =
  let db = Database.create () in
  List.iter
    (fun (s, r, t) -> ignore (Database.insert_names db s r t))
    facts;
  List.iter
    (fun r -> Database.declare_class_relationship db (Database.entity db r))
    class_relationships;
  if limit <> 1 then Database.set_limit db limit;
  db

let music () =
  db_of_facts ~limit:3
    [
      (* the all-star JOHN template — first §4.1 table *)
      ("JOHN", "in", "PERSON");
      ("JOHN", "in", "EMPLOYEE");
      ("JOHN", "in", "PET-OWNER");
      ("JOHN", "in", "MUSIC-LOVER");
      ("JOHN", "LIKES", "CAT");
      ("JOHN", "LIKES", "FELIX");
      ("JOHN", "LIKES", "HEATHCLIFF");
      ("JOHN", "LIKES", "MOZART");
      ("JOHN", "LIKES", "MARY");
      ("JOHN", "WORKS-FOR", "SHIPPING");
      ("JOHN", "BOSS", "PETER");
      ("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
      ("JOHN", "FAVORITE-MUSIC", "PC#20-PIT");
      ("JOHN", "FAVORITE-MUSIC", "S#5-LVB");
      (* the all-star PC#9-WAM template — second table *)
      ("PC#9-WAM", "in", "CONCERTO");
      ("CONCERTO", "isa", "CLASSICAL-COMPOSITION");
      ("PC#9-WAM", "COMPOSED-BY", "MOZART");
      ("PC#9-WAM", "PERFORMED-BY", "SERKIN");
      ("PC#9-WAM", "PERFORMED-BY", "BARENBOIM");
      ("FAVORITE-MUSIC", "inv", "FAVORITE-OF");
      (* LEOPOLD-to-MOZART associations — third table: composed path + fact *)
      ("LEOPOLD", "FAVORITE-MUSIC", "PC#9-WAM");
      ("LEOPOLD", "FATHER-OF", "MOZART");
      (* supporting cast *)
      ("FELIX", "in", "CAT");
      ("HEATHCLIFF", "in", "CAT");
      ("CAT", "isa", "PET");
      ("MOZART", "in", "COMPOSER");
      ("COMPOSER", "isa", "PERSON");
      ("SERKIN", "in", "PIANIST");
      ("BARENBOIM", "in", "PIANIST");
      ("PIANIST", "isa", "PERSON");
      ("MARY", "in", "PERSON");
      ("PETER", "in", "PERSON");
      ("SHIPPING", "in", "DEPARTMENT");
      ("EMPLOYEE", "isa", "PERSON");
    ]

let organization () =
  db_of_facts
    ~class_relationships:[ "TOTAL-NUMBER" ]
    [
      (* §3.1 — inference by generalization *)
      ("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
      ("MANAGER", "isa", "EMPLOYEE");
      ("EMPLOYEE", "EARNS", "SALARY");
      ("SALARY", "isa", "COMPENSATION");
      ("WORKS-FOR", "isa", "IS-PAID-BY");
      ("JOHN", "WORKS-FOR", "SHIPPING");
      (* §3.2 — inference by membership *)
      ("JOHN", "in", "EMPLOYEE");
      ("TOM", "in", "EMPLOYEE");
      ("TOM", "WORKS-FOR", "SHIPPING");
      ("SHIPPING", "in", "DEPARTMENT");
      (* §3.3 — synonyms *)
      ("JOHN", "syn", "JOHNNY");
      ("JOHN", "EARNS", "$25000");
      ("SALARY", "syn", "WAGE");
      ("SALARY", "syn", "PAY");
      (* §3.5 — contradiction facts *)
      ("LOVES", "contra", "HATES");
      (* §2.2 — a class relationship *)
      ("EMPLOYEE", "TOTAL-NUMBER", "180");
      (* §3.4 — inversion *)
      ("INSTRUCTOR", "TEACHES", "COURSE");
      ("TEACHES", "inv", "TAUGHT-BY");
      ("HARRY", "in", "INSTRUCTOR");
      ("CS100", "in", "COURSE");
      ("HARRY", "TEACHES", "CS100");
    ]

let campus () =
  db_of_facts
    [
      (* hierarchy used by §5.1/§5.2 *)
      ("FRESHMAN", "isa", "STUDENT");
      ("LOVE", "isa", "LIKE");
      ("LOVES", "isa", "ENJOYS");
      ("FREE", "isa", "CHEAP");
      ("OPERA", "isa", "MUSIC");
      ("OPERA", "isa", "THEATER");
      (* §5.1 — who loves opera *)
      ("SUE", "ENJOYS", "OPERA");
      ("SUE", "in", "STUDENT");
      ("TED", "LOVES", "MUSIC");
      ("TED", "in", "STUDENT");
      (* §5.2 — free things all students love: Q fails, FRESHMAN and CHEAP
         variants succeed *)
      ("FRESHMAN", "LOVE", "FROSH-CONCERT");
      ("FROSH-CONCERT", "COSTS", "FREE");
      ("STUDENT", "LOVE", "CAMPUS-CINEMA");
      ("CAMPUS-CINEMA", "COSTS", "CHEAP");
    ]

let library () =
  db_of_facts
    [
      (* §2.7 — books, citations, self-citing authors *)
      ("WAR-AND-PIECES", "in", "BOOK");
      ("OCAML-IN-ANGER", "in", "BOOK");
      ("DUST-JACKET", "in", "BOOK");
      ("WAR-AND-PIECES", "CITES", "WAR-AND-PIECES");
      ("WAR-AND-PIECES", "CITES", "OCAML-IN-ANGER");
      ("OCAML-IN-ANGER", "CITES", "WAR-AND-PIECES");
      ("WAR-AND-PIECES", "AUTHOR", "ALICE");
      ("OCAML-IN-ANGER", "AUTHOR", "BOB");
      ("DUST-JACKET", "AUTHOR", "BOB");
      ("ALICE", "in", "PERSON");
      ("BOB", "in", "PERSON");
      (* §5 — quarterbacks who graduated from USC: none graduated, one
         attended *)
      ("GRADUATE-OF", "isa", "ATTENDED");
      ("QUARTERBACK", "isa", "FOOTBALL-PLAYER");
      ("FOOTBALL-PLAYER", "isa", "ATHLETE");
      ("JAKE", "in", "QUARTERBACK");
      ("JAKE", "ATTENDED", "USC");
      ("RON", "in", "FOOTBALL-PLAYER");
      ("RON", "GRADUATE-OF", "USC");
      ("USC", "in", "UNIVERSITY");
    ]

let payroll () =
  db_of_facts
    [
      ("JOHN", "in", "EMPLOYEE");
      ("TOM", "in", "EMPLOYEE");
      ("MARY", "in", "EMPLOYEE");
      ("JOHN", "WORKS-FOR", "SHIPPING");
      ("TOM", "WORKS-FOR", "ACCOUNTING");
      ("MARY", "WORKS-FOR", "RECEIVING");
      ("JOHN", "EARNS", "$26000");
      ("TOM", "EARNS", "$27000");
      ("MARY", "EARNS", "$25000");
      ("SHIPPING", "in", "DEPARTMENT");
      ("ACCOUNTING", "in", "DEPARTMENT");
      ("RECEIVING", "in", "DEPARTMENT");
      ("$26000", "in", "SALARY");
      ("$27000", "in", "SALARY");
      ("$25000", "in", "SALARY");
    ]
