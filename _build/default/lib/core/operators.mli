(** The §6.1 user-level operators, as one convenient facade:
    [try(e)], [include(rule)], [exclude(rule)], [limit(n)] and
    [relation(s, r1 t1, …)]. Each is a thin veneer over the corresponding
    library mechanism — the paper defines them all in terms of the
    standard query language. *)

(** [try_ db name] — all facts including the entity, rendered groups of
    facts; [None] when the name is not interned. *)
val try_ : Database.t -> string -> Fact.t list option

(** [try_render db name] — printable form, or the "unknown entity"
    message. *)
val try_render : Database.t -> string -> string

(** [include_rule db name] / [exclude db name] — toggle a rule (§6.1);
    [false] when no such rule. *)
val include_rule : Database.t -> string -> bool

val exclude : Database.t -> string -> bool

(** [limit db n] — set the composition-chain bound. *)
val limit : Database.t -> int -> unit

(** [relation db s columns] — the tabulated view; column specs are
    [(relationship, class)] name pairs. *)
val relation : Database.t -> string -> (string * string) list -> View.t

(** List the rules with enabled flags, printable. *)
val show_rules : Database.t -> string
