(** Explanations: why is a fact in the database view?

    Derived facts carry provenance from the closure engine (one derivation:
    rule name + premises); base facts, virtual facts and composition facts
    are explained as such. Browsing uses this to answer "where did this
    come from?" without the user knowing any schema — there is none. *)

type source =
  | Stored  (** a base fact of the heap *)
  | Derived of string  (** rule name *)
  | Virtual  (** §3.6 mathematical / §2.3 hierarchy oracle *)
  | Composed  (** §3.7 composition *)
  | Unknown  (** not in the database view at all *)

type tree = { fact : Fact.t; source : source; premises : tree list }

(** [explain db fact] — full derivation tree (premises recursively
    explained). *)
val explain : Database.t -> Fact.t -> tree

(** How the fact is established, without recursion. *)
val source_of : Database.t -> Fact.t -> source

(** Indented rendering of a derivation tree. *)
val render : Database.t -> tree -> string
