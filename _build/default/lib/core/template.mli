(** Templates: facts that may include variables (§2.4, §2.7).

    Templates are the atomic predicates of the query language and the
    building blocks of rules. The special navigation symbol [*] (§4.1) is
    desugared to fresh anonymous variables by the parser, so it does not
    appear here. *)

type term =
  | Var of string  (** named entity variable *)
  | Ent of Entity.t

type t = { src : term; rel : term; tgt : term }

val make : term -> term -> term -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Variable names in source-relationship-target order, duplicates kept. *)
val vars : t -> string list

(** Distinct variable names, first-occurrence order. *)
val distinct_vars : t -> string list

val is_ground : t -> bool

(** [to_fact tpl] is the fact a ground template denotes. *)
val to_fact : t -> Fact.t option

val of_fact : Fact.t -> t

(** [subst env tpl] replaces every variable bound in [env]. *)
val subst : (string -> Entity.t option) -> t -> t

(** [matches tpl fact] — bindings extending the empty environment under
    which [tpl] equals [fact], or [None]. Repeated variables must match
    equal entities (e.g. [(x, CITES, x)] for self-citations, §2.7). *)
val matches : t -> Fact.t -> (string * Entity.t) list option

(** Entities occurring (as constants) in the template, in position order:
    [(position, entity)] with positions 0 = source, 1 = relationship,
    2 = target. *)
val constants : t -> (int * Entity.t) list

(** [replace_at tpl ~pos ~by] replaces the constant at position [pos]. *)
val replace_at : t -> pos:int -> by:Entity.t -> t

val pp : Symtab.t -> Format.formatter -> t -> unit
val to_string : Symtab.t -> t -> string
