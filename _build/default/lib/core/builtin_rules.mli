(** The paper's standard inference rules (§3), as ordinary {!Rule.t}
    values. They can be listed, included and excluded like any other rule
    (§6.1 [include]/[exclude]).

    One interpretation note (recorded in DESIGN.md): §3.2's prose — "if one
    entity is an instance of another entity, then it is also an instance of
    every more general entity" — is not derivable from the printed formulas
    alone because [∈] is a class relationship; we therefore include it as
    the explicit rule {!mem_up}. Inference by composition (§3.7) is *not* a
    rule here: it creates fresh relationship entities and is handled
    lazily by {!Composition} under the [limit(n)] operator. *)

val gen_source : Rule.t
(** [(s,r,t) ∧ (s',⊑,s) ⇒ (s',r,t)] for [r ∈ R_i] — §3.1 rule 1. *)

val gen_rel : Rule.t
(** [(s,r,t) ∧ (r,⊑,r') ⇒ (s,r',t)] for [r ∈ R_i] — §3.1 rule 2. *)

val gen_target : Rule.t
(** [(s,r,t) ∧ (t,⊑,t') ⇒ (s,r,t')] for [r ∈ R_i] — §3.1 rule 3. *)

val mem_source : Rule.t
(** [(s,r,t) ∧ (s',∈,s) ⇒ (s',r,t)] for [r ∈ R_i] — §3.2 rule 1. *)

val mem_target : Rule.t
(** [(s,r,t) ∧ (t,∈,t') ⇒ (s,r,t')] for [r ∈ R_i] — §3.2 rule 2. *)

val mem_up : Rule.t
(** [(x,∈,c) ∧ (c,⊑,c') ⇒ (x,∈,c')] — §3.2 prose (see note above). *)

val syn_def : Rule.t
(** [(s,≈,t) ⇒ (s,⊑,t) ∧ (t,⊑,s)] — §3.3's definition of synonymy. *)

val syn_intro : Rule.t
(** [(s,⊑,t) ∧ (t,⊑,s) ⇒ (s,≈,t)] for [s ≠ t] — the converse direction. *)

val syn_source : Rule.t
(** [(s,r,t) ∧ (s,≈,s') ⇒ (s',r,t)] — §3.3 replacement, source position. *)

val syn_rel : Rule.t
(** [(s,r,t) ∧ (r,≈,r') ⇒ (s,r',t)] — §3.3 replacement, relationship. *)

val syn_target : Rule.t
(** [(s,r,t) ∧ (t,≈,t') ⇒ (s,r,t')] — §3.3 replacement, target position. *)

val inversion : Rule.t
(** [(s,r,t) ∧ (r,↔,r') ⇒ (t,r',s)] — §3.4. Symmetry of [↔] and [⊥]
    follows from the axiom facts [(↔,↔,↔)] and [(⊥,↔,⊥)] seeded by
    {!Database.create}. *)

(** All of the above, in a stable order. *)
val all : Rule.t list

(** Names of all builtin rules. *)
val names : string list

val find : string -> Rule.t option
