(** The §6 definition facility: "provide a definition facility to
    implement new retrieval operators, based on the standard query
    language".

    A definition is a named query with formal parameters. Invoking it
    binds the parameters to entities; the remaining free variables are
    the result columns. For instance:

    {v define salary_of(?who) := (?who, EARNS, ?s) & (?s, in, SALARY) v}

    The §6.1 [try] operator is likewise definable as a three-way
    disjunction of star templates over its parameter. *)

type t

exception Error of string

val create : unit -> t

(** [define t ~name ~params query] registers (or replaces) an operator.
    Raises {!Error} if a parameter is not a free variable of the query. *)
val define : t -> name:string -> params:string list -> Query.t -> unit

(** Parse a textual definition of the form
    ["name(?p1, ?p2) := query"] (the [?] on parameters is optional). *)
val define_text : Database.t -> t -> string -> unit

val remove : t -> string -> bool
val find : t -> string -> (string list * Query.t) option

(** [(name, params)] pairs, sorted by name. *)
val list : t -> (string * string list) list

(** [invoke db t name args] — evaluate the operator with the parameters
    bound to [args] (arity-checked). *)
val invoke :
  ?opts:Match_layer.opts -> Database.t -> t -> string -> Entity.t list -> Eval.answer

(** Convenience: arguments by name, interned. *)
val invoke_names :
  ?opts:Match_layer.opts -> Database.t -> t -> string -> string list -> Eval.answer

(** Render all definitions (for the browser's [ops] command). *)
val show : Symtab.t -> t -> string
