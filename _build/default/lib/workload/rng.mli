(** Deterministic SplitMix64 pseudo-random numbers: every workload is
    reproducible from its seed, so benchmark runs and property tests can
    be replayed exactly. *)

type t

val create : int -> t

(** Uniform in [0, bound). *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Pick one element. Raises on empty list. *)
val choose : t -> 'a list -> 'a

val choose_array : t -> 'a array -> 'a

(** In-place Fisher–Yates shuffle of a copy. *)
val shuffle : t -> 'a list -> 'a list

(** Raw 62-bit output (for splitting into substreams). *)
val bits : t -> int

val split : t -> t
