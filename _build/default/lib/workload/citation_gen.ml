type params = {
  books : int;
  authors : int;
  subjects : int;
  citations_per_book : int;
  skew : float;
}

let default_params =
  { books = 2000; authors = 400; subjects = 25; citations_per_book = 6; skew = 1.0 }

type t = {
  params : params;
  book_names : string array;
  author_names : string array;
  facts : (string * string * string) list;
}

let generate ?(params = default_params) rng =
  let book_names = Array.init params.books (Printf.sprintf "BOOK-%05d") in
  let author_names = Array.init params.authors (Printf.sprintf "AUTHOR-%04d") in
  let subject_names = Array.init params.subjects (Printf.sprintf "SUBJECT-%02d") in
  let zipf = Zipf.create ~n:params.books ~s:params.skew in
  let facts = ref [] in
  let add s r t = facts := (s, r, t) :: !facts in
  add "BOOK" "isa" "PUBLICATION";
  add "AUTHOR" "isa" "PERSON";
  add "CITES" "isa" "REFERENCES";
  add "WROTE" "inv" "AUTHORED-BY";
  Array.iter (fun subject -> add subject "isa" "TOPIC") subject_names;
  Array.iter (fun author -> add author "in" "AUTHOR") author_names;
  Array.iteri
    (fun i book ->
      add book "in" "BOOK";
      add book "ABOUT" subject_names.(Rng.int rng params.subjects);
      add (Rng.choose_array rng author_names) "WROTE" book;
      for _ = 1 to params.citations_per_book do
        (* Zipf-skewed: the classics accumulate citations. *)
        let target = book_names.(Zipf.sample zipf rng) in
        if target <> book then add book "CITES" target
      done;
      ignore i)
    book_names;
  { params; book_names; author_names; facts = List.rev !facts }

let to_database t =
  let db = Lsdb.Database.create () in
  List.iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t.facts;
  db

let fact_count t = List.length t.facts

let browsing_walk t rng ~hops =
  (* Walk the fact graph the way a §4.1 browser would: from a random
     book, repeatedly jump to some entity appearing in a neighboring
     fact. The walk is over the generated facts (no database needed), so
     benchmarks can replay the identical trail against any store. *)
  let adjacency = Hashtbl.create 1024 in
  List.iter
    (fun (s, _, tgt) ->
      let push a b =
        Hashtbl.replace adjacency a
          (b :: Option.value ~default:[] (Hashtbl.find_opt adjacency a))
      in
      push s tgt;
      push tgt s)
    t.facts;
  let start = Rng.choose_array rng t.book_names in
  let rec go current remaining acc =
    if remaining = 0 then List.rev acc
    else
      match Hashtbl.find_opt adjacency current with
      | Some (_ :: _ as neighbors) ->
          let next = Rng.choose rng neighbors in
          go next (remaining - 1) (next :: acc)
      | _ -> List.rev acc
  in
  go start hops [ start ]
