(** The university domain: students, courses, instructors and reified
    enrollments — the §2.6 pattern where the ternary fact "Tom got an A in
    CS100" becomes three binary facts through a fresh enrollment entity
    [E123]. Exercises reification, inversion (TEACHES/TAUGHT-BY) and
    composition (student —ENROLL— course —TAUGHT-BY— instructor). *)

type params = {
  students : int;
  courses : int;
  instructors : int;
  enrollments_per_student : int;
}

val default_params : params

type t = {
  params : params;
  student_names : string array;
  course_names : string array;
  instructor_names : string array;
  facts : (string * string * string) list;
}

val generate : ?params:params -> Rng.t -> t
val to_database : t -> Lsdb.Database.t
val fact_count : t -> int
