(* SplitMix64 (Steele, Lea, Flood 2014), on OCaml's 63-bit ints. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t = Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
let bool t = Int64.logand (next t) 1L = 1L

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | list -> List.nth list (int t (List.length list))

let choose_array t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose_array: empty array";
  arr.(int t (Array.length arr))

let shuffle t list =
  let arr = Array.of_list list in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = next t }
