(** Synthetic generalization hierarchies: balanced trees (optionally with
    extra cross links, making a DAG) of [⊑] facts, the backbone of the
    retraction experiments (B4) — wave cost depends directly on depth and
    fanout. *)

type t = {
  root : string;
  levels : string list array;  (** level 0 = root *)
  leaves : string list;
  facts : (string * string * string) list;  (** the ⊑ facts generated *)
}

(** [generate ~prefix ~depth ~fanout ?cross_links rng] — a tree of
    [depth] levels below the root, each node with [fanout] children;
    [cross_links] extra random child→ancestor edges (default 0). Node
    names are ["<prefix>-<level>-<index>"]. *)
val generate :
  ?cross_links:int -> prefix:string -> depth:int -> fanout:int -> Rng.t -> t

(** Insert the taxonomy's facts into a database. *)
val insert : Lsdb.Database.t -> t -> unit

val node_count : t -> int

(** A uniformly random node. *)
val random_node : t -> Rng.t -> string

val random_leaf : t -> Rng.t -> string
