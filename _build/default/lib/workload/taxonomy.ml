type t = {
  root : string;
  levels : string list array;
  leaves : string list;
  facts : (string * string * string) list;
}

let generate ?(cross_links = 0) ~prefix ~depth ~fanout rng =
  if depth < 1 then invalid_arg "Taxonomy.generate: depth must be >= 1";
  if fanout < 1 then invalid_arg "Taxonomy.generate: fanout must be >= 1";
  let root = Printf.sprintf "%s-0-0" prefix in
  let levels = Array.make (depth + 1) [] in
  levels.(0) <- [ root ];
  let facts = ref [] in
  for level = 1 to depth do
    let parents = Array.of_list levels.(level - 1) in
    let nodes = ref [] in
    Array.iteri
      (fun parent_idx parent ->
        for child = 0 to fanout - 1 do
          let node =
            Printf.sprintf "%s-%d-%d" prefix level ((parent_idx * fanout) + child)
          in
          nodes := node :: !nodes;
          facts := (node, "isa", parent) :: !facts
        done)
      parents;
    levels.(level) <- List.rev !nodes
  done;
  (* Cross links: an extra minimal-generalization edge from a random deep
     node to a random node at least two levels higher. *)
  for _ = 1 to cross_links do
    if depth >= 2 then begin
      let child_level = 2 + Rng.int rng (depth - 1) in
      let ancestor_level = Rng.int rng (child_level - 1) in
      let child = Rng.choose rng levels.(child_level) in
      let ancestor = Rng.choose rng levels.(ancestor_level) in
      facts := (child, "isa", ancestor) :: !facts
    end
  done;
  { root; levels; leaves = levels.(depth); facts = List.rev !facts }

let insert db t =
  List.iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t.facts

let node_count t = Array.fold_left (fun acc level -> acc + List.length level) 0 t.levels

let random_node t rng =
  let level = Rng.int rng (Array.length t.levels) in
  Rng.choose rng t.levels.(level)

let random_leaf t rng = Rng.choose rng t.leaves
