(** The bibliography domain at scale: books, authors, subjects and a
    Zipf-skewed citation graph (a few classics gather most citations —
    the §2.7 book database, grown to benchmark size). Drives the
    interactive-browsing experiment B12: neighborhood hops, try(e)
    lookups and association queries over a heap nobody organized. *)

type params = {
  books : int;
  authors : int;
  subjects : int;
  citations_per_book : int;
  skew : float;  (** Zipf exponent for citation targets *)
}

val default_params : params

type t = {
  params : params;
  book_names : string array;
  author_names : string array;
  facts : (string * string * string) list;
}

val generate : ?params:params -> Rng.t -> t
val to_database : t -> Lsdb.Database.t
val fact_count : t -> int

(** A random browsing step sequence: starting entity plus [hops] random
    neighbors to visit (deterministic in the rng). *)
val browsing_walk : t -> Rng.t -> hops:int -> string list
