(** Zipf-distributed sampling over ranks 0..n-1: real browsing workloads
    concentrate on popular entities, and the skew is what separates the
    indexed store from a scan in experiment B2. *)

type t

(** [create ~n ~s] — [n] ranks with exponent [s] (s = 0 is uniform;
    s ≈ 1 is the classical distribution). *)
val create : n:int -> s:float -> t

(** Sample a rank. *)
val sample : t -> Rng.t -> int

val n : t -> int

(** Probability of a rank (for tests). *)
val mass : t -> int -> float
