type t = { cumulative : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.0;
  { cumulative }

let n t = Array.length t.cumulative

let sample t rng =
  let u = Rng.float rng in
  (* First index with cumulative >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let mass t rank =
  if rank = 0 then t.cumulative.(0)
  else t.cumulative.(rank) -. t.cumulative.(rank - 1)
