(** Query workloads: random template and conjunctive queries over a
    database (drawn from its actual facts, so a tunable fraction is
    satisfiable), plus the misspelling injector for the probing
    experiments. *)

(** A random stored fact. *)
val random_fact : Lsdb.Database.t -> Rng.t -> Lsdb.Fact.t

(** [template db rng] — a template derived from a stored fact with each
    position independently turned into a variable with probability
    [var_prob] (default 1/3). *)
val template : ?var_prob:float -> Lsdb.Database.t -> Rng.t -> Lsdb.Template.t

(** [chain_query db rng ~length] — a conjunctive path query
    [(c0, r1, ?x1) ∧ (?x1, r2, ?x2) ∧ …] following [length] stored edges
    from a random start, so it is satisfiable by construction. *)
val chain_query : Lsdb.Database.t -> Rng.t -> length:int -> Lsdb.Query.t

(** [overqualified db rng taxonomy_leaf ~rel] — a query of the §5.2 shape
    [(class, rel, ?z)] using a hierarchy node one level too deep, built to
    fail and retract. *)
val class_query : Lsdb.Database.t -> class_:string -> rel:string -> Lsdb.Query.t

(** [misspell rng name] — damage a name (drop/duplicate/swap one
    character) so it no longer matches. *)
val misspell : Rng.t -> string -> string
