type params = {
  students : int;
  courses : int;
  instructors : int;
  enrollments_per_student : int;
}

let default_params =
  { students = 200; courses = 30; instructors = 15; enrollments_per_student = 4 }

type t = {
  params : params;
  student_names : string array;
  course_names : string array;
  instructor_names : string array;
  facts : (string * string * string) list;
}

let grades = [| "A"; "B"; "C"; "D"; "F" |]

let generate ?(params = default_params) rng =
  let student_names = Array.init params.students (Printf.sprintf "STU-%04d") in
  let course_names = Array.init params.courses (Printf.sprintf "CRS-%03d") in
  let instructor_names = Array.init params.instructors (Printf.sprintf "PROF-%02d") in
  let facts = ref [] in
  let add s r t = facts := (s, r, t) :: !facts in
  add "FRESHMAN" "isa" "STUDENT";
  add "STUDENT" "isa" "PERSON";
  add "INSTRUCTOR" "isa" "PERSON";
  add "TEACHES" "inv" "TAUGHT-BY";
  add "ENROLL-STUDENT" "inv" "ENROLLED-VIA";
  Array.iter (fun c -> add c "in" "COURSE") course_names;
  Array.iter
    (fun i ->
      add i "in" "INSTRUCTOR";
      ignore i)
    instructor_names;
  Array.iter
    (fun c -> add c "TAUGHT-BY" (Rng.choose_array rng instructor_names))
    course_names;
  let enrollment = ref 0 in
  Array.iteri
    (fun idx stu ->
      add stu "in" (if idx mod 4 = 0 then "FRESHMAN" else "STUDENT");
      for _ = 1 to params.enrollments_per_student do
        incr enrollment;
        let e = Printf.sprintf "E%05d" !enrollment in
        let course = Rng.choose_array rng course_names in
        add e "in" "ENROLLMENT";
        add e "ENROLL-STUDENT" stu;
        add e "ENROLL-COURSE" course;
        add e "ENROLL-GRADE" grades.(Rng.int rng (Array.length grades));
        (* The direct edge, so composition can bridge student to
           instructor in two hops. *)
        add stu "ENROLLED-IN" course
      done)
    student_names;
  { params; student_names; course_names; instructor_names; facts = List.rev !facts }

let to_database t =
  let db = Lsdb.Database.create () in
  List.iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t.facts;
  db

let fact_count t = List.length t.facts
