lib/workload/citation_gen.ml: Array Hashtbl List Lsdb Option Printf Rng Zipf
