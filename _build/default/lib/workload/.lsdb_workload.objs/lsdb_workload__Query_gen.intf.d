lib/workload/query_gen.mli: Lsdb Rng
