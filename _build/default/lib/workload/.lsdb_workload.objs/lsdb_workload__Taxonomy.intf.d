lib/workload/taxonomy.mli: Lsdb Rng
