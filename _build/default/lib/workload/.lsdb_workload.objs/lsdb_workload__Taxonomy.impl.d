lib/workload/taxonomy.ml: Array List Lsdb Printf Rng
