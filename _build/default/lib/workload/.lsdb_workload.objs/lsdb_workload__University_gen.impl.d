lib/workload/university_gen.ml: Array List Lsdb Printf Rng
