lib/workload/org_gen.mli: Lsdb Lsdb_relational Rng
