lib/workload/citation_gen.mli: Lsdb Rng
