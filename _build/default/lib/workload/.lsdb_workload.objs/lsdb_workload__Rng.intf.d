lib/workload/rng.mli:
