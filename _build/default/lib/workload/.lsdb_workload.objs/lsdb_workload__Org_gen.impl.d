lib/workload/org_gen.ml: Array Hashtbl List Lsdb Lsdb_relational Option Printf Rng Zipf
