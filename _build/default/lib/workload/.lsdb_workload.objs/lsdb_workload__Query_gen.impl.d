lib/workload/query_gen.ml: Bytes Database Fact List Lsdb Printf Query Rng Store String Template
