lib/workload/university_gen.mli: Lsdb Rng
