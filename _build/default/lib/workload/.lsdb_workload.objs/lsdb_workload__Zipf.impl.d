lib/workload/zipf.ml: Array Float Rng
