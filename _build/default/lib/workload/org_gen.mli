(** The organization domain at scale: employees, departments, managers and
    salaries — the paper's running example, generated to any size, both as
    a loosely structured heap and as the equivalent relational schema
    (EMP(name, dept, salary, manager)). The pair drives the
    organization-vs-retrieval trade-off experiments B1/B2/B5/B7. *)

type params = {
  employees : int;
  departments : int;
  salary_min : int;
  salary_max : int;
  skew : float;  (** Zipf exponent for department popularity *)
}

val default_params : params

type t = {
  params : params;
  employee_names : string array;
  department_names : string array;
  facts : (string * string * string) list;
}

val generate : ?params:params -> Rng.t -> t

(** A fresh loosely structured database holding the generated facts (plus
    the EMPLOYEE/DEPARTMENT class scaffolding and salary hierarchy). *)
val to_database : t -> Lsdb.Database.t

(** The same information as a structured catalog:
    [EMP(name, dept, salary, manager)] and [DEPT(name, head)]. *)
val to_catalog : t -> Lsdb_relational.Catalog.t

(** Fact count (for sweep labels). *)
val fact_count : t -> int
