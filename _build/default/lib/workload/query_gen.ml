open Lsdb

let random_fact db rng =
  let facts = Database.facts db in
  if facts = [] then invalid_arg "Query_gen.random_fact: empty database";
  Rng.choose rng facts

let template ?(var_prob = 1.0 /. 3.0) db rng =
  let fact = random_fact db rng in
  let fresh = ref 0 in
  let term e =
    if Rng.float rng < var_prob then begin
      incr fresh;
      Template.Var (Printf.sprintf "v%d" !fresh)
    end
    else Template.Ent e
  in
  Template.make (term (Fact.source fact)) (term (Fact.relationship fact))
    (term (Fact.target fact))

let chain_query db rng ~length =
  if length < 1 then invalid_arg "Query_gen.chain_query: length must be >= 1";
  let store = Database.store db in
  let start = random_fact db rng in
  let atoms = ref [ Template.make (Template.Ent (Fact.source start))
                      (Template.Ent (Fact.relationship start))
                      (Template.Var "x1") ] in
  let current = ref (Fact.target start) in
  (try
     for i = 2 to length do
       let nexts = Store.match_list store (Store.pattern ~s:!current ()) in
       match nexts with
       | [] -> raise Exit
       | _ ->
           let fact = Rng.choose rng nexts in
           atoms :=
             Template.make
               (Template.Var (Printf.sprintf "x%d" (i - 1)))
               (Template.Ent (Fact.relationship fact))
               (Template.Var (Printf.sprintf "x%d" i))
             :: !atoms;
           current := Fact.target fact
     done
   with Exit -> ());
  Query.conj (List.rev_map Query.atom !atoms)

let class_query db ~class_ ~rel =
  let e = Database.entity db in
  Query.atom
    (Template.make (Template.Ent (e class_)) (Template.Ent (e rel)) (Template.Var "z"))

let misspell rng name =
  let n = String.length name in
  if n < 2 then name ^ "X"
  else
    match Rng.int rng 3 with
    | 0 ->
        (* drop a character *)
        let i = Rng.int rng n in
        String.sub name 0 i ^ String.sub name (i + 1) (n - i - 1)
    | 1 ->
        (* duplicate a character *)
        let i = Rng.int rng n in
        String.sub name 0 (i + 1) ^ String.sub name i (n - i)
    | _ ->
        (* swap two adjacent characters *)
        let i = Rng.int rng (n - 1) in
        let b = Bytes.of_string name in
        let c = Bytes.get b i in
        Bytes.set b i (Bytes.get b (i + 1));
        Bytes.set b (i + 1) c;
        Bytes.to_string b
