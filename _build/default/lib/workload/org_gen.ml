type params = {
  employees : int;
  departments : int;
  salary_min : int;
  salary_max : int;
  skew : float;
}

let default_params =
  { employees = 1000; departments = 20; salary_min = 20_000; salary_max = 90_000; skew = 0.8 }

type t = {
  params : params;
  employee_names : string array;
  department_names : string array;
  facts : (string * string * string) list;
}

let generate ?(params = default_params) rng =
  if params.employees < 1 || params.departments < 1 then
    invalid_arg "Org_gen.generate: need at least one employee and department";
  let employee_names = Array.init params.employees (Printf.sprintf "EMP-%04d") in
  let department_names = Array.init params.departments (Printf.sprintf "DEPT-%02d") in
  let dept_zipf = Zipf.create ~n:params.departments ~s:params.skew in
  let facts = ref [] in
  let add s r t = facts := (s, r, t) :: !facts in
  (* Scaffolding the paper's §3 examples use. *)
  add "MANAGER" "isa" "EMPLOYEE";
  add "EMPLOYEE" "isa" "PERSON";
  add "SALARY" "isa" "COMPENSATION";
  add "EMPLOYEE" "EARNS" "SALARY";
  add "EMPLOYEE" "WORKS-FOR" "DEPARTMENT";
  add "WORKS-FOR" "isa" "IS-PAID-BY";
  Array.iter (fun d -> add d "in" "DEPARTMENT") department_names;
  (* One manager per department: the first employee assigned to it. *)
  let dept_manager = Array.make params.departments None in
  Array.iteri
    (fun i emp ->
      let dept_idx = Zipf.sample dept_zipf rng in
      let dept = department_names.(dept_idx) in
      add emp "in" "EMPLOYEE";
      add emp "WORKS-FOR" dept;
      let salary =
        params.salary_min + Rng.int rng (max 1 (params.salary_max - params.salary_min))
      in
      add emp "EARNS" (Printf.sprintf "$%d" salary);
      (match dept_manager.(dept_idx) with
      | None ->
          dept_manager.(dept_idx) <- Some emp;
          add emp "in" "MANAGER";
          add dept "HEADED-BY" emp
      | Some manager -> add emp "MANAGER" manager);
      ignore i)
    employee_names;
  { params; employee_names; department_names; facts = List.rev !facts }

let to_database t =
  let db = Lsdb.Database.create () in
  List.iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t.facts;
  db

let to_catalog t =
  let catalog = Lsdb_relational.Catalog.create () in
  let emp =
    Lsdb_relational.Catalog.create_relation catalog
      (Lsdb_relational.Schema.make ~name:"EMP"
         ~attributes:[ "name"; "dept"; "salary"; "manager" ])
  in
  let dept_rel =
    Lsdb_relational.Catalog.create_relation catalog
      (Lsdb_relational.Schema.make ~name:"DEPT" ~attributes:[ "name"; "head" ])
  in
  (* Rebuild rows from the fact stream. *)
  let works = Hashtbl.create 64 and earns = Hashtbl.create 64 in
  let manager = Hashtbl.create 64 and head = Hashtbl.create 16 in
  List.iter
    (fun (s, r, tgt) ->
      (* Rows are keyed by the generated names below, so scaffolding facts
         (EMPLOYEE, EARNS, SALARY) recorded here are simply never read. *)
      match r with
      | "WORKS-FOR" -> Hashtbl.replace works s tgt
      | "EARNS" -> Hashtbl.replace earns s tgt
      | "MANAGER" -> Hashtbl.replace manager s tgt
      | "HEADED-BY" -> Hashtbl.replace head s tgt
      | _ -> ())
    t.facts;
  Array.iter
    (fun emp_name ->
      let dept = Option.value ~default:"" (Hashtbl.find_opt works emp_name) in
      let salary = Option.value ~default:"" (Hashtbl.find_opt earns emp_name) in
      let mgr = Option.value ~default:"" (Hashtbl.find_opt manager emp_name) in
      ignore (Lsdb_relational.Relation.insert emp [| emp_name; dept; salary; mgr |]))
    t.employee_names;
  Array.iter
    (fun dept_name ->
      let h = Option.value ~default:"" (Hashtbl.find_opt head dept_name) in
      ignore (Lsdb_relational.Relation.insert dept_rel [| dept_name; h |]))
    t.department_names;
  catalog

let fact_count t = List.length t.facts
