lib/shell/shell.mli: Lsdb
