open Lsdb

let export db catalog ~instance_of ~columns =
  let view = View.relation_names db instance_of columns in
  let attributes =
    instance_of :: List.map (fun (r, t) -> Printf.sprintf "%s %s" r t) columns
  in
  let schema = Schema.make ~name:instance_of ~attributes in
  let relation = Catalog.create_relation catalog schema in
  let symtab = Database.symtab db in
  (* Non-1NF cells become one tuple per combination (unnest). *)
  let rec combinations = function
    | [] -> [ [] ]
    | cell :: rest ->
        let tails = combinations rest in
        let cell = if cell = [] then [ None ] else List.map (fun e -> Some e) cell in
        List.concat_map
          (fun v -> List.map (fun tail -> v :: tail) tails)
          cell
  in
  List.iter
    (fun row ->
      List.iter
        (fun combo ->
          let tuple =
            Array.of_list
              (List.map
                 (function Some e -> Symtab.name symtab e | None -> "")
                 combo)
          in
          ignore (Relation.insert relation tuple))
        (combinations row))
    view.View.rows;
  relation

let import db relation ~key =
  let schema = Relation.schema relation in
  let rel_name = Schema.name schema in
  let attrs = Schema.attributes schema in
  let inserted = ref 0 in
  let add s r t = if Database.insert_names db s r t then incr inserted in
  (match attrs with
  | [ a; b ] when String.equal a key ->
      (* Binary relation: attribute b becomes the relationship. *)
      Relation.iter (fun tuple -> add tuple.(0) b tuple.(1)) relation
  | _ ->
      let counter = ref 0 in
      Relation.iter
        (fun tuple ->
          incr counter;
          let row_entity = Printf.sprintf "%s#%d" rel_name !counter in
          add row_entity "in" rel_name;
          List.iteri
            (fun i attr ->
              if tuple.(i) <> "" then
                if String.equal attr key then add row_entity key tuple.(i)
                else add row_entity attr tuple.(i))
            attrs)
        relation);
  !inserted

let import_catalog db catalog ~keys =
  List.fold_left
    (fun acc name ->
      let relation = Catalog.relation catalog name in
      let key =
        match List.assoc_opt name keys with
        | Some k -> k
        | None -> List.hd (Schema.attributes (Relation.schema relation))
      in
      acc + import db relation ~key)
    0 (Catalog.relation_names catalog)
