(** Relational algebra over {!Relation}: the schema-directed query
    machinery a structured database offers — and which requires knowing
    the schema, the paper's core criticism (§1, §4). All operators
    produce fresh relations. *)

exception Incompatible of string

(** [select r pred] — tuples satisfying the predicate (given the source
    relation for field access). *)
val select : Relation.t -> (Relation.t -> string array -> bool) -> Relation.t

(** [select_eq r ~attr ~value] — indexed equality selection. *)
val select_eq : Relation.t -> attr:string -> value:string -> Relation.t

(** [project r attrs] — duplicate-eliminating projection; result relation
    is named ["π(<name>)"]. *)
val project : Relation.t -> string list -> Relation.t

(** [rename r ~from ~to_]. *)
val rename : Relation.t -> from:string -> to_:string -> Relation.t

(** Natural join on all shared attribute names (hash join on the first
    shared attribute). Raises {!Incompatible} when no attribute is
    shared. *)
val natural_join : Relation.t -> Relation.t -> Relation.t

(** Set operations; schemas must have identical attribute lists. *)
val union : Relation.t -> Relation.t -> Relation.t

val difference : Relation.t -> Relation.t -> Relation.t
val intersection : Relation.t -> Relation.t -> Relation.t
