(** The catalog of a structured database: named relations plus the DDL a
    schema-full architecture requires — exactly the "investment in
    organization" side of the paper's trade-off (§1). Restructuring
    operations report how many tuples they had to rewrite, the currency
    of experiment B7. *)

type t

exception No_such_relation of string
exception Already_exists of string

val create : unit -> t
val create_relation : t -> Schema.t -> Relation.t
val relation : t -> string -> Relation.t
val find : t -> string -> Relation.t option
val drop_relation : t -> string -> unit
val relation_names : t -> string list

(** Total tuples across all relations. *)
val total_tuples : t -> int

(** {1 Restructuring (B7)} — each returns the number of tuples rewritten. *)

(** Add an attribute, filling existing tuples with [default]. *)
val add_attribute : t -> relation:string -> attr:string -> default:string -> int

val drop_attribute : t -> relation:string -> attr:string -> int

val rename_attribute : t -> relation:string -> from:string -> to_:string -> int

(** Vertical split: relation R(K, rest) becomes R1(K, attrs) and
    R2(K, rest∖attrs), joined on key [key]. The original is dropped. *)
val split_relation :
  t -> relation:string -> key:string -> attrs:string list -> into:string * string -> int
