type t = { relations : (string, Relation.t) Hashtbl.t }

exception No_such_relation of string
exception Already_exists of string

let create () = { relations = Hashtbl.create 16 }

let create_relation t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.relations name then raise (Already_exists name);
  let r = Relation.create schema in
  Hashtbl.add t.relations name r;
  r

let relation t name =
  match Hashtbl.find_opt t.relations name with
  | Some r -> r
  | None -> raise (No_such_relation name)

let find t name = Hashtbl.find_opt t.relations name

let drop_relation t name =
  if not (Hashtbl.mem t.relations name) then raise (No_such_relation name);
  Hashtbl.remove t.relations name

let relation_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.relations [] |> List.sort String.compare

let total_tuples t =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) t.relations 0

let replace t name r = Hashtbl.replace t.relations name r

let add_attribute t ~relation:name ~attr ~default =
  let r = relation t name in
  let fresh = Relation.create (Schema.add (Relation.schema r) attr) in
  let rewritten = ref 0 in
  Relation.iter
    (fun tuple ->
      ignore (Relation.insert fresh (Array.append tuple [| default |]));
      incr rewritten)
    r;
  replace t name fresh;
  !rewritten

let drop_attribute t ~relation:name ~attr =
  let r = relation t name in
  let schema = Relation.schema r in
  let keep =
    List.filter (fun a -> not (String.equal a attr)) (Schema.attributes schema)
  in
  let positions =
    List.map (fun a -> Option.get (Schema.index_of schema a)) keep
  in
  let fresh = Relation.create (Schema.make ~name ~attributes:keep) in
  let rewritten = ref 0 in
  Relation.iter
    (fun tuple ->
      ignore
        (Relation.insert fresh (Array.of_list (List.map (fun i -> tuple.(i)) positions)));
      incr rewritten)
    r;
  replace t name fresh;
  !rewritten

let rename_attribute t ~relation:name ~from ~to_ =
  let r = relation t name in
  let fresh = Relation.create (Schema.rename (Relation.schema r) ~from ~to_) in
  let rewritten = ref 0 in
  Relation.iter
    (fun tuple ->
      ignore (Relation.insert fresh tuple);
      incr rewritten)
    r;
  replace t name fresh;
  !rewritten

let split_relation t ~relation:name ~key ~attrs ~into:(left_name, right_name) =
  let r = relation t name in
  let schema = Relation.schema r in
  if Hashtbl.mem t.relations left_name then raise (Already_exists left_name);
  if Hashtbl.mem t.relations right_name then raise (Already_exists right_name);
  let left_attrs = key :: List.filter (fun a -> not (String.equal a key)) attrs in
  let right_attrs =
    key
    :: List.filter
         (fun a -> (not (String.equal a key)) && not (List.mem a attrs))
         (Schema.attributes schema)
  in
  let pick attrs tuple =
    Array.of_list
      (List.map (fun a -> tuple.(Option.get (Schema.index_of schema a))) attrs)
  in
  let left = Relation.create (Schema.make ~name:left_name ~attributes:left_attrs) in
  let right = Relation.create (Schema.make ~name:right_name ~attributes:right_attrs) in
  let rewritten = ref 0 in
  Relation.iter
    (fun tuple ->
      ignore (Relation.insert left (pick left_attrs tuple));
      ignore (Relation.insert right (pick right_attrs tuple));
      rewritten := !rewritten + 2)
    r;
  Hashtbl.remove t.relations name;
  Hashtbl.add t.relations left_name left;
  Hashtbl.add t.relations right_name right;
  !rewritten
