(** Converters between the two architectures.

    Exporting a heap into relations needs a schema choice (that is the
    point); importing relations into a heap needs none — wide tuples are
    reified through a fresh row entity, the §2.6 [E123] pattern. *)

(** [export db catalog ~relation ~instance_of ~columns] materializes the
    §6.1 relation view as a typed relation (first attribute named after
    the class; non-1NF cells explode into multiple tuples). Returns the
    relation. *)
val export :
  Lsdb.Database.t ->
  Catalog.t ->
  instance_of:string ->
  columns:(string * string) list ->
  Relation.t

(** [import db relation ~key] inserts the relation's tuples as facts:
    binary relations import directly as [(key-value, attr, value)]; wider
    ones reify each row as a fresh entity [R#i] with one fact per
    attribute, plus [(row, ∈, R)]. Returns how many facts were inserted. *)
val import : Lsdb.Database.t -> Relation.t -> key:string -> int

(** [import_catalog db catalog ~keys] imports every relation; [keys] maps
    relation name to key attribute (defaults to the first attribute). *)
val import_catalog : Lsdb.Database.t -> Catalog.t -> keys:(string * string) list -> int
