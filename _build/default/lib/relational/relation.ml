exception Arity_mismatch of { relation : string; expected : int; got : int }

module Tuple = struct
  type t = string array

  let equal a b = Array.length a = Array.length b && Array.for_all2 String.equal a b

  let hash t =
    Array.fold_left (fun acc s -> (acc * 31) + Hashtbl.hash s) 17 t land max_int
end

module Tuple_tbl = Hashtbl.Make (Tuple)

type t = {
  schema : Schema.t;
  tuples : unit Tuple_tbl.t;
  indexes : (string, string array list ref) Hashtbl.t array;
      (* per attribute position: value -> tuples *)
}

let create schema =
  {
    schema;
    tuples = Tuple_tbl.create 64;
    indexes = Array.init (Schema.arity schema) (fun _ -> Hashtbl.create 64);
  }

let schema t = t.schema
let cardinal t = Tuple_tbl.length t.tuples

let check_arity t tuple =
  let expected = Schema.arity t.schema in
  if Array.length tuple <> expected then
    raise
      (Arity_mismatch
         { relation = Schema.name t.schema; expected; got = Array.length tuple })

let index_add t tuple =
  Array.iteri
    (fun i idx ->
      let v = tuple.(i) in
      match Hashtbl.find_opt idx v with
      | Some cell -> cell := tuple :: !cell
      | None -> Hashtbl.add idx v (ref [ tuple ]))
    t.indexes

let index_remove t tuple =
  Array.iteri
    (fun i idx ->
      let v = tuple.(i) in
      match Hashtbl.find_opt idx v with
      | Some cell ->
          cell := List.filter (fun u -> not (Tuple.equal u tuple)) !cell;
          if !cell = [] then Hashtbl.remove idx v
      | None -> ())
    t.indexes

let insert t tuple =
  check_arity t tuple;
  if Tuple_tbl.mem t.tuples tuple then false
  else begin
    let tuple = Array.copy tuple in
    Tuple_tbl.add t.tuples tuple ();
    index_add t tuple;
    true
  end

let delete t tuple =
  check_arity t tuple;
  if not (Tuple_tbl.mem t.tuples tuple) then false
  else begin
    Tuple_tbl.remove t.tuples tuple;
    index_remove t tuple;
    true
  end

let mem t tuple =
  check_arity t tuple;
  Tuple_tbl.mem t.tuples tuple

let iter f t = Tuple_tbl.iter (fun tuple () -> f tuple) t.tuples
let to_list t = Tuple_tbl.fold (fun tuple () acc -> tuple :: acc) t.tuples []

let attr_index t attr =
  match Schema.index_of t.schema attr with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Relation.lookup: %s has no attribute %s"
           (Schema.name t.schema) attr)

let lookup t ~attr ~value =
  let i = attr_index t attr in
  match Hashtbl.find_opt t.indexes.(i) value with
  | Some cell -> !cell
  | None -> []

let field t tuple attr = tuple.(attr_index t attr)

let copy t =
  let fresh = create t.schema in
  iter (fun tuple -> ignore (insert fresh tuple)) t;
  fresh

let render t =
  let rows = List.map Array.to_list (to_list t) in
  let rows = List.sort compare rows in
  Lsdb.Pretty.grid ~title:(Schema.name t.schema) ~headers:(Schema.attributes t.schema) rows
