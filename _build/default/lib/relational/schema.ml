type t = { name : string; attributes : string list }

exception Bad_schema of string

let validate name attributes =
  if attributes = [] then raise (Bad_schema (name ^ ": no attributes"));
  let seen = Hashtbl.create 8 in
  List.iter
    (fun attr ->
      if attr = "" then raise (Bad_schema (name ^ ": empty attribute name"));
      if Hashtbl.mem seen attr then
        raise (Bad_schema (Printf.sprintf "%s: duplicate attribute %s" name attr));
      Hashtbl.add seen attr ())
    attributes

let make ~name ~attributes =
  validate name attributes;
  { name; attributes }

let name t = t.name
let attributes t = t.attributes
let arity t = List.length t.attributes

let index_of t attr =
  let rec go i = function
    | [] -> None
    | a :: rest -> if String.equal a attr then Some i else go (i + 1) rest
  in
  go 0 t.attributes

let has_attribute t attr = index_of t attr <> None

let equal a b =
  String.equal a.name b.name
  && List.length a.attributes = List.length b.attributes
  && List.for_all2 String.equal a.attributes b.attributes

let rename t ~from ~to_ =
  if not (has_attribute t from) then
    raise (Bad_schema (Printf.sprintf "%s: no attribute %s" t.name from));
  make ~name:t.name
    ~attributes:(List.map (fun a -> if String.equal a from then to_ else a) t.attributes)

let add t attr = make ~name:t.name ~attributes:(t.attributes @ [ attr ])

let drop t attr =
  if not (has_attribute t attr) then
    raise (Bad_schema (Printf.sprintf "%s: no attribute %s" t.name attr));
  make ~name:t.name
    ~attributes:(List.filter (fun a -> not (String.equal a attr)) t.attributes)

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.name (String.concat ", " t.attributes)
