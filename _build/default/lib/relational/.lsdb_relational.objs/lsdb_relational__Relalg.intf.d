lib/relational/relalg.mli: Relation
