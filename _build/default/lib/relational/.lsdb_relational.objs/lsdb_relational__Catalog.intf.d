lib/relational/catalog.mli: Relation Schema
