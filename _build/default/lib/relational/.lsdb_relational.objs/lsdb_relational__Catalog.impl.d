lib/relational/catalog.ml: Array Hashtbl List Option Relation Schema String
