lib/relational/bridge.mli: Catalog Lsdb Relation
