lib/relational/relation.ml: Array Hashtbl List Lsdb Printf Schema String
