lib/relational/schema.ml: Format Hashtbl List Printf String
