lib/relational/relation.mli: Schema
