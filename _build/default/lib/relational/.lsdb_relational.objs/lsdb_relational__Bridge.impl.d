lib/relational/bridge.ml: Array Catalog Database List Lsdb Printf Relation Schema String Symtab View
