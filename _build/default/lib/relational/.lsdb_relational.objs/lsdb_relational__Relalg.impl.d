lib/relational/relalg.ml: Array List Printf Relation Schema String
