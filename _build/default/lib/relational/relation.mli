(** A typed relation instance: a schema plus a set of tuples. Tuples are
    string arrays positionally matching the schema; duplicates are
    eliminated (set semantics). A hash index per attribute supports the
    baseline's fast schema-directed lookups (the very thing the paper
    says organization buys you). *)

type t

exception Arity_mismatch of { relation : string; expected : int; got : int }

val create : Schema.t -> t
val schema : t -> Schema.t
val cardinal : t -> int

(** [true] iff new. Raises {!Arity_mismatch}. *)
val insert : t -> string array -> bool

val delete : t -> string array -> bool
val mem : t -> string array -> bool
val iter : (string array -> unit) -> t -> unit
val to_list : t -> string array list

(** [lookup t ~attr ~value] — tuples whose attribute equals the value,
    via the per-attribute index. *)
val lookup : t -> attr:string -> value:string -> string array list

(** Attribute value of a tuple. *)
val field : t -> string array -> string -> string

val copy : t -> t
val render : t -> string
