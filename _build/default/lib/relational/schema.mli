(** Relation schemas for the structured baseline: the "highly structured
    aggregates of data" the paper contrasts with (§1). A schema is a
    relation name plus an ordered list of distinct attribute names. *)

type t

exception Bad_schema of string

(** Raises {!Bad_schema} on duplicate or empty attribute names. *)
val make : name:string -> attributes:string list -> t

val name : t -> string
val attributes : t -> string list
val arity : t -> int

(** Position of an attribute. *)
val index_of : t -> string -> int option

val has_attribute : t -> string -> bool
val equal : t -> t -> bool

(** [rename t ~from ~to_] — a schema with one attribute renamed. *)
val rename : t -> from:string -> to_:string -> t

(** [add t attr] / [drop t attr] — schema evolution primitives (B7). *)
val add : t -> string -> t

val drop : t -> string -> t

val pp : Format.formatter -> t -> unit
