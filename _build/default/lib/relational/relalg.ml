exception Incompatible of string

let select r pred =
  let out = Relation.create (Relation.schema r) in
  Relation.iter (fun tuple -> if pred r tuple then ignore (Relation.insert out tuple)) r;
  out

let select_eq r ~attr ~value =
  let out = Relation.create (Relation.schema r) in
  List.iter
    (fun tuple -> ignore (Relation.insert out tuple))
    (Relation.lookup r ~attr ~value);
  out

let project r attrs =
  let schema = Relation.schema r in
  let positions =
    List.map
      (fun attr ->
        match Schema.index_of schema attr with
        | Some i -> i
        | None ->
            raise
              (Incompatible
                 (Printf.sprintf "project: %s has no attribute %s" (Schema.name schema) attr)))
      attrs
  in
  let out =
    Relation.create
      (Schema.make ~name:(Printf.sprintf "π(%s)" (Schema.name schema)) ~attributes:attrs)
  in
  Relation.iter
    (fun tuple ->
      ignore (Relation.insert out (Array.of_list (List.map (fun i -> tuple.(i)) positions))))
    r;
  out

let rename r ~from ~to_ =
  let out = Relation.create (Schema.rename (Relation.schema r) ~from ~to_) in
  Relation.iter (fun tuple -> ignore (Relation.insert out tuple)) r;
  out

let natural_join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = List.filter (Schema.has_attribute sb) (Schema.attributes sa) in
  if shared = [] then
    raise
      (Incompatible
         (Printf.sprintf "natural_join: %s and %s share no attribute" (Schema.name sa)
            (Schema.name sb)));
  let b_only =
    List.filter (fun attr -> not (Schema.has_attribute sa attr)) (Schema.attributes sb)
  in
  let out_schema =
    Schema.make
      ~name:(Printf.sprintf "%s⋈%s" (Schema.name sa) (Schema.name sb))
      ~attributes:(Schema.attributes sa @ b_only)
  in
  let out = Relation.create out_schema in
  let first_shared = List.hd shared in
  Relation.iter
    (fun ta ->
      let probe = Relation.field a ta first_shared in
      List.iter
        (fun tb ->
          let agree =
            List.for_all
              (fun attr -> String.equal (Relation.field a ta attr) (Relation.field b tb attr))
              shared
          in
          if agree then begin
            let extras = List.map (fun attr -> Relation.field b tb attr) b_only in
            ignore (Relation.insert out (Array.append ta (Array.of_list extras)))
          end)
        (Relation.lookup b ~attr:first_shared ~value:probe))
    a;
  out

let check_union_compatible what a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  if
    not
      (List.length (Schema.attributes sa) = List.length (Schema.attributes sb)
      && List.for_all2 String.equal (Schema.attributes sa) (Schema.attributes sb))
  then
    raise
      (Incompatible
         (Printf.sprintf "%s: %s and %s have different attributes" what (Schema.name sa)
            (Schema.name sb)))

let union a b =
  check_union_compatible "union" a b;
  let out = Relation.copy a in
  Relation.iter (fun tuple -> ignore (Relation.insert out tuple)) b;
  out

let difference a b =
  check_union_compatible "difference" a b;
  let out = Relation.create (Relation.schema a) in
  Relation.iter (fun tuple -> if not (Relation.mem b tuple) then ignore (Relation.insert out tuple)) a;
  out

let intersection a b =
  check_union_compatible "intersection" a b;
  let out = Relation.create (Relation.schema a) in
  Relation.iter (fun tuple -> if Relation.mem b tuple then ignore (Relation.insert out tuple)) a;
  out
