open Lsdb
open Testutil

let broader_strings db query =
  let b = Broadness.compute db in
  Retraction.retraction_set db b query
  |> List.map (fun (br : Retraction.broader) ->
         Query.to_string (Database.symtab db) br.Retraction.query)
  |> List.sort String.compare

let tests =
  [
    test "EX2: the opera query's minimally broader set (§5.1)" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(?z, LOVES, OPERA)" in
        Alcotest.(check (list string)) "three broader queries"
          [ "(?z, ENJOYS, OPERA)"; "(?z, LOVES, MUSIC)"; "(?z, LOVES, THEATER)" ]
          (broader_strings db query));
    test "EX3: the students/FREE query generates the §5.2 retraction set" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)" in
        let broader = broader_strings db query in
        Alcotest.(check (list string)) "four broader queries"
          [
            "(FRESHMAN, LOVE, ?z) ∧ (?z, COSTS, FREE)";
            "(STUDENT, LIKE, ?z) ∧ (?z, COSTS, FREE)";
            "(STUDENT, LOVE, ?z) ∧ (?z, COSTS, CHEAP)";
            "(STUDENT, LOVE, ?z) ∧ (?z, Δ, FREE)";
          ]
          broader);
    test "broadness soundness: Q ⇒ Q' (answers only grow)" (fun () ->
        let db = Paper_examples.campus () in
        let b = Broadness.compute db in
        let queries =
          [
            "(?z, LOVES, OPERA)";
            "(FRESHMAN, LOVE, ?z)";
            "(?z, ENJOYS, ?w)";
            "(STUDENT, LOVE, ?z) & (?z, COSTS, CHEAP)";
          ]
        in
        List.iter
          (fun text ->
            let query = q db text in
            let original =
              (Eval.eval db query).Eval.rows |> List.map Array.to_list
            in
            List.iter
              (fun (br : Retraction.broader) ->
                let broader_rows =
                  (Eval.eval db br.Retraction.query).Eval.rows |> List.map Array.to_list
                in
                List.iter
                  (fun row ->
                    if not (List.mem row broader_rows) then
                      Alcotest.failf "broadening %s lost answer row" text)
                  original)
              (Retraction.retraction_set db b query))
          queries);
    test "source position specializes (FRESHMAN for STUDENT), not generalizes"
      (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(STUDENT, LOVE, ?z)" in
        let b = Broadness.compute db in
        let steps =
          Retraction.retraction_set db b query
          |> List.filter_map (fun (br : Retraction.broader) ->
                 match br.Retraction.step with
                 | Retraction.Replace { position = Retraction.Source; by; _ } ->
                     Some (Database.entity_name db by)
                 | _ -> None)
        in
        Alcotest.(check (list string)) "freshman only" [ "FRESHMAN" ] steps);
    test "generalize policy sends sources toward Δ" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(FRESHMAN, LOVE, ?z)" in
        let b = Broadness.compute db in
        let policy = { Retraction.source_mode = `Generalize } in
        let sources =
          Retraction.retraction_set ~policy db b query
          |> List.filter_map (fun (br : Retraction.broader) ->
                 match br.Retraction.step with
                 | Retraction.Replace { position = Retraction.Source; by; _ } ->
                     Some (Database.entity_name db by)
                 | _ -> None)
        in
        Alcotest.(check (list string)) "student" [ "STUDENT" ] sources);
    test "comparators and extremes are not substituted" (fun () ->
        let db = db_of [ ("X", "EARNS", "100") ] in
        let query = q db "(?z, EARNS, ?y) & (?y, gt, 50)" in
        let b = Broadness.compute db in
        List.iter
          (fun (br : Retraction.broader) ->
            match br.Retraction.step with
            | Retraction.Replace { replaced; _ } ->
                if Entity.is_comparator replaced then
                  Alcotest.fail "comparator was substituted"
            | Retraction.Delete_atom _ -> ())
          (Retraction.retraction_set db b query));
    test "weak templates are broadened by deletion (§5.2)" (fun () ->
        let db = Paper_examples.campus () in
        (* (?z, Δ, FREE) is not weak (FREE is real), but (?z, Δ, ?w) is. *)
        let weak = Template.make (Template.Var "z") (Template.Ent Entity.top) (Template.Var "w") in
        Alcotest.(check bool) "weak" true (Retraction.is_weak weak);
        let query =
          Query.conj [ q db "(STUDENT, LOVE, ?z)"; Query.atom weak ]
        in
        let b = Broadness.compute db in
        let has_deletion =
          List.exists
            (fun (br : Retraction.broader) ->
              match br.Retraction.step with
              | Retraction.Delete_atom { atom_index = 1; _ } -> true
              | _ -> false)
            (Retraction.retraction_set db b query)
        in
        Alcotest.(check bool) "deletion offered" true has_deletion);
    test "describe renders the paper's phrasing" (fun () ->
        let db = Paper_examples.campus () in
        let step =
          Retraction.Replace
            {
              atom_index = 0;
              position = Retraction.Source;
              replaced = Database.entity db "STUDENT";
              by = Database.entity db "FRESHMAN";
            }
        in
        Alcotest.(check string) "description" "FRESHMAN instead of STUDENT (source)"
          (Retraction.describe db step));
    test "retraction sets are deduplicated" (fun () ->
        (* Two atoms both mentioning OPERA at the same position would
           generate the same broader query twice without dedup. *)
        let db = Paper_examples.campus () in
        let query = q db "(?z, LOVES, OPERA) & (?z, LOVES, OPERA)" in
        let b = Broadness.compute db in
        let set = Retraction.retraction_set db b query in
        let texts =
          List.map
            (fun (br : Retraction.broader) ->
              Query.to_string (Database.symtab db) br.Retraction.query)
            set
        in
        Alcotest.(check int) "no duplicates" (List.length texts)
          (List.length (List.sort_uniq String.compare texts)));
  ]
