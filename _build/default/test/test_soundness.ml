(* Cross-layer soundness properties on structured random workloads. *)

open Lsdb
open Testutil

let university rng =
  Lsdb_workload.University_gen.generate
    ~params:
      {
        Lsdb_workload.University_gen.students = 15;
        courses = 5;
        instructors = 3;
        enrollments_per_student = 2;
      }
    rng

let tests =
  [
    test "every enumerated composition path actually walks" (fun () ->
        let rng = Lsdb_workload.Rng.create 31 in
        let db = Lsdb_workload.University_gen.to_database (university rng) in
        Database.set_limit db 3;
        let closure = Database.closure db in
        let actives = List.of_seq (Closure.active_entities closure) in
        let sources = List.filteri (fun i _ -> i mod 7 = 0) actives in
        List.iter
          (fun src ->
            List.iter
              (fun tgt ->
                List.iter
                  (fun (path : Composition.path) ->
                    (* Walking the chain from the source must reach the
                       target. *)
                    let reached = Composition.walk db ~chain:path.Composition.chain ~src in
                    if not (List.exists (Entity.equal tgt) reached) then
                      Alcotest.failf "path does not walk: %s"
                        (String.concat "·"
                           (List.map (Database.entity_name db) path.Composition.chain)))
                  (Composition.paths db ~src ~tgt))
              (List.filteri (fun i _ -> i mod 11 = 0) actives))
          sources);
    test "probing successes are genuinely satisfiable and licensed" (fun () ->
        (* For a batch of failing class-level queries, every reported
           success must (a) evaluate non-empty and (b) be reachable from
           the original by the reported steps. *)
        let db = Paper_examples.campus () in
        let queries =
          [
            "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";
            "(FRESHMAN, LIKE, ?z) & (?z, COSTS, ?c)";
            "(STUDENT, LOVES, OPERA)";
          ]
        in
        List.iter
          (fun text ->
            match Probing.probe db (q db text) with
            | Probing.Answered _ -> ()
            | Probing.Exhausted _ -> ()
            | Probing.Retracted { successes; _ } ->
                List.iter
                  (fun success ->
                    Alcotest.(check bool) "non-empty" true
                      (success.Probing.answer.Eval.rows <> []);
                    Alcotest.(check bool) "fresh evaluation agrees" true
                      ((Eval.eval db success.Probing.query).Eval.rows <> []);
                    Alcotest.(check bool) "has steps" true (success.Probing.steps <> []))
                  successes)
          queries);
    test "engine premises are reported in body order" (fun () ->
        let open Lsdb_datalog in
        let v i = Term.Var i and c x = Term.Const x in
        let rule =
          Rule.make ~name:"chain"
            ~body:[ Atom.make (v 0) (c 7) (v 1); Atom.make (v 1) (c 8) (v 2) ]
            ~heads:[ Atom.make (v 0) (c 9) (v 2) ]
            ()
        in
        let base = [ Triple.make 1 7 2; Triple.make 2 8 3 ] in
        let result = Engine.closure [ rule ] (List.to_seq base) in
        match Triple.Tbl.find_opt result.provenance (Triple.make 1 9 3) with
        | Some { Engine.premises = [ p1; p2 ]; _ } ->
            Alcotest.(check bool) "first premise is body atom 0" true
              (Triple.equal p1 (Triple.make 1 7 2));
            Alcotest.(check bool) "second premise is body atom 1" true
              (Triple.equal p2 (Triple.make 2 8 3))
        | _ -> Alcotest.fail "expected two premises");
    test "explain trees ground out in stored or virtual facts" (fun () ->
        let db = Paper_examples.organization () in
        let closure = Database.closure db in
        (* Every derived fact's tree must terminate with Stored/Virtual
           leaves. *)
        let checked = ref 0 in
        Closure.iter
          (fun fact ->
            if Closure.is_derived closure fact && !checked < 200 then begin
              incr checked;
              let tree = Explain.explain db fact in
              let rec leaves t =
                match t.Explain.premises with
                | [] -> [ t.Explain.source ]
                | premises -> List.concat_map leaves premises
              in
              List.iter
                (fun source ->
                  match source with
                  | Explain.Stored | Explain.Virtual | Explain.Derived _ -> ()
                  | Explain.Composed | Explain.Unknown ->
                      Alcotest.fail "derivation tree has a non-grounded leaf")
                (leaves tree)
            end)
          closure;
        Alcotest.(check bool) "examined some" true (!checked > 10));
    test "incremental extension keeps provenance for new derivations" (fun () ->
        let db = db_of [ ("EMPLOYEE", "EARNS", "SALARY") ] in
        ignore (Database.closure db);
        ignore (Database.insert_names db "EVE" "in" "EMPLOYEE");
        let closure = Database.closure db in
        match Closure.provenance closure (fact db ("EVE", "EARNS", "SALARY")) with
        | Some ("mem-source", premises) ->
            Alcotest.(check int) "two premises" 2 (List.length premises)
        | Some (rule, _) -> Alcotest.failf "unexpected rule %s" rule
        | None -> Alcotest.fail "no provenance after extension");
    test "incremental extension handles new inversion facts" (fun () ->
        let db = db_of [ ("HARRY", "TEACHES", "CS100") ] in
        ignore (Database.closure db);
        ignore (Database.insert_names db "TEACHES" "inv" "TAUGHT-BY");
        check_holds db "inverted after extension" ("CS100", "TAUGHT-BY", "HARRY");
        ignore (Database.insert_names db "SALLY" "TEACHES" "ART1");
        check_holds db "new base fact inverted too" ("ART1", "TAUGHT-BY", "SALLY"));
    test "view rows are sound: every cell entity satisfies the defining query"
      (fun () ->
        let rng = Lsdb_workload.Rng.create 77 in
        let org =
          Lsdb_workload.Org_gen.generate
            ~params:{ Lsdb_workload.Org_gen.default_params with employees = 40 }
            rng
        in
        let db = Lsdb_workload.Org_gen.to_database org in
        let view =
          View.relation_names db "EMPLOYEE" [ ("WORKS-FOR", "DEPARTMENT") ]
        in
        List.iter
          (fun row ->
            match row with
            | [ [ emp ]; depts ] ->
                List.iter
                  (fun dept ->
                    Alcotest.(check bool) "works-for holds" true
                      (Database.mem db (Fact.make emp (Database.entity db "WORKS-FOR") dept));
                    Alcotest.(check bool) "department membership holds" true
                      (Database.mem db
                         (Fact.make dept Entity.member (Database.entity db "DEPARTMENT"))))
                  depts
            | _ -> Alcotest.fail "unexpected row shape")
          view.View.rows);
  ]
