open Lsdb
open Testutil

let v = Template.Var "x"
let w = Template.Var "y"

let tests =
  [
    test "vars and distinct_vars" (fun () ->
        let tpl = Template.make v (Template.Var "x") w in
        Alcotest.(check (list string)) "vars" [ "x"; "x"; "y" ] (Template.vars tpl);
        Alcotest.(check (list string)) "distinct" [ "x"; "y" ] (Template.distinct_vars tpl));
    test "ground templates convert to facts" (fun () ->
        let tpl = Template.make (Template.Ent 1) (Template.Ent 2) (Template.Ent 3) in
        Alcotest.(check bool) "ground" true (Template.is_ground tpl);
        Alcotest.(check bool) "fact" true (Template.to_fact tpl = Some (Fact.make 1 2 3));
        let open_tpl = Template.make v (Template.Ent 2) (Template.Ent 3) in
        Alcotest.(check bool) "open" false (Template.is_ground open_tpl);
        Alcotest.(check bool) "no fact" true (Template.to_fact open_tpl = None));
    test "matches binds variables consistently" (fun () ->
        (* (x, CITES, x) must only match self-citations — the §2.7 example. *)
        let self = Template.make v (Template.Ent 9) v in
        Alcotest.(check bool) "self-citation" true
          (Template.matches self (Fact.make 4 9 4) = Some [ ("x", 4) ]);
        Alcotest.(check bool) "not self" true
          (Template.matches self (Fact.make 4 9 5) = None);
        Alcotest.(check bool) "wrong relationship" true
          (Template.matches self (Fact.make 4 8 4) = None));
    test "matches returns bindings in position order" (fun () ->
        let tpl = Template.make v (Template.Ent 1) w in
        Alcotest.(check bool) "bindings" true
          (Template.matches tpl (Fact.make 7 1 8) = Some [ ("x", 7); ("y", 8) ]));
    test "subst replaces only bound variables" (fun () ->
        let tpl = Template.make v (Template.Ent 1) w in
        let env = function "x" -> Some 42 | _ -> None in
        let tpl' = Template.subst env tpl in
        Alcotest.(check bool) "x bound" true (tpl'.Template.src = Template.Ent 42);
        Alcotest.(check bool) "y untouched" true (tpl'.Template.tgt = Template.Var "y"));
    test "constants and replace_at" (fun () ->
        let tpl = Template.make (Template.Ent 5) v (Template.Ent 6) in
        Alcotest.(check bool) "constants" true
          (Template.constants tpl = [ (0, 5); (2, 6) ]);
        let tpl' = Template.replace_at tpl ~pos:2 ~by:7 in
        Alcotest.(check bool) "replaced" true (Template.constants tpl' = [ (0, 5); (2, 7) ]);
        Alcotest.check_raises "bad position"
          (Invalid_argument "Template.replace_at: position must be 0, 1 or 2") (fun () ->
            ignore (Template.replace_at tpl ~pos:3 ~by:7)));
    test "pp prints entities by name and variables with ?" (fun () ->
        let db = db_of [ ("JOHN", "LIKES", "FELIX") ] in
        let symtab = Database.symtab db in
        let tpl =
          Template.make
            (Template.Ent (Database.entity db "JOHN"))
            (Template.Var "r")
            (Template.Ent (Database.entity db "FELIX"))
        in
        Alcotest.(check string) "printed" "(JOHN, ?r, FELIX)" (Template.to_string symtab tpl));
    test "equality and comparison are structural" (fun () ->
        let a = Template.make v (Template.Ent 1) w in
        let b = Template.make v (Template.Ent 1) w in
        let c = Template.make v (Template.Ent 2) w in
        Alcotest.(check bool) "equal" true (Template.equal a b);
        Alcotest.(check bool) "not equal" false (Template.equal a c);
        Alcotest.(check bool) "ordered" true (Template.compare a c <> 0));
  ]
