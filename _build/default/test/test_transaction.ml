open Lsdb
open Testutil

let tests =
  [
    test "atomically commits when the closure stays consistent" (fun () ->
        let db = db_of [ ("LOVES", "contra", "HATES") ] in
        let result =
          Transaction.atomically db (fun txn ->
              ignore (Transaction.insert_names txn "SUE" "LOVES" "OPERA");
              ignore (Transaction.insert_names txn "SUE" "LOVES" "BALLET");
              42)
        in
        Alcotest.(check bool) "committed" true (result = Ok 42);
        check_holds db "fact present" ("SUE", "LOVES", "OPERA"));
    test "a violating batch rolls back entirely" (fun () ->
        let db = db_of [ ("LOVES", "contra", "HATES"); ("SUE", "LOVES", "OPERA") ] in
        let before = Database.base_cardinal db in
        let result =
          Transaction.atomically db (fun txn ->
              ignore (Transaction.insert_names txn "SUE" "ADORES" "BALLET");
              ignore (Transaction.insert_names txn "SUE" "HATES" "OPERA"))
        in
        (match result with
        | Error violations -> Alcotest.(check bool) "reported" true (violations <> [])
        | Ok _ -> Alcotest.fail "expected Error");
        Alcotest.(check int) "nothing survived" before (Database.base_cardinal db);
        check_not_holds db "harmless co-batched fact also rolled back"
          ("SUE", "ADORES", "BALLET"));
    test "exceptions roll back and re-raise" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let before = Database.base_cardinal db in
        (try
           ignore
             (Transaction.atomically db (fun txn ->
                  ignore (Transaction.insert_names txn "X" "R" "Y");
                  failwith "boom"))
         with Failure msg -> Alcotest.(check string) "re-raised" "boom" msg);
        Alcotest.(check int) "rolled back" before (Database.base_cardinal db));
    test "rollback restores removed facts" (fun () ->
        let db = db_of [ ("A", "R", "B"); ("C", "R", "D") ] in
        let txn = Transaction.start db in
        ignore (Transaction.remove txn (fact db ("A", "R", "B")));
        ignore (Transaction.insert_names txn "E" "R" "F");
        Alcotest.(check int) "journal length" 2 (List.length (Transaction.journal txn));
        Transaction.rollback txn;
        check_holds db "removed fact restored" ("A", "R", "B");
        Alcotest.(check bool) "inserted fact gone" false
          (Database.mem_base db (fact db ("E", "R", "F")));
        (* Idempotent. *)
        Transaction.rollback txn;
        check_holds db "still restored" ("A", "R", "B"));
    test "pre-existing facts are not rolled back (no-op mutations)" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let txn = Transaction.start db in
        (* Inserting an existing fact records nothing. *)
        Alcotest.(check bool) "not added" false
          (Transaction.insert txn (fact db ("A", "R", "B")));
        Transaction.rollback txn;
        check_holds db "survives rollback" ("A", "R", "B"));
    test "check:false commits even through violations" (fun () ->
        let db = db_of [ ("LOVES", "contra", "HATES"); ("SUE", "LOVES", "OPERA") ] in
        let result =
          Transaction.atomically ~check:false db (fun txn ->
              ignore (Transaction.insert_names txn "SUE" "HATES" "OPERA"))
        in
        Alcotest.(check bool) "committed" true (result = Ok ());
        Alcotest.(check bool) "now invalid" false (Integrity.is_valid db));
  ]
