open Lsdb
open Testutil

let tests =
  [
    test "closure facts are matched" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "derived visible" true
          (Match_layer.exists db (Store.pattern ~s:(e "JOHN") ~r:(e "EARNS") ())));
    test "comparator patterns answered by the oracle" (fun () ->
        let db = db_of [ ("JOHN", "EARNS", "$25000") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "25000 > 20000" true
          (Match_layer.holds db (Fact.make (e "$25000") Entity.gt (e "20000"))));
    test "stored facts under oracle authority are suppressed (no double emission)"
      (fun () ->
        let db = db_of [ ("5", "<", "7") ] in
        let e = Database.entity db in
        Alcotest.(check int) "emitted once" 1
          (Match_layer.count db (Store.pattern ~s:(e "5") ~r:Entity.lt ~t:(e "7") ())));
    test "Δ in relationship position is a wildcard (§5.2 retraction query)" (fun () ->
        let db = db_of [ ("CINEMA", "COSTS", "CHEAP"); ("CINEMA", "NEAR", "CAMPUS") ] in
        let e = Database.entity db in
        let matches =
          Match_layer.match_list db (Store.pattern ~s:(e "CINEMA") ~r:Entity.top ())
        in
        Alcotest.(check int) "both facts, relabelled" 2 (List.length matches);
        List.iter
          (fun (f : Fact.t) ->
            Alcotest.(check int) "relationship is Δ" Entity.top f.Fact.r)
          matches);
    test "Δ in target position is a wildcard" (fun () ->
        let db = db_of [ ("JOHN", "LOVES", "MARY") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "john loves anything" true
          (Match_layer.holds db (Fact.make (e "JOHN") (e "LOVES") Entity.top)));
    test "Δ in source position matches nothing (the paper's failing (Δ,LOVES,x))"
      (fun () ->
        let db = db_of [ ("JOHN", "LOVES", "MARY") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "fails" false
          (Match_layer.exists db (Store.pattern ~s:Entity.top ~r:(e "LOVES") ())));
    test "∇ in source position inherits everything" (fun () ->
        let db = db_of [ ("JOHN", "LOVES", "MARY") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "∇ loves mary" true
          (Match_layer.holds db (Fact.make Entity.bottom (e "LOVES") (e "MARY"))));
    test "nav_opts hide virtual facts but keep composition" (fun () ->
        let db = db_of [ ("A", "R1", "B"); ("B", "R2", "C") ] in
        Database.set_limit db 2;
        let e = Database.entity db in
        let nav = Match_layer.nav_opts in
        (* No reflexive ⊑ noise. *)
        Alcotest.(check int) "no hierarchy" 0
          (Match_layer.count ~opts:nav db
             (Store.pattern ~s:(e "A") ~r:Entity.gen ()));
        (* Composition present. *)
        Alcotest.(check bool) "composed path" true
          (Match_layer.exists ~opts:nav db (Store.pattern ~s:(e "A") ~t:(e "C") ())));
    test "plain_opts see exactly the closure" (fun () ->
        let db = db_of [ ("A", "R1", "B") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "fact" true
          (Match_layer.holds ~opts:Match_layer.plain_opts db
             (Fact.make (e "A") (e "R1") (e "B")));
        Alcotest.(check bool) "no virtual" false
          (Match_layer.holds ~opts:Match_layer.plain_opts db
             (Fact.make (e "A") Entity.gen Entity.top)));
    test "composed relationship matched when limit allows" (fun () ->
        let db = db_of [ ("A", "R1", "B"); ("B", "R2", "C") ] in
        Database.set_limit db 2;
        let e = Database.entity db in
        let composed = Database.entity db "R1·R2" in
        Alcotest.(check bool) "holds" true
          (Match_layer.holds db (Fact.make (e "A") composed (e "C")));
        Database.set_limit db 1;
        Alcotest.(check bool) "not at limit 1" false
          (Match_layer.holds db (Fact.make (e "A") composed (e "C"))));
  ]
