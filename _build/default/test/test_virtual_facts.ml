open Lsdb
open Testutil

let symtab_with names =
  let t = Symtab.create () in
  let ids = List.map (fun n -> (n, Symtab.intern t n)) names in
  (t, fun n -> List.assoc n ids)

let tests =
  [
    test "§3.6 numeric comparisons are decided" (fun () ->
        let t, e = symtab_with [ "$25000"; "20000"; "2.6"; "2" ] in
        Alcotest.(check (option bool)) "25000 > 20000" (Some true)
          (Virtual_facts.holds t (e "$25000") Entity.gt (e "20000"));
        Alcotest.(check (option bool)) "2 < 2.6" (Some true)
          (Virtual_facts.holds t (e "2") Entity.lt (e "2.6"));
        Alcotest.(check (option bool)) "25000 < 20000 is false" (Some false)
          (Virtual_facts.holds t (e "$25000") Entity.lt (e "20000")));
    test "equality is decided for every pair, numeric by value" (fun () ->
        let t, e = symtab_with [ "JOHN"; "MARY"; "$25000"; "25000" ] in
        Alcotest.(check (option bool)) "john = john" (Some true)
          (Virtual_facts.holds t (e "JOHN") Entity.eq (e "JOHN"));
        Alcotest.(check (option bool)) "john ≠ mary" (Some true)
          (Virtual_facts.holds t (e "JOHN") Entity.neq (e "MARY"));
        Alcotest.(check (option bool)) "$25000 = 25000 by value" (Some true)
          (Virtual_facts.holds t (e "$25000") Entity.eq (e "25000")));
    test "ordering comparators have no authority over non-numbers" (fun () ->
        let t, e = symtab_with [ "CHEAP"; "EXPENSIVE" ] in
        Alcotest.(check (option bool)) "undecided" None
          (Virtual_facts.holds t (e "CHEAP") Entity.lt (e "EXPENSIVE")));
    test "§2.3 hierarchy extent: reflexivity, Δ, ∇" (fun () ->
        let t, e = symtab_with [ "JOHN" ] in
        let john = e "JOHN" in
        Alcotest.(check (option bool)) "reflexive" (Some true)
          (Virtual_facts.holds t john Entity.gen john);
        Alcotest.(check (option bool)) "john ⊑ Δ" (Some true)
          (Virtual_facts.holds t john Entity.gen Entity.top);
        Alcotest.(check (option bool)) "∇ ⊑ john" (Some true)
          (Virtual_facts.holds t Entity.bottom Entity.gen john);
        Alcotest.(check (option bool)) "stored hierarchy undecided" None
          (Virtual_facts.holds t john Entity.gen Entity.bottom));
    test "candidates enumerate over the active domain" (fun () ->
        let t, e = symtab_with [ "10"; "20"; "30"; "JOHN" ] in
        let domain () = List.to_seq [ e "10"; e "20"; e "30"; e "JOHN" ] in
        let collect pat =
          let acc = ref [] in
          Virtual_facts.candidates t ~domain pat (fun f -> acc := f :: !acc);
          !acc
        in
        (* (20, >, ?) over the domain: 20 > 10 only. *)
        let gt = collect (Store.pattern ~s:(e "20") ~r:Entity.gt ()) in
        Alcotest.(check int) "one greater" 1 (List.length gt);
        (* (?, <, 30): 10 and 20. *)
        let lt = collect (Store.pattern ~r:Entity.lt ~t:(e "30") ()) in
        Alcotest.(check int) "two smaller" 2 (List.length lt);
        (* (JOHN, ⊑, ?): only the reflexive fact — the extremes are
           checkable, never enumerable as fresh bindings. *)
        let gen = collect (Store.pattern ~s:(e "JOHN") ~r:Entity.gen ()) in
        Alcotest.(check int) "reflexive only" 1 (List.length gen);
        Alcotest.(check (option bool)) "Δ still checkable" (Some true)
          (Virtual_facts.holds t (e "JOHN") Entity.gen Entity.top));
    test "neq enumeration excludes only the entity itself" (fun () ->
        let t, e = symtab_with [ "A"; "B"; "C" ] in
        let domain () = List.to_seq [ e "A"; e "B"; e "C" ] in
        let acc = ref 0 in
        Virtual_facts.candidates t ~domain
          (Store.pattern ~s:(e "A") ~r:Entity.neq ())
          (fun _ -> incr acc);
        Alcotest.(check int) "two others" 2 !acc);
    test "decides agrees with holds" (fun () ->
        let t, e = symtab_with [ "10"; "JOHN" ] in
        Alcotest.(check bool) "numeric decided" true
          (Virtual_facts.decides t (e "10") Entity.lt (e "10"));
        Alcotest.(check bool) "ordinary fact not decided" false
          (Virtual_facts.decides t (e "JOHN") (e "10") (e "JOHN")));
  ]
