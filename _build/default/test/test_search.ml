open Lsdb
open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tests =
  [
    test "edit_distance reference values" (fun () ->
        List.iter
          (fun (a, b, expected) ->
            Alcotest.(check int) (a ^ "/" ^ b) expected (Search.edit_distance a b))
          [
            ("", "", 0);
            ("A", "", 1);
            ("", "ABC", 3);
            ("JOHN", "JOHN", 0);
            ("JOHM", "JOHN", 1);
            ("JOHNN", "JOHN", 1);
            ("KITTEN", "SITTING", 3);
            ("FLAW", "LAWN", 2);
          ]);
    test "edit_distance is symmetric and satisfies the triangle inequality"
      (fun () ->
        let words = [ "STUDENT"; "STUDENTS"; "PRUDENT"; "OPERA"; "OPERAS"; "" ] in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                Alcotest.(check int) "symmetric" (Search.edit_distance a b)
                  (Search.edit_distance b a);
                List.iter
                  (fun c ->
                    if
                      Search.edit_distance a c
                      > Search.edit_distance a b + Search.edit_distance b c
                    then Alcotest.fail "triangle inequality violated")
                  words)
              words)
          words);
    test "substring search is case-insensitive and shortest-first" (fun () ->
        let db = Paper_examples.music () in
        let hits = Search.substring db "pc#" in
        Alcotest.(check (list string)) "both concertos, shortest first"
          [ "PC#9-WAM"; "PC#20-PIT" ]
          (List.map (Database.entity_name db) hits);
        Alcotest.(check int) "no hits" 0 (List.length (Search.substring db "zzzz")));
    test "fuzzy finds near misses and excludes the exact name" (fun () ->
        let db = Paper_examples.music () in
        let hits = Search.fuzzy db "JOHM" in
        Alcotest.(check bool) "john found" true
          (List.mem "JOHN" (List.map (Database.entity_name db) hits));
        let exact = Search.fuzzy db "JOHN" in
        Alcotest.(check bool) "JOHN itself excluded" false
          (List.mem "JOHN" (List.map (Database.entity_name db) exact)));
    test "suggestions only propose entities with facts" (fun () ->
        let db = Paper_examples.music () in
        (* Intern a lonely near-miss entity with no facts. *)
        ignore (Database.entity db "JOHX");
        let suggested =
          Search.suggestions db "JOHM" |> List.map (Database.entity_name db)
        in
        Alcotest.(check bool) "john suggested" true (List.mem "JOHN" suggested);
        Alcotest.(check bool) "factless entity not suggested" false
          (List.mem "JOHX" suggested));
    test "probing renders a did-you-mean line (EX7 upgraded)" (fun () ->
        let db = Paper_examples.music () in
        let query = Query_parser.parse db "(JOHM, LIKES, ?x)" in
        let menu = Probing.render_menu db query (Probing.probe db query) in
        Alcotest.(check bool) "diagnosis" true
          (contains menu "no such database entities: JOHM");
        Alcotest.(check bool) "suggestion" true (contains menu "Did you mean JOHN?"));
    test "shell find command" (fun () ->
        let shell = Lsdb_shell.Shell.create (Paper_examples.music ()) in
        let out = Lsdb_shell.Shell.execute shell "find MOZ" in
        Alcotest.(check bool) "mozart" true (contains out "MOZART");
        let out = Lsdb_shell.Shell.execute shell "find qqqq" in
        Alcotest.(check bool) "no hit message" true (contains out "no entity name"));
  ]
