test/test_composition.ml: Alcotest Composition Database Fact List Lsdb Lsdb_workload Printf Store Testutil
