test/test_query.ml: Alcotest Database List Lsdb Query String Template Testutil
