test/test_soundness.ml: Alcotest Atom Closure Composition Database Engine Entity Eval Explain Fact List Lsdb Lsdb_datalog Lsdb_workload Paper_examples Probing Rule String Term Testutil Triple View
