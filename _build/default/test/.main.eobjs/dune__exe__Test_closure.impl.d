test/test_closure.ml: Alcotest Closure Database Entity Fact List Lsdb Paper_examples Rule Seq Template Testutil
