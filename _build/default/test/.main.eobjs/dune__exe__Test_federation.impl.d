test/test_federation.ml: Alcotest Database Entity Fact Federation List Lsdb Rule Template Testutil
