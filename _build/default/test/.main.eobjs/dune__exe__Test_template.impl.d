test/test_template.ml: Alcotest Database Fact Lsdb Template Testutil
