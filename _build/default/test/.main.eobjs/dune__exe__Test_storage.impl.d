test/test_storage.ml: Alcotest Array Bytes Database Filename Fun List Log Lsdb Lsdb_storage Paper_examples Persistent Printf Snapshot String Sys Testutil
