test/test_transaction.ml: Alcotest Database Integrity List Lsdb Testutil Transaction
