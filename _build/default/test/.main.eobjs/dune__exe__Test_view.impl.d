test/test_view.ml: Alcotest Database List Lsdb Operators Paper_examples String Testutil View
