test/test_query_parser.ml: Alcotest Database Entity List Lsdb Printf Query Query_parser Template Testutil
