test/test_integrity.ml: Alcotest Database Entity Fact Integrity List Lsdb Paper_examples Rule String Template Testutil
