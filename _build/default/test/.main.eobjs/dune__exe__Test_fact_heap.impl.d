test/test_fact_heap.ml: Alcotest Fact_heap Filename Fun Lsdb Lsdb_storage Printf Sys Testutil
