test/test_eval.ml: Alcotest Eval List Lsdb Paper_examples Testutil
