test/test_definitions.ml: Alcotest Database Definitions Eval List Lsdb Paper_examples String Testutil
