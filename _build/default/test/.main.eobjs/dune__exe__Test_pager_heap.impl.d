test/test_pager_heap.ml: Alcotest Bytes Char Filename Fun Hashtbl Heap_file List Lsdb_storage Pager Printf QCheck String Sys Testutil
