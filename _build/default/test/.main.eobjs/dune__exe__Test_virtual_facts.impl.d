test/test_virtual_facts.ml: Alcotest Entity List Lsdb Store Symtab Testutil Virtual_facts
