test/test_pretty.ml: Alcotest List Lsdb String Testutil
