test/test_probing.ml: Alcotest List Lsdb Paper_examples Probing Query_parser Retraction String Testutil
