test/test_bridge.ml: Alcotest Bridge Catalog Database Lsdb Lsdb_relational Paper_examples Relation Schema Testutil
