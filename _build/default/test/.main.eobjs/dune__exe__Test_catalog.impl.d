test/test_catalog.ml: Alcotest Array Catalog List Lsdb_relational Relalg Relation Schema Testutil
