test/test_shell.ml: Alcotest Filename Fun List Lsdb Lsdb_shell String Sys Testutil
