test/testutil.ml: Alcotest Database Eval Fact List Lsdb QCheck QCheck_alcotest Query_parser String
