test/test_retraction.ml: Alcotest Array Broadness Database Entity Eval List Lsdb Paper_examples Query Retraction String Template Testutil
