test/test_explain.ml: Alcotest Database Entity Explain Fact List Lsdb String Testutil
