test/test_datalog.ml: Alcotest Atom Engine Guard Index List Lsdb_datalog Rule Term Testutil Triple
