test/test_paper.ml: Alcotest Broadness Database List Lsdb Navigation Operators Paper_examples Probing Query Query_parser Retraction String Testutil View
