test/test_entity.ml: Alcotest Array Entity List Lsdb Printf Testutil
