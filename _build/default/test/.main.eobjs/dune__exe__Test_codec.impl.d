test/test_codec.ml: Alcotest Buffer Bytes Codec Filename Fun Int32 List Lsdb_storage QCheck String Sys Testutil
