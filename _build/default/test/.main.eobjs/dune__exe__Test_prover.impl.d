test/test_prover.ml: Alcotest Array Closure Database Fact List Lsdb Paper_examples Printf Prover QCheck Query_parser String Testutil Virtual_facts
