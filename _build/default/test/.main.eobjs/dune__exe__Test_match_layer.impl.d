test/test_match_layer.ml: Alcotest Database Entity Fact List Lsdb Match_layer Store Testutil
