test/test_search.ml: Alcotest Database List Lsdb Lsdb_shell Paper_examples Probing Query_parser Search String Testutil
