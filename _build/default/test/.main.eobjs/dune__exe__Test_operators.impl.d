test/test_operators.ml: Alcotest Database List Lsdb Match_layer Operators Paper_examples Store String Testutil
