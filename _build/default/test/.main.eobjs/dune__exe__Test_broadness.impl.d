test/test_broadness.ml: Alcotest Broadness Database Entity List Lsdb Lsdb_workload Testutil
