test/test_fact_file.ml: Alcotest Database Fact Fact_file Filename Fun List Lsdb Paper_examples Printf String Sys Testutil
