test/test_triple_index.ml: Alcotest Database Fact List Lsdb Lsdb_storage Paper_examples QCheck Store Testutil Triple_index
