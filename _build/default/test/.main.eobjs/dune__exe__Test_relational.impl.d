test/test_relational.ml: Alcotest Array List Lsdb_relational QCheck Relalg Relation Schema Testutil
