test/main.mli:
