test/test_edge_cases.ml: Alcotest Composition Database Eval Federation Integrity List Lsdb Match_layer Navigation Paper_examples Printf Probing Query_parser String Testutil
