test/test_store.ml: Alcotest Fact Hashtbl List Lsdb QCheck Store Testutil
