test/test_navigation.ml: Alcotest Database Entity List Lsdb Navigation Option Paper_examples Query_parser String Template Testutil
