test/test_symtab.ml: Alcotest Entity List Lsdb Symtab Testutil
