test/test_bptree.ml: Alcotest Bptree Hashtbl List Lsdb_storage Lsdb_workload QCheck Testutil
