test/test_workload.ml: Alcotest Array Citation_gen Fun List Lsdb Lsdb_relational Lsdb_workload Org_gen Printf Query_gen Rng Taxonomy Testutil University_gen Zipf
