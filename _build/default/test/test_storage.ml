open Lsdb
open Lsdb_storage
open Testutil

let with_temp_dir f =
  let dir = Filename.temp_file "lsdb_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Sys.rmdir path
        end
        else Sys.remove path
      in
      rm dir)
    (fun () -> f dir)

let tests =
  [
    test "log ops encode/decode round-trip" (fun () ->
        List.iter
          (fun op ->
            Alcotest.(check bool) "round-trip" true
              (Log.op_equal op (Log.decode (Log.encode op))))
          [
            Log.Insert ("JOHN", "LIKES", "FELIX");
            Log.Remove ("A", "⊑", "Δ");
            Log.Declare_class "TOTAL-NUMBER";
            Log.Declare_individual "WORKS-FOR";
            Log.Set_limit 4;
            Log.Exclude_rule "syn-rel";
            Log.Include_rule "syn-rel";
          ]);
    test "log replay rebuilds database state" (fun () ->
        with_temp_dir (fun dir ->
            let path = Filename.concat dir "ops.log" in
            let log = Log.open_ path in
            List.iter (Log.append log)
              [
                Log.Insert ("JOHN", "in", "EMPLOYEE");
                Log.Insert ("EMPLOYEE", "EARNS", "SALARY");
                Log.Insert ("JOHN", "LIKES", "FELIX");
                Log.Remove ("JOHN", "LIKES", "FELIX");
                Log.Declare_class "TOTAL-NUMBER";
                Log.Set_limit 2;
              ];
            Log.close log;
            let db = Database.create () in
            let n = Log.replay path db in
            Alcotest.(check int) "six ops" 6 n;
            check_holds db "inserted" ("JOHN", "in", "EMPLOYEE");
            Alcotest.(check bool) "removed" false
              (Database.mem_base db (fact db ("JOHN", "LIKES", "FELIX")));
            Alcotest.(check int) "limit" 2 (Database.limit db);
            check_holds db "inference works after replay" ("JOHN", "EARNS", "SALARY")));
    test "replay of a missing log is empty" (fun () ->
        let db = Database.create () in
        Alcotest.(check int) "zero" 0 (Log.replay "/nonexistent/path.log" db));
    test "snapshot round-trips the full base state" (fun () ->
        let db = Paper_examples.organization () in
        Database.set_limit db 3;
        ignore (Database.exclude db "syn-rel");
        let db' = Snapshot.decode (Snapshot.encode db) in
        Alcotest.(check int) "same base cardinality" (Database.base_cardinal db)
          (Database.base_cardinal db');
        check_holds db' "a stored fact" ("JOHN", "WORKS-FOR", "SHIPPING");
        check_holds db' "an inferred fact" ("MANAGER", "WORKS-FOR", "DEPARTMENT");
        Alcotest.(check int) "limit" 3 (Database.limit db');
        Alcotest.(check bool) "exclusion" false (Database.rule_enabled db' "syn-rel");
        Alcotest.(check bool) "class declaration" true
          (Database.is_class_relationship db' (Database.entity db' "TOTAL-NUMBER")));
    test "snapshot detects corruption" (fun () ->
        let db = Paper_examples.campus () in
        let data = Bytes.of_string (Snapshot.encode db) in
        Bytes.set data (Bytes.length data / 2) '\xFF';
        Alcotest.(check bool) "raises" true
          (try
             ignore (Snapshot.decode (Bytes.to_string data));
             false
           with Snapshot.Corrupt _ -> true));
    test "persistent database survives reopen" (fun () ->
        with_temp_dir (fun dir ->
            let p = Persistent.open_dir dir in
            ignore (Persistent.insert_names p "JOHN" "in" "EMPLOYEE");
            ignore (Persistent.insert_names p "EMPLOYEE" "EARNS" "SALARY");
            Persistent.set_limit p 2;
            Persistent.close p;
            let p2 = Persistent.open_dir dir in
            let db = Persistent.database p2 in
            check_holds db "fact survived" ("JOHN", "in", "EMPLOYEE");
            check_holds db "inference after reopen" ("JOHN", "EARNS", "SALARY");
            Alcotest.(check int) "limit survived" 2 (Database.limit db);
            Persistent.close p2));
    test "compaction folds the log into the snapshot" (fun () ->
        with_temp_dir (fun dir ->
            let p = Persistent.open_dir dir in
            for i = 1 to 20 do
              ignore (Persistent.insert_names p (Printf.sprintf "E%d" i) "in" "THING")
            done;
            Alcotest.(check int) "log has records" 20 (Persistent.log_length p);
            Persistent.compact p;
            Alcotest.(check int) "log empty" 0 (Persistent.log_length p);
            Persistent.close p;
            let p2 = Persistent.open_dir dir in
            Alcotest.(check int) "all facts restored" 22
              (* 20 + 2 axiom facts *)
              (Database.base_cardinal (Persistent.database p2));
            Persistent.close p2));
    test "removals are durable" (fun () ->
        with_temp_dir (fun dir ->
            let p = Persistent.open_dir dir in
            ignore (Persistent.insert_names p "A" "R" "B");
            let db = Persistent.database p in
            ignore (Persistent.remove p (fact db ("A", "R", "B")));
            Persistent.close p;
            let p2 = Persistent.open_dir dir in
            Alcotest.(check bool) "gone after reopen" false
              (Database.mem_base (Persistent.database p2)
                 (fact (Persistent.database p2) ("A", "R", "B")));
            Persistent.close p2));
    test "a torn trailing log record is tolerated" (fun () ->
        with_temp_dir (fun dir ->
            let p = Persistent.open_dir dir in
            ignore (Persistent.insert_names p "A" "R" "B");
            ignore (Persistent.insert_names p "C" "R" "D");
            Persistent.close p;
            (* Truncate the log mid-record. *)
            let log_path = Persistent.log_path p in
            let ic = open_in_bin log_path in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let oc = open_out_bin log_path in
            output_string oc (String.sub data 0 (String.length data - 3));
            close_out oc;
            let p2 = Persistent.open_dir dir in
            let db = Persistent.database p2 in
            check_holds db "first record intact" ("A", "R", "B");
            Alcotest.(check bool) "torn record dropped" false
              (Database.mem_base db (fact db ("C", "R", "D")));
            Persistent.close p2));
  ]
