(* Edge cases across the public API surface. *)

open Lsdb
open Testutil

let tests =
  [
    test "empty database: queries, navigation, probing, integrity" (fun () ->
        let db = Database.create () in
        (* Only the two axiom facts exist. *)
        Alcotest.(check int) "axioms only" 2 (Database.base_cardinal db);
        Alcotest.(check bool) "valid" true (Integrity.is_valid db);
        let nbhd = Navigation.neighborhood db (Database.entity db "GHOST") in
        Alcotest.(check int) "no sources" 0 (List.length nbhd.Navigation.as_source);
        match Probing.probe db (q db "(GHOST, HAUNTS, ?x)") with
        | Probing.Exhausted { unknown_entities; _ } ->
            Alcotest.(check bool) "ghost unknown" true
              (List.mem (Database.entity db "GHOST") unknown_entities)
        | _ -> Alcotest.fail "expected Exhausted");
    test "self-loop facts are fine" (fun () ->
        let db = db_of [ ("NARCISSUS", "LOVES", "NARCISSUS") ] in
        check_holds db "self-loop" ("NARCISSUS", "LOVES", "NARCISSUS");
        check_answers db "query" "(?x, LOVES, ?x)" [ "NARCISSUS" ]);
    test "deep synonym chains stay quadratic, not divergent" (fun () ->
        let chain =
          List.init 12 (fun i -> (Printf.sprintf "N%d" i, "syn", Printf.sprintf "N%d" (i + 1)))
        in
        let db = db_of (chain @ [ ("N0", "OWNS", "THING") ]) in
        check_holds db "propagated to the end" ("N12", "OWNS", "THING");
        check_holds db "syn closed" ("N0", "syn", "N12"));
    test "the paper's replication/inconsistency examples are storable (§2.6)"
      (fun () ->
        (* (JOHN, EARN, $25000), (JOHN, EARN, $40000), (JOHN, INCOME, $40000):
           the paper explicitly permits these. *)
        let db =
          db_of
            [
              ("JOHN", "EARN", "$25000");
              ("JOHN", "EARN", "$40000");
              ("JOHN", "INCOME", "$40000");
              ("MARY", "MAJOR", "MATH");
              ("MARY", "ASSISTANT", "MATH");
            ]
        in
        Alcotest.(check bool) "no contradiction without ⊥ facts" true
          (Integrity.is_valid db);
        check_answers db "both salaries" "(JOHN, EARN, ?s)" [ "$25000"; "$40000" ]);
    test "stored numeric comparator facts that lie are violations" (fun () ->
        let db = db_of [ ("7", "<", "5") ] in
        let violations = Integrity.violations db in
        Alcotest.(check bool) "math violation" true
          (List.exists (fun v -> v.Integrity.conflict = Integrity.Math) violations));
    test "reflexive generalization facts stored by the user are harmless" (fun () ->
        let db = db_of [ ("A", "isa", "A"); ("A", "isa", "B") ] in
        check_holds db "still works" ("A", "isa", "B");
        Alcotest.(check bool) "valid" true (Integrity.is_valid db));
    test "entity names with spaces and unicode round-trip everywhere" (fun () ->
        let db = Database.create () in
        ignore (Database.insert_names db "VAN GOGH" "PAINTED" "STARRY NIGHT ☆");
        let answer =
          Eval.eval db (q db "(\"VAN GOGH\", PAINTED, ?w)")
        in
        Alcotest.(check (list (list string))) "quoted query finds it"
          [ [ "STARRY NIGHT ☆" ] ]
          (Eval.rows_named (Database.symtab db) answer));
    test "limit can be raised and lowered repeatedly" (fun () ->
        let db = db_of [ ("A", "R1", "B"); ("B", "R2", "C"); ("C", "R3", "D") ] in
        let e = Database.entity db in
        List.iter
          (fun (n, expected) ->
            Database.set_limit db n;
            Alcotest.(check int)
              (Printf.sprintf "paths at limit %d" n)
              expected
              (List.length (Composition.paths db ~src:(e "A") ~tgt:(e "D"))))
          [ (1, 0); (3, 1); (2, 0); (4, 1); (1, 0) ]);
    test "removal after incremental extension recomputes correctly" (fun () ->
        let db = db_of [ ("EMPLOYEE", "EARNS", "SALARY") ] in
        ignore (Database.closure db);
        ignore (Database.insert_names db "A" "in" "EMPLOYEE");
        ignore (Database.insert_names db "B" "in" "EMPLOYEE");
        check_holds db "b earns" ("B", "EARNS", "SALARY");
        ignore (Database.remove_names db "B" "in" "EMPLOYEE");
        check_not_holds db "b no longer earns" ("B", "EARNS", "SALARY");
        check_holds db "a still earns" ("A", "EARNS", "SALARY"));
    test "insert after remove of the same fact round-trips" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        ignore (Database.closure db);
        ignore (Database.remove_names db "A" "R" "B");
        ignore (Database.insert_names db "A" "R" "B");
        check_holds db "present" ("A", "R", "B"));
    test "two-variable template over an empty relation renders" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let tpl = Query_parser.parse_template db "(?x, NOTHING, ?y)" in
        let rendered = Navigation.render_template db tpl in
        Alcotest.(check bool) "renders" true (String.length rendered > 0));
    test "probing a query that is already a proposition" (fun () ->
        let db = Paper_examples.campus () in
        (match Probing.probe db (q db "(SUE, ENJOYS, OPERA)") with
        | Probing.Answered _ -> ()
        | _ -> Alcotest.fail "true proposition should answer");
        match Probing.probe db (q db "(SUE, ENJOYS, SKIING)") with
        | Probing.Answered _ -> Alcotest.fail "false proposition should retract"
        | Probing.Retracted _ | Probing.Exhausted _ -> ());
    test "federation of a database with itself adds nothing (idempotent merge)"
      (fun () ->
        let a = Paper_examples.campus () in
        let b = Paper_examples.campus () in
        let fed = Federation.create [ ("a", a); ("b", b) ] in
        let merged = Federation.database fed in
        Alcotest.(check int) "same base cardinality"
          (Database.base_cardinal a)
          (Database.base_cardinal merged);
        Alcotest.(check int) "everything shared"
          (Database.base_cardinal a)
          (List.length (Federation.shared_facts fed)));
    test "query with only star variables matches the whole closure" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let answer = Eval.eval ~opts:Match_layer.plain_opts db (q db "(*, *, *)") in
        (* Base facts + axioms + derived (inverse pair of the ↔ axiom). *)
        Alcotest.(check bool) "at least the base facts" true
          (List.length answer.Eval.rows >= Database.base_cardinal db));
    test "comparator queries between non-numbers fall back to stored facts"
      (fun () ->
        let db = db_of [ ("CHEAP", "<", "EXPENSIVE") ] in
        check_proposition db "stored non-numeric comparison holds"
          "(CHEAP, lt, EXPENSIVE)" true;
        check_proposition db "unstored one does not" "(EXPENSIVE, lt, CHEAP)" false);
  ]
