open Lsdb_storage
open Testutil

let with_temp_file f =
  let path = Filename.temp_file "lsdb_pager" ".pages" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let tests =
  [
    test "pager allocates, writes and reads back pages" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let p0 = Pager.alloc pager in
            let p1 = Pager.alloc pager in
            Alcotest.(check int) "sequential ids" 0 p0;
            Alcotest.(check int) "sequential ids" 1 p1;
            let data = Bytes.make Pager.page_size 'A' in
            Pager.write pager p1 data;
            Alcotest.(check bytes) "read back" data (Pager.read pager p1);
            Pager.close pager));
    test "pages persist across close/reopen" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let p = Pager.alloc pager in
            let data = Bytes.make Pager.page_size 'Z' in
            Pager.write pager p data;
            Pager.close pager;
            let pager2 = Pager.open_ path in
            Alcotest.(check int) "page count" 1 (Pager.page_count pager2);
            Alcotest.(check bytes) "contents" data (Pager.read pager2 p);
            Pager.close pager2));
    test "pager validates page bounds and sizes" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            Alcotest.(check bool) "read out of range" true
              (try
                 ignore (Pager.read pager 5);
                 false
               with Invalid_argument _ -> true);
            let p = Pager.alloc pager in
            Alcotest.(check bool) "short write rejected" true
              (try
                 Pager.write pager p (Bytes.create 10);
                 false
               with Invalid_argument _ -> true);
            Pager.close pager));
    test "sync clears the dirty set" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            ignore (Pager.alloc pager);
            Alcotest.(check bool) "dirty after alloc" true (Pager.dirty_count pager > 0);
            Pager.sync pager;
            Alcotest.(check int) "clean after sync" 0 (Pager.dirty_count pager);
            Pager.close pager));
    test "cache eviction bounds memory and loses no data" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ ~cache_capacity:8 path in
            let pages =
              List.init 64 (fun i ->
                  let p = Pager.alloc pager in
                  let data = Bytes.make Pager.page_size (Char.chr (65 + (i mod 26))) in
                  Pager.write pager p data;
                  (p, data))
            in
            Alcotest.(check bool) "cache bounded" true (Pager.cached_count pager <= 8);
            (* Every page reads back correctly despite evictions. *)
            List.iter
              (fun (p, data) ->
                Alcotest.(check bytes) (Printf.sprintf "page %d" p) data
                  (Pager.read pager p))
              pages;
            Pager.close pager;
            let pager2 = Pager.open_ path in
            List.iter
              (fun (p, data) ->
                Alcotest.(check bytes) "after reopen" data (Pager.read pager2 p))
              pages;
            Pager.close pager2));
    test "heap file insert/get/delete" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let heap = Heap_file.create pager in
            let r1 = Heap_file.insert heap "first record" in
            let r2 = Heap_file.insert heap "second record" in
            Alcotest.(check (option string)) "get r1" (Some "first record")
              (Heap_file.get heap r1);
            Alcotest.(check (option string)) "get r2" (Some "second record")
              (Heap_file.get heap r2);
            Alcotest.(check bool) "delete r1" true (Heap_file.delete heap r1);
            Alcotest.(check (option string)) "r1 gone" None (Heap_file.get heap r1);
            Alcotest.(check bool) "delete twice" false (Heap_file.delete heap r1);
            Alcotest.(check (option string)) "r2 intact" (Some "second record")
              (Heap_file.get heap r2);
            Pager.close pager));
    test "tombstoned slots are reused" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let heap = Heap_file.create pager in
            let r1 = Heap_file.insert heap "victim" in
            ignore (Heap_file.delete heap r1);
            let r2 = Heap_file.insert heap "replacement" in
            Alcotest.(check bool) "same slot reused" true (Heap_file.rid_equal r1 r2);
            Pager.close pager));
    test "records spill across pages and iter sees all of them" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let heap = Heap_file.create pager in
            let n = 200 in
            let payload i = Printf.sprintf "record-%04d-%s" i (String.make 100 'x') in
            let rids = List.init n (fun i -> (i, Heap_file.insert heap (payload i))) in
            Alcotest.(check bool) "multiple pages" true (Pager.page_count pager > 1);
            Alcotest.(check int) "count" n (Heap_file.count heap);
            List.iter
              (fun (i, rid) ->
                Alcotest.(check (option string)) "readable" (Some (payload i))
                  (Heap_file.get heap rid))
              rids;
            let seen = ref 0 in
            Heap_file.iter (fun _ _ -> incr seen) heap;
            Alcotest.(check int) "iter total" n !seen;
            Pager.close pager));
    test "heap survives reopen" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let heap = Heap_file.create pager in
            let rid = Heap_file.insert heap "durable" in
            Pager.close pager;
            let pager2 = Pager.open_ path in
            let heap2 = Heap_file.create pager2 in
            Alcotest.(check (option string)) "read after reopen" (Some "durable")
              (Heap_file.get heap2 rid);
            Pager.close pager2));
    test "oversized records are rejected" (fun () ->
        with_temp_file (fun path ->
            let pager = Pager.open_ path in
            let heap = Heap_file.create pager in
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Heap_file.insert heap (String.make (Heap_file.max_record + 1) 'x'));
                 false
               with Invalid_argument _ -> true);
            Pager.close pager));
      qcheck ~count:40 "heap file agrees with a map model under random ops"
      QCheck.(list (pair bool small_string))
      (fun ops ->
        let path = Filename.temp_file "lsdb_heapq" ".pages" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let pager = Pager.open_ ~cache_capacity:8 path in
            let heap = Heap_file.create pager in
            let model = Hashtbl.create 16 in
            let rids = ref [] in
            List.iter
              (fun (is_insert, payload) ->
                if is_insert && payload <> "" then begin
                  let rid = Heap_file.insert heap payload in
                  Hashtbl.replace model rid payload;
                  rids := rid :: !rids
                end
                else
                  match !rids with
                  | [] -> ()
                  | rid :: rest ->
                      rids := rest;
                      let was_present = Hashtbl.mem model rid in
                      let removed = Heap_file.delete heap rid in
                      Hashtbl.remove model rid;
                      if removed <> was_present then
                        QCheck.Test.fail_report "delete disagrees")
              ops;
            let ok = ref (Heap_file.count heap = Hashtbl.length model) in
            Hashtbl.iter
              (fun rid payload ->
                if Heap_file.get heap rid <> Some payload then ok := false)
              model;
            (* Survives close/reopen. *)
            Pager.close pager;
            let pager2 = Pager.open_ path in
            let heap2 = Heap_file.create pager2 in
            Hashtbl.iter
              (fun rid payload ->
                if Heap_file.get heap2 rid <> Some payload then ok := false)
              model;
            Pager.close pager2;
            !ok));
  ]
