(* Shared helpers for the test suites. *)

open Lsdb

let db_of facts =
  let db = Database.create () in
  List.iter (fun (s, r, t) -> ignore (Database.insert_names db s r t)) facts;
  db

let fact db (s, r, t) =
  Fact.make (Database.entity db s) (Database.entity db r) (Database.entity db t)

(* Closure membership, names form. *)
let holds db triple = Database.mem db (fact db triple)

let check_holds db what triple = Alcotest.(check bool) what true (holds db triple)
let check_not_holds db what triple = Alcotest.(check bool) what false (holds db triple)

let q db text = Query_parser.parse db text

(* One-variable query answer, as sorted names. *)
let answers db text =
  let answer = Eval.eval db (q db text) in
  Eval.column answer
  |> List.map (Database.entity_name db)
  |> List.sort String.compare

let check_answers db what text expected =
  Alcotest.(check (list string)) what (List.sort String.compare expected) (answers db text)

let check_proposition db what text expected =
  Alcotest.(check bool) what expected (Eval.holds db (q db text))

let names db entities =
  List.map (Database.entity_name db) entities |> List.sort String.compare

let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
