open Lsdb
open Testutil

let tests =
  [
    test "define and invoke a parameterized operator" (fun () ->
        let db = Paper_examples.payroll () in
        let defs = Definitions.create () in
        Definitions.define_text db defs
          "salary_of(?who) := (?who, EARNS, ?s) & (?s, in, SALARY)";
        let answer = Definitions.invoke_names db defs "salary_of" [ "JOHN" ] in
        Alcotest.(check (list string)) "john's salary" [ "$26000" ]
          (List.sort String.compare
             (List.map List.hd (Eval.rows_named (Database.symtab db) answer)));
        let answer = Definitions.invoke_names db defs "salary_of" [ "MARY" ] in
        Alcotest.(check (list string)) "mary's salary" [ "$25000" ]
          (List.sort String.compare
             (List.map List.hd (Eval.rows_named (Database.symtab db) answer))));
    test "the §6.1 try operator is definable" (fun () ->
        let db = db_of [ ("A", "LIKES", "B"); ("C", "A", "D"); ("E", "R", "A") ] in
        let defs = Definitions.create () in
        Definitions.define_text db defs
          "try(?e) := (?e, *, *) | (*, ?e, *) | (*, *, ?e)";
        (* Each disjunct binds two stars; free vars differ per disjunct,
           so invoke with the parameter bound and accept the union. *)
        Alcotest.(check bool) "defined" true (Definitions.find defs "try" <> None));
    test "zero-parameter operators behave like saved queries" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Definitions.define_text db defs "books() := (?b, in, BOOK)";
        let answer = Definitions.invoke db defs "books" [] in
        Alcotest.(check int) "three books" 3 (List.length answer.Eval.rows));
    test "arity is checked" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Definitions.define_text db defs "authored(?p) := (?b, AUTHOR, ?p)";
        Alcotest.(check bool) "wrong arity raises" true
          (try
             ignore (Definitions.invoke_names db defs "authored" [ "A"; "B" ]);
             false
           with Definitions.Error _ -> true));
    test "parameters must be free variables of the body" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Alcotest.(check bool) "raises" true
          (try
             Definitions.define_text db defs "bad(?zz) := (?b, in, BOOK)";
             false
           with Definitions.Error _ -> true));
    test "duplicate parameters are rejected" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Alcotest.(check bool) "raises" true
          (try
             Definitions.define_text db defs "bad(?b, ?b) := (?b, in, BOOK)";
             false
           with Definitions.Error _ -> true));
    test "unknown operator and removal" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Definitions.define_text db defs "books() := (?b, in, BOOK)";
        Alcotest.(check bool) "remove" true (Definitions.remove defs "books");
        Alcotest.(check bool) "gone" false (Definitions.remove defs "books");
        Alcotest.(check bool) "invoke unknown raises" true
          (try
             ignore (Definitions.invoke db defs "books" []);
             false
           with Definitions.Error _ -> true));
    test "list and show" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Definitions.define_text db defs "books() := (?b, in, BOOK)";
        Definitions.define_text db defs "authored(?p) := (?b, AUTHOR, ?p)";
        Alcotest.(check (list (pair string (list string)))) "listing"
          [ ("authored", [ "p" ]); ("books", []) ]
          (Definitions.list defs);
        Alcotest.(check bool) "show mentions both" true
          (String.length (Definitions.show (Database.symtab db) defs) > 20));
    test "redefinition replaces" (fun () ->
        let db = Paper_examples.library () in
        let defs = Definitions.create () in
        Definitions.define_text db defs "things() := (?b, in, BOOK)";
        Definitions.define_text db defs "things() := (?b, in, PERSON)";
        let answer = Definitions.invoke db defs "things" [] in
        Alcotest.(check int) "two persons" 2 (List.length answer.Eval.rows));
  ]
