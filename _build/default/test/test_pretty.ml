open Testutil

let lines s = String.split_on_char '\n' (String.trim s)

let all_same_width rendered =
  match lines rendered with
  | [] -> true
  | first :: rest ->
      let w = Lsdb.Pretty.display_width first in
      List.for_all (fun line -> Lsdb.Pretty.display_width line = w) rest

let tests =
  [
    test "display_width counts code points, not bytes" (fun () ->
        Alcotest.(check int) "ascii" 4 (Lsdb.Pretty.display_width "JOHN");
        Alcotest.(check int) "gen symbol" 1 (Lsdb.Pretty.display_width "⊑");
        Alcotest.(check int) "mixed" 3 (Lsdb.Pretty.display_width "A·B"));
    test "grid renders rectangular output" (fun () ->
        let rendered =
          Lsdb.Pretty.grid ~headers:[ "A"; "LONG-HEADER" ]
            [ [ "x"; "y" ]; [ "long-value"; "z" ] ]
        in
        Alcotest.(check bool) "rectangular" true (all_same_width rendered));
    test "grid pads short rows" (fun () ->
        let rendered = Lsdb.Pretty.grid ~headers:[ "A"; "B"; "C" ] [ [ "x" ] ] in
        Alcotest.(check bool) "rectangular" true (all_same_width rendered));
    test "columns table with ragged heights is rectangular" (fun () ->
        let rendered =
          Lsdb.Pretty.columns ~title:"T"
            [ ("∈", [ "PERSON"; "EMPLOYEE"; "PET-OWNER" ]); ("LIKES", [ "FELIX" ]) ]
        in
        Alcotest.(check bool) "rectangular" true (all_same_width rendered));
    test "columns with unicode headers align" (fun () ->
        let rendered =
          Lsdb.Pretty.columns ~title:"JOHN, *, *" [ ("⊑", [ "PERSON" ]); ("∈", [] ) ]
        in
        Alcotest.(check bool) "rectangular" true (all_same_width rendered));
    test "empty columns table" (fun () ->
        let rendered = Lsdb.Pretty.columns ~title:"EMPTY" [] in
        Alcotest.(check bool) "mentions title" true
          (String.length rendered > 0));
    test "column is a one-header grid" (fun () ->
        let rendered = Lsdb.Pretty.column ~title:"H" [ "a"; "bb" ] in
        let ls = lines rendered in
        Alcotest.(check int) "6 lines" 6 (List.length ls));
    test "facts and cell rendering" (fun () ->
        let db = db_of [ ("A", "R", "B"); ("C", "R", "D") ] in
        let symtab = Lsdb.Database.symtab db in
        let f1 = fact db ("A", "R", "B") in
        Alcotest.(check string) "fact" "(A, R, B)" (Lsdb.Fact.to_string symtab f1);
        Alcotest.(check string) "cell"
          "A, C"
          (Lsdb.Pretty.cell symtab
             [ Lsdb.Database.entity db "A"; Lsdb.Database.entity db "C" ]));
  ]
