open Lsdb
open Testutil

let tests =
  [
    test "single template" (fun () ->
        let db = db_of [] in
        match q db "(JOHN, LIKES, ?x)" with
        | Query.Atom tpl ->
            Alcotest.(check (list string)) "one var" [ "x" ] (Template.vars tpl)
        | _ -> Alcotest.fail "expected atom");
    test "conjunction and disjunction with precedence (& binds tighter)" (fun () ->
        let db = db_of [] in
        match q db "(A, R, ?x) | (B, R, ?x) & (C, R, ?x)" with
        | Query.Or (_, Query.And _) -> ()
        | _ -> Alcotest.fail "expected Or(_, And _)");
    test "parentheses override precedence" (fun () ->
        let db = db_of [] in
        match q db "((A, R, ?x) | (B, R, ?x)) & (C, R, ?x)" with
        | Query.And (Query.Or _, _) -> ()
        | _ -> Alcotest.fail "expected And(Or _, _)");
    test "quantifiers with single and multiple variables" (fun () ->
        let db = db_of [] in
        (match q db "exists x . (?x, R, ?y)" with
        | Query.Exists ("x", _) -> ()
        | _ -> Alcotest.fail "expected Exists x");
        match q db "forall x, y . (?x, R, ?y)" with
        | Query.Forall ("x", Query.Forall ("y", _)) -> ()
        | _ -> Alcotest.fail "expected nested Forall");
    test "unicode connectives parse" (fun () ->
        let db = db_of [] in
        match q db "∃x . (?x, R, A) ∧ (?x, R, B)" with
        | Query.Exists (_, Query.And _) -> ()
        | _ -> Alcotest.fail "expected ∃(∧)");
    test "stars become fresh distinct variables" (fun () ->
        let db = db_of [] in
        match q db "(JOHN, *, *)" with
        | Query.Atom tpl ->
            let vars = Template.distinct_vars tpl in
            Alcotest.(check int) "two fresh vars" 2 (List.length vars)
        | _ -> Alcotest.fail "expected atom");
    test "quoted names allow delimiters" (fun () ->
        let db = db_of [] in
        match q db "(\"WAR, AND PIECES\", CITES, ?x)" with
        | Query.Atom tpl -> (
            match tpl.Template.src with
            | Template.Ent e ->
                Alcotest.(check string) "quoted name" "WAR, AND PIECES"
                  (Database.entity_name db e)
            | Template.Var _ -> Alcotest.fail "expected entity")
        | _ -> Alcotest.fail "expected atom");
    test "special aliases resolve to special entities" (fun () ->
        let db = db_of [] in
        match q db "(?x, in, EMPLOYEE)" with
        | Query.Atom { Template.rel = Template.Ent e; _ } ->
            Alcotest.(check int) "∈" Entity.member e
        | _ -> Alcotest.fail "expected membership atom");
    test "parse errors are reported" (fun () ->
        let db = db_of [] in
        let bad inputs =
          List.iter
            (fun input ->
              Alcotest.(check bool) (Printf.sprintf "reject %S" input) true
                (try
                   ignore (q db input);
                   false
                 with Query_parser.Parse_error _ -> true))
            inputs
        in
        bad
          [
            "";
            "(A, B)";
            "(A, B, C, D)";
            "(A, B, C) &";
            "(A, B, C) extra";
            "exists . (A, B, C)";
            "(A, B, C";
            "\"unterminated";
          ]);
    test "parse_with_unknowns reports only new names" (fun () ->
        let db = db_of [ ("JOHN", "LIKES", "FELIX") ] in
        let _, unknowns =
          Query_parser.parse_with_unknowns db "(JOHN, LIKEZ, ?x) & (?x, in, CAT)"
        in
        Alcotest.(check (list string)) "unknowns" [ "CAT"; "LIKEZ" ] unknowns);
    test "parse_template accepts exactly one template" (fun () ->
        let db = db_of [] in
        let tpl = Query_parser.parse_template db "(JOHN, *, *)" in
        Alcotest.(check int) "vars" 2 (List.length (Template.vars tpl));
        Alcotest.(check bool) "rejects formulas" true
          (try
             ignore (Query_parser.parse_template db "(A, B, C) & (D, E, F)");
             false
           with Query_parser.Parse_error _ -> true));
    test "round-trip: parse (print (parse q)) = parse q" (fun () ->
        let db = db_of [] in
        let inputs =
          [
            "(JOHN, LIKES, ?x)";
            "(?x, in, BOOK) & (?x, CITES, ?x)";
            "exists x . (?x, AUTHOR, ?y) & (?x, in, BOOK)";
            "(A, R, ?x) | (B, R, ?x)";
          ]
        in
        List.iter
          (fun input ->
            let first = q db input in
            let printed = Query.to_string (Database.symtab db) first in
            let second = q db printed in
            Alcotest.(check bool) (Printf.sprintf "round-trip %s" input) true
              (Query.equal first second))
          inputs);
  ]
