open Lsdb_storage
open Testutil

let with_temp_file f =
  let path = Filename.temp_file "lsdb_factheap" ".pages" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let tests =
  [
    test "insert/mem/delete round trip" (fun () ->
        with_temp_file (fun path ->
            let heap = Fact_heap.open_ path in
            Alcotest.(check bool) "insert" true (Fact_heap.insert heap ("A", "R", "B"));
            Alcotest.(check bool) "dup" false (Fact_heap.insert heap ("A", "R", "B"));
            Alcotest.(check bool) "mem" true (Fact_heap.mem heap ("A", "R", "B"));
            Alcotest.(check bool) "delete" true (Fact_heap.delete heap ("A", "R", "B"));
            Alcotest.(check bool) "gone" false (Fact_heap.mem heap ("A", "R", "B"));
            Fact_heap.close heap));
    test "facts survive reopen, deletions included" (fun () ->
        with_temp_file (fun path ->
            let heap = Fact_heap.open_ path in
            ignore (Fact_heap.insert heap ("JOHN", "LIKES", "FELIX"));
            ignore (Fact_heap.insert heap ("JOHN", "EARNS", "$25000"));
            ignore (Fact_heap.insert heap ("DOOMED", "R", "X"));
            ignore (Fact_heap.delete heap ("DOOMED", "R", "X"));
            Fact_heap.close heap;
            let heap2 = Fact_heap.open_ path in
            Alcotest.(check int) "two facts" 2 (Fact_heap.cardinal heap2);
            Alcotest.(check bool) "survivor" true
              (Fact_heap.mem heap2 ("JOHN", "LIKES", "FELIX"));
            Alcotest.(check bool) "deleted stays deleted" false
              (Fact_heap.mem heap2 ("DOOMED", "R", "X"));
            Fact_heap.close heap2));
    test "round-trips a whole database with inference intact" (fun () ->
        with_temp_file (fun path ->
            let db = Lsdb.Paper_examples.organization () in
            let heap = Fact_heap.open_ path in
            let added = Fact_heap.add_database heap db in
            Alcotest.(check int) "all base facts" (Lsdb.Database.base_cardinal db) added;
            Fact_heap.close heap;
            let heap2 = Fact_heap.open_ path in
            let db2 = Fact_heap.to_database heap2 in
            Fact_heap.close heap2;
            check_holds db2 "inference after disk round trip"
              ("MANAGER", "WORKS-FOR", "DEPARTMENT")));
    test "unicode and decorated names encode safely" (fun () ->
        with_temp_file (fun path ->
            let heap = Fact_heap.open_ path in
            ignore (Fact_heap.insert heap ("PC#9-WAM", "⊑", "$25,000"));
            Fact_heap.close heap;
            let heap2 = Fact_heap.open_ path in
            Alcotest.(check bool) "intact" true
              (Fact_heap.mem heap2 ("PC#9-WAM", "⊑", "$25,000"));
            Fact_heap.close heap2));
    test "scales across pages" (fun () ->
        with_temp_file (fun path ->
            let heap = Fact_heap.open_ path in
            for i = 0 to 999 do
              ignore
                (Fact_heap.insert heap
                   (Printf.sprintf "ENTITY-%04d" i, "RELATES-TO", "HUB"))
            done;
            Alcotest.(check int) "cardinal" 1000 (Fact_heap.cardinal heap);
            Alcotest.(check bool) "multiple pages" true (Fact_heap.pages heap > 1);
            Fact_heap.close heap;
            let heap2 = Fact_heap.open_ path in
            Alcotest.(check int) "reopened" 1000 (Fact_heap.cardinal heap2);
            Fact_heap.close heap2));
  ]
