(* Cross-cutting properties of the whole system, on random databases. *)

open Lsdb
open Testutil

(* Small random fact sets over a fixed vocabulary, including hierarchy
   facts so the §3 rules all get exercise. *)
let gen_facts =
  let entity_names = [| "A"; "B"; "C"; "D"; "E"; "R1"; "R2"; "CLS1"; "CLS2" |] in
  QCheck.Gen.(
    let name = map (fun i -> entity_names.(i)) (int_bound (Array.length entity_names - 1)) in
    let rel = frequency [ (4, name); (1, return "isa"); (1, return "in"); (1, return "syn") ] in
    list_size (int_range 0 15) (triple name rel name))

let arb_facts = QCheck.make ~print:(fun facts ->
    String.concat "; " (List.map (fun (s, r, t) -> Printf.sprintf "(%s,%s,%s)" s r t) facts))
    gen_facts

let closure_facts db =
  Closure.to_seq (Database.closure db) |> List.of_seq |> List.sort Fact.compare

let tests =
  [
    qcheck ~count:150 "closure is monotone: more facts, never fewer consequences"
      QCheck.(pair arb_facts (triple (string_of_size (QCheck.Gen.return 1)) (string_of_size (QCheck.Gen.return 1)) (string_of_size (QCheck.Gen.return 1))))
      (fun (facts, (s, r, t)) ->
        let db = db_of facts in
        let before = closure_facts db in
        ignore (Database.insert_names db s r t);
        let after = Closure.mem (Database.closure db) in
        List.for_all after before);
    qcheck ~count:150 "closure is idempotent: re-inserting closure facts adds nothing"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        (* Compare by names: the second database interns in a different
           order, so raw ids differ. *)
        let dump db =
          closure_facts db
          |> List.map (fun f -> Fact.names (Database.symtab db) f)
          |> List.sort compare
        in
        let closed = dump db in
        let db2 = Database.create () in
        List.iter (fun (s, r, t) -> ignore (Database.insert_names db2 s r t)) closed;
        dump db2 = closed);
    qcheck ~count:150 "closure contains the base facts"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let closure = Database.closure db in
        Store.fold (fun f acc -> acc && Closure.mem closure f) (Database.store db) true);
    qcheck ~count:100 "broadening never loses answers (Q ⇒ Q′ on random DBs)"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        if Database.base_cardinal db <= 2 then true
        else begin
          let broadness = Broadness.compute db in
          (* Q ⇒ Q′ is guaranteed for individual relationships only (the
             §3.1 rules are guarded on R_i; class relationships like ∈/≈
             deliberately do not propagate down), so the probes fix an
             ordinary relationship in the template. *)
          let queries =
            [ "(A, C, ?x)"; "(?x, R1, B)"; "(A, R1, ?x)"; "(CLS1, R2, ?x)" ]
          in
          List.for_all
            (fun text ->
              let query = q db text in
              let rows answer = List.map Array.to_list answer.Eval.rows in
              let original = rows (Eval.eval db query) in
              List.for_all
                (fun (br : Retraction.broader) ->
                  let broader_rows = rows (Eval.eval db br.Retraction.query) in
                  List.for_all (fun row -> List.mem row broader_rows) original)
                (Retraction.retraction_set db broadness query))
            queries
        end);
    qcheck ~count:100 "fact-file save/load round-trips random databases"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let db' = Database.create () in
        ignore (Fact_file.load_string db' (Fact_file.save_string db));
        let dump db =
          Database.facts db
          |> List.map (fun f -> Fact.names (Database.symtab db) f)
          |> List.sort compare
        in
        dump db = dump db');
    qcheck ~count:100 "snapshot round-trips random databases"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let db' = Lsdb_storage.Snapshot.decode (Lsdb_storage.Snapshot.encode db) in
        let dump db =
          Database.facts db
          |> List.map (fun f -> Fact.names (Database.symtab db) f)
          |> List.sort compare
        in
        dump db = dump db');
    qcheck ~count:100 "synonymy is an equivalence over the closure"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let closure = Database.closure db in
        let syn_pairs =
          Closure.match_list closure (Store.pattern ~r:Entity.syn ())
        in
        (* Symmetry. *)
        List.for_all
          (fun (f : Fact.t) -> Closure.mem closure (Fact.make f.Fact.t Entity.syn f.Fact.s))
          syn_pairs
        (* Transitivity through shared endpoints. *)
        && List.for_all
             (fun (f : Fact.t) ->
               List.for_all
                 (fun (g : Fact.t) ->
                   (not (Entity.equal f.Fact.t g.Fact.s))
                   || Entity.equal f.Fact.s g.Fact.t
                   || Closure.mem closure (Fact.make f.Fact.s Entity.syn g.Fact.t))
                 syn_pairs)
             syn_pairs);
    qcheck ~count:50 "navigation neighborhood facts all hold in the match layer"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let ok = ref true in
        Symtab.iter_user
          (fun e ->
            let nbhd = Navigation.neighborhood db e in
            List.iter
              (fun (r, targets) ->
                List.iter
                  (fun t ->
                    if not (Match_layer.holds ~opts:Match_layer.nav_opts db (Fact.make e r t))
                    then ok := false)
                  targets)
              nbhd.Navigation.as_source)
          (Database.symtab db);
        !ok);
    qcheck ~count:100 "conjunct reordering preserves answers"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let queries =
          [
            "(?x, isa, top) & (?x, in, CLS1)";
            "(A, ?r, ?x) & (?x, R1, ?y)";
            "(?x, R1, ?y) & (?y, in, CLS2) & (?x, isa, ?z)";
            "(?x, syn, ?y) & (?x, R2, ?z)";
          ]
        in
        List.for_all
          (fun text ->
            let query = q db text in
            let dump reorder =
              (Eval.eval ~reorder db query).Eval.rows
              |> List.map Array.to_list |> List.sort compare
            in
            dump true = dump false)
          queries);
    qcheck ~count:50 "integrity violations are stable under recomputation"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        let v1 = List.length (Integrity.violations db) in
        Database.invalidate db;
        let v2 = List.length (Integrity.violations db) in
        v1 = v2);
      qcheck ~count:60 "Eval agrees with a brute-force reference evaluator"
      arb_facts
      (fun facts ->
        let db = db_of facts in
        (* Conjunctive queries with up to two variables, evaluated both by
           Eval and by brute-force enumeration of the active domain. *)
        let queries =
          [ "(?x, R1, ?y)"; "(A, ?r, ?x)"; "(?x, in, ?c)";
            "(?x, R1, B) & (?x, in, ?c)"; "(A, R2, ?x) & (?x, isa, ?y)" ]
        in
        let domain =
          (* ⊑ is always active: §2.3 makes the hierarchy's reflexive facts
             part of every database, so a free relationship may denote it
             even when no stored fact mentions it. *)
          Entity.gen
          :: (List.of_seq (Closure.active_entities (Database.closure db))
             |> List.filter (fun e -> not (Entity.equal e Entity.gen)))
        in
        List.for_all
          (fun text ->
            let query = q db text in
            let vars = Query.free_vars query in
            let atoms = Query.atoms query in
            (* The query's own constants are entities even when no stored
               fact mentions them (their reflexive ⊑ facts exist). *)
            let domain =
              List.sort_uniq compare
                (domain @ List.map (fun (_, _, e) -> e) (Query.constants query))
            in
            let brute =
              (* Enumerate assignments var -> domain entity; keep those
                 under which every atom holds in the match layer. *)
              let rec assignments = function
                | [] -> [ [] ]
                | v :: rest ->
                    List.concat_map
                      (fun tail -> List.map (fun e -> (v, e) :: tail) domain)
                      (assignments rest)
              in
              assignments vars
              |> List.filter (fun env ->
                     List.for_all
                       (fun tpl ->
                         match
                           Template.to_fact
                             (Template.subst (fun v -> List.assoc_opt v env) tpl)
                         with
                         | Some fact -> Match_layer.holds db fact
                         | None -> false)
                       atoms)
              |> List.map (fun env -> List.map (fun v -> List.assoc v env) vars)
              |> List.sort_uniq compare
            in
            let evaluated =
              (Eval.eval db query).Eval.rows
              |> List.map Array.to_list |> List.sort_uniq compare
            in
            if brute <> evaluated then
              QCheck.Test.fail_reportf "query %s: brute %d rows, eval %d rows" text
                (List.length brute) (List.length evaluated)
            else true)
          queries);
  ]
