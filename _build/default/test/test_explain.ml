open Lsdb
open Testutil

let tests =
  [
    test "stored facts explain as Stored" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        Alcotest.(check bool) "stored" true
          (Explain.source_of db (fact db ("A", "R", "B")) = Explain.Stored));
    test "derived facts explain with their rule and premises" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        let tree = Explain.explain db (fact db ("JOHN", "EARNS", "SALARY")) in
        (match tree.Explain.source with
        | Explain.Derived "mem-source" -> ()
        | _ -> Alcotest.fail "expected Derived mem-source");
        Alcotest.(check int) "two premises" 2 (List.length tree.Explain.premises);
        List.iter
          (fun premise ->
            Alcotest.(check bool) "premises stored" true
              (premise.Explain.source = Explain.Stored))
          tree.Explain.premises);
    test "virtual facts explain as Virtual" (fun () ->
        let db = db_of [ ("JOHN", "EARNS", "$25000") ] in
        let e = Database.entity db in
        Alcotest.(check bool) "math" true
          (Explain.source_of db (Fact.make (e "$25000") Entity.gt (e "20000"))
          = Explain.Virtual);
        Alcotest.(check bool) "hierarchy" true
          (Explain.source_of db (Fact.make (e "JOHN") Entity.gen Entity.top)
          = Explain.Virtual));
    test "composition facts explain as Composed" (fun () ->
        let db = db_of [ ("A", "R1", "B"); ("B", "R2", "C") ] in
        Database.set_limit db 2;
        let e = Database.entity db in
        let composed = Database.entity db "R1·R2" in
        Alcotest.(check bool) "composed" true
          (Explain.source_of db (Fact.make (e "A") composed (e "C")) = Explain.Composed));
    test "absent facts explain as Unknown" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        Alcotest.(check bool) "unknown" true
          (Explain.source_of db (fact db ("B", "R", "A")) = Explain.Unknown));
    test "deep derivations render as an indented tree" (fun () ->
        let db =
          db_of
            [
              ("JOHN", "in", "EMPLOYEE");
              ("EMPLOYEE", "EARNS", "SALARY");
              ("SALARY", "isa", "COMPENSATION");
            ]
        in
        let tree = Explain.explain db (fact db ("JOHN", "EARNS", "COMPENSATION")) in
        let rendered = Explain.render db tree in
        let lines = String.split_on_char '\n' rendered in
        Alcotest.(check bool) "multi-line" true (List.length lines >= 3);
        Alcotest.(check bool) "root unindented" true
          (String.length (List.hd lines) > 0 && (List.hd lines).[0] = '('));
  ]
