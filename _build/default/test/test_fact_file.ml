open Lsdb
open Testutil

let tests =
  [
    test "facts, comments and blank lines load" (fun () ->
        let db = Database.create () in
        let n =
          Fact_file.load_string db
            "# a comment\n\n(JOHN, LIKES, FELIX)\n(JOHN, EARNS, $25000)  # inline\n"
        in
        Alcotest.(check int) "two inserted" 2 n;
        check_holds db "fact" ("JOHN", "LIKES", "FELIX"));
    test "directives: class, individual, limit" (fun () ->
        let db = Database.create () in
        ignore
          (Fact_file.load_string db
             "class TOTAL-NUMBER\nindividual WORKS-FOR\nlimit 3\n");
        Alcotest.(check bool) "class" true
          (Database.is_class_relationship db (Database.entity db "TOTAL-NUMBER"));
        Alcotest.(check int) "limit" 3 (Database.limit db));
    test "rule directives add working rules" (fun () ->
        let db = Database.create () in
        ignore
          (Fact_file.load_string db
             "(REX, in, DOG)\nrule dogs-bark: (?x, in, DOG) => (?x, CAN, BARK)\n");
        check_holds db "derived" ("REX", "CAN", "BARK"));
    test "exclude and include directives" (fun () ->
        let db = Database.create () in
        ignore
          (Fact_file.load_string db
             "(JOHN, in, EMPLOYEE)\n(EMPLOYEE, EARNS, SALARY)\nexclude mem-source\n");
        check_not_holds db "excluded" ("JOHN", "EARNS", "SALARY");
        ignore (Fact_file.load_string db "include mem-source\n");
        check_holds db "included" ("JOHN", "EARNS", "SALARY"));
    test "errors carry line numbers" (fun () ->
        let db = Database.create () in
        let expect_line line text =
          try
            ignore (Fact_file.load_string db text);
            Alcotest.fail "expected Syntax_error"
          with Fact_file.Syntax_error { line = got; _ } ->
            Alcotest.(check int) "line" line got
        in
        expect_line 2 "(A, B, C)\n(broken\n";
        expect_line 1 "(?x, B, C)\n";
        expect_line 3 "(A, B, C)\n\nnonsense D\n";
        expect_line 1 "limit zero\n";
        expect_line 1 "exclude no-such-rule\n");
    test "save/load round-trips facts, declarations and limit" (fun () ->
        let db = Paper_examples.organization () in
        Database.set_limit db 3;
        ignore (Database.exclude db "syn-rel");
        let text = Fact_file.save_string db in
        let db' = Database.create () in
        ignore (Fact_file.load_string db' text);
        (* Same base facts. *)
        let base db =
          Database.facts db
          |> List.map (fun f ->
                 let s, r, t = Fact.names (Database.symtab db) f in
                 Printf.sprintf "(%s,%s,%s)" s r t)
          |> List.sort String.compare
        in
        Alcotest.(check (list string)) "facts preserved" (base db) (base db');
        Alcotest.(check int) "limit" 3 (Database.limit db');
        Alcotest.(check bool) "exclusion preserved" false (Database.rule_enabled db' "syn-rel");
        Alcotest.(check bool) "class declaration preserved" true
          (Database.is_class_relationship db' (Database.entity db' "TOTAL-NUMBER")));
    test "quoted names survive the round trip" (fun () ->
        let db = Database.create () in
        ignore (Database.insert_names db "WAR, AND PIECES" "CITES" "SMALL (BLUE) BOOK");
        let text = Fact_file.save_string db in
        let db' = Database.create () in
        ignore (Fact_file.load_string db' text);
        check_holds db' "quoted fact" ("WAR, AND PIECES", "CITES", "SMALL (BLUE) BOOK"));
    test "file save/load" (fun () ->
        let db = Paper_examples.campus () in
        let path = Filename.temp_file "lsdb_test" ".lsdb" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Fact_file.save_file db path;
            let db' = Database.create () in
            let n = Fact_file.load_file db' path in
            Alcotest.(check int) "facts loaded" (Database.base_cardinal db - 2)
              n (* axiom facts are not serialized *);
            check_holds db' "sample" ("FRESHMAN", "isa", "STUDENT")));
  ]
