open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let shell_for demo =
  Lsdb_shell.Shell.create ((List.assoc demo Lsdb_shell.Shell.demos) ())

let tests =
  [
    test "help lists every command" (fun () ->
        let shell = shell_for "music" in
        let out = Lsdb_shell.Shell.execute shell "help" in
        List.iter
          (fun cmd -> Alcotest.(check bool) cmd true (contains out cmd))
          [ "try"; "nav"; "probe"; "relation"; "define"; "limit"; "check" ]);
    test "nav renders and records history; back walks it" (fun () ->
        let shell = shell_for "music" in
        let out = Lsdb_shell.Shell.execute shell "nav JOHN" in
        Alcotest.(check bool) "table" true (contains out "FAVORITE-MUSIC");
        ignore (Lsdb_shell.Shell.execute shell "nav PC#9-WAM");
        let history = Lsdb_shell.Shell.execute shell "history" in
        Alcotest.(check bool) "trail" true (contains history "JOHN → PC#9-WAM");
        let back = Lsdb_shell.Shell.execute shell "back" in
        Alcotest.(check bool) "back to john" true (contains back "JOHN, *, *"));
    test "q evaluates queries" (fun () ->
        let shell = shell_for "payroll" in
        let out = Lsdb_shell.Shell.execute shell "q (JOHN, WORKS-FOR, ?d)" in
        Alcotest.(check bool) "shipping" true (contains out "SHIPPING"));
    test "probe renders the §5.2 menu with answers" (fun () ->
        let shell = shell_for "campus" in
        let out =
          Lsdb_shell.Shell.execute shell "probe (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)"
        in
        Alcotest.(check bool) "menu" true (contains out "FRESHMAN instead of STUDENT");
        Alcotest.(check bool) "answers shown" true (contains out "FROSH-CONCERT"));
    test "insert with integrity check, then remove" (fun () ->
        let shell = shell_for "campus" in
        Alcotest.(check bool) "inserted" true
          (contains (Lsdb_shell.Shell.execute shell "insert (SUE, LOVES, SKIING)") "inserted");
        Alcotest.(check bool) "duplicate" true
          (contains (Lsdb_shell.Shell.execute shell "insert (SUE, LOVES, SKIING)") "already present");
        Alcotest.(check bool) "removed" true
          (contains (Lsdb_shell.Shell.execute shell "remove (SUE, LOVES, SKIING)") "removed"));
    test "define / call / ops / undefine" (fun () ->
        let shell = shell_for "payroll" in
        Alcotest.(check bool) "defined" true
          (contains
             (Lsdb_shell.Shell.execute shell
                "define dept(?who) := (?who, WORKS-FOR, ?d) & (?d, in, DEPARTMENT)")
             "defined");
        Alcotest.(check bool) "called" true
          (contains (Lsdb_shell.Shell.execute shell "call dept MARY") "RECEIVING");
        Alcotest.(check bool) "listed" true
          (contains (Lsdb_shell.Shell.execute shell "ops") "dept(?who)");
        Alcotest.(check bool) "removed" true
          (contains (Lsdb_shell.Shell.execute shell "undefine dept") "removed"));
    test "rules / exclude / include round trip" (fun () ->
        let shell = shell_for "organization" in
        Alcotest.(check bool) "disabled" true
          (contains (Lsdb_shell.Shell.execute shell "exclude syn-rel") "disabled");
        Alcotest.(check bool) "marker" true
          (contains (Lsdb_shell.Shell.execute shell "rules") "[ ]");
        Alcotest.(check bool) "enabled" true
          (contains (Lsdb_shell.Shell.execute shell "include syn-rel") "enabled"));
    test "check reports contradictions" (fun () ->
        let shell = shell_for "organization" in
        Alcotest.(check bool) "clean" true
          (contains (Lsdb_shell.Shell.execute shell "check") "no contradictions");
        ignore (Lsdb_shell.Shell.execute shell "insert (JOHN, LOVES, OPERA)");
        (* HATES clashes with LOVES; bypass the checked insert through a
           raw database mutation. *)
        ignore
          (Lsdb.Database.insert_names (Lsdb_shell.Shell.database shell) "JOHN" "HATES"
             "OPERA");
        Alcotest.(check bool) "violation" true
          (contains (Lsdb_shell.Shell.execute shell "check") "contradicts"));
    test "errors are reported, not raised" (fun () ->
        let shell = shell_for "music" in
        List.iter
          (fun (cmd, needle) ->
            Alcotest.(check bool) cmd true
              (contains (Lsdb_shell.Shell.execute shell cmd) needle))
          [
            ("bogus", "unknown command");
            ("nav NO-SUCH-ENTITY", "no such entity");
            ("q (broken", "parse error");
            ("limit zero", "positive integer");
            ("call missing", "no operator");
            ("load /no/such/file.lsdb", "/no/such/file.lsdb");
          ]);
    test "save and load round-trip through the shell" (fun () ->
        let shell = shell_for "campus" in
        let path = Filename.temp_file "lsdb_shell" ".lsdb" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Alcotest.(check bool) "saved" true
              (contains (Lsdb_shell.Shell.execute shell ("save " ^ path)) "saved");
            let fresh = Lsdb_shell.Shell.create (Lsdb.Database.create ()) in
            Alcotest.(check bool) "loaded" true
              (contains (Lsdb_shell.Shell.execute fresh ("load " ^ path)) "loaded");
            Alcotest.(check bool) "facts present" true
              (contains (Lsdb_shell.Shell.execute fresh "q (FRESHMAN, isa, ?c)") "STUDENT")));
    test "scripts execute line by line with echo" (fun () ->
        let shell = shell_for "payroll" in
        let out =
          Lsdb_shell.Shell.run_script shell
            "# a comment\nq (JOHN, EARNS, ?s)\n\nstats\n"
        in
        Alcotest.(check bool) "echoed" true (contains out "lsdb> q (JOHN, EARNS, ?s)");
        Alcotest.(check bool) "answered" true (contains out "$26000");
        Alcotest.(check bool) "stats ran" true (contains out "base facts"));
    test "stats reflect the database" (fun () ->
        let shell = shell_for "payroll" in
        let out = Lsdb_shell.Shell.execute shell "stats" in
        Alcotest.(check bool) "entities" true (contains out "entities:");
        Alcotest.(check bool) "closure" true (contains out "closure:"));
      test "t renders 1D and 2D template tables" (fun () ->
        let shell = shell_for "payroll" in
        let one = Lsdb_shell.Shell.execute shell "t (JOHN, WORKS-FOR, ?d)" in
        Alcotest.(check bool) "column" true (contains one "SHIPPING");
        let two = Lsdb_shell.Shell.execute shell "t (?who, WORKS-FOR, ?where)" in
        Alcotest.(check bool) "grouped rows" true
          (contains two "MARY" && contains two "RECEIVING"));
    test "assoc shows composed paths under the current limit" (fun () ->
        let shell = shell_for "music" in
        let out = Lsdb_shell.Shell.execute shell "assoc LEOPOLD MOZART" in
        Alcotest.(check bool) "composed path" true
          (contains out "FAVORITE-MUSIC·COMPOSED-BY");
        ignore (Lsdb_shell.Shell.execute shell "limit 1");
        let out = Lsdb_shell.Shell.execute shell "assoc LEOPOLD MOZART" in
        Alcotest.(check bool) "path gone at limit 1" false
          (contains out "FAVORITE-MUSIC·COMPOSED-BY"));
    test "script command runs a command file" (fun () ->
        let shell = shell_for "payroll" in
        let path = Filename.temp_file "lsdb_script" ".cmds" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "# comment\nq (TOM, EARNS, ?s)\nstats\n";
            close_out oc;
            let out = Lsdb_shell.Shell.execute shell ("script " ^ path) in
            Alcotest.(check bool) "query ran" true (contains out "$27000");
            Alcotest.(check bool) "stats ran" true (contains out "base facts")));
    test "explain command renders provenance" (fun () ->
        let shell = shell_for "organization" in
        let out = Lsdb_shell.Shell.execute shell "explain (JOHN, IS-PAID-BY, SHIPPING)" in
        Alcotest.(check bool) "rule named" true (contains out "gen-rel");
        Alcotest.(check bool) "stored leaves" true (contains out "[stored]"));
    test "relation command renders the §6.1 table" (fun () ->
        let shell = shell_for "payroll" in
        let out =
          Lsdb_shell.Shell.execute shell "relation EMPLOYEE WORKS-FOR DEPARTMENT"
        in
        Alcotest.(check bool) "rows" true (contains out "ACCOUNTING"));
  ]
