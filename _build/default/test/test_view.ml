open Lsdb
open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tests =
  [
    test "EX4: the §6.1 employee relation" (fun () ->
        let db = Paper_examples.payroll () in
        let view =
          Operators.relation db "EMPLOYEE"
            [ ("WORKS-FOR", "DEPARTMENT"); ("EARNS", "SALARY") ]
        in
        Alcotest.(check (list string)) "headers"
          [ "EMPLOYEE"; "WORKS-FOR DEPARTMENT"; "EARNS SALARY" ]
          view.View.headers;
        Alcotest.(check int) "three rows" 3 (View.row_count view);
        let rows = View.rows_named db view in
        Alcotest.(check bool) "john row" true
          (List.mem [ "JOHN"; "SHIPPING"; "$26000" ] rows);
        Alcotest.(check bool) "tom row" true
          (List.mem [ "TOM"; "ACCOUNTING"; "$27000" ] rows);
        Alcotest.(check bool) "mary row" true
          (List.mem [ "MARY"; "RECEIVING"; "$25000" ] rows));
    test "EX4: rendered table matches the paper's cells" (fun () ->
        let db = Paper_examples.payroll () in
        let view =
          Operators.relation db "EMPLOYEE"
            [ ("WORKS-FOR", "DEPARTMENT"); ("EARNS", "SALARY") ]
        in
        let table = View.render db view in
        List.iter
          (fun cell -> Alcotest.(check bool) cell true (contains table cell))
          [ "JOHN"; "SHIPPING"; "$26000"; "TOM"; "ACCOUNTING"; "$27000";
            "MARY"; "RECEIVING"; "$25000" ]);
    test "non-1NF cells hold multiple entities" (fun () ->
        let db = Paper_examples.payroll () in
        (* Give JOHN a second department. *)
        ignore (Database.insert_names db "JOHN" "WORKS-FOR" "ACCOUNTING");
        let view =
          Operators.relation db "EMPLOYEE" [ ("WORKS-FOR", "DEPARTMENT") ]
        in
        let john_row =
          List.find
            (fun row -> match row with [ y ] :: _ -> y = Database.entity db "JOHN" | _ -> false)
            view.View.rows
        in
        match john_row with
        | [ _; depts ] -> Alcotest.(check int) "two departments" 2 (List.length depts)
        | _ -> Alcotest.fail "unexpected row shape");
    test "instances with no matching facts get empty cells" (fun () ->
        let db = db_of [ ("X", "in", "THING") ] in
        let view = Operators.relation db "THING" [ ("COLOR", "HUE") ] in
        match view.View.rows with
        | [ [ _; [] ] ] -> ()
        | _ -> Alcotest.fail "expected one row with an empty cell");
    test "views see inferred facts" (fun () ->
        let db =
          db_of
            [
              ("REX", "in", "DOG");
              ("DOG", "isa", "ANIMAL");
              ("REX", "EATS", "KIBBLE");
              ("KIBBLE", "in", "FOOD");
            ]
        in
        (* REX ∈ ANIMAL is inferred (mem-up); the ANIMAL view includes it. *)
        let view = Operators.relation db "ANIMAL" [ ("EATS", "FOOD") ] in
        Alcotest.(check int) "one row" 1 (View.row_count view);
        Alcotest.(check bool) "rex eats kibble" true
          (View.rows_named db view = [ [ "REX"; "KIBBLE" ] ]));
    test "functional view: apply" (fun () ->
        let db = Paper_examples.payroll () in
        let e = Database.entity db in
        (* $26000 is stored; SALARY is inferred via membership (§3.2). *)
        Alcotest.(check (list string)) "john's salary" [ "$26000"; "SALARY" ]
          (names db (View.apply db ~rel:(e "EARNS") (e "JOHN"))));
  ]
