open Lsdb_datalog
open Testutil

let v i = Term.Var i
let c x = Term.Const x
let atom a b d = Atom.make a b d
let triple = Triple.make

let closure rules base =
  Engine.closure rules (List.to_seq base)

let tests =
  [
    test "rule safety: head variable must occur in body" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rule.make ~name:"bad"
                  ~body:[ atom (v 0) (c 1) (v 1) ]
                  ~heads:[ atom (v 0) (c 1) (v 2) ]
                  ());
             false
           with Rule.Unsafe _ -> true));
    test "rule safety: empty body/head rejected" (fun () ->
        Alcotest.(check bool) "empty head" true
          (try
             ignore (Rule.make ~name:"nohead" ~body:[ atom (v 0) (c 1) (v 1) ] ~heads:[] ());
             false
           with Rule.Unsafe _ -> true));
    test "transitive closure via one rule" (fun () ->
        (* edge(x,y) ∧ edge(y,z) ⇒ edge(x,z), over a 5-chain *)
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:[ atom (v 0) (c edge) (v 1); atom (v 1) (c edge) (v 2) ]
            ~heads:[ atom (v 0) (c edge) (v 2) ]
            ()
        in
        let base = List.init 4 (fun i -> triple (100 + i) edge (101 + i)) in
        let result = closure [ rule ] base in
        (* 5 nodes in a chain: all ordered pairs = 4+3+2+1 = 10 edges *)
        Alcotest.(check int) "closure size" 10 (Index.cardinal result.index);
        Alcotest.(check bool) "end-to-end edge" true
          (Index.mem result.index (triple 100 edge 104)));
    test "guards restrict derivations" (fun () ->
        let rel = 7 and blessed = 8 in
        let rule =
          Rule.make ~name:"guarded"
            ~body:[ atom (v 0) (v 1) (v 2) ]
            ~guards:[ Guard.Holds ("blessed", (fun r -> r = blessed), v 1) ]
            ~heads:[ atom (v 2) (v 1) (v 0) ]
            ()
        in
        let result = closure [ rule ] [ triple 1 rel 2; triple 1 blessed 2 ] in
        Alcotest.(check bool) "blessed flipped" true (Index.mem result.index (triple 2 blessed 1));
        Alcotest.(check bool) "unblessed not flipped" false
          (Index.mem result.index (triple 2 rel 1)));
    test "distinct guard" (fun () ->
        let rel = 7 in
        let rule =
          Rule.make ~name:"nonrefl"
            ~body:[ atom (v 0) (c rel) (v 1) ]
            ~guards:[ Guard.Distinct (v 0, v 1) ]
            ~heads:[ atom (v 1) (c rel) (v 0) ]
            ()
        in
        let result = closure [ rule ] [ triple 1 rel 1; triple 1 rel 2 ] in
        Alcotest.(check bool) "symmetric pair" true (Index.mem result.index (triple 2 rel 1));
        Alcotest.(check int) "reflexive not duplicated" 3 (Index.cardinal result.index));
    test "provenance records rule and premises" (fun () ->
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:[ atom (v 0) (c edge) (v 1); atom (v 1) (c edge) (v 2) ]
            ~heads:[ atom (v 0) (c edge) (v 2) ]
            ()
        in
        let result = closure [ rule ] [ triple 1 edge 2; triple 2 edge 3 ] in
        match Triple.Tbl.find_opt result.provenance (triple 1 edge 3) with
        | None -> Alcotest.fail "no provenance"
        | Some { Engine.rule = name; premises } ->
            Alcotest.(check string) "rule name" "trans" name;
            Alcotest.(check int) "two premises" 2 (List.length premises);
            Alcotest.(check bool) "premises are the base facts" true
              (List.sort Triple.compare premises
              = [ triple 1 edge 2; triple 2 edge 3 ]));
    test "multi-head rules derive all heads" (fun () ->
        let rel = 7 and left = 8 and right = 9 in
        let rule =
          Rule.make ~name:"both"
            ~body:[ atom (v 0) (c rel) (v 1) ]
            ~heads:[ atom (v 0) (c left) (v 1); atom (v 1) (c right) (v 0) ]
            ()
        in
        let result = closure [ rule ] [ triple 1 rel 2 ] in
        Alcotest.(check bool) "left" true (Index.mem result.index (triple 1 left 2));
        Alcotest.(check bool) "right" true (Index.mem result.index (triple 2 right 1)));
    test "diverging rule set trips max_facts" (fun () ->
        (* succ(x,y) ⇒ succ(y, y) is bounded, so use a pairing explosion:
           p(x,y) ∧ p(y,z) ⇒ p(x,z) over a dense graph stays bounded too;
           instead make fresh facts via two relations ping/pong alternating
           on an unbounded counter — impossible in pure Datalog (finite
           Herbrand base), so divergence must come from max_facts being
           smaller than the genuine closure. *)
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:[ atom (v 0) (c edge) (v 1); atom (v 1) (c edge) (v 2) ]
            ~heads:[ atom (v 0) (c edge) (v 2) ]
            ()
        in
        let base = List.init 50 (fun i -> triple i edge (i + 1)) in
        Alcotest.(check bool) "raises Diverged" true
          (try
             ignore (Engine.closure ~max_facts:100 [ rule ] (List.to_seq base));
             false
           with Engine.Diverged _ -> true));
    test "rounds reach fixpoint logarithmically for transitive chains" (fun () ->
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:[ atom (v 0) (c edge) (v 1); atom (v 1) (c edge) (v 2) ]
            ~heads:[ atom (v 0) (c edge) (v 2) ]
            ()
        in
        let base = List.init 16 (fun i -> triple i edge (i + 1)) in
        let result = closure [ rule ] base in
        Alcotest.(check int) "full closure" (17 * 16 / 2) (Index.cardinal result.index);
        Alcotest.(check bool) "few rounds" true (result.rounds <= 8));
    test "duplicate base facts are collapsed" (fun () ->
        let result = closure [] [ triple 1 2 3; triple 1 2 3 ] in
        Alcotest.(check int) "one fact" 1 (Index.cardinal result.index);
        Alcotest.(check int) "no derived" 0 (List.length result.derived));
    test "step derives one round without fixpoint" (fun () ->
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:[ atom (v 0) (c edge) (v 1); atom (v 1) (c edge) (v 2) ]
            ~heads:[ atom (v 0) (c edge) (v 2) ]
            ()
        in
        let index = Index.create () in
        List.iter (fun t -> ignore (Index.add index t))
          [ triple 1 edge 2; triple 2 edge 3; triple 3 edge 4 ];
        let derived = Engine.step [ rule ] index in
        (* One round: (1,3) and (2,4), but not (1,4). *)
        Alcotest.(check int) "two new" 2
          (List.length (List.sort_uniq Triple.compare derived));
        Alcotest.(check bool) "(1,4) needs two rounds" false
          (List.mem (triple 1 edge 4) derived));
    test "index candidate patterns" (fun () ->
        let index = Index.create () in
        List.iter (fun t -> ignore (Index.add index t))
          [ triple 1 2 3; triple 1 2 4; triple 5 2 3 ];
        let count ~s ~r ~tgt =
          let n = ref 0 in
          Index.candidates index ~s ~r ~tgt (fun _ -> incr n);
          !n
        in
        Alcotest.(check int) "sr" 2 (count ~s:(Some 1) ~r:(Some 2) ~tgt:None);
        Alcotest.(check int) "rt" 2 (count ~s:None ~r:(Some 2) ~tgt:(Some 3));
        Alcotest.(check int) "st" 1 (count ~s:(Some 1) ~r:None ~tgt:(Some 3));
        Alcotest.(check int) "point" 1 (count ~s:(Some 1) ~r:(Some 2) ~tgt:(Some 3));
        Alcotest.(check int) "all" 3 (count ~s:None ~r:None ~tgt:None));
  ]
