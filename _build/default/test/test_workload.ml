open Lsdb_workload
open Testutil

let tests =
  [
    test "rng is deterministic per seed" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        let run rng = List.init 20 (fun _ -> Rng.int rng 1000) in
        Alcotest.(check (list int)) "same stream" (run a) (run b);
        let c = Rng.create 43 in
        Alcotest.(check bool) "different seed differs" true (run (Rng.create 42) <> run c));
    test "rng bounds are respected" (fun () ->
        let rng = Rng.create 1 in
        for _ = 1 to 1000 do
          let v = Rng.int rng 7 in
          if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
        done;
        for _ = 1 to 1000 do
          let f = Rng.float rng in
          if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
        done);
    test "shuffle permutes" (fun () ->
        let rng = Rng.create 5 in
        let original = List.init 50 Fun.id in
        let shuffled = Rng.shuffle rng original in
        Alcotest.(check (list int)) "same multiset" original (List.sort compare shuffled);
        Alcotest.(check bool) "actually moved" true (shuffled <> original));
    test "zipf masses sum to one and are monotone" (fun () ->
        let z = Zipf.create ~n:50 ~s:1.0 in
        let total = ref 0.0 in
        for rank = 0 to 49 do
          total := !total +. Zipf.mass z rank
        done;
        Alcotest.(check (float 1e-9)) "sums to 1" 1.0 !total;
        for rank = 1 to 49 do
          if Zipf.mass z rank > Zipf.mass z (rank - 1) +. 1e-12 then
            Alcotest.fail "mass not monotone"
        done);
    test "zipf sampling is skewed toward low ranks" (fun () ->
        let z = Zipf.create ~n:100 ~s:1.2 in
        let rng = Rng.create 9 in
        let low = ref 0 in
        let samples = 5000 in
        for _ = 1 to samples do
          if Zipf.sample z rng < 10 then incr low
        done;
        (* With s=1.2, the top 10 ranks carry well over a third. *)
        Alcotest.(check bool) "skewed" true (!low > samples / 3));
    test "uniform zipf (s=0) is roughly flat" (fun () ->
        let z = Zipf.create ~n:10 ~s:0.0 in
        Alcotest.(check (float 1e-9)) "flat" 0.1 (Zipf.mass z 3));
    test "taxonomy has the right shape" (fun () ->
        let rng = Rng.create 2 in
        let t = Taxonomy.generate ~prefix:"X" ~depth:3 ~fanout:3 rng in
        Alcotest.(check int) "node count" (1 + 3 + 9 + 27) (Taxonomy.node_count t);
        Alcotest.(check int) "leaves" 27 (List.length t.Taxonomy.leaves);
        Alcotest.(check int) "fact count" (3 + 9 + 27) (List.length t.Taxonomy.facts));
    test "taxonomy cross links stay acyclic (child to ancestor level)" (fun () ->
        let rng = Rng.create 3 in
        let t = Taxonomy.generate ~cross_links:10 ~prefix:"X" ~depth:4 ~fanout:2 rng in
        let db = Lsdb.Database.create () in
        Taxonomy.insert db t;
        (* The closure terminates and the hierarchy has no synonym pairs
           (a cycle would create mutual ⊑ and thus ≈ facts). *)
        let closure = Lsdb.Database.closure db in
        let syn_count =
          Lsdb.Closure.count_matches closure (Lsdb.Store.pattern ~r:Lsdb.Entity.syn ())
        in
        Alcotest.(check int) "no synonyms" 0 syn_count);
    test "org generator scales and mirrors relationally" (fun () ->
        let rng = Rng.create 11 in
        let org =
          Org_gen.generate
            ~params:
              { Org_gen.employees = 50; departments = 5; salary_min = 100;
                salary_max = 200; skew = 0.5 }
            rng
        in
        let db = Org_gen.to_database org in
        Alcotest.(check bool) "facts loaded" true (Lsdb.Database.base_cardinal db > 150);
        let catalog = Org_gen.to_catalog org in
        let emp = Lsdb_relational.Catalog.relation catalog "EMP" in
        Alcotest.(check int) "one row per employee" 50
          (Lsdb_relational.Relation.cardinal emp);
        (* Spot-check agreement: every EMP row's dept matches a WORKS-FOR fact. *)
        Lsdb_relational.Relation.iter
          (fun tuple ->
            check_holds db "row agrees with heap" (tuple.(0), "WORKS-FOR", tuple.(1)))
          emp);
    test "university generator reifies enrollments" (fun () ->
        let rng = Rng.create 13 in
        let uni =
          University_gen.generate
            ~params:
              { University_gen.students = 10; courses = 3; instructors = 2;
                enrollments_per_student = 2 }
            rng
        in
        let db = University_gen.to_database uni in
        let enrollments = answers db "(?e, in, ENROLLMENT)" in
        Alcotest.(check int) "20 enrollments" 20 (List.length enrollments);
        (* Each enrollment has student, course and grade facts. *)
        let complete = answers db "exists s, c, g . (?e, ENROLL-STUDENT, ?s) & (?e, ENROLL-COURSE, ?c) & (?e, ENROLL-GRADE, ?g)" in
        Alcotest.(check int) "all complete" 20 (List.length complete));
    test "chain queries are satisfiable by construction" (fun () ->
        let rng = Rng.create 17 in
        let org = Org_gen.generate ~params:{ Org_gen.default_params with Org_gen.employees = 30 } rng in
        let db = Org_gen.to_database org in
        for _ = 1 to 10 do
          let query = Query_gen.chain_query db rng ~length:2 in
          if not (Lsdb.Eval.holds db query) then
            Alcotest.failf "chain query failed: %s"
              (Lsdb.Query.to_string (Lsdb.Database.symtab db) query)
        done);
    test "misspell always changes the name" (fun () ->
        let rng = Rng.create 19 in
        for _ = 1 to 200 do
          let name = "QUARTERBACK" in
          if Query_gen.misspell rng name = name then Alcotest.fail "unchanged"
        done);
    test "random templates match at least their source fact when ground" (fun () ->
        let db = Lsdb.Paper_examples.organization () in
        let rng = Rng.create 23 in
        for _ = 1 to 50 do
          let tpl = Query_gen.template ~var_prob:0.0 db rng in
          match Lsdb.Template.to_fact tpl with
          | Some f ->
              if not (Lsdb.Database.mem db f) then Alcotest.fail "ground template not found"
          | None -> Alcotest.fail "expected ground template"
        done);
      test "citation generator: zipf-skewed graph with walkable trails" (fun () ->
        let rng = Rng.create 29 in
        let lib =
          Citation_gen.generate
            ~params:
              { Citation_gen.books = 100; authors = 20; subjects = 5;
                citations_per_book = 4; skew = 1.0 }
            rng
        in
        let db = Citation_gen.to_database lib in
        (* Every book is a BOOK and has an author (inverse derivable). *)
        Alcotest.(check int) "100 books" 100
          (List.length (answers db "(?b, in, BOOK)"));
        check_holds db "inversion scaffolding works"
          (lib.Citation_gen.book_names.(0), "AUTHORED-BY",
           (let a = answers db (Printf.sprintf "(?a, WROTE, %s)" lib.Citation_gen.book_names.(0)) in
            List.hd a));
        (* Walks stay within known entities and have the right length. *)
        let walk = Citation_gen.browsing_walk lib rng ~hops:10 in
        Alcotest.(check int) "11 stops" 11 (List.length walk);
        List.iter
          (fun stop ->
            Alcotest.(check bool) stop true
              (Lsdb.Database.find_entity db stop <> None))
          walk);
    test "closure rule_counts account for every derived fact" (fun () ->
        let db = Lsdb.Paper_examples.organization () in
        let closure = Lsdb.Database.closure db in
        let counts = Lsdb.Closure.rule_counts closure in
        let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
        Alcotest.(check int) "sums to derived_count"
          (Lsdb.Closure.derived_count closure) total;
        Alcotest.(check bool) "descending" true
          (let rec mono = function
             | (_, a) :: ((_, b) :: _ as rest) -> a >= b && mono rest
             | _ -> true
           in
           mono counts));
  ]
