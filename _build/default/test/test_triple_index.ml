open Lsdb
open Lsdb_storage
open Testutil

let patterns db =
  let e = Database.entity db in
  [
    Store.pattern ~s:(e "JOHN") ();
    Store.pattern ~r:(e "WORKS-FOR") ();
    Store.pattern ~t:(e "SHIPPING") ();
    Store.pattern ~s:(e "JOHN") ~r:(e "EARNS") ();
    Store.pattern ~s:(e "JOHN") ~t:(e "SHIPPING") ();
    Store.pattern ~r:(e "in") ~t:(e "EMPLOYEE") ();
    Store.pattern ~s:(e "JOHN") ~r:(e "WORKS-FOR") ~t:(e "SHIPPING") ();
    Store.pattern ();
  ]

let tests =
  [
    test "triple index agrees with the hash store on every pattern shape" (fun () ->
        let db = Paper_examples.organization () in
        let idx = Triple_index.of_database db in
        let store = Database.store db in
        List.iter
          (fun pat ->
            let a = List.sort Fact.compare (Triple_index.match_list idx pat) in
            let b = List.sort Fact.compare (Store.match_list store pat) in
            Alcotest.(check bool) "same answers" true (a = b))
          (patterns db));
    test "add/remove keep the three trees consistent" (fun () ->
        let idx = Triple_index.create () in
        let f1 = Fact.make 1 2 3 in
        let f2 = Fact.make 4 2 3 in
        Alcotest.(check bool) "add" true (Triple_index.add idx f1);
        Alcotest.(check bool) "dup" false (Triple_index.add idx f1);
        ignore (Triple_index.add idx f2);
        Alcotest.(check int) "cardinal" 2 (Triple_index.cardinal idx);
        (* POS order query after removal. *)
        Alcotest.(check bool) "remove" true (Triple_index.remove idx f1);
        let remaining = Triple_index.match_list idx (Store.pattern ~r:2 ~t:3 ()) in
        Alcotest.(check bool) "only f2" true (remaining = [ f2 ]));
    qcheck ~count:100 "triple index equals hash store under random workloads"
      QCheck.(
        list (pair bool (triple (int_bound 6) (int_bound 6) (int_bound 6))))
      (fun ops ->
        let idx = Triple_index.create ~branching:2 () in
        let store = Store.create () in
        List.iter
          (fun (is_add, (s, r, t)) ->
            let f = Fact.make s r t in
            if is_add then begin
              let a = Triple_index.add idx f and b = Store.add store f in
              if a <> b then QCheck.Test.fail_report "add disagrees"
            end
            else begin
              let a = Triple_index.remove idx f and b = Store.remove store f in
              if a <> b then QCheck.Test.fail_report "remove disagrees"
            end)
          ops;
        (* Every pattern over a small universe agrees. *)
        let shapes =
          [
            Store.pattern ();
            Store.pattern ~s:3 ();
            Store.pattern ~r:3 ();
            Store.pattern ~t:3 ();
            Store.pattern ~s:3 ~r:3 ();
            Store.pattern ~s:3 ~t:3 ();
            Store.pattern ~r:3 ~t:3 ();
            Store.pattern ~s:3 ~r:3 ~t:3 ();
          ]
        in
        List.for_all
          (fun pat ->
            List.sort Fact.compare (Triple_index.match_list idx pat)
            = List.sort Fact.compare (Store.match_list store pat))
          shapes);
  ]
