open Lsdb
open Testutil

let tpl a b c = Template.make a b c
let v n = Template.Var n
let atom a b c = Query.atom (tpl a b c)

let tests =
  [
    test "free variables respect quantifier scope" (fun () ->
        let q =
          Query.And
            ( Query.Exists ("x", atom (v "x") (v "r") (v "y")),
              atom (v "x") (v "r") (v "z") )
        in
        (* The outer x is free (the ∃ binds only its own scope). *)
        Alcotest.(check (list string)) "free vars" [ "r"; "y"; "x"; "z" ]
          (Query.free_vars q));
    test "propositions have no free variables" (fun () ->
        let db = db_of [ ("JOHN", "LIKES", "FELIX") ] in
        let q = q db "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)" in
        Alcotest.(check bool) "proposition" true (Query.is_proposition q));
    test "atoms in left-to-right order" (fun () ->
        let q =
          Query.conj [ atom (v "a") (v "b") (v "c"); atom (v "d") (v "e") (v "f") ]
        in
        Alcotest.(check int) "two atoms" 2 (List.length (Query.atoms q)));
    test "replace_atom substitutes at the right index" (fun () ->
        let a1 = tpl (v "a") (v "b") (v "c") in
        let a2 = tpl (v "d") (v "e") (v "f") in
        let fresh = tpl (v "x") (v "y") (v "z") in
        let q = Query.conj [ Query.atom a1; Query.atom a2 ] in
        match Query.replace_atom q ~index:1 ~by:(Some fresh) with
        | Some q' ->
            Alcotest.(check bool) "second replaced" true
              (Template.equal (List.nth (Query.atoms q') 1) fresh);
            Alcotest.(check bool) "first untouched" true
              (Template.equal (List.nth (Query.atoms q') 0) a1)
        | None -> Alcotest.fail "query vanished");
    test "replace_atom deletion collapses conjunctions" (fun () ->
        let a1 = tpl (v "a") (v "b") (v "c") in
        let a2 = tpl (v "d") (v "e") (v "f") in
        let q = Query.conj [ Query.atom a1; Query.atom a2 ] in
        (match Query.replace_atom q ~index:0 ~by:None with
        | Some (Query.Atom kept) -> Alcotest.(check bool) "kept second" true (Template.equal kept a2)
        | _ -> Alcotest.fail "expected single atom");
        (* Deleting the only atom dissolves the query. *)
        Alcotest.(check bool) "dissolved" true
          (Query.replace_atom (Query.atom a1) ~index:0 ~by:None = None));
    test "replace_atom out of range raises" (fun () ->
        let q = atom (v "a") (v "b") (v "c") in
        Alcotest.check_raises "index 5"
          (Invalid_argument "Query.replace_atom: no atom at index 5") (fun () ->
            ignore (Query.replace_atom q ~index:5 ~by:None)));
    test "constants report atom index and position" (fun () ->
        let db = db_of [] in
        let e = Database.entity db in
        let q =
          Query.conj
            [
              Query.atom (tpl (Template.Ent (e "A")) (v "r") (v "x"));
              Query.atom (tpl (v "x") (Template.Ent (e "B")) (Template.Ent (e "C")));
            ]
        in
        Alcotest.(check bool) "constants" true
          (Query.constants q = [ (0, 0, e "A"); (1, 1, e "B"); (1, 2, e "C") ]));
    test "unmatched_entities finds entities outside the closure" (fun () ->
        let db = db_of [ ("JOHN", "LIKES", "FELIX") ] in
        let q = q db "(JOHM, LIKES, ?x) & (JOHN, LIKES, ?x)" in
        Alcotest.(check (list string)) "only the misspelling" [ "JOHM" ]
          (names db (Query.unmatched_entities db q)));
    test "pretty-printing uses the connective symbols" (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let db = db_of [ ("A", "R", "B") ] in
        let parsed = q db "(A, R, ?x) & ((A, R, ?y) | (B, R, ?y))" in
        let printed = Query.to_string (Database.symtab db) parsed in
        Alcotest.(check bool) "contains ∧" true (contains printed "∧");
        Alcotest.(check bool) "contains ∨" true (contains printed "∨"));
  ]
