open Lsdb
open Testutil

let tests =
  [
    test "a contradiction-free database validates" (fun () ->
        Alcotest.(check bool) "organization valid" true
          (Integrity.is_valid (Paper_examples.organization ())));
    test "§3.5 contradiction facts flag clashing pairs" (fun () ->
        let db =
          db_of
            [
              ("LOVES", "contra", "HATES");
              ("JOHN", "LOVES", "MARY");
              ("JOHN", "HATES", "MARY");
            ]
        in
        let violations = Integrity.violations db in
        Alcotest.(check int) "one violation" 1 (List.length violations);
        match violations with
        | [ { Integrity.conflict = Integrity.Contradictory clash; fact } ] ->
            let pair =
              List.sort String.compare
                [ Database.entity_name db fact.Fact.r;
                  Database.entity_name db clash.Fact.r ]
            in
            Alcotest.(check (list string)) "loves/hates" [ "HATES"; "LOVES" ] pair
        | _ -> Alcotest.fail "expected one Contradictory violation");
    test "§2.5 constraint rules surface as math refutations" (fun () ->
        (* (x,∈,AGE) ⇒ (x,>,0): a negative age derives (−5,>,0), refuted
           by the oracle. *)
        let db = db_of [ ("-5", "in", "AGE") ] in
        let rule =
          Rule.make ~name:"ages-positive"
            ~body:
              [ Template.make (Template.Var "x") (Template.Ent Entity.member)
                  (Template.Ent (Database.entity db "AGE")) ]
            ~heads:
              [ Template.make (Template.Var "x") (Template.Ent Entity.gt)
                  (Template.Ent (Database.entity db "0")) ]
            ()
        in
        Database.add_rule db rule;
        let violations = Integrity.violations db in
        Alcotest.(check bool) "math violation found" true
          (List.exists
             (fun v -> v.Integrity.conflict = Integrity.Math)
             violations));
    test "a positive age satisfies the same constraint" (fun () ->
        let db = db_of [ ("30", "in", "AGE") ] in
        let rule =
          Rule.make ~name:"ages-positive"
            ~body:
              [ Template.make (Template.Var "x") (Template.Ent Entity.member)
                  (Template.Ent (Database.entity db "AGE")) ]
            ~heads:
              [ Template.make (Template.Var "x") (Template.Ent Entity.gt)
                  (Template.Ent (Database.entity db "0")) ]
            ()
        in
        Database.add_rule db rule;
        Alcotest.(check bool) "valid" true (Integrity.is_valid db));
    test "§2.5 the manager-salary constraint" (fun () ->
        (* employee x earning u with manager y earning v requires v > u. *)
        let db =
          db_of
            [
              ("X", "in", "WORKER");
              ("Y", "in", "WORKER");
              ("X", "PAID", "5000");
              ("Y", "PAID", "4000");
              ("X", "BOSS", "Y");
            ]
        in
        let e name = Template.Ent (Database.entity db name) in
        let v name = Template.Var name in
        let rule =
          Rule.make ~name:"boss-earns-more"
            ~body:
              [
                Template.make (v "x") (e "PAID") (v "u");
                Template.make (v "y") (e "PAID") (v "v");
                Template.make (v "x") (e "BOSS") (v "y");
              ]
            ~heads:[ Template.make (v "v") (Template.Ent Entity.gt) (v "u") ]
            ()
        in
        Database.add_rule db rule;
        (* Y (the boss) earns less: violation. *)
        Alcotest.(check bool) "violated" false (Integrity.is_valid db);
        (* Raise the boss's salary: the constraint is satisfied. *)
        ignore (Database.remove_names db "Y" "PAID" "4000");
        ignore (Database.insert_names db "Y" "PAID" "6000");
        Alcotest.(check bool) "satisfied" true (Integrity.is_valid db));
    test "insert_checked rolls back a violating fact" (fun () ->
        let db =
          db_of [ ("LOVES", "contra", "HATES"); ("JOHN", "LOVES", "MARY") ] in
        let bad = fact db ("JOHN", "HATES", "MARY") in
        (match Integrity.insert_checked db bad with
        | Error violations -> Alcotest.(check bool) "reported" true (violations <> [])
        | Ok _ -> Alcotest.fail "expected Error");
        Alcotest.(check bool) "rolled back" false (Database.mem_base db bad);
        Alcotest.(check bool) "database still valid" true (Integrity.is_valid db));
    test "insert_checked accepts a harmless fact" (fun () ->
        let db = db_of [ ("JOHN", "LOVES", "MARY") ] in
        match Integrity.insert_checked db (fact db ("JOHN", "LIKES", "FELIX")) with
        | Ok true -> ()
        | _ -> Alcotest.fail "expected Ok true");
    test "insert_checked is idempotent on present facts" (fun () ->
        let db = db_of [ ("JOHN", "LOVES", "MARY") ] in
        match Integrity.insert_checked db (fact db ("JOHN", "LOVES", "MARY")) with
        | Ok false -> ()
        | _ -> Alcotest.fail "expected Ok false");
    test "add_rule_checked rejects a constraint the data violates" (fun () ->
        let db = db_of [ ("-5", "in", "AGE") ] in
        let rule =
          Rule.make ~name:"ages-positive"
            ~body:
              [ Template.make (Template.Var "x") (Template.Ent Entity.member)
                  (Template.Ent (Database.entity db "AGE")) ]
            ~heads:
              [ Template.make (Template.Var "x") (Template.Ent Entity.gt)
                  (Template.Ent (Database.entity db "0")) ]
            ()
        in
        (match Integrity.add_rule_checked db rule with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected Error");
        Alcotest.(check bool) "rule rolled back" false
          (List.exists
             (fun (r, _) -> Rule.equal_name r rule)
             (Database.rules db)));
    test "contradictions via inferred facts are caught" (fun () ->
        (* HATES is derived through a synonym; the clash is still found. *)
        let db =
          db_of
            [
              ("LOVES", "contra", "HATES");
              ("JOHN", "LOVES", "MARY");
              ("JOHN", "DESPISES", "MARY");
              ("DESPISES", "syn", "HATES");
            ]
        in
        Alcotest.(check bool) "invalid" false (Integrity.is_valid db));
    test "describe renders both violation kinds" (fun () ->
        let db =
          db_of
            [
              ("LOVES", "contra", "HATES");
              ("JOHN", "LOVES", "MARY");
              ("JOHN", "HATES", "MARY");
            ]
        in
        List.iter
          (fun v ->
            Alcotest.(check bool) "nonempty description" true
              (String.length (Integrity.describe db v) > 0))
          (Integrity.violations db));
  ]
