(* The end-to-end paper reproduction suite: one test per worked example
   (experiments EX1–EX7 of DESIGN.md), asserting the artifacts the paper
   prints. The bench harness re-renders these; here they are verified. *)

open Lsdb
open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tests =
  [
    test "EX1a: (JOHN, *, *) table cells" (fun () ->
        let db = Paper_examples.music () in
        let table = Navigation.render_source_table db (Database.entity db "JOHN") in
        (* Every cell the paper's first table prints. *)
        List.iter
          (fun cell -> Alcotest.(check bool) cell true (contains table cell))
          [
            "PERSON"; "EMPLOYEE"; "PET-OWNER"; "MUSIC-LOVER";
            "CAT"; "FELIX"; "HEATHCLIFF"; "MOZART"; "MARY";
            "SHIPPING"; "PETER"; "PC#9-WAM"; "PC#20-PIT"; "S#5-LVB";
            "LIKES"; "WORKS-FOR"; "FAVORITE-MUSIC"; "BOSS";
          ]);
    test "EX1b: (PC#9-WAM, *, *) table cells" (fun () ->
        let db = Paper_examples.music () in
        let table = Navigation.render_source_table db (Database.entity db "PC#9-WAM") in
        List.iter
          (fun cell -> Alcotest.(check bool) cell true (contains table cell))
          [
            "CONCERTO"; "MOZART"; "SERKIN"; "BARENBOIM";
            "COMPOSED-BY"; "PERFORMED-BY"; "FAVORITE-OF"; "JOHN"; "LEOPOLD";
          ]);
    test "EX1c: (LEOPOLD, *, MOZART) association table" (fun () ->
        let db = Paper_examples.music () in
        let e = Database.entity db in
        let table = Navigation.render_associations db ~src:(e "LEOPOLD") ~tgt:(e "MOZART") in
        Alcotest.(check bool) "FATHER-OF" true (contains table "FATHER-OF");
        Alcotest.(check bool) "composed path" true
          (contains table "FAVORITE-MUSIC·COMPOSED-BY"));
    test "EX2: §5.1 minimally broader queries of the opera query" (fun () ->
        let db = Paper_examples.campus () in
        let b = Broadness.compute db in
        let broader =
          Retraction.retraction_set db b (q db "(?z, LOVES, OPERA)")
          |> List.map (fun (br : Retraction.broader) ->
                 Query.to_string (Database.symtab db) br.Retraction.query)
          |> List.sort String.compare
        in
        Alcotest.(check (list string)) "Q1, Q2, Q3"
          [ "(?z, ENJOYS, OPERA)"; "(?z, LOVES, MUSIC)"; "(?z, LOVES, THEATER)" ]
          broader);
    test "EX3: §5.2 retraction menu" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)" in
        let menu = Probing.render_menu db query (Probing.probe db query) in
        Alcotest.(check bool) "menu item 1" true
          (contains menu "FRESHMAN instead of STUDENT");
        Alcotest.(check bool) "menu item 2" true (contains menu "CHEAP instead of FREE"));
    test "EX4: §6.1 relation operator table" (fun () ->
        let db = Paper_examples.payroll () in
        let view =
          Operators.relation db "EMPLOYEE"
            [ ("WORKS-FOR", "DEPARTMENT"); ("EARNS", "SALARY") ]
        in
        Alcotest.(check bool) "all paper rows" true
          (List.for_all
             (fun row -> List.mem row (View.rows_named db view))
             [
               [ "JOHN"; "SHIPPING"; "$26000" ];
               [ "TOM"; "ACCOUNTING"; "$27000" ];
               [ "MARY"; "RECEIVING"; "$25000" ];
             ]));
    test "EX5: every §3 inference example holds (summary)" (fun () ->
        let db = Paper_examples.organization () in
        List.iter (check_holds db "inference")
          [
            ("MANAGER", "WORKS-FOR", "DEPARTMENT");
            ("EMPLOYEE", "EARNS", "COMPENSATION");
            ("JOHN", "IS-PAID-BY", "SHIPPING");
            ("JOHN", "WORKS-FOR", "DEPARTMENT");
            ("TOM", "WORKS-FOR", "DEPARTMENT");
            ("JOHNNY", "EARNS", "$25000");
            ("WAGE", "syn", "PAY");
            ("CS100", "TAUGHT-BY", "HARRY");
            ("TAUGHT-BY", "inv", "TEACHES");
            ("HATES", "contra", "LOVES");
          ]);
    test "EX6: §5 quarterback probe finds the ATTENDED retraction" (fun () ->
        let db = Paper_examples.library () in
        let query = q db "(?x, in, QUARTERBACK) & (?x, GRADUATE-OF, USC)" in
        match Probing.probe db query with
        | Probing.Retracted { successes; _ } ->
            let menu_rel_substitutions =
              successes
              |> List.concat_map (fun s -> s.Probing.steps)
              |> List.filter_map (fun step ->
                     match step with
                     | Retraction.Replace { by; _ } -> Some (Database.entity_name db by)
                     | Retraction.Delete_atom _ -> None)
            in
            Alcotest.(check bool) "ATTENDED substitution succeeds" true
              (List.mem "ATTENDED" menu_rel_substitutions)
        | _ -> Alcotest.fail "expected Retracted");
    test "EX6b: broadened quarterback query answers JAKE" (fun () ->
        let db = Paper_examples.library () in
        check_answers db "attendees" "(?x, in, QUARTERBACK) & (?x, ATTENDED, USC)"
          [ "JAKE" ]);
    test "EX7: misspelled entity diagnosed as 'no such database entities'" (fun () ->
        let db = Paper_examples.campus () in
        let query, unknowns = Query_parser.parse_with_unknowns db "(JOHM, LOVES, ?x)" in
        Alcotest.(check (list string)) "parser sees it" [ "JOHM" ] unknowns;
        let menu = Probing.render_menu db query (Probing.probe db query) in
        Alcotest.(check bool) "diagnosis" true
          (contains menu "no such database entities: JOHM"));
    test "the schema/data unification: schema facts browse like data facts" (fun () ->
        (* §2.6's claim: one access strategy for both. The class-level fact
           (EMPLOYEE, EARNS, SALARY) and the instance-level (JOHN, EARNS,
           $25000) answer the same template forms. *)
        let db = Paper_examples.organization () in
        let nbhd_schema = Navigation.neighborhood db (Database.entity db "EMPLOYEE") in
        let nbhd_data = Navigation.neighborhood db (Database.entity db "JOHN") in
        let has_earns nbhd =
          List.mem_assoc (Database.entity db "EARNS") nbhd.Navigation.as_source
        in
        Alcotest.(check bool) "schema entity browses" true (has_earns nbhd_schema);
        Alcotest.(check bool) "data entity browses" true (has_earns nbhd_data));
  ]
