open Lsdb
open Lsdb_relational
open Testutil

let tests =
  [
    test "export materializes the §6.1 view as a typed relation" (fun () ->
        let db = Paper_examples.payroll () in
        let catalog = Catalog.create () in
        let relation =
          Bridge.export db catalog ~instance_of:"EMPLOYEE"
            ~columns:[ ("WORKS-FOR", "DEPARTMENT"); ("EARNS", "SALARY") ]
        in
        Alcotest.(check int) "three rows" 3 (Relation.cardinal relation);
        Alcotest.(check bool) "john tuple" true
          (Relation.mem relation [| "JOHN"; "SHIPPING"; "$26000" |]));
    test "export unnests non-1NF cells" (fun () ->
        let db = Paper_examples.payroll () in
        ignore (Database.insert_names db "JOHN" "WORKS-FOR" "ACCOUNTING");
        let catalog = Catalog.create () in
        let relation =
          Bridge.export db catalog ~instance_of:"EMPLOYEE"
            ~columns:[ ("WORKS-FOR", "DEPARTMENT") ]
        in
        (* JOHN appears twice, once per department. *)
        Alcotest.(check int) "four tuples" 4 (Relation.cardinal relation);
        Alcotest.(check bool) "both john rows" true
          (Relation.mem relation [| "JOHN"; "SHIPPING" |]
          && Relation.mem relation [| "JOHN"; "ACCOUNTING" |]));
    test "binary relations import directly as facts" (fun () ->
        let r =
          Relation.create (Schema.make ~name:"LIKES" ~attributes:[ "person"; "liked" ])
        in
        ignore (Relation.insert r [| "JOHN"; "FELIX" |]);
        let db = Database.create () in
        let inserted = Bridge.import db r ~key:"person" in
        Alcotest.(check int) "one fact" 1 inserted;
        check_holds db "fact" ("JOHN", "liked", "FELIX"));
    test "wide relations import via reified row entities (§2.6)" (fun () ->
        let r =
          Relation.create
            (Schema.make ~name:"ENROLL" ~attributes:[ "student"; "course"; "grade" ])
        in
        ignore (Relation.insert r [| "TOM"; "CS100"; "A" |]);
        let db = Database.create () in
        let inserted = Bridge.import db r ~key:"student" in
        (* (row, ∈, ENROLL) + three attribute facts. *)
        Alcotest.(check int) "four facts" 4 inserted;
        check_holds db "membership" ("ENROLL#1", "in", "ENROLL");
        check_holds db "course" ("ENROLL#1", "course", "CS100");
        check_holds db "grade" ("ENROLL#1", "grade", "A"));
    test "round trip: export then import preserves the information" (fun () ->
        let db = Paper_examples.payroll () in
        let catalog = Catalog.create () in
        ignore
          (Bridge.export db catalog ~instance_of:"EMPLOYEE"
             ~columns:[ ("WORKS-FOR", "DEPARTMENT") ]);
        let db2 = Database.create () in
        ignore (Bridge.import_catalog db2 catalog ~keys:[ ("EMPLOYEE", "EMPLOYEE") ]);
        (* A binary relation imports directly as facts keyed by the first
           attribute. *)
        check_answers db2 "john's departments" "(JOHN, \"WORKS-FOR DEPARTMENT\", ?d)"
          [ "SHIPPING" ]);
  ]
