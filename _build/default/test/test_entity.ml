open Lsdb
open Testutil

let tests =
  [
    test "special ids are dense and ordered" (fun () ->
        Alcotest.(check int) "count" (Array.length Entity.special_names) Entity.special_count;
        List.iteri
          (fun i e -> Alcotest.(check int) (Printf.sprintf "id %d" i) i e)
          [
            Entity.gen; Entity.member; Entity.syn; Entity.inv; Entity.contra;
            Entity.top; Entity.bottom; Entity.lt; Entity.gt; Entity.eq;
            Entity.neq; Entity.le; Entity.ge;
          ]);
    test "comparator classification" (fun () ->
        List.iter
          (fun e -> Alcotest.(check bool) "is comparator" true (Entity.is_comparator e))
          [ Entity.lt; Entity.gt; Entity.eq; Entity.neq; Entity.le; Entity.ge ];
        List.iter
          (fun e -> Alcotest.(check bool) "not comparator" false (Entity.is_comparator e))
          [ Entity.gen; Entity.member; Entity.top; Entity.bottom; 99 ]);
    test "converse pairs" (fun () ->
        Alcotest.(check int) "lt<->gt" Entity.gt (Entity.converse_comparator Entity.lt);
        Alcotest.(check int) "gt<->lt" Entity.lt (Entity.converse_comparator Entity.gt);
        Alcotest.(check int) "le<->ge" Entity.ge (Entity.converse_comparator Entity.le);
        Alcotest.(check int) "eq self" Entity.eq (Entity.converse_comparator Entity.eq);
        Alcotest.(check int) "neq self" Entity.neq (Entity.converse_comparator Entity.neq));
    test "comparator_holds implements the mathematics" (fun () ->
        let checks =
          [
            (Entity.lt, 1.0, 2.0, true);
            (Entity.lt, 2.0, 1.0, false);
            (Entity.gt, 25000.0, 20000.0, true);
            (Entity.eq, 3.0, 3.0, true);
            (Entity.neq, 3.0, 3.0, false);
            (Entity.le, 3.0, 3.0, true);
            (Entity.ge, 2.0, 3.0, false);
          ]
        in
        List.iter
          (fun (cmp, a, b, expected) ->
            Alcotest.(check bool) "cmp" expected (Entity.comparator_holds cmp a b))
          checks);
    test "is_special boundary" (fun () ->
        Alcotest.(check bool) "last special" true (Entity.is_special (Entity.special_count - 1));
        Alcotest.(check bool) "first user" false (Entity.is_special Entity.special_count);
        Alcotest.(check bool) "negative" false (Entity.is_special (-1)));
  ]
