open Lsdb
open Testutil

let sample_store () =
  let store = Store.create () in
  let add s r t = ignore (Store.add store (Fact.make s r t)) in
  add 100 1 200;
  add 100 1 201;
  add 100 2 200;
  add 101 1 200;
  add 102 3 300;
  store

let sorted_list store pat =
  List.sort Fact.compare (Store.match_list store pat)

let tests =
  [
    test "add/mem/remove round trip" (fun () ->
        let store = Store.create () in
        let f = Fact.make 1 2 3 in
        Alcotest.(check bool) "add new" true (Store.add store f);
        Alcotest.(check bool) "add dup" false (Store.add store f);
        Alcotest.(check bool) "mem" true (Store.mem store f);
        Alcotest.(check int) "cardinal" 1 (Store.cardinal store);
        Alcotest.(check bool) "remove" true (Store.remove store f);
        Alcotest.(check bool) "remove again" false (Store.remove store f);
        Alcotest.(check bool) "gone" false (Store.mem store f);
        Alcotest.(check int) "empty" 0 (Store.cardinal store));
    test "every pattern shape answers correctly" (fun () ->
        let store = sample_store () in
        let count pat = Store.count_matches store pat in
        Alcotest.(check int) "(s,r,t)" 1 (count (Store.pattern ~s:100 ~r:1 ~t:200 ()));
        Alcotest.(check int) "(s,r,?)" 2 (count (Store.pattern ~s:100 ~r:1 ()));
        Alcotest.(check int) "(s,?,t)" 2 (count (Store.pattern ~s:100 ~t:200 ()));
        Alcotest.(check int) "(?,r,t)" 2 (count (Store.pattern ~r:1 ~t:200 ()));
        Alcotest.(check int) "(s,?,?)" 3 (count (Store.pattern ~s:100 ()));
        Alcotest.(check int) "(?,r,?)" 3 (count (Store.pattern ~r:1 ()));
        Alcotest.(check int) "(?,?,t)" 3 (count (Store.pattern ~t:200 ()));
        Alcotest.(check int) "(?,?,?)" 5 (count (Store.pattern ())));
    test "match_scan agrees with match_pattern on every shape" (fun () ->
        let store = sample_store () in
        let patterns =
          [
            Store.pattern ~s:100 ~r:1 ~t:200 ();
            Store.pattern ~s:100 ~r:1 ();
            Store.pattern ~s:100 ~t:200 ();
            Store.pattern ~r:1 ~t:200 ();
            Store.pattern ~s:100 ();
            Store.pattern ~r:1 ();
            Store.pattern ~t:200 ();
            Store.pattern ();
            Store.pattern ~s:999 ();
          ]
        in
        List.iter
          (fun pat ->
            let scanned = ref [] in
            Store.match_scan store pat (fun f -> scanned := f :: !scanned);
            Alcotest.(check int)
              "same cardinality"
              (List.length (Store.match_list store pat))
              (List.length !scanned);
            Alcotest.(check bool)
              "same set" true
              (List.sort Fact.compare !scanned = sorted_list store pat))
          patterns);
    test "removal updates all indexes" (fun () ->
        let store = sample_store () in
        ignore (Store.remove store (Fact.make 100 1 200));
        Alcotest.(check int) "(s,r,?)" 1 (Store.count_matches store (Store.pattern ~s:100 ~r:1 ()));
        Alcotest.(check int) "(?,?,t)" 2 (Store.count_matches store (Store.pattern ~t:200 ()));
        Alcotest.(check int) "(s,?,?)" 2 (Store.count_matches store (Store.pattern ~s:100 ())));
    test "active_entities tracks refcounts through deletion" (fun () ->
        let store = Store.create () in
        ignore (Store.add store (Fact.make 1 2 3));
        ignore (Store.add store (Fact.make 1 2 4));
        let actives () = List.sort compare (List.of_seq (Store.active_entities store)) in
        Alcotest.(check (list int)) "all present" [ 1; 2; 3; 4 ] (actives ());
        ignore (Store.remove store (Fact.make 1 2 4));
        Alcotest.(check (list int)) "4 gone" [ 1; 2; 3 ] (actives ());
        ignore (Store.remove store (Fact.make 1 2 3));
        Alcotest.(check (list int)) "empty" [] (actives ()));
    test "clear and copy" (fun () ->
        let store = sample_store () in
        let copy = Store.copy store in
        Store.clear store;
        Alcotest.(check int) "cleared" 0 (Store.cardinal store);
        Alcotest.(check int) "copy unaffected" 5 (Store.cardinal copy));
    (* Model-based property: a Store behaves like a set of triples. *)
    qcheck "store agrees with a set model"
      QCheck.(
        list
          (pair (pair (int_bound 5) (int_bound 5)) (pair (int_bound 5) bool)))
      (fun ops ->
        let store = Store.create () in
        let model = Hashtbl.create 16 in
        List.iter
          (fun ((a, b), (c, is_add)) ->
            let f = Fact.make a b c in
            if is_add then begin
              let added = Store.add store f in
              let fresh = not (Hashtbl.mem model f) in
              Hashtbl.replace model f ();
              if added <> fresh then QCheck.Test.fail_report "add disagrees"
            end
            else begin
              let removed = Store.remove store f in
              let present = Hashtbl.mem model f in
              Hashtbl.remove model f;
              if removed <> present then QCheck.Test.fail_report "remove disagrees"
            end)
          ops;
        Store.cardinal store = Hashtbl.length model
        && Hashtbl.fold (fun f () acc -> acc && Store.mem store f) model true);
  ]
