open Lsdb
open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tests =
  [
    test "try returns facts in all three positions" (fun () ->
        let db = Paper_examples.music () in
        match Operators.try_ db "MOZART" with
        | Some facts ->
            Alcotest.(check bool) "several facts" true (List.length facts >= 2)
        | None -> Alcotest.fail "MOZART should exist");
    test "try on an unknown name reports it" (fun () ->
        let db = Paper_examples.music () in
        Alcotest.(check bool) "None" true (Operators.try_ db "NO-SUCH" = None);
        Alcotest.(check bool) "message" true
          (contains (Operators.try_render db "NO-SUCH") "no such database entity"));
    test "include/exclude toggle inference (§6.1)" (fun () ->
        let db = db_of [ ("A", "R1", "B"); ("B", "R2", "C") ] in
        Operators.limit db 2;
        let e = Database.entity db in
        Alcotest.(check bool) "composition on" true
          (Match_layer.exists db (Store.pattern ~s:(e "A") ~t:(e "C") ()));
        Operators.limit db 1;
        Alcotest.(check bool) "composition off" false
          (Match_layer.exists db
             (Store.pattern ~s:(e "A") ~r:(Database.entity db "R1·R2") ~t:(e "C") ())));
    test "exclude of unknown rule returns false" (fun () ->
        let db = db_of [] in
        Alcotest.(check bool) "false" false (Operators.exclude db "no-such-rule"));
    test "show_rules lists builtins with enabled markers" (fun () ->
        let db = db_of [] in
        ignore (Operators.exclude db "syn-rel");
        let listing = Operators.show_rules db in
        Alcotest.(check bool) "mentions gen-source" true (contains listing "gen-source");
        Alcotest.(check bool) "disabled marker" true (contains listing "[ ]"));
    test "limit validates its argument" (fun () ->
        let db = db_of [] in
        Alcotest.(check bool) "rejects 0" true
          (try
             Operators.limit db 0;
             false
           with Invalid_argument _ -> true));
  ]
