open Lsdb
open Testutil

let prove db triple = Prover.prove db (fact db triple)

let tests =
  [
    test "stored, virtual and absent facts" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        Alcotest.(check bool) "stored" true (prove db ("A", "R", "B"));
        Alcotest.(check bool) "virtual math" true (prove db ("3", "<", "5"));
        Alcotest.(check bool) "virtual hierarchy" true (prove db ("A", "isa", "A"));
        Alcotest.(check bool) "absent" false (prove db ("B", "R", "A")));
    test "every §3 inference example proves top-down" (fun () ->
        let db = Paper_examples.organization () in
        List.iter
          (fun triple -> Alcotest.(check bool) "proves" true (prove db triple))
          [
            ("MANAGER", "WORKS-FOR", "DEPARTMENT");
            ("EMPLOYEE", "EARNS", "COMPENSATION");
            ("JOHN", "IS-PAID-BY", "SHIPPING");
            ("JOHN", "WORKS-FOR", "DEPARTMENT");
            ("TOM", "WORKS-FOR", "DEPARTMENT");
            ("JOHNNY", "EARNS", "$25000");
            ("WAGE", "syn", "PAY");
            ("CS100", "TAUGHT-BY", "HARRY");
            ("TAUGHT-BY", "inv", "TEACHES");
            ("HATES", "contra", "LOVES");
          ]);
    test "transitive chains of any depth prove (tabling converges)" (fun () ->
        let chain = List.init 12 (fun i -> (Printf.sprintf "C%d" i, "isa", Printf.sprintf "C%d" (i + 1))) in
        let db = db_of chain in
        Alcotest.(check bool) "end to end" true (prove db ("C0", "isa", "C12"));
        Alcotest.(check bool) "not reversed" false (prove db ("C12", "isa", "C0")));
    test "synonym cycles terminate" (fun () ->
        let db = db_of [ ("A", "syn", "B"); ("B", "syn", "C"); ("C", "syn", "A"); ("A", "R", "X") ] in
        Alcotest.(check bool) "through the cycle" true (prove db ("C", "R", "X"));
        Alcotest.(check bool) "syn closed" true (prove db ("C", "syn", "B")));
    test "the ∀∃ flip is absent top-down too" (fun () ->
        let db = Paper_examples.music () in
        Alcotest.(check bool) "sound inverse" true
          (prove db ("PC#9-WAM", "FAVORITE-OF", "JOHN"));
        Alcotest.(check bool) "no flip" false
          (prove db ("MOZART", "FAVORITE-MUSIC", "PC#9-WAM")));
    test "solve enumerates template instances" (fun () ->
        let db = Paper_examples.organization () in
        let tpl = Query_parser.parse_template db "(JOHN, WORKS-FOR, ?d)" in
        let answers = Prover.solve db tpl in
        let targets =
          List.map (fun bindings -> Database.entity_name db (List.assoc "d" bindings)) answers
          |> List.sort String.compare
        in
        Alcotest.(check (list string)) "both departments" [ "DEPARTMENT"; "SHIPPING" ]
          targets);
    test "disabled rules do not prove" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        Alcotest.(check bool) "with rule" true (prove db ("JOHN", "EARNS", "SALARY"));
        ignore (Database.exclude db "mem-source");
        Alcotest.(check bool) "without rule" false (prove db ("JOHN", "EARNS", "SALARY")));
    qcheck ~count:20 "prover agrees with the materialized closure"
      (QCheck.make ~print:(fun facts ->
           String.concat "; "
             (List.map (fun (s, r, t) -> Printf.sprintf "(%s,%s,%s)" s r t) facts))
         QCheck.Gen.(
           let name =
             map
               (fun i -> [| "A"; "B"; "C"; "D"; "R1"; "R2"; "K1"; "K2" |].(i))
               (int_bound 7)
           in
           let rel =
             frequency
               [ (4, name); (1, return "isa"); (1, return "in"); (1, return "syn");
                 (1, return "inv") ]
           in
           list_size (int_range 0 12) (triple name rel name)))
      (fun facts ->
        let db = db_of facts in
        let closure = Database.closure db in
        let ok = ref true in
        (* A sample of closure facts proves (proving is per-goal work, so
           sample rather than sweep). *)
        let i = ref 0 in
        Closure.iter
          (fun f ->
            incr i;
            if !i mod 4 = 0 && not (Prover.prove db f) then ok := false)
          closure;
        (* A sample of absent facts does not prove. *)
        let entities = [ "A"; "B"; "C"; "D"; "R1"; "R2"; "K1"; "K2" ] in
        List.iter
          (fun (s, r, t) ->
            let f = fact db (s, r, t) in
            if Fact.hash f mod 3 = 0 && not (Closure.mem closure f) then
              (* Skip facts the oracle affirms (reflexive ⊑ etc.). *)
              match Virtual_facts.holds (Database.symtab db) (Fact.source f)
                      (Fact.relationship f) (Fact.target f)
              with
              | Some true -> ()
              | _ -> if Prover.prove db f then ok := false)
          (List.concat_map
             (fun s -> List.map (fun t -> (s, "R1", t)) entities)
             entities);
        !ok);
  ]
