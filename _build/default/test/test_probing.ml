open Lsdb
open Testutil

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tests =
  [
    test "successful queries probe to Answered" (fun () ->
        let db = Paper_examples.campus () in
        match Probing.probe db (q db "(SUE, ENJOYS, OPERA)") with
        | Probing.Answered _ -> ()
        | _ -> Alcotest.fail "expected Answered");
    test "EX3: the §5.2 menu — FRESHMAN and CHEAP succeed in wave 1" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)" in
        match Probing.probe db query with
        | Probing.Retracted { wave; successes; attempted; critical } ->
            Alcotest.(check int) "wave 1" 1 wave;
            Alcotest.(check int) "four attempted" 4 attempted;
            Alcotest.(check bool) "not critical" false critical;
            let descriptions =
              successes
              |> List.concat_map (fun s -> s.Probing.steps)
              |> List.map (Retraction.describe db)
              |> List.sort String.compare
            in
            Alcotest.(check (list string)) "menu entries"
              [
                "CHEAP instead of FREE (target)";
                "FRESHMAN instead of STUDENT (source)";
              ]
              descriptions
        | _ -> Alcotest.fail "expected Retracted");
    test "EX3: the rendered menu matches the paper's dialogue" (fun () ->
        let db = Paper_examples.campus () in
        let query = q db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)" in
        let menu = Probing.render_menu db query (Probing.probe db query) in
        Alcotest.(check bool) "failed banner" true (contains menu "Query failed. Retrying");
        Alcotest.(check bool) "freshman entry" true
          (contains menu "FRESHMAN instead of STUDENT");
        Alcotest.(check bool) "cheap entry" true (contains menu "CHEAP instead of FREE");
        Alcotest.(check bool) "select prompt" true (contains menu "You may select"));
    test "EX7: misspellings diagnose as no-such-entities" (fun () ->
        let db = Paper_examples.campus () in
        let query, unknowns =
          Query_parser.parse_with_unknowns db "(JOHM, LOVES, ?x)"
        in
        Alcotest.(check (list string)) "parser flags it" [ "JOHM" ] unknowns;
        match Probing.probe db query with
        | Probing.Exhausted { unknown_entities; _ } ->
            Alcotest.(check (list string)) "diagnosis" [ "JOHM" ]
              (names db unknown_entities)
        | _ -> Alcotest.fail "expected Exhausted");
    test "critical failure: every broader query succeeds" (fun () ->
        (* Q = (A, LOVES, z) ∧ (z, COSTS, FREE) where LOVES ⊑ LIKES is the
           only broadening of atom 1 and FREE ⊑ CHEAP of atom 2, and both
           broader queries succeed while Q fails. *)
        let db =
          db_of
            [
              ("LOVES", "isa", "LIKES");
              ("FREE", "isa", "CHEAP");
              ("A", "LIKES", "GIG");
              ("GIG", "COSTS", "FREE");
              ("A", "LOVES", "SHOW");
              ("SHOW", "COSTS", "CHEAP");
              ("SHOW", "ADMISSION", "FREE");
            ]
        in
        (* Broadenings: LIKES for LOVES (succeeds via GIG), CHEAP for FREE
           (succeeds via SHOW), COSTS→Δ (GIG is related to FREE, so it
           succeeds too). All succeed ⇒ critical. *)
        let query = q db "(A, LOVES, ?z) & (?z, COSTS, FREE)" in
        match Probing.probe db query with
        | Probing.Retracted { critical; successes; attempted; _ } ->
            Alcotest.(check int) "three attempted" 3 attempted;
            Alcotest.(check int) "three successes" 3 (List.length successes);
            Alcotest.(check bool) "critical" true critical
        | _ -> Alcotest.fail "expected Retracted");
    test "second-wave success chains two substitutions" (fun () ->
        (* Relationship chain H2 ⊑ H1 ⊑ H0 with data at the general end:
           (A, H2, ?z) needs two upward steps to reach (A, H0, ?z). *)
        let db =
          db_of
            [ ("H2", "isa", "H1"); ("H1", "isa", "H0"); ("A", "H0", "THING") ]
        in
        let query = q db "(A, H2, ?z)" in
        match Probing.probe db query with
        | Probing.Retracted { wave; successes; _ } ->
            Alcotest.(check int) "wave 2" 2 wave;
            let steps = (List.hd successes).Probing.steps in
            Alcotest.(check int) "two steps" 2 (List.length steps)
        | _ -> Alcotest.fail "expected Retracted at wave 2");
    test "exhaustion reports attempts and waves" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        (* No hierarchy at all: (X, R, ?z) has no broader queries other
           than R→Δ, which fails too ((X,Δ,?z) matches nothing since X
           sources nothing). *)
        let query = q db "(X, R, ?z)" in
        match Probing.probe db query with
        | Probing.Exhausted { attempted; unknown_entities; _ } ->
            Alcotest.(check bool) "attempted some" true (attempted >= 1);
            Alcotest.(check (list string)) "X unknown" [ "X" ] (names db unknown_entities)
        | _ -> Alcotest.fail "expected Exhausted");
    test "max_waves bounds the search" (fun () ->
        let db =
          db_of
            [
              ("H3", "isa", "H2");
              ("H2", "isa", "H1");
              ("H1", "isa", "H0");
              ("A", "H0", "X");
            ]
        in
        let query = q db "(A, H3, ?z)" in
        (match Probing.probe ~max_waves:1 db query with
        | Probing.Exhausted _ -> ()
        | _ -> Alcotest.fail "expected Exhausted at max_waves 1");
        match Probing.probe ~max_waves:5 db query with
        | Probing.Retracted { wave = 3; _ } -> ()
        | Probing.Retracted { wave; _ } -> Alcotest.failf "expected wave 3, got %d" wave
        | _ -> Alcotest.fail "expected Retracted");
  ]
