open Lsdb_relational
open Testutil

let catalog_with_emp () =
  let catalog = Catalog.create () in
  let emp =
    Catalog.create_relation catalog
      (Schema.make ~name:"EMP" ~attributes:[ "name"; "dept"; "salary" ])
  in
  List.iter
    (fun t -> ignore (Relation.insert emp t))
    [
      [| "JOHN"; "SHIPPING"; "26000" |];
      [| "TOM"; "ACCOUNTING"; "27000" |];
      [| "MARY"; "RECEIVING"; "25000" |];
    ];
  catalog

let tests =
  [
    test "create/find/drop relations" (fun () ->
        let catalog = catalog_with_emp () in
        Alcotest.(check (list string)) "names" [ "EMP" ] (Catalog.relation_names catalog);
        Alcotest.(check bool) "duplicate create rejected" true
          (try
             ignore
               (Catalog.create_relation catalog
                  (Schema.make ~name:"EMP" ~attributes:[ "x" ]));
             false
           with Catalog.Already_exists _ -> true);
        Catalog.drop_relation catalog "EMP";
        Alcotest.(check bool) "gone" true (Catalog.find catalog "EMP" = None);
        Alcotest.(check bool) "drop missing raises" true
          (try
             Catalog.drop_relation catalog "EMP";
             false
           with Catalog.No_such_relation _ -> true));
    test "B7: add_attribute rewrites every tuple" (fun () ->
        let catalog = catalog_with_emp () in
        let rewritten =
          Catalog.add_attribute catalog ~relation:"EMP" ~attr:"phone" ~default:"N/A"
        in
        Alcotest.(check int) "3 tuples rewritten" 3 rewritten;
        let emp = Catalog.relation catalog "EMP" in
        Alcotest.(check int) "arity grew" 4 (Schema.arity (Relation.schema emp));
        Relation.iter
          (fun t -> Alcotest.(check string) "default filled" "N/A" t.(3))
          emp);
    test "B7: drop_attribute rewrites every tuple" (fun () ->
        let catalog = catalog_with_emp () in
        let rewritten = Catalog.drop_attribute catalog ~relation:"EMP" ~attr:"salary" in
        Alcotest.(check int) "3 rewritten" 3 rewritten;
        Alcotest.(check int) "arity shrank" 2
          (Schema.arity (Relation.schema (Catalog.relation catalog "EMP"))));
    test "B7: rename_attribute preserves data" (fun () ->
        let catalog = catalog_with_emp () in
        ignore (Catalog.rename_attribute catalog ~relation:"EMP" ~from:"dept" ~to_:"department");
        let emp = Catalog.relation catalog "EMP" in
        Alcotest.(check int) "lookups via new name" 1
          (List.length (Relation.lookup emp ~attr:"department" ~value:"SHIPPING")));
    test "B7: split_relation produces joinable halves" (fun () ->
        let catalog = catalog_with_emp () in
        let rewritten =
          Catalog.split_relation catalog ~relation:"EMP" ~key:"name"
            ~attrs:[ "dept" ] ~into:("EMP_DEPT", "EMP_PAY")
        in
        Alcotest.(check int) "6 writes (3 rows x 2 halves)" 6 rewritten;
        Alcotest.(check bool) "original dropped" true (Catalog.find catalog "EMP" = None);
        let left = Catalog.relation catalog "EMP_DEPT" in
        let right = Catalog.relation catalog "EMP_PAY" in
        let rejoined = Relalg.natural_join left right in
        Alcotest.(check int) "join restores rows" 3 (Relation.cardinal rejoined));
    test "total_tuples sums across relations" (fun () ->
        let catalog = catalog_with_emp () in
        ignore
          (Catalog.create_relation catalog
             (Schema.make ~name:"DEPT" ~attributes:[ "name" ]));
        ignore (Relation.insert (Catalog.relation catalog "DEPT") [| "SHIPPING" |]);
        Alcotest.(check int) "4 total" 4 (Catalog.total_tuples catalog));
  ]
