open Lsdb
open Testutil

(* A diamond with a long side chain:
       TOP0
      /    \
   MID-A  MID-B
      \    /
       LOW        and  LOW ⊑ DEEP? no: DEEP ⊑ LOW. *)
let diamond () =
  db_of
    [
      ("MID-A", "isa", "TOP0");
      ("MID-B", "isa", "TOP0");
      ("LOW", "isa", "MID-A");
      ("LOW", "isa", "MID-B");
      ("DEEP", "isa", "LOW");
    ]

let tests =
  [
    test "generalizations are transitively closed" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        Alcotest.(check (list string)) "ups of DEEP"
          [ "LOW"; "MID-A"; "MID-B"; "TOP0" ]
          (names db (Broadness.generalizations b (Database.entity db "DEEP"))));
    test "minimal generalizations are the covers, not all ancestors" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        Alcotest.(check (list string)) "covers of LOW" [ "MID-A"; "MID-B" ]
          (names db (Broadness.minimal_generalizations b (Database.entity db "LOW")));
        Alcotest.(check (list string)) "covers of DEEP" [ "LOW" ]
          (names db (Broadness.minimal_generalizations b (Database.entity db "DEEP"))));
    test "minimal specializations are the down-covers" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        Alcotest.(check (list string)) "down-covers of TOP0" [ "MID-A"; "MID-B" ]
          (names db (Broadness.minimal_specializations b (Database.entity db "TOP0"))));
    test "entities outside the hierarchy fall back to Δ and ∇" (fun () ->
        let db = db_of [ ("LONER", "LIKES", "SOMETHING") ] in
        let b = Broadness.compute db in
        Alcotest.(check (list int)) "Δ up" [ Entity.top ]
          (Broadness.minimal_generalizations b (Database.entity db "LONER"));
        Alcotest.(check (list int)) "∇ down" [ Entity.bottom ]
          (Broadness.minimal_specializations b (Database.entity db "LONER")));
    test "Δ and ∇ themselves have no further extremes" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        Alcotest.(check (list int)) "Δ" [] (Broadness.minimal_generalizations b Entity.top);
        Alcotest.(check (list int)) "∇" [] (Broadness.minimal_specializations b Entity.bottom));
    test "synonyms cover each other without blocking real covers" (fun () ->
        let db =
          db_of [ ("CAR", "syn", "AUTO"); ("CAR", "isa", "VEHICLE") ]
        in
        let b = Broadness.compute db in
        let covers = names db (Broadness.minimal_generalizations b (Database.entity db "CAR")) in
        Alcotest.(check bool) "auto is minimal" true (List.mem "AUTO" covers);
        Alcotest.(check bool) "vehicle not blocked by the synonym" true
          (List.mem "VEHICLE" covers));
    test "is_generalization includes Δ and strict ancestors only" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        let e = Database.entity db in
        Alcotest.(check bool) "strict" true
          (Broadness.is_generalization b ~of_:(e "DEEP") (e "TOP0"));
        Alcotest.(check bool) "Δ always" true
          (Broadness.is_generalization b ~of_:(e "DEEP") Entity.top);
        Alcotest.(check bool) "not downward" false
          (Broadness.is_generalization b ~of_:(e "TOP0") (e "DEEP")));
    test "height measures the longest chain" (fun () ->
        let db = diamond () in
        let b = Broadness.compute db in
        Alcotest.(check int) "DEEP height" 3 (Broadness.height b (Database.entity db "DEEP"));
        Alcotest.(check int) "TOP0 height" 0 (Broadness.height b (Database.entity db "TOP0")));
    test "height terminates on synonym cycles" (fun () ->
        let db = db_of [ ("A", "syn", "B"); ("A", "isa", "C") ] in
        let b = Broadness.compute db in
        Alcotest.(check bool) "finite" true
          (Broadness.height b (Database.entity db "A") <= 3));
    test "taxonomy covers agree with the generator's structure" (fun () ->
        let rng = Lsdb_workload.Rng.create 7 in
        let taxonomy =
          Lsdb_workload.Taxonomy.generate ~prefix:"T" ~depth:3 ~fanout:2 rng
        in
        let db = Database.create () in
        Lsdb_workload.Taxonomy.insert db taxonomy;
        let b = Broadness.compute db in
        (* Every leaf's minimal generalization is its unique tree parent. *)
        List.iter
          (fun leaf ->
            let covers =
              Broadness.minimal_generalizations b (Database.entity db leaf)
            in
            Alcotest.(check int) (leaf ^ " has one parent") 1 (List.length covers))
          taxonomy.Lsdb_workload.Taxonomy.leaves);
  ]
