open Lsdb_storage
open Testutil

let key i = (i / 25, i / 5 mod 5, i mod 5)

let tests =
  [
    test "insert/mem/delete round trip" (fun () ->
        let t = Bptree.create ~branching:2 () in
        Alcotest.(check bool) "insert" true (Bptree.insert t (1, 2, 3));
        Alcotest.(check bool) "duplicate" false (Bptree.insert t (1, 2, 3));
        Alcotest.(check bool) "mem" true (Bptree.mem t (1, 2, 3));
        Alcotest.(check bool) "delete" true (Bptree.delete t (1, 2, 3));
        Alcotest.(check bool) "gone" false (Bptree.mem t (1, 2, 3));
        Alcotest.(check bool) "delete twice" false (Bptree.delete t (1, 2, 3)));
    test "iteration is sorted" (fun () ->
        let t = Bptree.create ~branching:2 () in
        let keys = List.init 500 key in
        let shuffled = Lsdb_workload.Rng.shuffle (Lsdb_workload.Rng.create 3) keys in
        List.iter (fun k -> ignore (Bptree.insert t k)) shuffled;
        let sorted = List.sort_uniq compare keys in
        Alcotest.(check bool) "sorted output" true (Bptree.to_list t = sorted);
        Bptree.check_invariants t);
    test "splits grow the tree height" (fun () ->
        let t = Bptree.create ~branching:2 () in
        for i = 0 to 999 do
          ignore (Bptree.insert t (i, i, i))
        done;
        Alcotest.(check bool) "height grew" true (Bptree.height t > 2);
        Alcotest.(check int) "cardinal" 1000 (Bptree.cardinal t);
        Bptree.check_invariants t);
    test "range queries are half-open" (fun () ->
        let t = Bptree.create ~branching:4 () in
        for i = 0 to 99 do
          ignore (Bptree.insert t (i, 0, 0))
        done;
        let collect lo hi =
          let acc = ref [] in
          Bptree.iter_range t ~lo ~hi (fun k -> acc := k :: !acc);
          List.rev !acc
        in
        Alcotest.(check int) "[10,20)" 10 (List.length (collect (10, 0, 0) (20, 0, 0)));
        Alcotest.(check int) "empty range" 0 (List.length (collect (20, 0, 0) (10, 0, 0)));
        Alcotest.(check bool) "lower inclusive" true
          (List.mem (10, 0, 0) (collect (10, 0, 0) (20, 0, 0)));
        Alcotest.(check bool) "upper exclusive" false
          (List.mem (20, 0, 0) (collect (10, 0, 0) (20, 0, 0))));
    test "prefix scans" (fun () ->
        let t = Bptree.create ~branching:4 () in
        List.iter
          (fun k -> ignore (Bptree.insert t k))
          [ (1, 1, 1); (1, 1, 2); (1, 2, 1); (2, 1, 1); (2, 2, 2) ];
        let count1 a =
          let n = ref 0 in
          Bptree.iter_prefix1 t a (fun _ -> incr n);
          !n
        in
        let count2 a b =
          let n = ref 0 in
          Bptree.iter_prefix2 t a b (fun _ -> incr n);
          !n
        in
        Alcotest.(check int) "prefix 1" 3 (count1 1);
        Alcotest.(check int) "prefix 2" 2 (count1 2);
        Alcotest.(check int) "prefix (1,1)" 2 (count2 1 1);
        Alcotest.(check int) "prefix (1,2)" 1 (count2 1 2);
        Alcotest.(check int) "prefix (3,*) empty" 0 (count1 3));
    test "negative components order correctly" (fun () ->
        let t = Bptree.create ~branching:2 () in
        List.iter
          (fun k -> ignore (Bptree.insert t k))
          [ (-5, 0, 0); (0, -1, 2); (0, 0, 0); (3, -7, 1) ];
        Alcotest.(check bool) "sorted" true
          (Bptree.to_list t = [ (-5, 0, 0); (0, -1, 2); (0, 0, 0); (3, -7, 1) ]);
        Bptree.check_invariants t);
    qcheck ~count:100 "bptree agrees with a set model under random ops"
      QCheck.(
        pair (int_range 2 6)
          (list (pair bool (triple (int_bound 8) (int_bound 8) (int_bound 8)))))
      (fun (branching, ops) ->
        let t = Bptree.create ~branching () in
        let model = Hashtbl.create 32 in
        List.iter
          (fun (is_add, k) ->
            if is_add then begin
              let added = Bptree.insert t k in
              let fresh = not (Hashtbl.mem model k) in
              Hashtbl.replace model k ();
              if added <> fresh then QCheck.Test.fail_report "insert disagrees"
            end
            else begin
              let removed = Bptree.delete t k in
              let present = Hashtbl.mem model k in
              Hashtbl.remove model k;
              if removed <> present then QCheck.Test.fail_report "delete disagrees"
            end)
          ops;
        Bptree.check_invariants t;
        let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
        Bptree.to_list t = expected);
  ]
