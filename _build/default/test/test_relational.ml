open Lsdb_relational
open Testutil

let emp_schema () = Schema.make ~name:"EMP" ~attributes:[ "name"; "dept"; "salary" ]

let emp () =
  let r = Relation.create (emp_schema ()) in
  List.iter
    (fun t -> ignore (Relation.insert r t))
    [
      [| "JOHN"; "SHIPPING"; "26000" |];
      [| "TOM"; "ACCOUNTING"; "27000" |];
      [| "MARY"; "RECEIVING"; "25000" |];
      [| "SUE"; "SHIPPING"; "30000" |];
    ];
  r

let dept () =
  let r = Relation.create (Schema.make ~name:"DEPT" ~attributes:[ "dept"; "floor" ]) in
  List.iter
    (fun t -> ignore (Relation.insert r t))
    [ [| "SHIPPING"; "1" |]; [| "ACCOUNTING"; "2" |] ];
  r

let tests =
  [
    test "schema validation" (fun () ->
        Alcotest.(check bool) "duplicate attribute" true
          (try
             ignore (Schema.make ~name:"R" ~attributes:[ "a"; "a" ]);
             false
           with Schema.Bad_schema _ -> true);
        Alcotest.(check bool) "empty attributes" true
          (try
             ignore (Schema.make ~name:"R" ~attributes:[]);
             false
           with Schema.Bad_schema _ -> true));
    test "relations are sets with arity checking" (fun () ->
        let r = emp () in
        Alcotest.(check int) "cardinal" 4 (Relation.cardinal r);
        Alcotest.(check bool) "duplicate rejected" false
          (Relation.insert r [| "JOHN"; "SHIPPING"; "26000" |]);
        Alcotest.(check bool) "arity enforced" true
          (try
             ignore (Relation.insert r [| "X" |]);
             false
           with Relation.Arity_mismatch _ -> true));
    test "per-attribute index lookup" (fun () ->
        let r = emp () in
        Alcotest.(check int) "shipping workers" 2
          (List.length (Relation.lookup r ~attr:"dept" ~value:"SHIPPING"));
        Alcotest.(check int) "nobody" 0
          (List.length (Relation.lookup r ~attr:"dept" ~value:"LEGAL")));
    test "delete maintains indexes" (fun () ->
        let r = emp () in
        ignore (Relation.delete r [| "JOHN"; "SHIPPING"; "26000" |]);
        Alcotest.(check int) "one left in shipping" 1
          (List.length (Relation.lookup r ~attr:"dept" ~value:"SHIPPING")));
    test "select and select_eq agree" (fun () ->
        let r = emp () in
        let a = Relalg.select r (fun rel t -> Relation.field rel t "dept" = "SHIPPING") in
        let b = Relalg.select_eq r ~attr:"dept" ~value:"SHIPPING" in
        Alcotest.(check int) "same size" (Relation.cardinal a) (Relation.cardinal b);
        Alcotest.(check int) "two" 2 (Relation.cardinal a));
    test "project eliminates duplicates" (fun () ->
        let r = emp () in
        let depts = Relalg.project r [ "dept" ] in
        Alcotest.(check int) "three distinct departments" 3 (Relation.cardinal depts));
    test "natural join" (fun () ->
        let joined = Relalg.natural_join (emp ()) (dept ()) in
        (* MARY's RECEIVING has no floor: dropped. *)
        Alcotest.(check int) "three matches" 3 (Relation.cardinal joined);
        Alcotest.(check (list string)) "schema"
          [ "name"; "dept"; "salary"; "floor" ]
          (Schema.attributes (Relation.schema joined)));
    test "join with no shared attribute is rejected" (fun () ->
        let other = Relation.create (Schema.make ~name:"X" ~attributes:[ "a" ]) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Relalg.natural_join (emp ()) other);
             false
           with Relalg.Incompatible _ -> true));
    test "union / difference / intersection" (fun () ->
        let a = emp () in
        let b = Relation.create (emp_schema ()) in
        ignore (Relation.insert b [| "JOHN"; "SHIPPING"; "26000" |]);
        ignore (Relation.insert b [| "NEW"; "LEGAL"; "40000" |]);
        Alcotest.(check int) "union" 5 (Relation.cardinal (Relalg.union a b));
        Alcotest.(check int) "difference" 3 (Relation.cardinal (Relalg.difference a b));
        Alcotest.(check int) "intersection" 1 (Relation.cardinal (Relalg.intersection a b)));
    test "rename" (fun () ->
        let r = Relalg.rename (emp ()) ~from:"dept" ~to_:"department" in
        Alcotest.(check bool) "renamed" true
          (Schema.has_attribute (Relation.schema r) "department");
        Alcotest.(check int) "tuples preserved" 4 (Relation.cardinal r));
    (* Algebraic laws, property-checked on small random relations. *)
    qcheck ~count:100 "σ distributes over ∪ and π after σ commutes on kept attrs"
      QCheck.(list (pair (int_bound 4) (int_bound 4)))
      (fun pairs ->
        let schema = Schema.make ~name:"P" ~attributes:[ "a"; "b" ] in
        let r = Relation.create schema and s = Relation.create schema in
        List.iteri
          (fun i (a, b) ->
            let tuple = [| string_of_int a; string_of_int b |] in
            if i mod 2 = 0 then ignore (Relation.insert r tuple)
            else ignore (Relation.insert s tuple))
          pairs;
        let sel rel = Relalg.select_eq rel ~attr:"a" ~value:"1" in
        let lhs = sel (Relalg.union r s) in
        let rhs = Relalg.union (sel r) (sel s) in
        let dump rel = List.sort compare (List.map Array.to_list (Relation.to_list rel)) in
        dump lhs = dump rhs);
  ]
