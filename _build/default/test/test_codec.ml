open Lsdb_storage
open Testutil

let tests =
  [
    test "varint round-trips boundary values" (fun () ->
        List.iter
          (fun n ->
            let w = Codec.writer () in
            Codec.write_varint w n;
            let r = Codec.reader (Codec.contents w) in
            Alcotest.(check int) (string_of_int n) n (Codec.read_varint r);
            Alcotest.(check bool) "consumed" true (Codec.at_end r))
          [ 0; 1; 127; 128; 16383; 16384; 1 lsl 30; max_int / 2 ]);
    test "varint rejects negatives" (fun () ->
        let w = Codec.writer () in
        Alcotest.(check bool) "raises" true
          (try
             Codec.write_varint w (-1);
             false
           with Invalid_argument _ -> true));
    test "strings round-trip including embedded NUL and UTF-8" (fun () ->
        List.iter
          (fun s ->
            let w = Codec.writer () in
            Codec.write_string w s;
            Alcotest.(check string) "round-trip" s (Codec.read_string (Codec.reader (Codec.contents w))))
          [ ""; "hello"; "a\x00b"; "⊑∈≈"; String.make 5000 'x' ]);
    test "truncated input raises Corrupt" (fun () ->
        let w = Codec.writer () in
        Codec.write_string w "hello";
        let data = Codec.contents w in
        let truncated = String.sub data 0 (String.length data - 2) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Codec.read_string (Codec.reader truncated));
             false
           with Codec.Corrupt _ -> true));
    test "crc32 matches the IEEE reference vector" (fun () ->
        (* CRC-32("123456789") = 0xCBF43926 *)
        Alcotest.(check int32) "check vector" 0xCBF43926l (Codec.crc32 "123456789"));
    test "crc32 detects corruption" (fun () ->
        let a = Codec.crc32 "hello world" in
        let b = Codec.crc32 "hello worle" in
        Alcotest.(check bool) "different" true (not (Int32.equal a b)));
    test "frames round-trip through a channel" (fun () ->
        let path = Filename.temp_file "codec" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            List.iter (Codec.write_frame oc) [ "one"; "two"; "three" ];
            close_out oc;
            let ic = open_in_bin path in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let rec read pos acc =
              match Codec.read_frame data ~pos with
              | Some (payload, next) -> read next (payload :: acc)
              | None -> List.rev acc
            in
            Alcotest.(check (list string)) "frames" [ "one"; "two"; "three" ] (read 0 [])));
    test "a torn final frame reads as clean end" (fun () ->
        let buf = Buffer.create 64 in
        let oc_path = Filename.temp_file "codec" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove oc_path)
          (fun () ->
            let oc = open_out_bin oc_path in
            Codec.write_frame oc "complete";
            Codec.write_frame oc "torn-record";
            close_out oc;
            let ic = open_in_bin oc_path in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            (* Drop the last 3 bytes: the second frame is torn. *)
            Buffer.add_string buf (String.sub data 0 (String.length data - 3));
            let data = Buffer.contents buf in
            match Codec.read_frame data ~pos:0 with
            | Some (payload, next) ->
                Alcotest.(check string) "first intact" "complete" payload;
                Alcotest.(check bool) "second torn -> None" true
                  (Codec.read_frame data ~pos:next = None)
            | None -> Alcotest.fail "first frame should read"));
    test "mid-stream corruption raises" (fun () ->
        let path = Filename.temp_file "codec" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            Codec.write_frame oc "first";
            Codec.write_frame oc "second";
            close_out oc;
            let ic = open_in_bin path in
            let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
            close_in ic;
            (* Flip a payload byte of the first frame. *)
            Bytes.set data 2 'X';
            Alcotest.(check bool) "raises" true
              (try
                 ignore (Codec.read_frame (Bytes.to_string data) ~pos:0);
                 false
               with Codec.Corrupt _ -> true)));
    qcheck "frame encode/decode round-trips arbitrary payloads"
      QCheck.(small_list string)
      (fun payloads ->
        let path = Filename.temp_file "codecq" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out_bin path in
            List.iter (Codec.write_frame oc) payloads;
            close_out oc;
            let ic = open_in_bin path in
            let data = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let rec read pos acc =
              match Codec.read_frame data ~pos with
              | Some (payload, next) -> read next (payload :: acc)
              | None -> List.rev acc
            in
            read 0 [] = payloads));
  ]
