(* The query governor: budget trips, cooperative cancellation, partial-
   result soundness across pool sizes and closure modes, storage retry,
   and federation degradation. *)

open Lsdb
open Testutil
module Governor = Lsdb_exec.Governor
module Metrics = Lsdb_obs.Metrics

let counter_value ?labels name = Metrics.counter_value (Metrics.counter ?labels name)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let trip_reason f = match f () with () -> None | exception Governor.Trip r -> Some r

(* ------------------------------------------------------------------ *)
(* Unit behavior of the token itself                                   *)

let unit_tests =
  [
    test "work budget trips Work_budget, stickily" (fun () ->
        let gov = Governor.create ~max_work:10 () in
        Alcotest.(check bool) "untripped at first" true (Governor.tripped gov = None);
        let r = trip_reason (fun () -> Governor.tick (Some gov) 100) in
        Alcotest.(check bool) "tripped work" true (r = Some Governor.Work_budget);
        (* Sticky: any later checkpoint re-raises the recorded reason,
           even where another budget would also have tripped. *)
        let r = trip_reason (fun () -> Governor.check (Some gov)) in
        Alcotest.(check bool) "sticky on check" true (r = Some Governor.Work_budget);
        let r = trip_reason (fun () -> Governor.count_facts (Some gov) 1) in
        Alcotest.(check bool) "count_facts after trip" true (r = None || r = Some Governor.Work_budget));
    test "fact budget trips Fact_budget" (fun () ->
        let gov = Governor.create ~max_facts:3 () in
        Governor.count_facts (Some gov) 3;
        let r = trip_reason (fun () -> Governor.count_facts (Some gov) 1) in
        Alcotest.(check bool) "tripped facts" true (r = Some Governor.Fact_budget));
    test "wave budget trips Wave_budget" (fun () ->
        let gov = Governor.create ~max_waves:2 () in
        Governor.count_wave (Some gov);
        Governor.count_wave (Some gov);
        let r = trip_reason (fun () -> Governor.count_wave (Some gov)) in
        Alcotest.(check bool) "tripped waves" true (r = Some Governor.Wave_budget));
    test "expired deadline trips at the next checkpoint" (fun () ->
        let gov = Governor.create ~deadline_ms:0.000001 () in
        Unix.sleepf 0.002;
        let r = trip_reason (fun () -> Governor.check (Some gov)) in
        Alcotest.(check bool) "tripped deadline" true (r = Some Governor.Deadline));
    test "cancel is observed at the next checkpoint" (fun () ->
        let gov = Governor.create () in
        Alcotest.(check bool) "not cancelled" false (Governor.cancelled gov);
        Governor.cancel gov;
        Alcotest.(check bool) "cancelled" true (Governor.cancelled gov);
        let r = trip_reason (fun () -> Governor.check (Some gov)) in
        Alcotest.(check bool) "tripped cancelled" true (r = Some Governor.Cancelled);
        Alcotest.(check bool) "elapsed is measured" true (Governor.elapsed_s gov >= 0.));
    test "amortized ticks stay silent under budget" (fun () ->
        let gov = Governor.create ~max_work:1_000_000 () in
        for _ = 1 to 5_000 do
          Governor.tick (Some gov) 1
        done;
        Alcotest.(check bool) "no trip" true (Governor.tripped gov = None);
        Alcotest.(check int) "work counted" 5_000 (Governor.work_done gov));
    test "no governor means no-ops" (fun () ->
        Governor.tick None 1_000_000;
        Governor.count_facts None 1_000_000;
        Governor.count_wave None;
        Governor.check None);
    test "finish wraps tripped state as Partial" (fun () ->
        Alcotest.(check bool) "none is complete" true
          (Governor.finish None 42 = Governor.Complete 42);
        let gov = Governor.create ~max_work:1 () in
        Alcotest.(check bool) "untripped is complete" true
          (Governor.finish (Some gov) 42 = Governor.Complete 42);
        ignore (trip_reason (fun () -> Governor.tick (Some gov) 2));
        match Governor.finish (Some gov) 42 with
        | Governor.Partial { value = 42; reason = Governor.Work_budget; work; _ } ->
            Alcotest.(check bool) "work recorded" true (work >= 2)
        | _ -> Alcotest.fail "expected Partial Work_budget");
    test "trip reasons are counted by reason label" (fun () ->
        let before =
          counter_value ~labels:[ ("reason", "fact-budget") ]
            "lsdb_governor_trips_total"
        in
        let gov = Governor.create ~max_facts:1 () in
        ignore (trip_reason (fun () -> Governor.count_facts (Some gov) 2));
        ignore (trip_reason (fun () -> Governor.count_facts (Some gov) 2));
        let after =
          counter_value ~labels:[ ("reason", "fact-budget") ]
            "lsdb_governor_trips_total"
        in
        (* Only the first CAS owner bumps the counter. *)
        Alcotest.(check int) "one trip counted" (before + 1) after);
    test "describe names the armed budgets" (fun () ->
        let gov = Governor.create ~deadline_ms:250. ~max_facts:7 () in
        let d = Governor.describe gov in
        Alcotest.(check bool) "mentions deadline" true (contains d "deadline=");
        Alcotest.(check bool) "mentions facts" true (contains d "facts=7");
        Alcotest.(check bool) "cancellation-only" true
          (contains (Governor.describe (Governor.create ())) "cancellation"));
  ]

(* ------------------------------------------------------------------ *)
(* Retry.run                                                           *)

let fast = { Governor.Retry.attempts = 4; base_delay_s = 0.; max_delay_s = 0. }

let retry_tests =
  [
    test "succeeds after transient failures" (fun () ->
        let calls = ref 0 and retries = ref 0 in
        let result =
          Governor.Retry.run ~policy:fast
            ~on_retry:(fun ~attempt:_ _ -> incr retries)
            ~retry_on:(fun _ -> true)
            (fun () ->
              incr calls;
              if !calls < 3 then failwith "transient";
              "ok")
        in
        Alcotest.(check string) "result" "ok" result;
        Alcotest.(check int) "calls" 3 !calls;
        Alcotest.(check int) "retries" 2 !retries);
    test "gives up after the attempt budget" (fun () ->
        let calls = ref 0 and gaveup = ref false in
        (match
           Governor.Retry.run
             ~policy:{ fast with attempts = 3 }
             ~on_giveup:(fun _ -> gaveup := true)
             ~retry_on:(fun _ -> true)
             (fun () ->
               incr calls;
               failwith "always")
         with
        | (_ : unit) -> Alcotest.fail "should raise"
        | exception Failure _ -> ());
        Alcotest.(check int) "attempted exactly the budget" 3 !calls;
        Alcotest.(check bool) "giveup reported" true !gaveup);
    test "non-matching exceptions propagate immediately" (fun () ->
        let calls = ref 0 in
        (match
           Governor.Retry.run ~policy:fast
             ~retry_on:(function Failure _ -> true | _ -> false)
             (fun () ->
               incr calls;
               invalid_arg "fatal")
         with
        | (_ : unit) -> Alcotest.fail "should raise"
        | exception Invalid_argument _ -> ());
        Alcotest.(check int) "no retry" 1 !calls);
  ]

(* ------------------------------------------------------------------ *)
(* Partial-result soundness across the evaluation stack                *)

let university () =
  Lsdb_workload.University_gen.to_database
    (Lsdb_workload.University_gen.generate
       ~params:
         {
           Lsdb_workload.University_gen.students = 40;
           courses = 10;
           instructors = 5;
           enrollments_per_student = 3;
         }
       (Lsdb_workload.Rng.create 7))

let all_closure_facts db =
  let acc = ref [] in
  Database.closure_match db (Store.pattern ()) (fun f -> acc := f :: !acc);
  List.sort_uniq Fact.compare !acc

let is_subset ~sub ~super =
  let tbl = Fact.Tbl.create (List.length super) in
  List.iter (fun f -> Fact.Tbl.replace tbl f ()) super;
  List.for_all (Fact.Tbl.mem tbl) sub

let with_pool domains f =
  match domains with
  | 1 -> f None
  | n ->
      let pool = Lsdb_exec.Pool.create ~domains:n in
      Fun.protect
        ~finally:(fun () -> Lsdb_exec.Pool.shutdown pool)
        (fun () -> f (Some pool))

let soundness_tests =
  let oracle_db = university () in
  let oracle = all_closure_facts oracle_db in
  let modes = [ ("eager", Database.Eager); ("demand", Database.Demand) ] in
  List.concat_map
    (fun (mode_name, mode) ->
      List.map
        (fun domains ->
          test
            (Printf.sprintf "partial answers are sound subsets (%s, %d domains)"
               mode_name domains)
            (fun () ->
              with_pool domains @@ fun pool ->
              (* Tripped run: a tight fact budget interrupts derivation. *)
              let db = Database.copy oracle_db in
              Database.set_pool db pool;
              Database.set_closure_mode db mode;
              let gov = Governor.create ~max_facts:25 () in
              Database.set_governor db (Some gov);
              let partial = all_closure_facts db in
              Alcotest.(check bool) "budget actually tripped" true
                (Governor.tripped gov <> None);
              Alcotest.(check bool) "partial ⊆ oracle" true
                (is_subset ~sub:partial ~super:oracle);
              (* Clearing the governor discards the partial state; the
                 same database then converges to the full answer set. *)
              Database.set_governor db None;
              let recovered = all_closure_facts db in
              Alcotest.(check int) "recovers to the oracle"
                (List.length oracle) (List.length recovered);
              Alcotest.(check bool) "recovered set equals oracle" true
                (List.equal Fact.equal oracle recovered);
              (* Untripped run: a roomy governor changes nothing. *)
              let db = Database.copy oracle_db in
              Database.set_pool db pool;
              Database.set_closure_mode db mode;
              let gov = Governor.create ~max_facts:max_int ~max_work:max_int () in
              Database.set_governor db (Some gov);
              let governed = all_closure_facts db in
              Alcotest.(check bool) "no trip" true (Governor.tripped gov = None);
              Alcotest.(check bool) "identical to oracle" true
                (List.equal Fact.equal oracle governed);
              Alcotest.(check bool) "not flagged partial" false
                (Database.closure_partial db);
              Database.set_governor db None;
              Database.set_pool db None))
        [ 1; 2; 4; 8 ])
    modes

let degradation_tests =
  [
    test "expired deadline yields a flagged partial closure" (fun () ->
        let db = university () in
        let gov = Governor.create ~deadline_ms:0.000001 () in
        Unix.sleepf 0.002;
        Database.set_governor db (Some gov);
        let partial = all_closure_facts db in
        Alcotest.(check bool) "deadline tripped" true
          (Governor.tripped gov = Some Governor.Deadline);
        Alcotest.(check bool) "flagged partial" true (Database.closure_partial db);
        Alcotest.(check bool) "still a subset" true
          (is_subset ~sub:partial ~super:(all_closure_facts (university ())));
        Database.set_governor db None);
    test "cancellation interrupts probing soundly" (fun () ->
        let db = Paper_examples.campus () in
        let gov = Governor.create () in
        Governor.cancel gov;
        Database.set_governor db (Some gov);
        (match Probing.probe db (q db "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)") with
        | Probing.Exhausted _ | Probing.Retracted _ | Probing.Answered _ -> ());
        Alcotest.(check bool) "cancel recorded" true
          (Governor.tripped gov = Some Governor.Cancelled);
        Database.set_governor db None);
  ]

(* ------------------------------------------------------------------ *)
(* Storage retry                                                       *)

let storage_tests =
  let open Lsdb_storage in
  [
    test "transient fault on log.write succeeds after backoff, no duplicate frame"
      (fun () ->
        let vfs = Vfs.faulty () in
        let log = Log.open_ ~vfs ~retry:fast ~epoch:0 "/log" in
        Log.append log (Log.Insert ("A", "R", "B"));
        let retries_before = counter_value "lsdb_storage_retries_total" in
        let giveups_before = counter_value "lsdb_storage_retry_giveups_total" in
        (* One-shot ENOSPC: the first write attempt fails having written
           nothing; the retry resends the identical buffer. *)
        Vfs.arm vfs ~site:"log.write" Vfs.No_space;
        Log.sync log;
        Alcotest.(check int) "one retry"
          (retries_before + 1)
          (counter_value "lsdb_storage_retries_total");
        Alcotest.(check int) "no giveup" giveups_before
          (counter_value "lsdb_storage_retry_giveups_total");
        let ops = Log.read_all ~vfs "/log" in
        Alcotest.(check int) "frame appears exactly once" 1 (List.length ops);
        Alcotest.(check bool) "and is the op" true
          (List.for_all (Log.op_equal (Log.Insert ("A", "R", "B"))) ops));
    test "retry budget of one gives up and propagates the fault" (fun () ->
        let vfs = Vfs.faulty () in
        let log =
          Log.open_ ~vfs ~retry:{ fast with Governor.Retry.attempts = 1 } ~epoch:0
            "/log"
        in
        Log.append log (Log.Insert ("A", "R", "B"));
        let giveups_before = counter_value "lsdb_storage_retry_giveups_total" in
        Vfs.arm vfs ~site:"log.write" Vfs.No_space;
        (match Log.sync log with
        | (_ : unit) -> Alcotest.fail "expected the fault to propagate"
        | exception Vfs.Fault _ -> ());
        Alcotest.(check int) "giveup counted" (giveups_before + 1)
          (counter_value "lsdb_storage_retry_giveups_total");
        (* The fault consumed itself; the frame is still buffered and the
           next sync lands it exactly once. *)
        Log.sync log;
        Alcotest.(check int) "frame appears exactly once" 1
          (List.length (Log.read_all ~vfs "/log")));
    test "without a retry policy the fault propagates unchanged" (fun () ->
        let vfs = Vfs.faulty () in
        let log = Log.open_ ~vfs ~epoch:0 "/log" in
        Log.append log (Log.Insert ("A", "R", "B"));
        Vfs.arm vfs ~site:"log.write" Vfs.No_space;
        match Log.sync log with
        | (_ : unit) -> Alcotest.fail "expected Vfs.Fault"
        | exception Vfs.Fault _ -> ());
    test "persistent store opened with a retry policy survives a transient sync"
      (fun () ->
        let vfs = Vfs.faulty () in
        let p = Persistent.open_dir ~vfs ~retry:fast "/db" in
        ignore (Persistent.insert_names p "A" "R" "B");
        Vfs.arm vfs ~site:"log.fsync" Vfs.Fsync_raises;
        Persistent.sync p;
        Persistent.close p;
        let p = Persistent.open_dir ~vfs "/db" in
        Alcotest.(check bool) "fact survived" true
          (holds (Persistent.database p) ("A", "R", "B"));
        Persistent.close p);
  ]

(* ------------------------------------------------------------------ *)
(* Federation degradation                                              *)

let federation_tests =
  [
    test "a member that fails to open degrades to a skipped member" (fun () ->
        let skipped_before = counter_value "lsdb_federation_skipped_members_total" in
        let fed =
          Federation.create_lenient
            [
              ("good", fun () -> db_of [ ("A", "R", "B") ]);
              ("bad", fun () -> failwith "heap corrupt");
              ("also-good", fun () -> db_of [ ("C", "R", "D") ]);
            ]
        in
        Alcotest.(check (list string)) "members that merged"
          [ "good"; "also-good" ] (Federation.members fed);
        (match Federation.skipped fed with
        | [ ("bad", why) ] ->
            Alcotest.(check bool) "reason kept" true (contains why "heap corrupt")
        | _ -> Alcotest.fail "expected exactly one skipped member");
        let db = Federation.database fed in
        check_holds db "good member merged" ("A", "R", "B");
        check_holds db "second member merged" ("C", "R", "D");
        Alcotest.(check int) "skip counted" (skipped_before + 1)
          (counter_value "lsdb_federation_skipped_members_total"));
    test "create_lenient with no failures matches create" (fun () ->
        let fed =
          Federation.create_lenient [ ("m", fun () -> db_of [ ("A", "R", "B") ]) ]
        in
        Alcotest.(check (list string)) "members" [ "m" ] (Federation.members fed);
        Alcotest.(check bool) "nothing skipped" true (Federation.skipped fed = []));
  ]

(* ------------------------------------------------------------------ *)
(* Shell integration                                                   *)

let shell_tests =
  let open Lsdb_shell in
  [
    test ".deadline and .budget set, show and clear session budgets" (fun () ->
        let sh = Shell.create (Paper_examples.campus ()) in
        Alcotest.(check bool) "off by default" true
          (contains (Shell.execute sh ".deadline") "off");
        Alcotest.(check bool) "set" true
          (contains (Shell.execute sh ".deadline 250") "250");
        Alcotest.(check bool) "shown" true
          (contains (Shell.execute sh ".deadline") "250");
        Alcotest.(check bool) "cleared" true
          (contains (Shell.execute sh ".deadline off") "off");
        Alcotest.(check bool) "rejects junk" true
          (contains (Shell.execute sh ".deadline soon") "positive");
        Alcotest.(check bool) "budget set" true
          (contains (Shell.execute sh ".budget facts 10") "10");
        Alcotest.(check bool) "budget shown" true
          (contains (Shell.execute sh ".budget") "fact budget: 10");
        Alcotest.(check bool) "budget cleared" true
          (contains (Shell.execute sh ".budget off") "off"));
    test "a tripped query command warns and still answers" (fun () ->
        let sh = Shell.create (Paper_examples.campus ()) in
        ignore (Shell.execute sh ".budget facts 1");
        let out = Shell.execute sh "q (STUDENT, GEN, ?x)" in
        Alcotest.(check bool) "warning shown" true (contains out "warning:");
        Alcotest.(check bool) "names the reason" true (contains out "fact-budget");
        Alcotest.(check bool) "calls the subset sound" true
          (contains out "sound subset");
        (* Budgets are per query, and the trip does not leak: without the
           budget the same session answers completely, no warning. *)
        ignore (Shell.execute sh ".budget off");
        let out = Shell.execute sh "q (STUDENT, GEN, ?x)" in
        Alcotest.(check bool) "no warning" false (contains out "warning:"));
    test "ungoverned and roomy-governed output are identical" (fun () ->
        let plain = Shell.create (Paper_examples.campus ()) in
        let governed = Shell.create (Paper_examples.campus ()) in
        ignore (Shell.execute governed ".deadline 60000");
        List.iter
          (fun cmd ->
            Alcotest.(check string) cmd (Shell.execute plain cmd)
              (Shell.execute governed cmd))
          [ "q (STUDENT, GEN, ?x)"; "assoc STUDENT OPERA"; "try JOHN" ]);
    test "no governor is active between commands" (fun () ->
        let sh = Shell.create (Paper_examples.campus ()) in
        ignore (Shell.execute sh "q (STUDENT, GEN, ?x)");
        Alcotest.(check bool) "cleared after the command" true
          (Shell.active_governor sh = None);
        Alcotest.(check bool) "database governor cleared" true
          (Database.governor (Shell.database sh) = None));
    test ".stats includes the governor digest" (fun () ->
        let sh = Shell.create (Paper_examples.campus ()) in
        let out = Shell.execute sh ".stats" in
        Alcotest.(check bool) "governor line" true (contains out "governor:");
        Alcotest.(check bool) "degradation line" true (contains out "degradation:"));
  ]

let tests =
  unit_tests @ retry_tests @ soundness_tests @ degradation_tests @ storage_tests
  @ federation_tests @ shell_tests
