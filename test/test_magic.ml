(* Demand-driven closure (magic sets): byte-identity against the eager
   oracle — on the paper examples, on seeded random rule/fact programs at
   the datalog level, and on the university/citation workloads — at pool
   sizes 1/2/4/8 and under interleaved insert/retract/rule-toggle
   sequences (the DRed path). Byte-identity means: the sorted answer
   sets of the two modes are equal, pattern by pattern. *)

open Lsdb
open Testutil
module Rng = Lsdb_workload.Rng
module Pool = Lsdb_exec.Pool

let fact_triples = Alcotest.(list (triple int int int))

(* Sorted answer set of a pattern through the mode-aware accessor. *)
let sorted_match db pat =
  let out = ref [] in
  Database.closure_match db pat (fun (f : Fact.t) -> out := (f.s, f.r, f.t) :: !out);
  List.sort compare !out

(* All eight pattern shapes rooted at a ground triple. *)
let shapes (s, r, t) =
  [
    Store.pattern ~s ();
    Store.pattern ~r ();
    Store.pattern ~t ();
    Store.pattern ~s ~r ();
    Store.pattern ~s ~t ();
    Store.pattern ~r ~t ();
    Store.pattern ~s ~r ~t ();
  ]

let closure_facts db =
  let out = ref [] in
  Closure.iter (fun (f : Fact.t) -> out := (f.s, f.r, f.t) :: !out) (Database.closure db);
  List.sort compare !out

(* Two structurally identical databases (same deterministic build), one
   per mode. Symtab layouts agree, so raw entity ids are comparable. *)
let twins make =
  let eager = make () and demand = make () in
  Database.set_closure_mode demand Database.Demand;
  (eager, demand)

let check_identity what eager demand pats =
  List.iter
    (fun pat ->
      Alcotest.(check fact_triples) what (sorted_match eager pat) (sorted_match demand pat))
    pats

let university () =
  Lsdb_workload.University_gen.to_database
    (Lsdb_workload.University_gen.generate
       ~params:
         {
           Lsdb_workload.University_gen.students = 12;
           courses = 4;
           instructors = 3;
           enrollments_per_student = 2;
         }
       (Rng.create 7))

let citation () =
  Lsdb_workload.Citation_gen.to_database
    (Lsdb_workload.Citation_gen.generate
       ~params:
         {
           Lsdb_workload.Citation_gen.books = 40;
           authors = 10;
           subjects = 3;
           citations_per_book = 3;
           skew = 1.0;
         }
       (Rng.create 11))

(* Multi-variable query answers as sorted rows of raw ids. *)
let rows db text =
  let a = Eval.eval db (q db text) in
  List.map Array.to_list a.Eval.rows |> List.sort compare

let tests =
  [
    test "paper examples: demand ≡ eager on every pattern shape" (fun () ->
        List.iter
          (fun make ->
            let eager, demand = twins make in
            (* The full extent first (demands everything), then every
               shape rooted at a sample of closure facts. *)
            check_identity "full extent" eager demand [ Store.pattern () ];
            let sample = List.filteri (fun i _ -> i mod 5 = 0) (closure_facts eager) in
            List.iter (fun f -> check_identity "shape" eager demand (shapes f)) sample)
          [ Paper_examples.organization; Paper_examples.music; Paper_examples.campus ]);
    test "seeded random datalog programs: cones match the eager oracle" (fun () ->
        let open Lsdb_datalog in
        for seed = 1 to 20 do
          let rng = Rng.create (100 + seed) in
          let const () = 1 + Rng.int rng 8 in
          let rel () = 20 + Rng.int rng 3 in
          let base =
            List.init
              (10 + Rng.int rng 15)
              (fun _ -> Triple.make (const ()) (rel ()) (const ()))
            |> List.sort_uniq Triple.compare
          in
          let rules =
            List.init
              (2 + Rng.int rng 3)
              (fun i ->
                let term () =
                  if Rng.int rng 4 = 0 then Term.Const (const ())
                  else Term.Var (Rng.int rng 3)
                in
                let body =
                  List.init
                    (1 + Rng.int rng 2)
                    (fun _ -> Atom.make (term ()) (Term.Const (rel ())) (term ()))
                in
                let bvars =
                  List.concat_map
                    (fun (a : Atom.t) ->
                      List.filter_map
                        (function Term.Var v -> Some v | Term.Const _ -> None)
                        [ a.s; a.r; a.t ])
                    body
                in
                let head_term () =
                  if bvars = [] || Rng.int rng 3 = 0 then Term.Const (const ())
                  else Term.Var (Rng.choose rng bvars)
                in
                Rule.make
                  ~name:(Printf.sprintf "r%d" i)
                  ~body
                  ~heads:[ Atom.make (head_term ()) (Term.Const (rel ())) (head_term ()) ]
                  ())
          in
          let result = Engine.closure rules (List.to_seq base) in
          let eager_facts =
            List.of_seq (Index.to_seq result.Engine.index)
            |> List.map (fun (tr : Triple.t) -> (tr.s, tr.r, tr.t))
            |> List.sort compare
          in
          let m = Magic.create ~staged_rules:[] ~rules (List.to_seq base) in
          let collect ~s ~r ~tgt =
            let got = ref [] in
            Magic.demand m ~s ~r ~tgt (fun (tr : Triple.t) ->
                got := (tr.s, tr.r, tr.t) :: !got);
            List.sort compare !got
          in
          let opt_eq o v = match o with Some x -> x = v | None -> true in
          (* Selective patterns first — each checks the cone against the
             oracle's restriction — then the full extent. *)
          for _ = 1 to 8 do
            let pos v = if Rng.bool rng then Some v else None in
            let s = pos (const ()) and r = pos (rel ()) and tgt = pos (const ()) in
            let expected =
              List.filter
                (fun (fs, fr, ft) -> opt_eq s fs && opt_eq r fr && opt_eq tgt ft)
                eager_facts
            in
            Alcotest.(check fact_triples) "selective cone" expected (collect ~s ~r ~tgt)
          done;
          Alcotest.(check fact_triples) "full extent" eager_facts
            (collect ~s:None ~r:None ~tgt:None);
          (* DRed at the datalog level: retract a base fact, compare with
             a from-scratch closure of the survivors, then restore it. *)
          let victim = Rng.choose rng base in
          Magic.retract m victim;
          let base' = List.filter (fun tr -> Triple.compare victim tr <> 0) base in
          let eager' =
            Engine.closure rules (List.to_seq base')
            |> fun r ->
            List.of_seq (Index.to_seq r.Engine.index)
            |> List.map (fun (tr : Triple.t) -> (tr.s, tr.r, tr.t))
            |> List.sort compare
          in
          Alcotest.(check fact_triples) "after retract" eager'
            (collect ~s:None ~r:None ~tgt:None);
          Magic.insert m victim;
          Alcotest.(check fact_triples) "after re-insert" eager_facts
            (collect ~s:None ~r:None ~tgt:None)
        done);
    test "university + citation workloads: demand ≡ eager" (fun () ->
        List.iter
          (fun (make, queries) ->
            let eager, demand = twins make in
            List.iter
              (fun text ->
                Alcotest.(check (list (list int))) text (rows eager text) (rows demand text))
              queries;
            check_identity "full extent" eager demand [ Store.pattern () ])
          [
            ( university,
              [
                "(?e, in, ENROLLMENT)";
                "exists s, c, g . (?e, ENROLL-STUDENT, ?s) & (?e, ENROLL-COURSE, ?c) \
                 & (?e, ENROLL-GRADE, ?g)";
              ] );
            (citation, [ "(?b, in, BOOK)"; "(?a, WROTE, ?b)" ]);
          ]);
    test "demand answers are identical at pool sizes 1/2/4/8" (fun () ->
        let queries = [ "(?e, in, ENROLLMENT)"; "(?e, ENROLL-STUDENT, ?s)" ] in
        let eager = university () in
        let expected = List.map (rows eager) queries in
        List.iter
          (fun domains ->
            let db = university () in
            Database.set_closure_mode db Database.Demand;
            let pool = if domains > 1 then Some (Pool.create ~domains) else None in
            Database.set_pool db pool;
            Fun.protect
              ~finally:(fun () ->
                Database.set_pool db None;
                Option.iter Pool.shutdown pool)
              (fun () ->
                List.iter2
                  (fun text want ->
                    Alcotest.(check (list (list int)))
                      (Printf.sprintf "%s @ %d domains" text domains)
                      want (rows db text))
                  queries expected))
          [ 1; 2; 4; 8 ]);
    test "interleaved insert/retract/rule-toggle keeps demand ≡ eager" (fun () ->
        List.iter
          (fun seed ->
            let rng = Rng.create seed in
            let eager = Database.create () and demand = Database.create () in
            Database.set_closure_mode demand Database.Demand;
            let both f =
              f eager;
              f demand
            in
            let ents = [| "A"; "B"; "C"; "D"; "E"; "F" |] in
            let rels = [| "isa"; "in"; "R"; "S"; "syn" |] in
            let base = ref [] in
            for _ = 1 to 40 do
              (match Rng.int rng 10 with
              | 0 | 1 when !base <> [] ->
                  let triple = Rng.choose rng !base in
                  base := List.filter (fun x -> x <> triple) !base;
                  both (fun db -> ignore (Database.remove db (fact db triple)))
              | 2 ->
                  let name =
                    Rng.choose rng [ "mem-source"; "gen-rel"; "syn-def"; "inversion" ]
                  in
                  let enabled =
                    List.exists
                      (fun ((r : Rule.t), on) -> on && String.equal r.Rule.name name)
                      (Database.rules eager)
                  in
                  both (fun db ->
                      ignore
                        (if enabled then Database.exclude db name
                         else Database.include_rule db name))
              | _ ->
                  let s = Rng.choose_array rng ents
                  and r = Rng.choose_array rng rels
                  and t = Rng.choose_array rng ents in
                  if not (List.mem (s, r, t) !base) then begin
                    base := (s, r, t) :: !base;
                    both (fun db -> ignore (Database.insert_names db s r t))
                  end);
              Alcotest.(check fact_triples) "full extent identical"
                (sorted_match eager (Store.pattern ()))
                (sorted_match demand (Store.pattern ()))
            done)
          [ 3; 17; 42 ]);
    test "selective demand derives a strict subset of the closure" (fun () ->
        let db = university () in
        Database.set_closure_mode db Database.Demand;
        ignore (rows db "(?e, in, ENROLLMENT)");
        match Database.demand_stats db with
        | None -> Alcotest.fail "no demand state after a query"
        | Some s ->
            let eager = university () in
            let full_derived = Closure.derived_count (Database.closure eager) in
            let cone =
              s.Lsdb_datalog.Magic.stage_cone_facts + s.Lsdb_datalog.Magic.full_cone_facts
            in
            Alcotest.(check bool)
              (Printf.sprintf "cone %d < full %d" cone full_derived)
              true
              (cone < full_derived));
    test "prover tabling keys off the shared database generation" (fun () ->
        let db = Paper_examples.organization () in
        let f = fact db ("JOHN", "WORKS-FOR", "DEPARTMENT") in
        let proved, n1 = Prover.prove_counted db f in
        Alcotest.(check bool) "proves" true proved;
        Alcotest.(check bool) "first run expands" true (n1 > 0);
        let proved2, n2 = Prover.prove_counted db f in
        Alcotest.(check bool) "still proves" true proved2;
        (* Repeat proof over an unchanged heap replays the table. *)
        Alcotest.(check int) "tabled repeat: zero expansions" 0 n2;
        (* A rule toggle bumps the one shared generation source; the
           prover table (like the match-layer answer cache) must miss. *)
        ignore (Database.exclude db "gen-rel");
        ignore (Database.include_rule db "gen-rel");
        let proved3, n3 = Prover.prove_counted db f in
        Alcotest.(check bool) "reproves" true proved3;
        Alcotest.(check bool) "toggle invalidates the table" true (n3 > 0));
    test "shell .closure flips modes in a live session" (fun () ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let shell = Lsdb_shell.Shell.create (Paper_examples.organization ()) in
        let out = Lsdb_shell.Shell.execute shell ".closure" in
        Alcotest.(check bool) "starts eager" true (contains out "eager");
        let out = Lsdb_shell.Shell.execute shell ".closure demand" in
        Alcotest.(check bool) "switches" true (contains out "demand");
        let out = Lsdb_shell.Shell.execute shell "q (JOHN, WORKS-FOR, ?d)" in
        Alcotest.(check bool) "derived answer" true (contains out "DEPARTMENT");
        let out = Lsdb_shell.Shell.execute shell "stats" in
        Alcotest.(check bool) "stats shows the mode" true (contains out "demand"));
  ]
