(* The domain pool, and the determinism guarantees of the parallel paths:
   probing waves and closure rounds must produce byte-identical outcomes
   for every pool size, including none. *)

open Lsdb
open Testutil
module Pool = Lsdb_exec.Pool

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Pool behavior                                                       *)

let pool_tests =
  [
    test "map preserves input order over 10k items" (fun () ->
        with_pool ~domains:4 (fun pool ->
            let xs = List.init 10_000 Fun.id in
            Alcotest.(check (list int))
              "squares in order"
              (List.map (fun x -> x * x) xs)
              (Pool.map pool (fun x -> x * x) xs)));
    test "fold with a non-associative combine is deterministic" (fun () ->
        with_pool ~domains:4 (fun pool ->
            let xs = List.init 1_000 (fun i -> i + 1) in
            let expected = List.fold_left (fun acc x -> acc - (2 * x)) 0 xs in
            Alcotest.(check int) "same as sequential" expected
              (Pool.fold pool ~f:(fun x -> 2 * x) ~combine:( - ) ~init:0 xs)));
    test "lowest-indexed exception propagates" (fun () ->
        with_pool ~domains:4 (fun pool ->
            let run () =
              Pool.map pool
                (fun x -> if x mod 7 = 3 then failwith (string_of_int x) else x)
                (List.init 1_000 Fun.id)
            in
            (* Items 3, 10, 17, … all raise; the caller must always see
               item 3's exception, regardless of scheduling. *)
            match run () with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure msg -> Alcotest.(check string) "item 3" "3" msg));
    test "domains <= 1 run inline" (fun () ->
        List.iter
          (fun domains ->
            with_pool ~domains (fun pool ->
                Alcotest.(check int) "one lane" 1 (Pool.size pool);
                Alcotest.(check (list int)) "map works" [ 2; 4; 6 ]
                  (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])))
          [ -1; 0; 1 ]);
    test "empty input" (fun () ->
        with_pool ~domains:4 (fun pool ->
            Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id [])));
    test "nested maps on the same pool do not deadlock" (fun () ->
        with_pool ~domains:2 (fun pool ->
            let result =
              Pool.map pool
                (fun row -> Pool.map pool (fun x -> (row * 10) + x) [ 0; 1; 2 ])
                [ 1; 2; 3; 4 ]
            in
            Alcotest.(check (list (list int)))
              "rows in order"
              [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
              result));
    test "shutdown is idempotent; map afterwards raises" (fun () ->
        let pool = Pool.create ~domains:4 in
        Pool.shutdown pool;
        Pool.shutdown pool;
        match Pool.map pool Fun.id [ 1 ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Persistent lanes and escaped-exception accounting                   *)

let lanes_tests =
  [
    test "lanes run every index each round, any n vs pool size" (fun () ->
        List.iter
          (fun domains ->
            with_pool ~domains (fun pool ->
                List.iter
                  (fun n ->
                    let lg = Pool.lanes pool ~n in
                    Fun.protect ~finally:(fun () -> Pool.lanes_close lg)
                    @@ fun () ->
                    Alcotest.(check int) "lanes_size" n (Pool.lanes_size lg);
                    let out = Array.make n 0 in
                    for round = 1 to 5 do
                      Pool.lanes_run lg (fun i -> out.(i) <- out.(i) + i + round)
                    done;
                    Array.iteri
                      (fun i got ->
                        Alcotest.(check int)
                          (Printf.sprintf "lane %d ran all 5 rounds" i)
                          ((5 * i) + 15)
                          got)
                      out)
                  [ 1; 2; 3; 8 ]))
          [ 1; 2; 4 ]);
    test "lanes_run re-raises the lowest failing lane" (fun () ->
        with_pool ~domains:3 (fun pool ->
            let lg = Pool.lanes pool ~n:8 in
            Fun.protect ~finally:(fun () -> Pool.lanes_close lg)
            @@ fun () ->
            let ran = Array.make 8 false in
            (match
               Pool.lanes_run lg (fun i ->
                   ran.(i) <- true;
                   if i mod 3 = 2 then failwith (string_of_int i))
             with
            | () -> Alcotest.fail "expected Failure"
            | exception Failure msg ->
                (* Lanes 2, 5 fail; lane 2 wins deterministically. *)
                Alcotest.(check string) "lane 2's exception" "2" msg);
            Alcotest.(check bool) "all lanes still ran" true
              (Array.for_all Fun.id ran);
            (* The group survives a failing round. *)
            Pool.lanes_run lg (fun _ -> ())));
    test "closed lanes refuse to run; close is idempotent" (fun () ->
        with_pool ~domains:2 (fun pool ->
            let lg = Pool.lanes pool ~n:4 in
            Pool.lanes_run lg ignore;
            Pool.lanes_close lg;
            Pool.lanes_close lg;
            (match Pool.lanes_run lg ignore with
            | () -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ());
            (* The pool is still fully usable afterwards. *)
            Alcotest.(check (list int)) "map after close" [ 1; 4; 9 ]
              (Pool.map pool (fun x -> x * x) [ 1; 2; 3 ])));
    test "shutdown closes a leaked lane group without deadlock" (fun () ->
        let pool = Pool.create ~domains:3 in
        let lg = Pool.lanes pool ~n:4 in
        Pool.lanes_run lg ignore;
        (* No lanes_close: shutdown must release the bound workers. *)
        Pool.shutdown pool);
    test "submitted job exceptions are counted and re-raised" (fun () ->
        let module Metrics = Lsdb_obs.Metrics in
        let m =
          Metrics.counter
            ~help:"Exceptions that escaped a queued job (invariant violations)"
            "lsdb_pool_job_exceptions_total"
        in
        with_pool ~domains:2 (fun pool ->
            let before = Metrics.counter_value m in
            let exploded = ref false in
            Pool.submit pool (fun () ->
                exploded := true;
                failwith "escaped");
            (* Wait for the worker to pick the job up. *)
            let deadline = Unix.gettimeofday () +. 5.0 in
            while
              Metrics.counter_value m = before
              && Unix.gettimeofday () < deadline
            do
              Domain.cpu_relax ()
            done;
            Alcotest.(check bool) "job ran" true !exploded;
            Alcotest.(check int) "counted once" (before + 1)
              (Metrics.counter_value m);
            (* The next caller-path operation surfaces it instead of
               dropping it: the Governor.Trip-class escape contract. *)
            (match Pool.map pool Fun.id [ 1 ] with
            | _ -> Alcotest.fail "expected the escaped Failure"
            | exception Failure msg ->
                Alcotest.(check string) "escaped message" "escaped" msg);
            (* Re-raise is one-shot; the pool then works normally. *)
            Alcotest.(check (list int)) "pool healthy" [ 1 ]
              (Pool.map pool Fun.id [ 1 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Probing determinism                                                 *)

(* A workload whose probe explores several waves: relationship and goal
   taxonomies with facts at the general end, asked at the specific end. *)
let wave_db () =
  let r = Lsdb_workload.Rng.create 0xBEEF in
  let rel_tax = Lsdb_workload.Taxonomy.generate ~prefix:"REL" ~depth:3 ~fanout:2 r in
  let goal_tax = Lsdb_workload.Taxonomy.generate ~prefix:"GOAL" ~depth:2 ~fanout:2 r in
  let db = Database.create () in
  Lsdb_workload.Taxonomy.insert db rel_tax;
  Lsdb_workload.Taxonomy.insert db goal_tax;
  for j = 0 to 19 do
    ignore
      (Database.insert_names db
         (Printf.sprintf "SRC-%02d" j)
         (List.hd rel_tax.Lsdb_workload.Taxonomy.leaves)
         (Printf.sprintf "ITM-%02d" j));
    ignore
      (Database.insert_names db
         (Printf.sprintf "NDL-%02d" j)
         "NEEDLE"
         (List.hd goal_tax.Lsdb_workload.Taxonomy.leaves))
  done;
  let query =
    q db
      (Printf.sprintf "(?x, %s, ?y) & (?y, NEEDLE, %s)"
         (List.hd rel_tax.Lsdb_workload.Taxonomy.leaves)
         (List.hd goal_tax.Lsdb_workload.Taxonomy.leaves))
  in
  (db, query)

let check_probe_matches_sequential what build texts =
  let db = build () in
  let queries = List.map (q db) texts in
  let expected = List.map (fun query -> Probing.probe db query) queries in
  with_pool ~domains:4 (fun pool ->
      List.iter2
        (fun query reference ->
          let parallel = Probing.probe ~pool db query in
          Alcotest.(check bool)
            (what ^ ": outcome structurally equal")
            true
            (parallel = reference);
          Alcotest.(check string)
            (what ^ ": rendered menu equal")
            (Probing.render_menu db query reference)
            (Probing.render_menu db query parallel))
        queries expected);
  (* The pool can also be attached to the database itself. *)
  let db2 = build () in
  with_pool ~domains:3 (fun pool ->
      Database.set_pool db2 (Some pool);
      List.iteri
        (fun i text ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: db-attached pool, query %d" what i)
            true
            (Probing.probe db2 (q db2 text) = List.nth expected i))
        texts;
      Database.set_pool db2 None)

let probing_tests =
  [
    test "campus probes match sequential under a pool" (fun () ->
        check_probe_matches_sequential "campus" Paper_examples.campus
          [
            "(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";
            "(SUE, ENJOYS, OPERA)";
            "(X-UNKNOWN, LOVES, ?z)";
          ]);
    test "music probes match sequential under a pool" (fun () ->
        check_probe_matches_sequential "music" Paper_examples.music
          [ "(?x, PLAYS, VIOLA)"; "(JOHN, TEACHES, ?z)" ]);
    test "seeded wave workload matches sequential under a pool" (fun () ->
        let db, query = wave_db () in
        let reference = Probing.probe db query in
        (* A genuinely multi-wave search, so parallel evaluation really
           fans out. *)
        (match reference with
        | Probing.Answered _ -> Alcotest.fail "workload query should fail"
        | Probing.Retracted { wave; _ } ->
            Alcotest.(check bool) "needs several waves" true (wave >= 2)
        | Probing.Exhausted { waves; _ } ->
            Alcotest.(check bool) "needs several waves" true (waves >= 2));
        List.iter
          (fun domains ->
            with_pool ~domains (fun pool ->
                Alcotest.(check bool)
                  (Printf.sprintf "%d domains identical" domains)
                  true
                  (Probing.probe ~pool db query = reference)))
          [ 2; 4 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Closure determinism                                                 *)

let closure_tests =
  [
    test "engine closure is identical under a pool" (fun () ->
        let open Lsdb_datalog in
        let edge = 7 in
        let rule =
          Rule.make ~name:"trans"
            ~body:
              [
                Atom.make (Term.Var 0) (Term.Const edge) (Term.Var 1);
                Atom.make (Term.Var 1) (Term.Const edge) (Term.Var 2);
              ]
            ~heads:[ Atom.make (Term.Var 0) (Term.Const edge) (Term.Var 2) ]
            ()
        in
        let base = List.init 40 (fun i -> Triple.make (100 + i) edge (101 + i)) in
        let reference = Engine.closure [ rule ] (List.to_seq base) in
        with_pool ~domains:4 (fun pool ->
            let parallel = Engine.closure ~pool [ rule ] (List.to_seq base) in
            Alcotest.(check int) "cardinal" (Index.cardinal reference.index)
              (Index.cardinal parallel.index);
            Alcotest.(check int) "rounds" reference.rounds parallel.rounds;
            Alcotest.(check bool) "derived order identical" true
              (List.equal Triple.equal reference.derived parallel.derived);
            List.iter
              (fun triple ->
                let p t = Triple.Tbl.find_opt t.Engine.provenance triple in
                Alcotest.(check bool) "same provenance" true
                  (p reference = p parallel))
              reference.derived));
    test "database closure is identical with an attached pool" (fun () ->
        let seq_db = Paper_examples.organization () in
        let seq_closure = Database.closure seq_db in
        with_pool ~domains:4 (fun pool ->
            let par_db = Paper_examples.organization () in
            Database.set_pool par_db (Some pool);
            let par_closure = Database.closure par_db in
            Alcotest.(check int) "cardinal" (Closure.cardinal seq_closure)
              (Closure.cardinal par_closure);
            Alcotest.(check int) "derived count"
              (Closure.derived_count seq_closure)
              (Closure.derived_count par_closure);
            Alcotest.(check bool) "derived lists identical" true
              (Closure.derived seq_closure = Closure.derived par_closure)));
    test "incremental extension is identical with an attached pool" (fun () ->
        let extend db =
          ignore (Database.closure db);
          for i = 0 to 30 do
            ignore
              (Database.insert_names db (Printf.sprintf "NEW-%02d" i) "in" "STUDENT")
          done;
          let closure = Database.closure db in
          (Closure.cardinal closure, List.length (Closure.derived closure))
        in
        let reference = extend (Paper_examples.campus ()) in
        with_pool ~domains:4 (fun pool ->
            let db = Paper_examples.campus () in
            Database.set_pool db (Some pool);
            Alcotest.(check (pair int int)) "same closure after extension"
              reference (extend db)));
  ]

let tests = pool_tests @ lanes_tests @ probing_tests @ closure_tests
