(* The observability layer: metrics registry semantics, histogram bucket
   boundaries, counter determinism under domain pools, trace rings, and
   the contract that instrumentation never changes query output. *)

open Lsdb
module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace

let test name f = Alcotest.test_case name `Quick f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_line text line =
  Alcotest.(check bool) (Printf.sprintf "output contains %S" line) true
    (contains text line)

(* Buckets compared as strings: (infinity, _) would trip Alcotest's
   float-epsilon equality (inf - inf is nan). *)
let buckets_printable h =
  List.map (fun (le, n) -> (string_of_float le, n)) (Metrics.bucket_counts h)

let tests =
  [
    test "histogram: boundaries are inclusive upper bounds" (fun () ->
        let r = Metrics.create () in
        let h =
          Metrics.histogram ~registry:r ~buckets:[| 0.001; 0.01; 0.1 |]
            "boundaries_seconds"
        in
        List.iter (Metrics.observe h) [ 0.001; 0.002; 0.01; 0.05; 0.5 ];
        Alcotest.(check (list (pair string int)))
          "cumulative bucket counts"
          [
            (string_of_float 0.001, 1);
            (string_of_float 0.01, 3);
            (string_of_float 0.1, 4);
            (string_of_float infinity, 5);
          ]
          (buckets_printable h);
        Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
        Alcotest.(check (float 1e-6)) "sum" 0.563 (Metrics.histogram_sum h);
        Alcotest.check_raises "buckets must increase"
          (Invalid_argument
             "Metrics.histogram: buckets must be non-empty and strictly increasing")
          (fun () ->
            ignore (Metrics.histogram ~registry:r ~buckets:[| 1.0; 1.0 |] "bad")));
    test "registry: find-or-create, kind mismatch, reset" (fun () ->
        let r = Metrics.create () in
        let a = Metrics.counter ~registry:r ~labels:[ ("db", "1") ] "c_total" in
        let b = Metrics.counter ~registry:r ~labels:[ ("db", "1") ] "c_total" in
        Metrics.incr a;
        Metrics.incr b;
        Alcotest.(check int) "same handle" 2 (Metrics.counter_value a);
        (* Label order must not create a distinct metric. *)
        let c =
          Metrics.counter ~registry:r
            ~labels:[ ("x", "1"); ("a", "2") ]
            "l_total"
        in
        let d =
          Metrics.counter ~registry:r
            ~labels:[ ("a", "2"); ("x", "1") ]
            "l_total"
        in
        Metrics.incr c;
        Alcotest.(check int) "sorted labels unify" 1 (Metrics.counter_value d);
        Alcotest.check_raises "kind mismatch"
          (Invalid_argument "Metrics: c_total already registered as a counter")
          (fun () ->
            ignore (Metrics.gauge ~registry:r ~labels:[ ("db", "1") ] "c_total"));
        let g = Metrics.gauge ~registry:r "g" in
        Metrics.set g 7;
        Metrics.gauge_add g (-3);
        Alcotest.(check int) "gauge moves both ways" 4 (Metrics.gauge_value g);
        Metrics.reset ~registry:r ();
        Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value a);
        Alcotest.(check int) "reset zeroes gauges" 0 (Metrics.gauge_value g));
    test "time: records only while enabled" (fun () ->
        let r = Metrics.create () in
        let h = Metrics.histogram ~registry:r "timed_seconds" in
        let was = Metrics.enabled () in
        Metrics.set_enabled false;
        Alcotest.(check int) "disabled: no sample" 17
          (Metrics.time h (fun () -> 17));
        Alcotest.(check int) "count stays zero" 0 (Metrics.histogram_count h);
        Metrics.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Metrics.set_enabled was)
          (fun () ->
            ignore (Metrics.time h (fun () -> ()));
            Alcotest.(check int) "enabled: one sample" 1
              (Metrics.histogram_count h);
            (* The sample is recorded even when the thunk raises. *)
            (try Metrics.time h (fun () -> failwith "boom") with _ -> ());
            Alcotest.(check int) "raising thunk still sampled" 2
              (Metrics.histogram_count h)));
    test "counters: seeded parallel increment torture (1/2/4/8 domains)"
      (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter ~registry:r "torture_total" in
        let expected = ref 0 in
        List.iter
          (fun domains ->
            let rng = Random.State.make [| 0xbeef + domains |] in
            let amounts =
              Array.init (domains * 16) (fun _ -> 1 + Random.State.int rng 100)
            in
            Array.iter (fun n -> expected := !expected + n) amounts;
            let pool = Lsdb_exec.Pool.create ~domains in
            Fun.protect
              ~finally:(fun () -> Lsdb_exec.Pool.shutdown pool)
              (fun () ->
                ignore
                  (Lsdb_exec.Pool.map_array pool
                     (fun n ->
                       (* Spread each amount over single increments to
                          maximize interleaving. *)
                       for _ = 1 to n do Metrics.incr c done)
                     amounts)))
          [ 1; 2; 4; 8 ];
        Alcotest.(check int)
          "every increment from every domain lands" !expected
          (Metrics.counter_value c));
    test "expose: Prometheus text format" (fun () ->
        let r = Metrics.create () in
        let c =
          Metrics.counter ~registry:r ~help:"Help text"
            ~labels:[ ("db", "1") ]
            "x_total"
        in
        Metrics.add c 3;
        let h =
          Metrics.histogram ~registry:r ~buckets:[| 0.1 |] "lat_seconds"
        in
        Metrics.observe h 0.05;
        let text = Metrics.expose ~registry:r () in
        List.iter (check_line text)
          [
            "# HELP x_total Help text";
            "# TYPE x_total counter";
            "x_total{db=\"1\"} 3";
            "# TYPE lat_seconds histogram";
            "lat_seconds_bucket{le=\"0.1\"} 1";
            "lat_seconds_bucket{le=\"+Inf\"} 1";
            "lat_seconds_sum 0.05";
            "lat_seconds_count 1";
          ];
        let json = Metrics.dump_json ~registry:r () in
        List.iter (check_line json)
          [ "\"name\": \"x_total\""; "\"value\": 3"; "\"le\": \"+Inf\"" ]);
    test "trace: spans, metadata, slowlog, bounded rings" (fun () ->
        Trace.clear ();
        Trace.set_enabled true;
        Trace.set_slow_threshold 0.;
        Fun.protect
          ~finally:(fun () ->
            Trace.set_enabled false;
            Trace.set_slow_threshold infinity;
            Trace.clear ())
          (fun () ->
            let v =
              Trace.with_query "test query" (fun () ->
                  Trace.span "outer" (fun () ->
                      Trace.span "inner" ~meta:[ ("k", "v") ] (fun () -> ());
                      Trace.annotate "n" "1");
                  42)
            in
            Alcotest.(check int) "result unchanged" 42 v;
            let p = Option.get (Trace.last ()) in
            Alcotest.(check string) "label" "test query" p.Trace.label;
            (match p.Trace.spans with
            | [ outer; inner ] ->
                Alcotest.(check string) "outer first" "outer" outer.Trace.span_name;
                Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
                Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
                Alcotest.(check (list (pair string string)))
                  "annotate reached the open span"
                  [ ("n", "1") ]
                  outer.Trace.meta;
                Alcotest.(check (list (pair string string)))
                  "span meta kept" [ ("k", "v") ] inner.Trace.meta
            | spans ->
                Alcotest.failf "expected 2 spans, got %d" (List.length spans));
            Alcotest.(check bool) "threshold 0 puts it in the slowlog" true
              (Trace.slowlog () <> []);
            let rendered = Trace.render p in
            List.iter (check_line rendered) [ "outer"; "inner"; "k=v" ];
            for _ = 1 to 100 do
              Trace.with_query "spam" (fun () -> ())
            done;
            Alcotest.(check int) "recent ring is bounded" 64
              (List.length (Trace.recent ()));
            Alcotest.(check int) "slowlog ring is bounded" 32
              (List.length (Trace.slowlog ()))));
    test "trace: disabled tracing records nothing" (fun () ->
        Trace.clear ();
        Trace.set_enabled false;
        let v = Trace.with_query "off" (fun () -> Trace.span "s" (fun () -> 5)) in
        Alcotest.(check int) "result" 5 v;
        Alcotest.(check bool) "no profile" true (Trace.last () = None));
    test "match cache: counters are per database" (fun () ->
        let a = Paper_examples.organization () in
        let b = Paper_examples.organization () in
        let pat = Store.pattern ~s:(Database.entity a "JOHN") () in
        ignore (Match_layer.match_list a pat);
        ignore (Match_layer.match_list a pat);
        let sa = Match_layer.cache_stats_for a in
        let sb = Match_layer.cache_stats_for b in
        Alcotest.(check bool) "queried db counted a miss" true
          (sa.Match_layer.misses >= 1);
        Alcotest.(check bool) "queried db counted a hit" true
          (sa.Match_layer.hits >= 1);
        Alcotest.(check int) "untouched db: no hits" 0 sb.Match_layer.hits;
        Alcotest.(check int) "untouched db: no misses" 0 sb.Match_layer.misses;
        Alcotest.(check int) "untouched db: empty" 0 sb.Match_layer.size);
    test "byte-identity: instrumented output equals uninstrumented, any pool"
      (fun () ->
        let transcript domains =
          let db = Paper_examples.organization () in
          let pool =
            if domains > 1 then Some (Lsdb_exec.Pool.create ~domains) else None
          in
          Database.set_pool db pool;
          Fun.protect
            ~finally:(fun () ->
              Database.set_pool db None;
              Option.iter Lsdb_exec.Pool.shutdown pool)
            (fun () ->
              let shell = Lsdb_shell.Shell.create db in
              String.concat ""
                (List.map
                   (Lsdb_shell.Shell.execute shell)
                   [
                     "q (?x, EARNS, ?s)";
                     "q exists y . (?x, IN, ?y)";
                     "probe (JOHN, WORKS-IN, ?x)";
                     "nav JOHN";
                     "t (JOHN, *, *)";
                     "insert (ZOE, EARNS, 9K)";
                     "remove (ZOE, EARNS, 9K)";
                     "q (?x, EARNS, ?s)";
                   ]))
        in
        let was_metrics = Metrics.enabled () in
        let was_trace = Trace.enabled () in
        Metrics.set_enabled false;
        Trace.set_enabled false;
        let plain = transcript 1 in
        Metrics.set_enabled true;
        Trace.set_enabled true;
        Trace.set_slow_threshold 0.;
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled was_metrics;
            Trace.set_enabled was_trace;
            Trace.set_slow_threshold infinity;
            Trace.clear ())
          (fun () ->
            List.iter
              (fun domains ->
                Alcotest.(check string)
                  (Printf.sprintf "instrumented, %d domain(s)" domains)
                  plain (transcript domains))
              [ 1; 2; 4; 8 ]));
  ]
