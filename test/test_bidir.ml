(* The bidirectional meet-in-the-middle search must reproduce the
   retained DFS oracle byte-for-byte — same paths, same order, same
   max_paths truncation point — sequentially and at every pool size,
   across random cyclic graphs and the lib/workload generators, for
   every chain bound the paper's interactive range uses. *)

open Lsdb
open Testutil
module Rng = Lsdb_workload.Rng

let path_strings db ps =
  List.map
    (fun (p : Composition.path) ->
      String.concat "→"
        ((Database.entity_name db p.Composition.source
         :: List.map (Database.entity_name db) p.Composition.chain)
        @ [ Database.entity_name db p.Composition.target ]))
    ps

(* [check_equiv] asserts byte-identity (order included) between oracle
   and bidirectional search, at full cap and at a tight cap that forces
   truncation on dense instances. *)
let check_equiv what db ~src ~tgt ~limit =
  Database.set_limit db limit;
  let s = Database.entity db src and t = Database.entity db tgt in
  let oracle = Composition.paths_dfs db ~src:s ~tgt:t in
  let result = Composition.search db ~src:s ~tgt:t in
  Alcotest.(check (list string))
    (Printf.sprintf "%s limit=%d %s→%s" what limit src tgt)
    (path_strings db oracle)
    (path_strings db result.Composition.paths);
  let capped_oracle, capped_trunc =
    let ps = Composition.paths_dfs ~max_paths:5 db ~src:s ~tgt:t in
    (ps, List.length ps = 5 && List.length oracle > 5)
  in
  let capped = Composition.search ~max_paths:5 db ~src:s ~tgt:t in
  Alcotest.(check (list string))
    (Printf.sprintf "%s limit=%d %s→%s capped" what limit src tgt)
    (path_strings db capped_oracle)
    (path_strings db capped.Composition.paths);
  if List.length oracle > 5 then
    Alcotest.(check bool)
      (Printf.sprintf "%s limit=%d truncation flag" what limit)
      capped_trunc capped.Composition.truncated

let random_graph_db rng ~nodes ~edges ~rels =
  let db = Database.create () in
  for _ = 1 to edges do
    let s = Rng.int rng nodes and t = Rng.int rng nodes in
    let r = Rng.int rng rels in
    ignore
      (Database.insert_names db
         (Printf.sprintf "N%d" s)
         (Printf.sprintf "R%d" r)
         (Printf.sprintf "N%d" t))
  done;
  db

let with_pool ~domains f =
  let pool = Lsdb_exec.Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Lsdb_exec.Pool.shutdown pool) (fun () -> f pool)

let tests =
  [
    test "random cyclic graphs: search ≡ DFS oracle at limits 2–6" (fun () ->
        List.iter
          (fun seed ->
            let rng = Rng.create seed in
            let nodes = 10 + Rng.int rng 20 in
            let db =
              random_graph_db rng ~nodes ~edges:(3 * nodes)
                ~rels:(2 + Rng.int rng 4)
            in
            List.iter
              (fun limit ->
                List.iter
                  (fun (src, tgt) -> check_equiv "random" db ~src ~tgt ~limit)
                  [ ("N0", "N1"); ("N1", "N5"); ("N2", "N0") ])
              [ 2; 3; 4; 5; 6 ])
          [ 0xA11CE; 0xB0B; 0xC01D; 7; 99 ]);
    test "dense graph: byte-identical at pool sizes 1/2/4/8" (fun () ->
        (* Dense enough that frontier levels exceed the parallel
           threshold, so Pool.map really runs. *)
        let rng = Rng.create 0x5EED in
        let db = random_graph_db rng ~nodes:150 ~edges:1200 ~rels:4 in
        let checks () =
          List.iter
            (fun limit ->
              List.iter
                (fun (src, tgt) -> check_equiv "dense" db ~src ~tgt ~limit)
                [ ("N3", "N7"); ("N10", "N4") ])
            [ 2; 4; 5 ]
        in
        checks ();
        let fanouts () =
          Lsdb_obs.Metrics.counter_value
            (Lsdb_obs.Metrics.counter "lsdb_pool_maps_total")
        in
        let before = fanouts () in
        List.iter
          (fun domains ->
            with_pool ~domains (fun pool ->
                Database.set_pool db (Some pool);
                Fun.protect
                  ~finally:(fun () -> Database.set_pool db None)
                  checks))
          [ 1; 2; 4; 8 ];
        (* Guard the parallel path from silently never running: the dense
           frontiers must cross the fan-out threshold. *)
        Alcotest.(check bool) "pooled expansion ran" true (fanouts () > before));
    test "university workload: search ≡ oracle" (fun () ->
        let rng = Rng.create 31337 in
        let uni =
          Lsdb_workload.University_gen.generate
            ~params:
              {
                Lsdb_workload.University_gen.students = 30;
                courses = 8;
                instructors = 4;
                enrollments_per_student = 3;
              }
            rng
        in
        let db = Lsdb_workload.University_gen.to_database uni in
        List.iter
          (fun limit ->
            List.iter
              (fun (src, tgt) -> check_equiv "university" db ~src ~tgt ~limit)
              [ ("STU-0001", "PROF-01"); ("STU-0002", "STU-0003") ])
          [ 2; 3; 4; 5; 6 ]);
    test "citation workload: search ≡ oracle" (fun () ->
        let rng = Rng.create 424242 in
        let lib =
          Lsdb_workload.Citation_gen.generate
            ~params:
              {
                Lsdb_workload.Citation_gen.books = 120;
                authors = 30;
                subjects = 6;
                citations_per_book = 5;
                skew = 1.0;
              }
            rng
        in
        let db = Lsdb_workload.Citation_gen.to_database lib in
        let book i = lib.Lsdb_workload.Citation_gen.book_names.(i) in
        List.iter
          (fun limit ->
            List.iter
              (fun (src, tgt) -> check_equiv "citation" db ~src ~tgt ~limit)
              [ (book 5, book 0); (book 50, book 119) ])
          [ 2; 3; 4; 5 ]);
    test "unreachable targets answer empty at the frontier join" (fun () ->
        let db =
          db_of [ ("A", "R", "B"); ("B", "R", "C"); ("X", "R", "Y") ]
        in
        Database.set_limit db 6;
        let e = Database.entity db in
        let result = Composition.search db ~src:(e "A") ~tgt:(e "X") in
        Alcotest.(check int) "no paths" 0 (List.length result.Composition.paths);
        Alcotest.(check int) "no meets" 0 result.Composition.meet_nodes;
        Alcotest.(check bool) "not truncated" false result.Composition.truncated);
  ]
