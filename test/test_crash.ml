(* Crash-safety tests: the faulty VFS durability model, the epoch
   protocol around compaction, each failpoint kind, and a seeded
   property test that injects a random crash into a random workload.
   The exhaustive enumeration lives in test/torture/crash_torture.ml;
   this suite keeps a representative sample inside `dune runtest`. *)

open Lsdb
open Lsdb_storage
open Testutil

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Workload driver: run a script of steps against a Persistent store on
   a faulty VFS, tracking the oracle — which ops were acked (logged),
   which op was mid-write when the world ended, and how many were known
   durable (acked before the last successful sync). *)

type step =
  | Ins of string * string * string
  | Rem of string * string * string
  | Decl_class of string
  | Decl_indiv of string
  | Limit of int
  | Sync
  | Compact

type outcome = Completed | Died

type run = {
  acked : Log.op list;  (* ops that reached the log, oldest first *)
  maybe : int;  (* trailing ops of [acked] that were mid-write at death *)
  synced : int;  (* prefix of [acked] known durable *)
  outcome : outcome;
  crashed_in_compact : bool;
}

let run_script vfs dir ?(sync_mode = Persistent.On_demand) steps =
  let acked = ref [] and n = ref 0 in
  let synced = ref 0 in
  let maybe = ref 0 in
  let in_compact = ref false in
  let ack op =
    acked := op :: !acked;
    incr n;
    if sync_mode = Persistent.Always then synced := !n
  in
  let attempt op f =
    (* If the step dies mid-operation, the op may or may not have
       reached disk: record it as a "maybe" tail element. *)
    match f () with
    | true -> ack op
    | false -> ()
    | exception e ->
        acked := op :: !acked;
        incr n;
        maybe := 1;
        raise e
  in
  let run () =
    let p = Persistent.open_dir ~vfs ~sync_mode dir in
    let db = Persistent.database p in
    List.iter
      (fun step ->
        match step with
        | Ins (s, r, t) ->
            attempt (Log.Insert (s, r, t)) (fun () -> Persistent.insert_names p s r t)
        | Rem (s, r, t) ->
            attempt (Log.Remove (s, r, t)) (fun () ->
                Persistent.remove p (Fact.of_names (Database.symtab db) s r t))
        | Decl_class name ->
            attempt (Log.Declare_class name) (fun () ->
                Persistent.declare_class_relationship p (Database.entity db name);
                true)
        | Decl_indiv name ->
            attempt (Log.Declare_individual name) (fun () ->
                Persistent.declare_individual_relationship p (Database.entity db name);
                true)
        | Limit k ->
            attempt (Log.Set_limit k) (fun () ->
                Persistent.set_limit p k;
                true)
        | Sync ->
            Persistent.sync p;
            synced := !n
        | Compact ->
            in_compact := true;
            Persistent.compact p;
            in_compact := false;
            synced := !n)
      steps;
    Persistent.sync p;
    synced := !n;
    Persistent.close p
  in
  let outcome =
    match run () with
    | () -> Completed
    | exception Vfs.Crashed _ -> Died
    | exception Vfs.Fault _ -> Died
  in
  {
    acked = List.rev !acked;
    maybe = !maybe;
    synced = !synced;
    outcome;
    crashed_in_compact = !in_compact;
  }

(* The recovered state must equal a rebuild of some prefix of the acked
   ops — at least everything known durable, at most everything acked
   (a mid-write "maybe" op is allowed but not required to survive). *)

let take k list = List.filteri (fun i _ -> i < k) list

let rebuild ops =
  let db = Database.create () in
  List.iter (Log.apply db) ops;
  db

let signature db =
  let symtab = Database.symtab db in
  ( List.sort compare (List.map (Fact.names symtab) (Database.facts db)),
    Database.limit db )

let matching_prefix ?min_k run recovered =
  let n = List.length run.acked in
  let min_k = max 0 (Option.value ~default:run.synced min_k) in
  let sig_rec = signature recovered in
  let rec go k =
    if k < min_k then None
    else if signature (rebuild (take k run.acked)) = sig_rec then Some k
    else go (k - 1)
  in
  go n

let check_recovered ?min_k what run recovered =
  match matching_prefix ?min_k run recovered with
  | Some _ -> ()
  | None ->
      Alcotest.failf
        "%s: recovered state is not a durable prefix (%d acked, %d synced)" what
        (List.length run.acked) run.synced

let dir = "/db"

let script =
  [
    Ins ("JOHN", "in", "EMPLOYEE");
    Ins ("EMPLOYEE", "EARNS", "SALARY");
    Decl_class "TOTAL-NUMBER";
    Ins ("MARY", "in", "EMPLOYEE");
    Sync;
    Ins ("JOHN", "LIKES", "FELIX");
    Rem ("JOHN", "LIKES", "FELIX");
    Limit 3;
    Compact;
    Ins ("FELIX", "in", "CAT");
    Decl_indiv "WORKS-FOR";
    Sync;
    Rem ("MARY", "in", "EMPLOYEE");
    Ins ("SHIPPING", "in", "DEPARTMENT");
    Compact;
    Ins ("MARY", "WORKS-FOR", "SHIPPING");
  ]

let reopen ?(recovery = `Strict) vfs = Persistent.open_dir ~vfs ~recovery dir

(* ------------------------------------------------------------------ *)

let vfs_tests =
  [
    test "unsynced bytes die in a crash; synced bytes survive" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/a" in
        Vfs.write f "durable";
        Vfs.fsync f;
        Vfs.write f " volatile";
        Vfs.close f;
        Alcotest.(check (option string))
          "live sees all" (Some "durable volatile")
          (Vfs.read_file vfs "/d/a");
        Vfs.simulate_crash vfs;
        Alcotest.(check (option string))
          "only synced survives" (Some "durable")
          (Vfs.read_file vfs "/d/a"));
    test "a never-synced file does not survive a crash" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/ghost" in
        Vfs.write f "bytes";
        Vfs.close f;
        Vfs.simulate_crash vfs;
        Alcotest.(check bool) "gone" false (Vfs.file_exists vfs "/d/ghost"));
    test "rename is volatile until the directory is fsynced" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let put name data =
          let f = Vfs.open_trunc vfs name in
          Vfs.write f data;
          Vfs.fsync f;
          Vfs.close f
        in
        put "/d/target" "old";
        put "/d/tmp" "new";
        Vfs.rename vfs "/d/tmp" "/d/target";
        Vfs.simulate_crash vfs;
        Alcotest.(check (option string))
          "rename rolled back" (Some "old")
          (Vfs.read_file vfs "/d/target");
        Alcotest.(check (option string))
          "tmp reappears" (Some "new")
          (Vfs.read_file vfs "/d/tmp");
        (* Same dance, now with the directory fsync. *)
        Vfs.rename vfs "/d/tmp" "/d/target";
        Vfs.fsync_dir vfs "/d";
        Vfs.simulate_crash vfs;
        Alcotest.(check (option string))
          "rename stuck" (Some "new")
          (Vfs.read_file vfs "/d/target");
        Alcotest.(check bool) "tmp gone" false (Vfs.file_exists vfs "/d/tmp"));
    test "torn write persists exactly the torn prefix" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/a" in
        Vfs.write ~site:"w" f "base-";
        Vfs.fsync ~site:"s" f;
        Vfs.arm vfs ~site:"w" (Vfs.Torn_write 3);
        Alcotest.(check bool) "crashes mid-write" true
          (try
             Vfs.write ~site:"w" f "0123456789";
             false
           with Vfs.Crashed _ -> true);
        Vfs.simulate_crash vfs;
        Alcotest.(check (option string))
          "prefix on disk" (Some "base-012")
          (Vfs.read_file vfs "/d/a"));
    test "lying fsync drops bytes at the crash" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/a" in
        Vfs.write ~site:"w" f "one";
        Vfs.fsync ~site:"s" f;
        Vfs.arm vfs ~site:"s" Vfs.Fsync_lies;
        Vfs.write ~site:"w" f "-two";
        Vfs.fsync ~site:"s" f;
        (* lied: reported success *)
        Vfs.simulate_crash vfs;
        Alcotest.(check (option string))
          "lied-about bytes gone" (Some "one")
          (Vfs.read_file vfs "/d/a"));
    test "ENOSPC raises Fault and writes nothing" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/a" in
        Vfs.arm vfs ~site:"w" Vfs.No_space;
        Alcotest.(check bool) "raises Fault" true
          (try
             Vfs.write ~site:"w" f "data";
             false
           with Vfs.Fault _ -> true);
        Vfs.write ~site:"w" f "later";
        Alcotest.(check (option string))
          "nothing from the failed write" (Some "later")
          (Vfs.read_file vfs "/d/a"));
    test "armed fault waits for the nth hit" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.mkdir vfs "/d";
        let f = Vfs.open_append vfs "/d/a" in
        Vfs.arm vfs ~site:"w" ~after:2 Vfs.No_space;
        Vfs.write ~site:"w" f "a";
        Vfs.write ~site:"w" f "b";
        Alcotest.(check bool) "third hit fires" true
          (try
             Vfs.write ~site:"w" f "c";
             false
           with Vfs.Fault _ -> true);
        Alcotest.(check (list (pair string int)))
          "hits counted"
          [ ("w", 3) ]
          (Vfs.site_hits vfs));
  ]

let epoch_tests =
  [
    test "compact bumps the epoch and reopen agrees" (fun () ->
        let vfs = Vfs.faulty () in
        let r1 = run_script vfs dir script in
        Alcotest.(check bool) "workload completed" true (r1.outcome = Completed);
        let p = reopen vfs in
        Alcotest.(check int) "epoch after two compactions" 2 (Persistent.epoch p);
        Alcotest.(check bool) "clean report" true
          (Recovery_report.is_clean (Persistent.recovery_report p));
        check_recovered "clean reopen" r1 (Persistent.database p);
        Persistent.close p);
    test "crash between snapshot rename and log reset: stale log ignored"
      (fun () ->
        let vfs = Vfs.faulty () in
        (* logtrunc.rename first fires inside the first Compact's log
           reset — at that point the new snapshot is already durable. *)
        Vfs.arm vfs ~site:"logtrunc.rename" Vfs.Crash;
        let r = run_script vfs dir script in
        Alcotest.(check bool) "died in compact" true
          (r.crashed_in_compact && r.outcome = Died);
        Vfs.simulate_crash vfs;
        let p = reopen vfs in
        let report = Persistent.recovery_report p in
        Alcotest.(check bool) "stale log ignored" true
          (report.Recovery_report.epoch_decision = Recovery_report.Ignored_stale);
        Alcotest.(check int) "no op replayed twice" 0
          report.Recovery_report.ops_applied;
        (* Nothing is lost either: compaction folded every acked op in. *)
        check_recovered
          ~min_k:(List.length r.acked)
          "exactly-once" r (Persistent.database p);
        Persistent.close p);
    test "crash before snapshot rename: old state + full log replayed" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.arm vfs ~site:"snapshot.rename" Vfs.Crash;
        let r = run_script vfs dir script in
        Alcotest.(check bool) "died in compact" true r.crashed_in_compact;
        Vfs.simulate_crash vfs;
        let p = reopen vfs in
        let report = Persistent.recovery_report p in
        Alcotest.(check bool) "log applied" true
          (report.Recovery_report.epoch_decision = Recovery_report.Applied);
        check_recovered
          ~min_k:(List.length r.acked)
          "nothing lost" r (Persistent.database p);
        Persistent.close p);
    test "a compaction that dies writing its snapshot leaves no tmp" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.arm vfs ~site:"snapshot.fsync" Vfs.Crash;
        let r = run_script vfs dir script in
        Alcotest.(check bool) "died in compact" true r.crashed_in_compact;
        Vfs.simulate_crash vfs;
        let p = reopen vfs in
        Alcotest.(check bool) "no leftover tmp" false
          (Vfs.file_exists vfs (Filename.concat dir "snapshot.lsdb.tmp"));
        check_recovered
          ~min_k:(List.length r.acked)
          "nothing lost" r (Persistent.database p);
        Persistent.close p);
  ]

let failpoint_tests =
  [
    test "torn log write: synced ops survive, torn tail truncated" (fun () ->
        let vfs = Vfs.faulty () in
        (* With sync_mode Always the log is flushed once per record; the
           header frame is flush #1, so flush #4 carries the third op. *)
        Vfs.arm vfs ~site:"log.write" ~after:3 (Vfs.Torn_write 2);
        let r = run_script vfs dir ~sync_mode:Persistent.Always script in
        Alcotest.(check bool) "died" true (r.outcome = Died);
        Vfs.simulate_crash vfs;
        let p = reopen vfs in
        let report = Persistent.recovery_report p in
        Alcotest.(check bool) "tail truncated and rewritten" true
          (report.Recovery_report.bytes_truncated > 0
          && report.Recovery_report.log_rewritten);
        check_recovered "synced prefix survives" r (Persistent.database p);
        Persistent.close p;
        (* The rewrite cleared the tear: the next open is pristine. *)
        let p2 = reopen vfs in
        Alcotest.(check bool) "second open clean" true
          (Recovery_report.is_clean (Persistent.recovery_report p2));
        Persistent.close p2);
    test "fsync that raises surfaces as Vfs.Fault, store stays usable" (fun () ->
        let vfs = Vfs.faulty () in
        let p = Persistent.open_dir ~vfs dir in
        ignore (Persistent.insert_names p "A" "R" "B");
        Vfs.arm vfs ~site:"log.fsync" Vfs.Fsync_raises;
        Alcotest.(check bool) "sync raises" true
          (try
             Persistent.sync p;
             false
           with Vfs.Fault _ -> true);
        (* The bytes are still in the live file; a retried sync lands them. *)
        Persistent.sync p;
        Persistent.close p;
        Vfs.simulate_crash vfs;
        let p2 = reopen vfs in
        check_holds (Persistent.database p2) "op survived the retry" ("A", "R", "B");
        Persistent.close p2);
    test "lying fsync: loss is bounded to a clean prefix" (fun () ->
        let vfs = Vfs.faulty () in
        Vfs.arm vfs ~site:"log.fsync" ~after:1 Vfs.Fsync_lies;
        let r = run_script vfs dir script in
        Vfs.simulate_crash vfs;
        let p = reopen vfs in
        (* The sync lied, so the durable prefix may be shorter than the
           oracle believes — but it must still be a prefix. *)
        check_recovered ~min_k:0 "still a prefix" r (Persistent.database p);
        Persistent.close p);
    test "bit flip mid-log: strict refuses with advice, salvage skips the frame"
      (fun () ->
        let vfs = Vfs.faulty () in
        let r =
          run_script vfs dir
            [
              Ins ("A", "R", "B");
              Ins ("C", "R", "D");
              Ins ("E", "R", "F");
              Ins ("G", "R", "H");
              Sync;
            ]
        in
        Alcotest.(check bool) "completed" true (r.outcome = Completed);
        (* Flip a bit in the middle of the log: inside an op frame, well
           past the header frame at the file's start. *)
        let log_path = Filename.concat dir "log.lsdb" in
        let data = Option.get (Vfs.read_file vfs log_path) in
        Vfs.corrupt_durable vfs log_path ~byte:(String.length data / 2);
        (match reopen vfs with
        | exception Failure msg ->
            Alcotest.(check bool) "names the dir" true (contains msg dir);
            Alcotest.(check bool) "suggests salvage" true (contains msg "Salvage")
        | p ->
            Persistent.close p;
            Alcotest.fail "strict open should refuse a corrupt mid-frame");
        let p = reopen ~recovery:`Salvage vfs in
        let report = Persistent.recovery_report p in
        Alcotest.(check bool) "frame(s) skipped" true
          (report.Recovery_report.frames_skipped >= 1);
        Alcotest.(check bool) "log rewritten clean" true
          report.Recovery_report.log_rewritten;
        (* The corruption hit one middle frame; its neighbours survive. *)
        check_holds (Persistent.database p) "first op kept" ("A", "R", "B");
        check_holds (Persistent.database p) "last op kept" ("G", "R", "H");
        Persistent.close p;
        let p2 = reopen vfs in
        Alcotest.(check bool) "strict open clean after salvage" true
          (Recovery_report.is_clean (Persistent.recovery_report p2));
        Persistent.close p2);
    test "corrupt snapshot: strict refuses, salvage falls back to the log"
      (fun () ->
        let vfs = Vfs.faulty () in
        let r =
          run_script vfs dir
            [ Ins ("A", "R", "B"); Compact; Ins ("C", "R", "D"); Sync ]
        in
        Alcotest.(check bool) "completed" true (r.outcome = Completed);
        Vfs.corrupt_durable vfs (Filename.concat dir "snapshot.lsdb") ~byte:20;
        (match reopen vfs with
        | exception Failure msg ->
            Alcotest.(check bool) "suggests salvage" true (contains msg "Salvage")
        | p ->
            Persistent.close p;
            Alcotest.fail "strict open should refuse a corrupt snapshot");
        let p = reopen ~recovery:`Salvage vfs in
        let report = Persistent.recovery_report p in
        Alcotest.(check bool) "snapshot abandoned" true
          report.Recovery_report.snapshot_unreadable;
        (* Only the post-compaction log survives: C-R-D but not A-R-B. *)
        check_holds (Persistent.database p) "log op kept" ("C", "R", "D");
        check_not_holds (Persistent.database p) "snapshot-only op lost"
          ("A", "R", "B");
        Persistent.close p;
        let p2 = reopen vfs in
        Alcotest.(check bool) "strict open clean after salvage" true
          (Recovery_report.is_clean (Persistent.recovery_report p2));
        Persistent.close p2);
    test "shell mutations reach the log through the journal" (fun () ->
        let vfs = Vfs.faulty () in
        let p = Persistent.open_dir ~vfs dir in
        let db = Persistent.database p in
        let journal mutation =
          let names f = Fact.names (Database.symtab db) f in
          Persistent.journal p
            (match mutation with
            | Lsdb_shell.Shell.Inserted f ->
                let s, r, t = names f in
                Log.Insert (s, r, t)
            | Lsdb_shell.Shell.Removed f ->
                let s, r, t = names f in
                Log.Remove (s, r, t)
            | Lsdb_shell.Shell.Rule_included name -> Log.Include_rule name
            | Lsdb_shell.Shell.Rule_excluded name -> Log.Exclude_rule name
            | Lsdb_shell.Shell.Limit_set n -> Log.Set_limit n)
        in
        let shell = Lsdb_shell.Shell.create ~journal db in
        ignore (Lsdb_shell.Shell.execute shell "insert (JOHN, in, EMPLOYEE)");
        ignore (Lsdb_shell.Shell.execute shell "insert (MARY, in, EMPLOYEE)");
        ignore (Lsdb_shell.Shell.execute shell "remove (MARY, in, EMPLOYEE)");
        ignore (Lsdb_shell.Shell.execute shell "limit 2");
        Persistent.close p;
        Vfs.simulate_crash vfs;
        let p2 = reopen vfs in
        let db2 = Persistent.database p2 in
        check_holds db2 "shell insert durable" ("JOHN", "in", "EMPLOYEE");
        check_not_holds db2 "shell remove durable" ("MARY", "in", "EMPLOYEE");
        Alcotest.(check int) "shell limit durable" 2 (Database.limit db2);
        Persistent.close p2);
    test "sync_mode Always makes every acked op durable" (fun () ->
        let vfs = Vfs.faulty () in
        let p = Persistent.open_dir ~vfs ~sync_mode:Persistent.Always dir in
        Alcotest.(check bool) "mode exposed" true
          (Persistent.sync_mode p = Persistent.Always);
        ignore (Persistent.insert_names p "A" "R" "B");
        ignore (Persistent.insert_names p "C" "R" "D");
        (* No explicit sync, then the world ends. *)
        Vfs.simulate_crash vfs;
        let p2 = reopen vfs in
        check_holds (Persistent.database p2) "first op durable" ("A", "R", "B");
        check_holds (Persistent.database p2) "second op durable" ("C", "R", "D");
        Persistent.close p2);
  ]

(* ------------------------------------------------------------------ *)
(* Property test: random workload, random crash point. *)

let random_step rng =
  let e = [| "A"; "B"; "C"; "D"; "E"; "F" |] in
  let r = [| "R"; "S"; "in" |] in
  let pick = Lsdb_workload.Rng.choose_array rng in
  match Lsdb_workload.Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> Ins (pick e, pick r, pick e)
  | 4 -> Rem (pick e, pick r, pick e)
  | 5 -> Decl_class (pick e)
  | 6 -> Limit (1 + Lsdb_workload.Rng.int rng 4)
  | 7 -> Sync
  | 8 -> Compact
  | _ -> Ins ("HUB", "in", "THING")

let property_tests =
  [
    test "random workloads survive random crash points (seeded)" (fun () ->
        let rng = Lsdb_workload.Rng.create 0xC0FFEE in
        for _iter = 1 to 40 do
          let steps =
            List.init
              (5 + Lsdb_workload.Rng.int rng 20)
              (fun _ -> random_step rng)
          in
          (* Rehearse fault-free to learn the crash surface. *)
          let rehearsal = Vfs.faulty () in
          let r0 = run_script rehearsal dir steps in
          Alcotest.(check bool) "rehearsal completes" true (r0.outcome = Completed);
          let site, hits = Lsdb_workload.Rng.choose rng (Vfs.site_hits rehearsal) in
          let after = Lsdb_workload.Rng.int rng hits in
          let vfs = Vfs.faulty () in
          Vfs.arm vfs ~site ~after Vfs.Crash;
          let r = run_script vfs dir steps in
          Vfs.simulate_crash vfs;
          let p = reopen vfs in
          (* Invariant 1: the recovered state is a rebuild of a prefix no
             shorter than the synced one (a mid-write op may ride along). *)
          check_recovered
            (Printf.sprintf "crash at %s+%d" site after)
            r (Persistent.database p);
          (* Invariant 2: a stale log is never replayed (exactly-once). *)
          let report = Persistent.recovery_report p in
          if report.Recovery_report.epoch_decision = Recovery_report.Ignored_stale
          then
            Alcotest.(check int) "stale log never replayed" 0
              report.Recovery_report.ops_applied;
          Persistent.close p;
          (* Invariant 3: recovery repaired the files — reopening again
             is clean and reaches the same state. *)
          let p2 = reopen vfs in
          Alcotest.(check bool) "second open clean" true
            (Recovery_report.is_clean (Persistent.recovery_report p2));
          Persistent.close p2
        done);
  ]

let tests = vfs_tests @ epoch_tests @ failpoint_tests @ property_tests
