open Lsdb
open Testutil

let two_members () =
  let hr =
    db_of
      [
        ("JOHN", "in", "EMPLOYEE");
        ("JOHN", "EARNS", "$25000");
        ("EMPLOYEE", "isa", "PERSON");
      ]
  in
  let crm =
    db_of
      [
        ("JOHNNY", "in", "CUSTOMER");
        ("JOHNNY", "BOUGHT", "WIDGET");
        ("CUSTOMER", "isa", "PERSON");
      ]
  in
  (hr, crm)

let tests =
  [
    test "members merge by name with no schema integration" (fun () ->
        let hr, crm = two_members () in
        let fed = Federation.create [ ("hr", hr); ("crm", crm) ] in
        let db = Federation.database fed in
        check_holds db "hr fact" ("JOHN", "EARNS", "$25000");
        check_holds db "crm fact" ("JOHNNY", "BOUGHT", "WIDGET");
        Alcotest.(check (list string)) "members" [ "hr"; "crm" ] (Federation.members fed));
    test "entity ids are re-interned consistently" (fun () ->
        (* PERSON appears in both members with different local ids; the
           merged view must fuse them. *)
        let hr, crm = two_members () in
        let fed = Federation.create [ ("hr", hr); ("crm", crm) ] in
        let db = Federation.database fed in
        (* Stored: CUSTOMER, EMPLOYEE. Virtual: PERSON (reflexive; the ∇
           extreme is checkable but never enumerated as a binding).
           Inferred via the paper's literal §3.2 rule (mem-source with
           r = ⊑): JOHN and JOHNNY. *)
        check_answers db "both kinds of person" "(?x, isa, PERSON)"
          [ "CUSTOMER"; "EMPLOYEE"; "JOHN"; "JOHNNY"; "PERSON" ]);
    test "synonym bridges consolidate entities across members (§3.3)" (fun () ->
        let hr, crm = two_members () in
        let fed = Federation.create [ ("hr", hr); ("crm", crm) ] in
        Federation.add_bridge fed "JOHN" "JOHNNY";
        let db = Federation.database fed in
        (* John's purchase is now visible under his HR name. *)
        check_holds db "bridged fact" ("JOHN", "BOUGHT", "WIDGET");
        check_holds db "and conversely" ("JOHNNY", "EARNS", "$25000"));
    test "origins attribute base facts to members" (fun () ->
        let hr, crm = two_members () in
        let fed = Federation.create [ ("hr", hr); ("crm", crm) ] in
        let db = Federation.database fed in
        Alcotest.(check (list string)) "hr origin" [ "hr" ]
          (Federation.origins fed (fact db ("JOHN", "EARNS", "$25000")));
        Alcotest.(check (list string)) "bridge has no member origin" []
          (Federation.origins fed (fact db ("JOHN", "syn", "JOHNNY"))));
    test "shared facts are discovered" (fun () ->
        let a = db_of [ ("X", "R", "Y"); ("ONLY-A", "R", "Y") ] in
        let b = db_of [ ("X", "R", "Y"); ("ONLY-B", "R", "Y") ] in
        let fed = Federation.create [ ("a", a); ("b", b) ] in
        let shared = Federation.shared_facts fed in
        (* (X,R,Y) plus the two axiom facts every member carries. *)
        let db = Federation.database fed in
        let non_axiom =
          List.filter
            (fun f -> not (List.exists (Fact.equal f) Database.axiom_facts))
            shared
        in
        Alcotest.(check int) "one genuinely shared" 1 (List.length non_axiom);
        Alcotest.(check bool) "it is (X,R,Y)" true
          (Fact.equal (List.hd non_axiom) (fact db ("X", "R", "Y"))));
    test "member class declarations carry over" (fun () ->
        let member = db_of [ ("TEAM", "SIZE", "5") ] in
        Database.declare_class_relationship member (Database.entity member "SIZE");
        let fed = Federation.create [ ("m", member) ] in
        let db = Federation.database fed in
        Alcotest.(check bool) "SIZE is class" true
          (Database.is_class_relationship db (Database.entity db "SIZE")));
    test "member rules carry over with remapped entities" (fun () ->
        let member = db_of [ ("REX", "in", "DOG") ] in
        let rule =
          Rule.make ~name:"dogs-bark"
            ~body:
              [ Template.make (Template.Var "x") (Template.Ent Entity.member)
                  (Template.Ent (Database.entity member "DOG")) ]
            ~heads:
              [ Template.make (Template.Var "x")
                  (Template.Ent (Database.entity member "CAN"))
                  (Template.Ent (Database.entity member "BARK")) ]
            ()
        in
        Database.add_rule member rule;
        (* Pad the federation with another member first so ids shift. *)
        let other = db_of [ ("PAD1", "PADS", "PAD2"); ("PAD3", "PADS", "PAD4") ] in
        let fed = Federation.create [ ("other", other); ("m", member) ] in
        let db = Federation.database fed in
        check_holds db "rule fired in merged view" ("REX", "CAN", "BARK"));
    (* --- demand-mode federations ----------------------------------- *)
    (* The demand cone is warmed by real queries and then the federation
       changes under it — late bridges, late member merges. Every answer
       must match an eager federation that saw the same final state.
       Comparisons go through names: the eager oracle and the demand
       federation intern in different orders. *)
    test "demand cone: a bridge added after the cone is warm" (fun () ->
        let eager =
          let hr, crm = two_members () in
          Federation.create [ ("hr", hr); ("crm", crm) ]
        in
        Federation.add_bridge eager "JOHN" "JOHNNY";
        let demand =
          let hr, crm = two_members () in
          Federation.create [ ("hr", hr); ("crm", crm) ]
        in
        let ddb = Federation.database demand in
        Database.set_closure_mode ddb Database.Demand;
        (* Warm the cone on the pre-bridge state: JOHN's facts. *)
        check_holds ddb "warm query" ("JOHN", "EARNS", "$25000");
        check_not_holds ddb "pre-bridge: no synonym flow"
          ("JOHNNY", "EARNS", "$25000");
        (* The bridge lands after the cone is warm. *)
        Federation.add_bridge demand "JOHN" "JOHNNY";
        check_holds ddb "synonym substitution through the late bridge"
          ("JOHNNY", "EARNS", "$25000");
        check_holds ddb "and in the other direction" ("JOHN", "BOUGHT", "WIDGET");
        (* Whole-answer identity with the eager oracle, by names. *)
        let edb = Federation.database eager in
        List.iter
          (fun text ->
            Alcotest.(check (list string))
              (Printf.sprintf "answers of %S match the eager oracle" text)
              (answers edb text) (answers ddb text))
          [ "(JOHNNY, EARNS, ?x)"; "(JOHN, ?x, WIDGET)"; "(?x, in, PERSON)" ]);
    test "demand cone: a member merged after the cone is warm" (fun () ->
        let late_member = [ ("JOHN", "in", "VIP"); ("VIP", "isa", "CUSTOMER") ] in
        let eager =
          let hr, crm = two_members () in
          Federation.create
            [ ("hr", hr); ("crm", crm); ("vip", db_of late_member) ]
        in
        let demand =
          let hr, crm = two_members () in
          Federation.create [ ("hr", hr); ("crm", crm) ]
        in
        let ddb = Federation.database demand in
        Database.set_closure_mode ddb Database.Demand;
        check_holds ddb "warm query" ("JOHN", "in", "PERSON");
        check_not_holds ddb "pre-merge: no VIP membership" ("JOHN", "in", "VIP");
        (* The late member's heap merges into the (demand-mode) view. *)
        List.iter
          (fun (s, r, t) -> ignore (Database.insert_names ddb s r t))
          late_member;
        check_holds ddb "new base fact visible" ("JOHN", "in", "VIP");
        check_holds ddb "membership generalizes through the merged taxonomy"
          ("JOHN", "in", "CUSTOMER");
        let edb = Federation.database eager in
        List.iter
          (fun text ->
            Alcotest.(check (list string))
              (Printf.sprintf "answers of %S match the eager oracle" text)
              (answers edb text) (answers ddb text))
          [ "(JOHN, in, ?x)"; "(?x, in, CUSTOMER)"; "(?x, isa, CUSTOMER)" ]);
    test "demand cone: merge and late bridge compose, sharded" (fun () ->
        (* The full scenario on a 4-shard merged heap: merge a member and
           add a bridge after the cone is warm; then flip back to eager
           and check the two modes agree with each other. *)
        let build () =
          let hr, crm = two_members () in
          Federation.create ~shards:4 [ ("hr", hr); ("crm", crm) ]
        in
        let eager = build () in
        let demand = build () in
        let ddb = Federation.database demand in
        Database.set_closure_mode ddb Database.Demand;
        check_holds ddb "warm query" ("JOHN", "EARNS", "$25000");
        List.iter
          (fun fed ->
            let db = Federation.database fed in
            ignore (Database.insert_names db "JOHNNY" "in" "VIP");
            Federation.add_bridge fed "JOHN" "JOHNNY")
          [ eager; demand ];
        let edb = Federation.database eager in
        List.iter
          (fun text ->
            Alcotest.(check (list string))
              (Printf.sprintf "answers of %S match the eager oracle" text)
              (answers edb text) (answers ddb text))
          [ "(JOHN, in, ?x)"; "(JOHNNY, EARNS, ?x)" ];
        Database.set_closure_mode ddb Database.Eager;
        List.iter
          (fun text ->
            Alcotest.(check (list string))
              (Printf.sprintf "flipping to eager preserves %S" text)
              (answers edb text) (answers ddb text))
          [ "(JOHN, in, ?x)"; "(JOHNNY, EARNS, ?x)" ]);
  ]
