open Lsdb
open Testutil

let tests =
  [
    test "specials are pre-interned at fixed ids" (fun () ->
        let t = Symtab.create () in
        Alcotest.(check string) "gen name" "⊑" (Symtab.name t Entity.gen);
        Alcotest.(check (option int)) "isa alias" (Some Entity.gen) (Symtab.find t "isa");
        Alcotest.(check (option int)) "in alias" (Some Entity.member) (Symtab.find t "in");
        Alcotest.(check (option int)) "lt alias" (Some Entity.lt) (Symtab.find t "lt");
        Alcotest.(check int) "cardinal" Entity.special_count (Symtab.cardinal t));
    test "intern is idempotent and distinct per name" (fun () ->
        let t = Symtab.create () in
        let a = Symtab.intern t "ALPHA" in
        let b = Symtab.intern t "BETA" in
        Alcotest.(check bool) "distinct" true (a <> b);
        Alcotest.(check int) "idempotent" a (Symtab.intern t "ALPHA");
        Alcotest.(check string) "name round-trip" "ALPHA" (Symtab.name t a));
    test "numeric parsing covers the paper's decorated forms" (fun () ->
        let t = Symtab.create () in
        let cases =
          [
            ("$25000", Some 25000.0);
            ("25000", Some 25000.0);
            ("1,500", Some 1500.0);
            ("$1,500.5", Some 1500.5);
            ("-3", Some (-3.0));
            ("2.6", Some 2.6);
            ("PC#9-WAM", None);
            ("JOHN", None);
            ("", None);
            ("$", None);
          ]
        in
        List.iter
          (fun (name, expected) ->
            let id = Symtab.intern t name in
            Alcotest.(check (option (float 1e-9))) name expected (Symtab.numeric_value t id))
          cases);
    test "aliases resolve and conflicts are rejected" (fun () ->
        let t = Symtab.create () in
        let a = Symtab.intern t "SALARY" in
        Symtab.alias t "WAGES" a;
        Alcotest.(check (option int)) "alias resolves" (Some a) (Symtab.find t "WAGES");
        let b = Symtab.intern t "OTHER" in
        Alcotest.check_raises "conflict" (Invalid_argument "Symtab.alias: \"WAGES\" already names entity 13")
          (fun () -> Symtab.alias t "WAGES" b));
    test "iter_user skips specials" (fun () ->
        let t = Symtab.create () in
        ignore (Symtab.intern t "A");
        ignore (Symtab.intern t "B");
        let seen = ref [] in
        Symtab.iter_user (fun id -> seen := Symtab.name t id :: !seen) t;
        Alcotest.(check (list string)) "user entities" [ "B"; "A" ] !seen);
    test "iter_numeric finds exactly the numbers" (fun () ->
        let t = Symtab.create () in
        ignore (Symtab.intern t "JOHN");
        ignore (Symtab.intern t "$100");
        ignore (Symtab.intern t "42");
        let count = ref 0 in
        Symtab.iter_numeric (fun _ -> incr count) t;
        Alcotest.(check int) "two numerics" 2 !count);
    test "unknown id raises" (fun () ->
        let t = Symtab.create () in
        Alcotest.check_raises "out of range"
          (Invalid_argument "Symtab.name: unknown entity id 9999") (fun () ->
            ignore (Symtab.name t 9999)));
    test "decompose memo survives later interning (generation safety)" (fun () ->
        let sep = Composition.separator in
        let t = Symtab.create () in
        (* The composed name arrives before its parts exist: unresolved. *)
        let ab = Symtab.intern t (String.concat sep [ "A"; "B" ]) in
        Alcotest.(check (option (list int))) "parts missing" None
          (Symtab.decompose t ~sep ab);
        (* Interning the parts must invalidate the cached verdict. *)
        let a = Symtab.intern t "A" in
        let b = Symtab.intern t "B" in
        Alcotest.(check (option (list int))) "parts found" (Some [ a; b ])
          (Symtab.decompose t ~sep ab);
        (* Chain verdicts are immutable: repeated calls stay stable. *)
        Alcotest.(check (option (list int))) "memo stable" (Some [ a; b ])
          (Symtab.decompose t ~sep ab));
    test "decompose handles atoms and longer chains" (fun () ->
        let sep = Composition.separator in
        let t = Symtab.create () in
        let atom = Symtab.intern t "PLAIN" in
        Alcotest.(check (option (list int))) "atom" None (Symtab.decompose t ~sep atom);
        Alcotest.(check (option (list int))) "atom memo stable" None
          (Symtab.decompose t ~sep atom);
        let x = Symtab.intern t "X" and y = Symtab.intern t "Y" in
        let z = Symtab.intern t "Z" in
        let xyz = Symtab.intern t (String.concat sep [ "X"; "Y"; "Z" ]) in
        Alcotest.(check (option (list int))) "three-chain" (Some [ x; y; z ])
          (Symtab.decompose t ~sep xyz));
  ]
