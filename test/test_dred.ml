(* Incremental retraction (delete/rederive): equivalence with recompute,
   cache-keeping rule toggles, the generation/answer-cache satellites. *)

open Lsdb
open Testutil
module W = Lsdb_workload

(* Everything observable about the closure that a recompute must agree
   on: the fact set, which facts count as derived (provenance presence),
   and the maintained counts. Names form, so it is robust across
   database copies. *)
let signature db =
  let closure = Database.closure db in
  let symtab = Database.symtab db in
  let dump =
    Closure.to_seq closure
    |> Seq.map (fun f -> (Fact.names symtab f, Closure.is_derived closure f))
    |> List.of_seq |> List.sort compare
  in
  ( dump,
    Closure.cardinal closure,
    Closure.derived_count closure,
    Closure.base_cardinal closure )

(* Compare the incrementally maintained closure against a from-scratch
   recompute of the same database state. *)
let check_matches_recompute what db =
  let reference = Database.copy db in
  Database.invalidate reference;
  Alcotest.(check bool)
    (what ^ ": incremental closure equals recompute")
    true
    (signature db = signature reference)

let all_rule_names db =
  List.map (fun ((rule : Rule.t), _) -> rule.name) (Database.rules db)

(* --- random interleaving driver ------------------------------------- *)

(* Apply [steps] random inserts / retracts / rule toggles, checking the
   incremental closure against a recompute every few steps. The
   vocabulary is drawn from the workload's own names so inserts hit the
   existing hierarchy (and its rules) rather than only fresh entities. *)
let interleave ?pool ~seed ~steps db vocab =
  Database.set_pool db pool;
  let rng = W.Rng.create seed in
  let vocab = Array.of_list vocab in
  let rules = all_rule_names db in
  let pick () = W.Rng.choose_array rng vocab in
  ignore (Database.closure db);
  for step = 1 to steps do
    (match W.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let s, r, t = (pick (), pick (), pick ()) in
        ignore (Database.insert_names db s r t)
    | 4 | 5 | 6 | 7 -> (
        match Database.facts db with
        | [] -> ()
        | facts -> ignore (Database.remove db (W.Rng.choose rng facts)))
    | 8 -> ignore (Database.exclude db (W.Rng.choose rng rules))
    | _ -> ignore (Database.include_rule db (W.Rng.choose rng rules)));
    if step mod 7 = 0 then
      check_matches_recompute (Printf.sprintf "seed %d step %d" seed step) db
  done;
  check_matches_recompute (Printf.sprintf "seed %d final" seed) db;
  signature db

let org_db seed =
  let gen =
    W.Org_gen.generate
      ~params:
        {
          W.Org_gen.default_params with
          employees = 30;
          departments = 4;
        }
      (W.Rng.create seed)
  in
  (W.Org_gen.to_database gen, gen.W.Org_gen.facts)

let university_db seed =
  let gen =
    W.University_gen.generate
      ~params:
        {
          W.University_gen.students = 18;
          courses = 6;
          instructors = 4;
          enrollments_per_student = 2;
        }
      (W.Rng.create seed)
  in
  (W.University_gen.to_database gen, gen.W.University_gen.facts)

let vocab_of facts =
  List.concat_map (fun (s, r, t) -> [ s; r; t ]) facts
  |> List.sort_uniq String.compare

let tests =
  [
    test "every single-fact retraction matches a recompute (§3 example)" (fun () ->
        let db = Paper_examples.organization () in
        ignore (Database.closure db);
        List.iter
          (fun f ->
            let trial = Database.copy db in
            ignore (Database.closure trial);
            ignore (Database.remove trial f);
            let s, r, t = Fact.names (Database.symtab trial) f in
            check_matches_recompute (Printf.sprintf "retract (%s,%s,%s)" s r t)
              trial;
            Alcotest.(check int)
              "retraction was incremental" 1
              (Database.closure_computations trial);
            Alcotest.(check int)
              "one retraction pass" 1
              (Database.closure_retractions trial))
          (Database.facts db));
    test "retract then reinsert restores the closure exactly" (fun () ->
        let db = Paper_examples.organization () in
        let before = signature db in
        let f = fact db ("JOHN", "in", "EMPLOYEE") in
        ignore (Database.remove db f);
        ignore (Database.closure db);
        ignore (Database.insert db f);
        Alcotest.(check bool) "round trip" true (signature db = before);
        Alcotest.(check int)
          "never recomputed" 1
          (Database.closure_computations db));
    test "retracting a still-derivable base fact keeps it, as derived" (fun () ->
        let db =
          db_of [ ("A", "isa", "B"); ("B", "isa", "C"); ("A", "isa", "C") ]
        in
        let closure = Database.closure db in
        Alcotest.(check bool)
          "stored (A,isa,C) is base" false
          (Closure.is_derived closure (fact db ("A", "isa", "C")));
        ignore (Database.remove db (fact db ("A", "isa", "C")));
        check_holds db "still holds via transitivity" ("A", "isa", "C");
        Alcotest.(check bool)
          "now derived" true
          (Closure.is_derived (Database.closure db) (fact db ("A", "isa", "C")));
        Alcotest.(check int)
          "incrementally" 1
          (Database.closure_computations db);
        check_matches_recompute "derivable base fact" db);
    test "asserting a derived fact as base demotes it to base" (fun () ->
        let db = db_of [ ("A", "isa", "B"); ("B", "isa", "C") ] in
        check_holds db "derived first" ("A", "isa", "C");
        ignore (Database.insert_names db "A" "isa" "C");
        Alcotest.(check bool)
          "no longer derived" false
          (Closure.is_derived (Database.closure db) (fact db ("A", "isa", "C")));
        check_matches_recompute "after demotion" db;
        (* The demoted fact must survive deletion of its former premises. *)
        ignore (Database.remove db (fact db ("A", "isa", "B")));
        check_holds db "base fact survives premise deletion" ("A", "isa", "C");
        check_matches_recompute "after premise deletion" db);
    test "excluding a contributing rule recomputes; an idle one keeps the cache"
      (fun () ->
        let db = Paper_examples.organization () in
        let closure = Database.closure db in
        let counts = Closure.rule_counts closure in
        (* Most productive rule: excluding it must invalidate. *)
        let productive, _ = List.hd counts in
        ignore (Database.exclude db productive);
        ignore (Database.closure db);
        Alcotest.(check int)
          "contributing rule forces a recompute" 2
          (Database.closure_computations db);
        check_matches_recompute "after exclusion" db;
        ignore (Database.include_rule db productive);
        ignore (Database.closure db);
        (* An enabled rule with no recorded derivations: toggling it must
           not recompute. *)
        let contributing =
          List.map fst (Closure.rule_counts (Database.closure db))
        in
        let computations = Database.closure_computations db in
        (match
           List.find_opt
             (fun name ->
               (not (List.mem name contributing))
               && not (String.equal name "inversion"))
             (List.filter (Database.rule_enabled db) (all_rule_names db))
         with
        | None -> ()
        | Some idle ->
            ignore (Database.exclude db idle);
            ignore (Database.closure db);
            Alcotest.(check int)
              "idle rule keeps the cache" computations
              (Database.closure_computations db);
            check_matches_recompute "after idle exclusion" db;
            ignore (Database.include_rule db idle);
            ignore (Database.closure db);
            Alcotest.(check int)
              "re-including a no-op rule keeps the cache" computations
              (Database.closure_computations db)))
    ;
    test "reclassifying an inactive entity keeps the cache" (fun () ->
        let db = Paper_examples.organization () in
        ignore (Database.closure db);
        let ghost = Database.entity db "NEVER-MENTIONED" in
        Database.declare_class_relationship db ghost;
        ignore (Database.closure db);
        Alcotest.(check int)
          "inactive entity: no recompute" 1
          (Database.closure_computations db);
        (* Restating an existing classification changes nothing at all. *)
        let generation = Database.generation db in
        Database.declare_class_relationship db ghost;
        Alcotest.(check int)
          "idempotent declaration: generation unchanged" generation
          (Database.generation db);
        (* Reclassifying an entity the closure mentions recomputes. *)
        Database.declare_class_relationship db (Database.entity db "EARNS");
        ignore (Database.closure db);
        Alcotest.(check int)
          "active entity: recompute" 2
          (Database.closure_computations db);
        check_matches_recompute "after reclassification" db);
    test "set_limit bumps the generation (regression)" (fun () ->
        let db = Paper_examples.organization () in
        let g0 = Database.generation db in
        Database.set_limit db 3;
        Alcotest.(check bool)
          "limit change bumps generation" true
          (Database.generation db > g0);
        let g1 = Database.generation db in
        Database.set_limit db 3;
        Alcotest.(check int) "restating the limit does not" g1
          (Database.generation db));
    test "answer cache: replay on repeat, refresh after mutation" (fun () ->
        let db = Paper_examples.organization () in
        let pat = Store.pattern ~s:(Database.entity db "JOHN") () in
        let first = Match_layer.match_list db pat in
        let stats0 = Match_layer.cache_stats_for db in
        let second = Match_layer.match_list db pat in
        let stats1 = Match_layer.cache_stats_for db in
        Alcotest.(check bool) "replay is identical" true (first = second);
        Alcotest.(check bool)
          "repeat probe hit the cache" true
          (stats1.Match_layer.hits > stats0.Match_layer.hits);
        ignore (Database.insert_names db "JOHN" "LIKES" "MUSIC");
        let third = Match_layer.match_list db pat in
        Alcotest.(check bool)
          "mutation visible through the cache" true
          (List.mem (fact db ("JOHN", "LIKES", "MUSIC")) third);
        (* A partial enumeration (exists aborts at the first match) must
           not poison the cache with a truncated answer. *)
        let earns = Store.pattern ~r:(Database.entity db "EARNS") () in
        Alcotest.(check bool) "exists" true (Match_layer.exists db earns);
        let full = Match_layer.match_list db earns in
        Alcotest.(check bool)
          "answer after an aborted probe is complete" true
          (List.length full > 1));
    test "property: random insert/retract/toggle equals recompute (org)" (fun () ->
        List.iter
          (fun seed ->
            let db, facts = org_db seed in
            ignore (interleave ~seed ~steps:35 db (vocab_of facts)))
          [ 11; 42 ]);
    test "property: random insert/retract/toggle equals recompute (university)"
      (fun () ->
        List.iter
          (fun seed ->
            let db, facts = university_db seed in
            ignore (interleave ~seed ~steps:35 db (vocab_of facts)))
          [ 7; 23 ]);
    test "property: pooled maintenance is byte-identical to sequential" (fun () ->
        let pool = Lsdb_exec.Pool.create ~domains:3 in
        Fun.protect
          ~finally:(fun () -> Lsdb_exec.Pool.shutdown pool)
          (fun () ->
            List.iter
              (fun seed ->
                let db_seq, facts = org_db seed in
                let seq_sig =
                  interleave ~seed ~steps:30 db_seq (vocab_of facts)
                in
                let db_par, facts = org_db seed in
                let par_sig =
                  interleave ~pool ~seed ~steps:30 db_par (vocab_of facts)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "seed %d: pooled equals sequential" seed)
                  true (seq_sig = par_sig))
              [ 5; 19 ]));
    test "retraction counter and support index survive a rule toggle (regression)"
      (fun () ->
        let db = Paper_examples.organization () in
        ignore (Database.closure db);
        (* One incremental retraction: builds the support index and bumps
           the maintenance counter. *)
        ignore (Database.insert_names db "ZOE" "EARNS" "9K");
        ignore (Database.remove db (fact db ("ZOE", "EARNS", "9K")));
        ignore (Database.closure db);
        let retractions = Database.closure_retractions db in
        Alcotest.(check bool) "a retraction was counted" true (retractions > 0);
        Alcotest.(check bool) "support index built" true
          (Database.support_size db > 0);
        (* Toggle the most productive rule (drops the closure cache) and
           force a recompute: the lifetime counter must not reset. *)
        let productive, _ =
          List.hd (Closure.rule_counts (Database.closure db))
        in
        ignore (Database.exclude db productive);
        ignore (Database.closure db);
        ignore (Database.include_rule db productive);
        ignore (Database.closure db);
        Alcotest.(check int)
          "closure_retractions survives the toggle + recompute" retractions
          (Database.closure_retractions db);
        (* The support index is rebuilt lazily by the next retraction and
           counting resumes from where it left off. *)
        ignore (Database.insert_names db "ZOE" "EARNS" "9K");
        ignore (Database.remove db (fact db ("ZOE", "EARNS", "9K")));
        ignore (Database.closure db);
        Alcotest.(check int)
          "counting resumes after the toggle" (retractions + 1)
          (Database.closure_retractions db);
        Alcotest.(check bool) "support index rebuilt" true
          (Database.support_size db > 0);
        check_matches_recompute "after toggle and retraction" db);
  ]
