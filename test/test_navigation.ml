open Lsdb
open Testutil

let tests =
  [
    test "EX1: John's neighborhood groups by relationship, classes first" (fun () ->
        let db = Paper_examples.music () in
        let nbhd = Navigation.neighborhood db (Database.entity db "JOHN") in
        (match nbhd.Navigation.as_source with
        | (first_rel, classes) :: _ ->
            Alcotest.(check int) "∈ first" Entity.member first_rel;
            Alcotest.(check bool) "john is a person" true
              (List.mem (Database.entity db "PERSON") classes);
            Alcotest.(check bool) "john is an employee" true
              (List.mem (Database.entity db "EMPLOYEE") classes)
        | [] -> Alcotest.fail "empty neighborhood");
        let likes =
          List.assoc_opt (Database.entity db "LIKES") nbhd.Navigation.as_source
        in
        (match likes with
        | Some targets ->
            List.iter
              (fun name ->
                Alcotest.(check bool) name true
                  (List.mem (Database.entity db name) targets))
              [ "CAT"; "FELIX"; "HEATHCLIFF"; "MOZART"; "MARY" ]
        | None -> Alcotest.fail "no LIKES column");
        let favorites =
          List.assoc_opt (Database.entity db "FAVORITE-MUSIC") nbhd.Navigation.as_source
        in
        match favorites with
        | Some targets -> Alcotest.(check bool) "PC#9-WAM" true
            (List.mem (Database.entity db "PC#9-WAM") targets)
        | None -> Alcotest.fail "no FAVORITE-MUSIC column");
    test "EX1: PC#9-WAM neighborhood shows inverse-derived FAVORITE-OF" (fun () ->
        let db = Paper_examples.music () in
        let nbhd = Navigation.neighborhood db (Database.entity db "PC#9-WAM") in
        let favorite_of =
          List.assoc_opt (Database.entity db "FAVORITE-OF") nbhd.Navigation.as_source
        in
        match favorite_of with
        | Some holders ->
            Alcotest.(check bool) "john" true
              (List.mem (Database.entity db "JOHN") holders);
            Alcotest.(check bool) "leopold" true
              (List.mem (Database.entity db "LEOPOLD") holders)
        | None -> Alcotest.fail "no FAVORITE-OF column");
    test "EX1: Leopold-to-Mozart associations include the composed path" (fun () ->
        let db = Paper_examples.music () in
        let e = Database.entity db in
        let rels =
          Navigation.associations db ~src:(e "LEOPOLD") ~tgt:(e "MOZART")
          |> List.map (Database.entity_name db)
        in
        Alcotest.(check bool) "father-of" true (List.mem "FATHER-OF" rels);
        Alcotest.(check bool) "favorite-music path" true
          (List.mem "FAVORITE-MUSIC·COMPOSED-BY" rels));
    test "§6.1 try(e) collects facts in every position" (fun () ->
        let db = db_of [ ("A", "LIKES", "B"); ("C", "A", "D"); ("E", "LIKES", "A") ] in
        let facts = Navigation.try_entity db (Database.entity db "A") in
        Alcotest.(check int) "three facts" 3 (List.length facts));
    test "try on entity with no facts" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let lonely = Database.entity db "LONELY" in
        Alcotest.(check int) "none" 0 (List.length (Navigation.try_entity db lonely)));
    test "star templates" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let tpl = Navigation.star_template db ("A", "*", "*") in
        Alcotest.(check int) "two vars" 2 (List.length (Template.vars tpl));
        let tpl2 = Navigation.star_template db ("A", "?r", "B") in
        Alcotest.(check (list string)) "named var" [ "r" ] (Template.vars tpl2));
    test "sessions track history and step back" (fun () ->
        let db = Paper_examples.music () in
        let e = Database.entity db in
        let session = Navigation.start db in
        Alcotest.(check bool) "no current" true (Navigation.current session = None);
        ignore (Navigation.visit session (e "JOHN"));
        ignore (Navigation.visit session (e "PC#9-WAM"));
        ignore (Navigation.visit session (e "MOZART"));
        Alcotest.(check bool) "current is mozart" true
          (Navigation.current session = Some (e "MOZART"));
        Alcotest.(check int) "history length" 3 (List.length (Navigation.history session));
        Alcotest.(check bool) "back to pc9" true
          (Navigation.back session = Some (e "PC#9-WAM"));
        Alcotest.(check bool) "back to john" true
          (Navigation.back session = Some (e "JOHN"));
        Alcotest.(check bool) "back at start" true (Navigation.back session = None));
    test "as_relationship lists facts using the entity as relationship" (fun () ->
        let db = db_of [ ("A", "LIKES", "B"); ("C", "LIKES", "D") ] in
        let nbhd = Navigation.neighborhood db (Database.entity db "LIKES") in
        Alcotest.(check int) "two uses" 2 (List.length nbhd.Navigation.as_relationship));
    test "derived:false shows exactly the paper's printed cells" (fun () ->
        let db = Paper_examples.music () in
        let nbhd =
          Navigation.neighborhood ~derived:false db (Database.entity db "JOHN")
        in
        let likes =
          Option.value ~default:[]
            (List.assoc_opt (Database.entity db "LIKES") nbhd.Navigation.as_source)
          |> names db
        in
        (* Stored facts only: no inferred PERSON/PET rows. *)
        Alcotest.(check (list string)) "exact LIKES column"
          [ "CAT"; "FELIX"; "HEATHCLIFF"; "MARY"; "MOZART" ]
          likes);
    test "render_template: one free variable gives a column" (fun () ->
        let db = Paper_examples.payroll () in
        let tpl = Query_parser.parse_template db "(JOHN, WORKS-FOR, ?d)" in
        let rendered = Navigation.render_template db tpl in
        Alcotest.(check bool) "mentions SHIPPING" true
          (let nh = String.length rendered in
           let rec go i = i + 8 <= nh && (String.sub rendered i 8 = "SHIPPING" || go (i + 1)) in
           go 0));
    test "render_template: two free variables give a grouped 2D table" (fun () ->
        let db = db_of [ ("A", "R", "X"); ("A", "R", "Y"); ("B", "R", "Z") ] in
        let tpl = Query_parser.parse_template db "(?s, R, ?t)" in
        let rendered = Navigation.render_template db tpl in
        let contains needle =
          let nh = String.length rendered and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1)) in
          go 0
        in
        (* A's partners are grouped into one non-1NF cell. *)
        Alcotest.(check bool) "grouped cell" true (contains "X, Y");
        Alcotest.(check bool) "B row" true (contains "Z"));
    test "render_template: propositions render a truth value" (fun () ->
        let db = db_of [ ("A", "R", "X") ] in
        let yes = Query_parser.parse_template db "(A, R, X)" in
        let no = Query_parser.parse_template db "(X, R, A)" in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "true" true (contains (Navigation.render_template db yes) "true");
        Alcotest.(check bool) "false" true (contains (Navigation.render_template db no) "false"));
    test "association rendering warns when the path cap is hit" (fun () ->
        (* 101 × 101 parallel 2-chains > the 10 000-path cap. *)
        let facts = ref [] in
        for i = 0 to 100 do
          facts := ("SRC", Printf.sprintf "R%d" i, "MID") :: !facts;
          facts := ("MID", Printf.sprintf "S%d" i, "TGT") :: !facts
        done;
        let db = db_of !facts in
        Database.set_limit db 2;
        let e = Database.entity db in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        let rendered = Navigation.render_associations db ~src:(e "SRC") ~tgt:(e "TGT") in
        Alcotest.(check bool) "warns" true
          (contains rendered Navigation.truncation_warning);
        let _, truncated =
          Navigation.associations_detailed db ~src:(e "SRC") ~tgt:(e "TGT")
        in
        Alcotest.(check bool) "flag" true truncated;
        (* A small answer must render clean. *)
        let small = db_of [ ("A", "R", "B"); ("B", "S", "C") ] in
        Database.set_limit small 2;
        let e = Database.entity small in
        let rendered = Navigation.render_associations small ~src:(e "A") ~tgt:(e "C") in
        Alcotest.(check bool) "no warning" false
          (contains rendered Navigation.truncation_warning));
    test "rendered tables contain the §4.1 headers" (fun () ->
        let db = Paper_examples.music () in
        let table = Navigation.render_source_table db (Database.entity db "JOHN") in
        List.iter
          (fun needle ->
            let contains =
              let nh = String.length table and nn = String.length needle in
              let rec go i = i + nn <= nh && (String.sub table i nn = needle || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) needle true contains)
          [ "JOHN"; "LIKES"; "WORKS-FOR"; "FAVORITE-MUSIC"; "FELIX"; "SHIPPING" ]);
  ]
