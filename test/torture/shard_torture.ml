(* Shard-torture driver: the identity suite over the full
   (shard count x domain count x closure mode) matrix.

   Seeded random scripts of matches, queries, insertions and retractions
   run once against a single-heap, sequential, eager oracle and once per
   matrix cell; a cell diverging from the oracle in any step's answers,
   any mutation's outcome, or the final closure is a failure. Answers
   are compared as sorted rows — enumeration order is the one thing the
   matrix is allowed to change.

   The domains axis runs to 8 — past the machine's core count on most
   runners, so lanes multiplex over fewer executors than shards — and
   every multi-domain cell exercises the persistent per-shard lane
   fan-out (closure, extension and DRed retraction all route through
   it).

   Exit status 0 when every cell of every seed holds, 1 otherwise. *)

open Lsdb
module Rng = Lsdb_workload.Rng

let failures = ref 0
let cases = ref 0

let failf case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-32s %s\n%!" case msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Workload generation (names, so one script replays on every copy)    *)

type step =
  | Match of string option * string option * string option
  | QueryText of string
  | Ins of string * string * string
  | Rem of string * string * string

let base_db rng =
  Lsdb_workload.University_gen.to_database
    (Lsdb_workload.University_gen.generate
       ~params:
         {
           Lsdb_workload.University_gen.students = 15 + Rng.int rng 25;
           courses = 4 + Rng.int rng 6;
           instructors = 2 + Rng.int rng 4;
           enrollments_per_student = 2 + Rng.int rng 2;
         }
       rng)

let gen_script db rng =
  let facts = Array.of_list (Database.facts db) in
  let symtab = Database.symtab db in
  let random_names () = Fact.names symtab facts.(Rng.int rng (Array.length facts)) in
  let opt name = if Rng.bool rng then Some name else None in
  let steps = ref [] in
  for i = 1 to 14 do
    let step =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let s, r, t = random_names () in
          Match (opt s, opt r, opt t)
      | 4 | 5 ->
          let s, r, _ = random_names () in
          QueryText (Printf.sprintf "(%s, %s, ?x)" s r)
      | 6 ->
          let _, r, t = random_names () in
          QueryText (Printf.sprintf "(?x, %s, %s) & (?x, in, ?c)" r t)
      | 7 ->
          let s, r, t = random_names () in
          Ins (s ^ "-SHARD" ^ string_of_int i, r, t)
      | _ ->
          let s, r, t = random_names () in
          Rem (s, r, t)
    in
    steps := step :: !steps
  done;
  List.rev !steps

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

(* A step's observable output, sorted: the matrix may change the order
   answers are enumerated in, never the answers. *)
let run_step db step =
  let symtab = Database.symtab db in
  let show f =
    let s, r, t = Fact.names symtab f in
    String.concat "," [ s; r; t ]
  in
  match step with
  | Match (s, r, t) ->
      let find n = Option.bind n (Database.find_entity db) in
      let pat = Store.{ s = find s; r = find r; t = find t } in
      List.sort compare (List.map show (Match_layer.match_list db pat))
  | QueryText text -> (
      match Query_parser.parse db text with
      | query ->
          let answer = Eval.eval db query in
          List.sort compare
            (List.map (String.concat ",") (Eval.rows_named symtab answer))
      | exception Query_parser.Parse_error _ -> [ "parse-error" ])
  | Ins (s, r, t) -> [ Printf.sprintf "ins:%b" (Database.insert_names db s r t) ]
  | Rem (s, r, t) -> [ Printf.sprintf "rem:%b" (Database.remove_names db s r t) ]

(* The final state signature: every closure fact, by names, sorted. The
   copies share interning only up to the script's own insertions, so
   names are the safe currency. *)
let final_signature db =
  Database.set_closure_mode db Database.Eager;
  let symtab = Database.symtab db in
  let acc = ref [] in
  Closure.iter
    (fun f -> acc := Fact.names symtab f :: !acc)
    (Database.closure db);
  List.sort compare !acc

let run_cell ~shards ~domains ~mode db script =
  Database.set_shards db shards;
  Database.set_closure_mode db mode;
  let pool =
    if domains > 1 then Some (Lsdb_exec.Pool.create ~domains) else None
  in
  Database.set_pool db pool;
  Fun.protect
    ~finally:(fun () ->
      Database.set_pool db None;
      Option.iter Lsdb_exec.Pool.shutdown pool)
    (fun () ->
      let outputs = List.map (run_step db) script in
      (outputs, final_signature db))

let torture seed =
  let rng = Rng.create seed in
  let db0 = base_db rng in
  let script = gen_script db0 rng in
  let oracle_out, oracle_sig =
    run_cell ~shards:1 ~domains:1 ~mode:Database.Eager (Database.copy db0)
      script
  in
  List.iter
    (fun shards ->
      List.iter
        (fun domains ->
          List.iter
            (fun mode ->
              if not (shards = 1 && domains = 1 && mode = Database.Eager) then begin
                let case =
                  Printf.sprintf "seed%d/%dsh-%dd-%s" seed shards domains
                    (match mode with
                    | Database.Eager -> "eager"
                    | Database.Demand -> "demand")
                in
                let out, final =
                  run_cell ~shards ~domains ~mode (Database.copy db0) script
                in
                List.iteri
                  (fun i (expected, got) ->
                    incr cases;
                    if got <> expected then
                      failf case "step %d diverged (%d rows vs %d)" i
                        (List.length got) (List.length expected))
                  (List.combine oracle_out out);
                incr cases;
                if final <> oracle_sig then
                  failf case "final closure diverged (%d facts vs %d)"
                    (List.length final) (List.length oracle_sig)
              end)
            [ Database.Eager; Database.Demand ])
        [ 1; 2; 4; 8 ])
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Segment torture: the freeze policy must be invisible. [Always]
   rebuilds the packed segment at every quiesce point, [Never] keeps
   every fact in list-cell deltas (the pre-segment layout), [Watermark]
   is the production default. Same script, same cell — the three runs
   must be byte-identical in every step's output and the final
   closure. *)

let segment_torture seed =
  let module Index = Lsdb_datalog.Index in
  let rng = Rng.create (1000 + seed) in
  let db0 = base_db rng in
  let script = gen_script db0 rng in
  let run_with policy ~shards ~domains ~mode =
    let saved = Index.policy () in
    Index.set_policy policy;
    Fun.protect
      ~finally:(fun () -> Index.set_policy saved)
      (fun () -> run_cell ~shards ~domains ~mode (Database.copy db0) script)
  in
  List.iter
    (fun (shards, domains, mode, label) ->
      let case = Printf.sprintf "seg-seed%d/%s" seed label in
      let never = run_with Index.Never ~shards ~domains ~mode in
      let always = run_with Index.Always ~shards ~domains ~mode in
      let watermark = run_with Index.Watermark ~shards ~domains ~mode in
      incr cases;
      if always <> never then failf case "Always diverged from Never";
      incr cases;
      if watermark <> never then failf case "Watermark diverged from Never")
    [
      (1, 1, Database.Eager, "1sh-1d-eager");
      (4, 2, Database.Eager, "4sh-2d-eager");
      (1, 1, Database.Demand, "1sh-1d-demand");
      (2, 2, Database.Demand, "2sh-2d-demand");
    ]

let () =
  let seeds = List.init 4 (fun i -> i + 1) in
  List.iter torture seeds;
  List.iter segment_torture seeds;
  Printf.printf "shard-torture: %d case(s), %d failure(s)\n%!" !cases !failures;
  exit (if !failures = 0 then 0 else 1)
