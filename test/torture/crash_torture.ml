(* Crash-torture driver: enumerate every failpoint of a scripted
   workload and check the recovery invariants after each one.

   A fault-free rehearsal counts how often each VFS site fires; the
   driver then re-runs the workload once per (site, hit index,
   applicable fault kind), simulates a crash, reopens the store and
   asserts, according to how honest the injected fault was:

   - honest faults (Crash, Torn_write, Fsync_raises, No_space): the
     recovered database equals a replay of some prefix of the acked
     operations, no shorter than the synced prefix — every op acked
     before a successful sync survives, and an op in flight at the
     crash may but need not;
   - lying faults (Fsync_lies, Short_write, Bit_flip): strict recovery
     may refuse, but salvage must succeed;
   - always: a stale-epoch log is never replayed (ops_applied = 0 when
     the epoch decision is Ignored_stale — exactly-once compaction),
     and a second open after recovery is clean and reaches the same
     state (recovery physically repaired the files).

   Exit status 0 when every case holds, 1 otherwise. *)

open Lsdb
open Lsdb_storage

let failures = ref 0
let cases = ref 0

let failf case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-40s %s\n%!" case msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Workload and oracle (mirrors test/test_crash.ml)                    *)

type step =
  | Ins of string * string * string
  | Rem of string * string * string
  | Decl of string
  | Limit of int
  | Sync
  | Compact

type run = { acked : Log.op list; synced : int; died : bool }

let script =
  [
    Ins ("JOHN", "in", "EMPLOYEE");
    Ins ("EMPLOYEE", "EARNS", "SALARY");
    Decl "TOTAL-NUMBER";
    Ins ("MARY", "in", "EMPLOYEE");
    Sync;
    Ins ("JOHN", "LIKES", "FELIX");
    Rem ("JOHN", "LIKES", "FELIX");
    Limit 3;
    Compact;
    Ins ("FELIX", "in", "CAT");
    Sync;
    Rem ("MARY", "in", "EMPLOYEE");
    Ins ("SHIPPING", "in", "DEPARTMENT");
    Compact;
    Ins ("MARY", "WORKS-FOR", "SHIPPING");
  ]

let dir = "/db"

let run_script vfs =
  let acked = ref [] and n = ref 0 and synced = ref 0 in
  let ack op =
    acked := op :: !acked;
    incr n
  in
  let attempt op f =
    match f () with
    | true -> ack op
    | false -> ()
    | exception e ->
        ack op;
        (* mid-write: may or may not have landed *)
        raise e
  in
  let go () =
    let p = Persistent.open_dir ~vfs dir in
    let db = Persistent.database p in
    List.iter
      (fun step ->
        match step with
        | Ins (s, r, t) ->
            attempt (Log.Insert (s, r, t)) (fun () -> Persistent.insert_names p s r t)
        | Rem (s, r, t) ->
            attempt (Log.Remove (s, r, t)) (fun () ->
                Persistent.remove p (Fact.of_names (Database.symtab db) s r t))
        | Decl name ->
            attempt (Log.Declare_class name) (fun () ->
                Persistent.declare_class_relationship p (Database.entity db name);
                true)
        | Limit k ->
            attempt (Log.Set_limit k) (fun () ->
                Persistent.set_limit p k;
                true)
        | Sync ->
            Persistent.sync p;
            synced := !n
        | Compact ->
            Persistent.compact p;
            synced := !n)
      script;
    Persistent.sync p;
    synced := !n;
    Persistent.close p
  in
  let died =
    match go () with
    | () -> false
    | exception Vfs.Crashed _ -> true
    | exception Vfs.Fault _ -> true
    | exception Failure _ -> true
    (* aborted compaction / poisoned store: the process gives up *)
  in
  { acked = List.rev !acked; synced = !synced; died }

let take k list = List.filteri (fun i _ -> i < k) list

let rebuild ops =
  let db = Database.create () in
  List.iter (Log.apply db) ops;
  db

let signature db =
  let symtab = Database.symtab db in
  ( List.sort compare (List.map (Fact.names symtab) (Database.facts db)),
    Database.limit db )

let matching_prefix run recovered =
  let sig_rec = signature recovered in
  let rec go k =
    if k < run.synced then None
    else if signature (rebuild (take k run.acked)) = sig_rec then Some k
    else go (k - 1)
  in
  go (List.length run.acked)

(* ------------------------------------------------------------------ *)
(* Fault matrix                                                        *)

let ends_with suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let faults_for site =
  if ends_with ".write" site then
    [
      ("crash", Vfs.Crash, `Honest);
      ("torn3", Vfs.Torn_write 3, `Honest);
      ("enospc", Vfs.No_space, `Honest);
      ("short2", Vfs.Short_write 2, `Liar);
      ("bitflip9", Vfs.Bit_flip 9, `Liar);
    ]
  else if ends_with ".rename" site then [ ("crash", Vfs.Crash, `Honest) ]
  else
    (* fsync and dir.fsync sites *)
    [
      ("crash", Vfs.Crash, `Honest);
      ("eio", Vfs.Fsync_raises, `Honest);
      ("lies", Vfs.Fsync_lies, `Liar);
    ]

(* ------------------------------------------------------------------ *)

let torture site after (fault_name, fault, honesty) =
  let case = Printf.sprintf "%s+%d/%s" site after fault_name in
  incr cases;
  let vfs = Vfs.faulty () in
  Vfs.arm vfs ~site ~after fault;
  let r = run_script vfs in
  Vfs.simulate_crash vfs;
  let recover () =
    match Persistent.open_dir ~vfs dir with
    | p -> Some (`Strict, p)
    | exception Failure _ -> (
        match honesty with
        | `Honest -> None (* strict must cope with honest failures *)
        | `Liar -> (
            match Persistent.open_dir ~vfs ~recovery:`Salvage dir with
            | p -> Some (`Salvage, p)
            | exception Failure _ -> None))
  in
  match recover () with
  | None -> failf case "recovery failed (died=%b)" r.died
  | Some (mode, p) ->
      let db = Persistent.database p in
      let report = Persistent.recovery_report p in
      (* Exactly-once: a stale log is never replayed. *)
      if
        report.Recovery_report.epoch_decision = Recovery_report.Ignored_stale
        && report.Recovery_report.ops_applied <> 0
      then failf case "stale log replayed %d op(s)" report.Recovery_report.ops_applied;
      (* Durability: honest faults leave a durable prefix. *)
      (match honesty with
      | `Honest -> (
          match matching_prefix r db with
          | Some _ -> ()
          | None ->
              failf case "not a prefix ≥ synced (%d acked, %d synced, died=%b)"
                (List.length r.acked) r.synced r.died)
      | `Liar -> ());
      let sig1 = signature db in
      Persistent.close p;
      (* Self-healing: recovery repaired the files, so a second strict
         open is clean and reaches the same state. *)
      (match Persistent.open_dir ~vfs dir with
      | exception Failure msg -> failf case "second open refused: %s" msg
      | p2 ->
          let rep2 = Persistent.recovery_report p2 in
          if not (Recovery_report.is_clean rep2) then
            failf case "second open not clean (mode %s): %s"
              (match mode with `Strict -> "strict" | `Salvage -> "salvage")
              (Recovery_report.to_string rep2);
          if signature (Persistent.database p2) <> sig1 then
            failf case "state changed between reopens";
          Persistent.close p2)

let () =
  (* Rehearse fault-free to learn the crash surface. *)
  let rehearsal = Vfs.faulty () in
  let r0 = run_script rehearsal in
  if r0.died then begin
    Printf.printf "FATAL: fault-free rehearsal died\n";
    exit 1
  end;
  let sites = List.sort compare (Vfs.site_hits rehearsal) in
  Printf.printf "crash-torture: %d site(s) over %d-step workload\n%!"
    (List.length sites) (List.length script);
  List.iter
    (fun (site, hits) ->
      for after = 0 to hits - 1 do
        List.iter (torture site after) (faults_for site)
      done)
    sites;
  Printf.printf "crash-torture: %d case(s), %d failure(s)\n%!" !cases !failures;
  exit (if !failures = 0 then 0 else 1)
