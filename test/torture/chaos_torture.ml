(* Chaos-torture driver for the query governor: seeded random workloads
   run twice — once ungoverned (the oracle), once with per-query
   governors carrying randomly tight budgets and cancellations — plus a
   storage leg with armed transient faults under the retry policy.

   Invariants, per step:

   - when the step's governor never tripped, its output is byte-identical
     to the oracle's;
   - when it tripped, its answers are a subset of the oracle's (partial
     results are sound, never invented);
   - mutations land identically in both runs;
   - in the storage leg, every acked op survives a one-shot transient
     fault exactly once (retry resends the same bytes; the log holds no
     duplicate and drops nothing).

   Exit status 0 when every case holds, 1 otherwise. *)

open Lsdb
module Governor = Lsdb_exec.Governor
module Rng = Lsdb_workload.Rng

let failures = ref 0
let cases = ref 0

let failf case fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %-32s %s\n%!" case msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Workload generation                                                 *)

(* Steps carry names, not entity ids, so one pre-generated script can be
   executed against independent database copies. *)
type step =
  | Match of string option * string option * string option
  | QueryText of string
  | Ins of string * string * string
  | Rem of string * string * string

type budget =
  | Roomy  (** governor installed, nothing armed: must be byte-identical *)
  | Facts of int
  | Work of int
  | Deadline of float
  | Cancel  (** cancelled before the step runs: simulated Ctrl-C *)

let base_db rng =
  Lsdb_workload.University_gen.to_database
    (Lsdb_workload.University_gen.generate
       ~params:
         {
           Lsdb_workload.University_gen.students = 15 + Rng.int rng 25;
           courses = 4 + Rng.int rng 6;
           instructors = 2 + Rng.int rng 4;
           enrollments_per_student = 2 + Rng.int rng 2;
         }
       rng)

let gen_script db rng =
  let facts = Array.of_list (Database.facts db) in
  let symtab = Database.symtab db in
  let random_names () = Fact.names symtab facts.(Rng.int rng (Array.length facts)) in
  let opt name = if Rng.bool rng then Some name else None in
  let steps = ref [] in
  for i = 1 to 12 do
    let budget =
      match Rng.int rng 6 with
      | 0 | 1 -> Roomy
      | 2 -> Facts (1 + Rng.int rng 40)
      | 3 -> Work (20 + Rng.int rng 2000)
      | 4 -> Deadline (0.001 +. (Rng.float rng *. 0.2))
      | _ -> Cancel
    in
    let step =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          let s, r, t = random_names () in
          Match (opt s, opt r, opt t)
      | 4 | 5 ->
          let s, r, _ = random_names () in
          QueryText (Printf.sprintf "(%s, %s, ?x)" s r)
      | 6 ->
          let _, r, t = random_names () in
          QueryText (Printf.sprintf "(?x, %s, %s) & (?x, in, ?c)" r t)
      | 7 ->
          let s, r, t = random_names () in
          Ins (s ^ "-CHAOS" ^ string_of_int i, r, t)
      | _ ->
          let s, r, t = random_names () in
          Rem (s, r, t)
    in
    steps := (step, budget) :: !steps
  done;
  List.rev !steps

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

(* A step's observable output: one string per answer row/fact, in
   enumeration order. Mutations observe the applied/ignored bool so both
   runs are checked to mutate identically. *)
let run_step db step =
  let symtab = Database.symtab db in
  let show f =
    let s, r, t = Fact.names symtab f in
    String.concat "," [ s; r; t ]
  in
  match step with
  | Match (s, r, t) ->
      let find n = Option.bind n (Database.find_entity db) in
      let pat = Store.{ s = find s; r = find r; t = find t } in
      List.map show (Match_layer.match_list db pat)
  | QueryText text -> (
      match Query_parser.parse db text with
      | query ->
          let answer = Eval.eval db query in
          List.map (String.concat ",")
            (Eval.rows_named symtab answer)
      | exception Query_parser.Parse_error _ -> [ "parse-error" ])
  | Ins (s, r, t) -> [ Printf.sprintf "ins:%b" (Database.insert_names db s r t) ]
  | Rem (s, r, t) -> [ Printf.sprintf "rem:%b" (Database.remove_names db s r t) ]

let is_query = function Match _ | QueryText _ -> true | Ins _ | Rem _ -> false

(* tripped = None for mutations and the oracle run. *)
let run_all ~governed db script =
  List.map
    (fun (step, budget) ->
      if not (governed && is_query step) then (run_step db step, None)
      else begin
        let gov =
          match budget with
          | Roomy | Cancel -> Governor.create ()
          | Facts n -> Governor.create ~max_facts:n ()
          | Work n -> Governor.create ~max_work:n ()
          | Deadline ms -> Governor.create ~deadline_ms:ms ()
        in
        if budget = Cancel then Governor.cancel gov;
        Database.set_governor db (Some gov);
        let result =
          Fun.protect
            ~finally:(fun () -> Database.set_governor db None)
            (fun () -> run_step db step)
        in
        (result, Governor.tripped gov)
      end)
    script

let subset sub super =
  let tbl = Hashtbl.create 64 in
  List.iter (fun row -> Hashtbl.replace tbl row ()) super;
  List.for_all (Hashtbl.mem tbl) sub

let eval_chaos seed =
  let rng = Rng.create seed in
  let db0 = base_db rng in
  Database.set_closure_mode db0
    (if seed mod 2 = 0 then Database.Eager else Database.Demand);
  (* Rotate the heap layout too: governor trips and cancellations must
     stay sound on every shard count (1, 2, 4, 8 across the seeds). *)
  Database.set_shards db0 (1 lsl (seed mod 4));
  let script = gen_script db0 rng in
  let oracle = run_all ~governed:false (Database.copy db0) script in
  let governed = run_all ~governed:true (Database.copy db0) script in
  List.iteri
    (fun i ((expected, _), ((got, tripped), (step, budget))) ->
      incr cases;
      let case = Printf.sprintf "seed%d/step%d" seed i in
      match (tripped, step) with
      | None, _ ->
          (* Untripped (or a mutation): byte-identity with the oracle. *)
          if got <> expected then
            failf case "untripped output diverged (%d vs %d rows, budget %s)"
              (List.length got) (List.length expected)
              (match budget with
              | Roomy -> "roomy"
              | Cancel -> "cancel"
              | Facts n -> Printf.sprintf "facts=%d" n
              | Work n -> Printf.sprintf "work=%d" n
              | Deadline ms -> Printf.sprintf "deadline=%gms" ms)
      | Some _, (Ins _ | Rem _) -> failf case "mutation step reported a trip"
      | Some reason, _ ->
          if not (subset got expected) then
            failf case "tripped (%s) answers are not a subset (%d rows vs %d)"
              (Governor.reason_string reason)
              (List.length got) (List.length expected))
    (List.combine oracle (List.combine governed script))

(* ------------------------------------------------------------------ *)
(* Storage leg: transient faults under the retry policy                *)

let storage_chaos seed =
  let open Lsdb_storage in
  incr cases;
  let case = Printf.sprintf "seed%d/storage" seed in
  let rng = Rng.create ((seed * 7919) + 13) in
  let vfs = Vfs.faulty () in
  let policy = { Governor.Retry.attempts = 4; base_delay_s = 0.; max_delay_s = 0. } in
  let p = Persistent.open_dir ~vfs ~retry:policy "/db" in
  let acked = ref [] in
  (try
     for i = 1 to 40 do
       (* Periodically arm a one-shot transient fault on an upcoming
          write or fsync; the retry policy must absorb every one. *)
       if Rng.int rng 3 = 0 then
         if Rng.bool rng then
           Vfs.arm vfs ~site:"log.write" ~after:(Rng.int rng 2) Vfs.No_space
         else Vfs.arm vfs ~site:"log.fsync" Vfs.Fsync_raises;
       let s = Printf.sprintf "S%d" (Rng.int rng 12) in
       let r = Printf.sprintf "R%d" (Rng.int rng 4) in
       let t = Printf.sprintf "T%d" (Rng.int rng 12) in
       if Rng.int rng 5 = 0 then begin
         let db = Persistent.database p in
         if Persistent.remove p (Fact.of_names (Database.symtab db) s r t) then
           acked := Log.Remove (s, r, t) :: !acked
       end
       else if Persistent.insert_names p s r t then
         acked := Log.Insert (s, r, t) :: !acked;
       if i mod 9 = 0 then Persistent.sync p
     done;
     Persistent.sync p;
     Persistent.close p
   with e -> failf case "workload died: %s" (Printexc.to_string e));
  let acked = List.rev !acked in
  (* Every acked op is in the log exactly once, in order: a retried
     flush resent identical bytes, duplicating and dropping nothing. *)
  let logged = Log.read_all ~vfs "/db/log.lsdb" in
  if
    List.length logged <> List.length acked
    || not (List.for_all2 Log.op_equal logged acked)
  then
    failf case "log does not equal the acked ops (%d logged, %d acked)"
      (List.length logged) (List.length acked);
  (* And a clean reopen replays to the same state. *)
  match Persistent.open_dir ~vfs "/db" with
  | exception Failure msg -> failf case "reopen refused: %s" msg
  | p ->
      let replayed = Persistent.database p in
      let fresh = Database.create () in
      List.iter (Log.apply fresh) acked;
      let signature db =
        List.sort compare
          (List.map (Fact.names (Database.symtab db)) (Database.facts db))
      in
      if signature replayed <> signature fresh then
        failf case "recovered state diverges from the acked ops";
      Persistent.close p

let () =
  let seeds = List.init 10 (fun i -> i + 1) in
  List.iter
    (fun seed ->
      eval_chaos seed;
      storage_chaos seed)
    seeds;
  Printf.printf "chaos-torture: %d case(s), %d failure(s)\n%!" !cases !failures;
  exit (if !failures = 0 then 0 else 1)
