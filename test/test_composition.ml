open Lsdb
open Testutil

(* TOM —ENROLLED-IN→ CS100 —TAUGHT-BY→ HARRY, the §3.7 example. *)
let enrollment_db ?(limit = 2) () =
  let db =
    db_of [ ("TOM", "ENROLLED-IN", "CS100"); ("CS100", "TAUGHT-BY", "HARRY") ]
  in
  Database.set_limit db limit;
  db

let tests =
  [
    test "compose_name and decompose round-trip" (fun () ->
        let db = enrollment_db () in
        let e = Database.entity db in
        let chain = [ e "ENROLLED-IN"; e "TAUGHT-BY" ] in
        let composed = Composition.compose_name (Database.symtab db) chain in
        Alcotest.(check string) "name" "ENROLLED-IN·TAUGHT-BY"
          (Database.entity_name db composed);
        Alcotest.(check bool) "is composed" true
          (Composition.is_composed (Database.symtab db) composed);
        Alcotest.(check bool) "round-trip" true
          (Composition.decompose (Database.symtab db) composed = Some chain));
    test "§3.7 composition implies the indirect relationship" (fun () ->
        let db = enrollment_db () in
        let e = Database.entity db in
        let paths = Composition.paths db ~src:(e "TOM") ~tgt:(e "HARRY") in
        Alcotest.(check int) "one path" 1 (List.length paths);
        let path = List.hd paths in
        Alcotest.(check (list string)) "chain"
          [ "ENROLLED-IN"; "TAUGHT-BY" ]
          (List.map (Database.entity_name db) path.Composition.chain));
    test "limit 1 disables composition entirely" (fun () ->
        let db = enrollment_db ~limit:1 () in
        let e = Database.entity db in
        Alcotest.(check int) "no paths" 0
          (List.length (Composition.paths db ~src:(e "TOM") ~tgt:(e "HARRY"))));
    test "limit bounds chain length exactly" (fun () ->
        let db =
          db_of [ ("A", "R1", "B"); ("B", "R2", "C"); ("C", "R3", "D") ]
        in
        let e = Database.entity db in
        Database.set_limit db 2;
        Alcotest.(check int) "depth-3 target unreachable at limit 2" 0
          (List.length (Composition.paths db ~src:(e "A") ~tgt:(e "D")));
        Database.set_limit db 3;
        Alcotest.(check int) "reachable at limit 3" 1
          (List.length (Composition.paths db ~src:(e "A") ~tgt:(e "D"))));
    test "cyclic composition is excluded (source must differ from target)" (fun () ->
        (* The paper's JOHN loves MARY loves JOHN example. *)
        let db = db_of [ ("JOHN", "LOVES", "MARY"); ("MARY", "LOVES", "JOHN") ] in
        Database.set_limit db 4;
        let e = Database.entity db in
        Alcotest.(check int) "no self paths" 0
          (List.length (Composition.paths db ~src:(e "JOHN") ~tgt:(e "JOHN"))));
    test "walk follows a chain forward" (fun () ->
        let db = enrollment_db () in
        let e = Database.entity db in
        let targets =
          Composition.walk db ~chain:[ e "ENROLLED-IN"; e "TAUGHT-BY" ] ~src:(e "TOM")
        in
        Alcotest.(check (list string)) "harry" [ "HARRY" ] (names db targets));
    test "candidates answer bound composed relationships" (fun () ->
        let db = enrollment_db () in
        let e = Database.entity db in
        let composed = Database.entity db "ENROLLED-IN·TAUGHT-BY" in
        (* forward: (TOM, chain, ?) *)
        let fwd = ref [] in
        Composition.candidates db (Store.pattern ~s:(e "TOM") ~r:composed ()) (fun f ->
            fwd := f :: !fwd);
        Alcotest.(check int) "forward" 1 (List.length !fwd);
        (* backward: (?, chain, HARRY) *)
        let bwd = ref [] in
        Composition.candidates db (Store.pattern ~r:composed ~t:(e "HARRY") ()) (fun f ->
            bwd := f :: !bwd);
        Alcotest.(check int) "backward" 1 (List.length !bwd);
        Alcotest.(check string) "source" "TOM"
          (Database.entity_name db (List.hd !bwd).Fact.s));
    test "special relationships do not compose" (fun () ->
        let db = db_of [ ("A", "in", "B"); ("B", "LEADS", "C") ] in
        Database.set_limit db 2;
        let e = Database.entity db in
        Alcotest.(check int) "no path through ∈" 0
          (List.length (Composition.paths db ~src:(e "A") ~tgt:(e "C"))));
    test "composition follows inferred facts too" (fun () ->
        let db =
          db_of
            [
              ("JOHN", "in", "EMPLOYEE");
              ("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
              ("DEPARTMENT", "REPORTS-TO", "BOARD");
            ]
        in
        Database.set_limit db 2;
        let e = Database.entity db in
        (* (JOHN, WORKS-FOR, DEPARTMENT) is inferred; the path uses it. *)
        let paths = Composition.paths db ~src:(e "JOHN") ~tgt:(e "BOARD") in
        Alcotest.(check bool) "path through inferred fact" true
          (List.exists
             (fun p ->
               List.map (Database.entity_name db) p.Composition.chain
               = [ "WORKS-FOR"; "REPORTS-TO" ])
             paths));
    test "count_compositions grows with the limit (B3 shape)" (fun () ->
        let rng = Lsdb_workload.Rng.create 42 in
        let uni =
          Lsdb_workload.University_gen.generate
            ~params:
              {
                Lsdb_workload.University_gen.students = 20;
                courses = 5;
                instructors = 3;
                enrollments_per_student = 2;
              }
            rng
        in
        let db = Lsdb_workload.University_gen.to_database uni in
        let counts =
          List.map
            (fun n ->
              Database.set_limit db n;
              Composition.count_compositions db)
            [ 1; 2; 3 ]
        in
        match counts with
        | [ c1; c2; c3 ] ->
            Alcotest.(check int) "limit 1: none" 0 c1;
            Alcotest.(check bool) "limit 2 > 0" true (c2 > 0);
            Alcotest.(check bool) "monotone" true (c3 >= c2)
        | _ -> assert false);
    test "max_paths caps enumeration" (fun () ->
        (* A dense bipartite graph with many parallel 2-chains. *)
        let facts = ref [] in
        for i = 0 to 9 do
          facts := ("SRC", Printf.sprintf "R%d" i, "MID") :: !facts;
          facts := ("MID", Printf.sprintf "S%d" i, "TGT") :: !facts
        done;
        let db = db_of !facts in
        Database.set_limit db 2;
        let e = Database.entity db in
        let all = Composition.paths db ~src:(e "SRC") ~tgt:(e "TGT") in
        Alcotest.(check int) "100 paths" 100 (List.length all);
        let capped = Composition.paths ~max_paths:7 db ~src:(e "SRC") ~tgt:(e "TGT") in
        Alcotest.(check int) "capped" 7 (List.length capped));
    test "search reports truncation and bumps the counter" (fun () ->
        (* Same dense bipartite shape: 100 parallel 2-chains. *)
        let facts = ref [] in
        for i = 0 to 9 do
          facts := ("SRC", Printf.sprintf "R%d" i, "MID") :: !facts;
          facts := ("MID", Printf.sprintf "S%d" i, "TGT") :: !facts
        done;
        let db = db_of !facts in
        Database.set_limit db 2;
        let e = Database.entity db in
        let truncations () =
          Lsdb_obs.Metrics.counter_value
            (Lsdb_obs.Metrics.counter "lsdb_composition_truncated_total")
        in
        let before = truncations () in
        let capped = Composition.search ~max_paths:7 db ~src:(e "SRC") ~tgt:(e "TGT") in
        Alcotest.(check bool) "truncated" true capped.Composition.truncated;
        Alcotest.(check int) "capped paths" 7 (List.length capped.Composition.paths);
        Alcotest.(check bool) "counter bumped" true (truncations () > before);
        let full = Composition.search db ~src:(e "SRC") ~tgt:(e "TGT") in
        Alcotest.(check bool) "full run not truncated" false full.Composition.truncated;
        Alcotest.(check int) "all paths" 100 (List.length full.Composition.paths));
    test "search exposes meet statistics" (fun () ->
        let db = enrollment_db () in
        let e = Database.entity db in
        let result = Composition.search db ~src:(e "TOM") ~tgt:(e "HARRY") in
        Alcotest.(check int) "one path" 1 (List.length result.Composition.paths);
        Alcotest.(check bool) "met somewhere" true (result.Composition.meet_nodes >= 1);
        Alcotest.(check bool) "expanded forward" true
          (result.Composition.forward_expansions >= 1));
  ]
