(* Sharded fact heaps: the hash partitioner, the sharded store, the
   sharded closure dispatch, and the storage-layer shard views. The
   master contract throughout: query results are content-identical at
   every shard count — the oracle is always the 1-shard layout. *)

open Lsdb
open Testutil
module Shard = Lsdb_datalog.Shard

let sorted_facts_of_closure c =
  let acc = ref [] in
  Closure.iter (fun f -> acc := f :: !acc) c;
  List.sort Fact.compare !acc

(* Two databases built by identical insert sequences intern identically,
   so their facts compare directly. *)
let closure_facts db = sorted_facts_of_closure (Database.closure db)

let org_at_shards n =
  let db = Paper_examples.organization () in
  Database.set_shards db n;
  db

let check_same_closure what oracle db =
  Alcotest.(check bool) (what ^ ": closure content identical") true
    (closure_facts oracle = closure_facts db);
  Alcotest.(check int)
    (what ^ ": derived count identical")
    (Closure.derived_count (Database.closure oracle))
    (Closure.derived_count (Database.closure db))

let tests =
  [
    (* --- the partitioner ------------------------------------------- *)
    test "partitioner: of_entity is deterministic and in range" (fun () ->
        let plan = Shard.plan 8 in
        for e = 0 to 10_000 do
          let s = Shard.of_entity plan e in
          Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
          Alcotest.(check int) "stable on re-query" s (Shard.of_entity plan e)
        done);
    test "partitioner: one shard maps everything to 0" (fun () ->
        let plan = Shard.plan 1 in
        List.iter
          (fun e -> Alcotest.(check int) "shard 0" 0 (Shard.of_entity plan e))
          [ 0; 1; 42; 999_999; max_int ]);
    test "partitioner: plan clamps to at least one shard" (fun () ->
        Alcotest.(check int) "0 shards" 1 (Shard.shards (Shard.plan 0));
        Alcotest.(check int) "-3 shards" 1 (Shard.shards (Shard.plan (-3)));
        Alcotest.(check int) "4 shards" 4 (Shard.shards (Shard.plan 4)));
    test "partitioner: of_triple routes by the source entity" (fun () ->
        let plan = Shard.plan 4 in
        let t = Lsdb_datalog.Triple.make 17 3 99 in
        Alcotest.(check int) "source owns the fact"
          (Shard.of_entity plan 17) (Shard.of_triple plan t));
    test "partitioner: of_name is deterministic and in range" (fun () ->
        List.iter
          (fun name ->
            let s = Shard.of_name ~shards:8 name in
            Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
            Alcotest.(check int) "stable" s (Shard.of_name ~shards:8 name);
            Alcotest.(check int) "one shard" 0 (Shard.of_name ~shards:1 name))
          [ "JOHN"; "E0"; "E1"; "∈"; ""; "a-rather-long-entity-name" ]);
    test "partitioner: distinct names spread over every shard" (fun () ->
        let counts = Array.make 8 0 in
        for i = 0 to 9_999 do
          let s = Shard.of_name ~shards:8 (Printf.sprintf "E%d" i) in
          counts.(s) <- counts.(s) + 1
        done;
        Array.iteri
          (fun i n ->
            Alcotest.(check bool)
              (Printf.sprintf "shard %d got a fair share" i)
              true
              (n > 10_000 / 8 / 2 && n < 10_000 / 8 * 2))
          counts);
    qcheck "partitioner: every entity id lands in range"
      QCheck.(pair (int_range 1 16) (int_range 0 1_000_000_000))
      (fun (n, e) ->
        let s = Shard.of_entity (Shard.plan n) e in
        0 <= s && s < n);
    (* --- the sharded store ----------------------------------------- *)
    test "store: sharded content equals the single-heap layout" (fun () ->
        let mk shards =
          let st = Store.create ~shards () in
          for i = 0 to 499 do
            ignore (Store.add st (Fact.make (i mod 37) (i mod 5) (i mod 61)))
          done;
          st
        in
        let oracle = mk 1 in
        List.iter
          (fun shards ->
            let st = mk shards in
            Alcotest.(check int) "cardinal" (Store.cardinal oracle)
              (Store.cardinal st);
            Alcotest.(check bool) "same facts" true
              (List.sort Fact.compare (Store.to_list oracle)
              = List.sort Fact.compare (Store.to_list st));
            (* Every pattern shape agrees with the oracle. *)
            List.iter
              (fun pat ->
                Alcotest.(check bool) "match_list" true
                  (List.sort Fact.compare (Store.match_list oracle pat)
                  = List.sort Fact.compare (Store.match_list st pat));
                Alcotest.(check int) "count_fast" (Store.count_fast oracle pat)
                  (Store.count_fast st pat);
                Alcotest.(check int) "count_matches"
                  (Store.count_matches oracle pat)
                  (Store.count_matches st pat))
              [
                Store.pattern ();
                Store.pattern ~s:3 ();
                Store.pattern ~r:2 ();
                Store.pattern ~t:7 ();
                Store.pattern ~s:3 ~r:2 ();
                Store.pattern ~r:2 ~t:7 ();
                Store.pattern ~s:3 ~t:7 ();
                Store.pattern ~s:3 ~r:2 ~t:7 ();
              ])
          [ 2; 4; 8 ]);
    test "store: shard_cardinals sum to the cardinal" (fun () ->
        let st = Store.create ~shards:4 () in
        for i = 0 to 99 do
          ignore (Store.add st (Fact.make i 0 (i + 1)))
        done;
        Alcotest.(check int) "sum" (Store.cardinal st)
          (Array.fold_left ( + ) 0 (Store.shard_cardinals st));
        Alcotest.(check int) "one array slot per shard" 4
          (Array.length (Store.shard_cardinals st)));
    test "store: reshard preserves content in place" (fun () ->
        let st = Store.create ~shards:1 () in
        for i = 0 to 199 do
          ignore (Store.add st (Fact.make (i mod 23) (i mod 3) i))
        done;
        let before = List.sort Fact.compare (Store.to_list st) in
        List.iter
          (fun n ->
            Store.reshard st n;
            Alcotest.(check int) "shard count" n (Store.shards st);
            Alcotest.(check bool) "content" true
              (before = List.sort Fact.compare (Store.to_list st));
            Alcotest.(check bool) "membership survives" true
              (Store.mem st (Fact.make 5 2 97)
              = List.mem (Fact.make 5 2 97) before))
          [ 4; 8; 1; 3 ]);
    test "store: removal updates the owning shard only" (fun () ->
        let st = Store.create ~shards:4 () in
        ignore (Store.add st (Fact.make 1 2 3));
        ignore (Store.add st (Fact.make 4 5 6));
        Alcotest.(check bool) "remove present" true
          (Store.remove st (Fact.make 1 2 3));
        Alcotest.(check bool) "gone" false (Store.mem st (Fact.make 1 2 3));
        Alcotest.(check bool) "other fact untouched" true
          (Store.mem st (Fact.make 4 5 6));
        Alcotest.(check bool) "remove absent" false
          (Store.remove st (Fact.make 1 2 3));
        Alcotest.(check int) "cardinal" 1 (Store.cardinal st));
    test "store: copy carries the shard plan" (fun () ->
        let st = Store.create ~shards:4 () in
        ignore (Store.add st (Fact.make 1 2 3));
        let c = Store.copy st in
        Alcotest.(check int) "shards" 4 (Store.shards c);
        Alcotest.(check bool) "content" true (Store.mem c (Fact.make 1 2 3));
        ignore (Store.add c (Fact.make 7 8 9));
        Alcotest.(check bool) "copies are independent" false
          (Store.mem st (Fact.make 7 8 9)));
    (* --- closure dispatch ------------------------------------------ *)
    test "closure: dispatcher picks the layout the store has" (fun () ->
        let oracle = Paper_examples.organization () in
        Alcotest.(check int) "single-heap" 1
          (Closure.shards (Database.closure oracle));
        let db = org_at_shards 4 in
        Alcotest.(check int) "sharded" 4 (Closure.shards (Database.closure db)));
    test "closure: identical at 2, 4 and 8 shards" (fun () ->
        let oracle = Paper_examples.organization () in
        List.iter
          (fun n ->
            check_same_closure
              (Printf.sprintf "%d shards" n)
              oracle (org_at_shards n))
          [ 2; 4; 8 ]);
    test "closure: extension maintains identity" (fun () ->
        let grow db =
          ignore (Database.insert_names db "ALICE" "in" "EMPLOYEE");
          ignore (Database.insert_names db "EMPLOYEE" "isa" "AGENT");
          ignore (Database.closure db)
        in
        let oracle = Paper_examples.organization () in
        grow oracle;
        List.iter
          (fun n ->
            let db = org_at_shards n in
            ignore (Database.closure db);
            grow db;
            check_same_closure (Printf.sprintf "extend at %d shards" n) oracle db)
          [ 2; 8 ]);
    test "closure: retraction maintains identity" (fun () ->
        let shrink db =
          ignore (Database.remove_names db "JOHN" "in" "EMPLOYEE");
          ignore (Database.remove_names db "MANAGER" "isa" "EMPLOYEE");
          ignore (Database.closure db)
        in
        let oracle = Paper_examples.organization () in
        shrink oracle;
        List.iter
          (fun n ->
            let db = org_at_shards n in
            ignore (Database.closure db);
            shrink db;
            check_same_closure
              (Printf.sprintf "retract at %d shards" n)
              oracle db)
          [ 2; 8 ]);
    test "closure: demotion — asserting a derived fact as base" (fun () ->
        (* (A isa C) is derived from the chain; asserting it as base must
           demote it in both layouts, and retracting the chain must keep
           it alive as base. *)
        let run shards =
          let db = Database.create ~shards () in
          ignore (Database.insert_names db "A" "isa" "B");
          ignore (Database.insert_names db "B" "isa" "C");
          ignore (Database.closure db);
          Alcotest.(check bool) "derived first" true
            (Closure.is_derived (Database.closure db) (fact db ("A", "isa", "C")));
          ignore (Database.insert_names db "A" "isa" "C");
          Alcotest.(check bool) "demoted to base" false
            (Closure.is_derived (Database.closure db) (fact db ("A", "isa", "C")));
          ignore (Database.remove_names db "B" "isa" "C");
          Alcotest.(check bool) "survives the chain's retraction" true
            (holds db ("A", "isa", "C"))
        in
        run 1;
        run 4);
    test "closure: rule toggles keep identity across shard counts" (fun () ->
        let toggle db =
          ignore (Database.exclude db "syn-symmetry");
          ignore (Database.closure db);
          ignore (Database.include_rule db "syn-symmetry");
          ignore (Database.closure db)
        in
        let oracle = Paper_examples.organization () in
        toggle oracle;
        let db = org_at_shards 4 in
        toggle db;
        check_same_closure "after exclude/include round-trip" oracle db);
    test "closure: degree and count accessors agree" (fun () ->
        let oracle = Paper_examples.organization () in
        let db = org_at_shards 8 in
        let co = Database.closure oracle and cs = Database.closure db in
        List.iter
          (fun name ->
            let eo = Database.entity oracle name
            and es = Database.entity db name in
            Alcotest.(check int)
              (name ^ " out_degree")
              (Closure.out_degree co eo) (Closure.out_degree cs es);
            Alcotest.(check int)
              (name ^ " in_degree")
              (Closure.in_degree co eo) (Closure.in_degree cs es);
            Alcotest.(check bool)
              (name ^ " entity_active")
              (Closure.entity_active co eo)
              (Closure.entity_active cs es))
          [ "JOHN"; "EMPLOYEE"; "DEPARTMENT"; "SALARY" ];
        Alcotest.(check int) "count_pattern over closure"
          (Closure.count_pattern co
             (Store.pattern ~r:(Database.entity oracle "isa") ()))
          (Closure.count_pattern cs
             (Store.pattern ~r:(Database.entity db "isa") ())));
    test "closure: shard introspection" (fun () ->
        let db = org_at_shards 4 in
        let c = Database.closure db in
        Alcotest.(check int) "overlay_cardinals has one slot per shard" 4
          (Array.length (Closure.overlay_cardinals c));
        Alcotest.(check int) "overlays hold exactly the derived facts"
          (Closure.derived_count c)
          (Array.fold_left ( + ) 0 (Closure.overlay_cardinals c));
        Alcotest.(check bool) "exchange counter is sane" true
          (Closure.exchanged c >= 0);
        let single = Database.closure (Paper_examples.organization ()) in
        Alcotest.(check int) "single-heap reports one shard" 1
          (Closure.shards single);
        Alcotest.(check int) "single-heap exchanges nothing" 0
          (Closure.exchanged single));
    test "closure: governor trip yields a sound subset, sharded" (fun () ->
        let full = closure_facts (Paper_examples.organization ()) in
        let db = org_at_shards 8 in
        let gov = Lsdb_exec.Governor.create ~max_facts:5 () in
        Database.set_governor db (Some gov);
        let partial = Database.closure db in
        Alcotest.(check bool) "tripped" true
          (Lsdb_exec.Governor.tripped gov <> None);
        Alcotest.(check bool) "flagged partial" true (Database.closure_partial db);
        Closure.iter
          (fun f ->
            Alcotest.(check bool) "kept fact is in the true closure" true
              (List.exists (Fact.equal f) full))
          partial;
        Store.iter
          (fun f ->
            Alcotest.(check bool) "base fact still visible" true
              (Closure.mem partial f))
          (Database.store db);
        Database.set_governor db None;
        check_same_closure "recovers once the governor is lifted"
          (Paper_examples.organization ())
          db);
    test "closure: domain pool composes with sharding" (fun () ->
        let oracle = Paper_examples.organization () in
        let db = org_at_shards 4 in
        let pool = Lsdb_exec.Pool.create ~domains:3 in
        Fun.protect
          ~finally:(fun () ->
            Database.set_pool db None;
            Lsdb_exec.Pool.shutdown pool)
          (fun () ->
            Database.set_pool db (Some pool);
            check_same_closure "pooled sharded closure" oracle db;
            ignore (Database.insert_names db "ALICE" "in" "EMPLOYEE");
            ignore (Database.insert_names oracle "ALICE" "in" "EMPLOYEE");
            check_same_closure "pooled sharded extension" oracle db));
    (* --- multi-domain lanes ----------------------------------------- *)
    test "closure: lanes keep identity over the shards × domains grid"
      (fun () ->
        (* The Zipf workload makes every round's delta wide enough that
           the lane fan-out actually engages; the contract under test is
           the tentpole's: content-identical to the single-heap oracle at
           every (shards × domains) point, and byte-identical derivation
           order across domains for a fixed shard count. *)
        let params =
          {
            Lsdb_workload.Shard_gen.default_params with
            facts = 2_000;
            entities = 400;
            memberships = 50;
          }
        in
        let gen =
          Lsdb_workload.Shard_gen.generate ~params (Lsdb_workload.Rng.create 11)
        in
        let mutate db =
          ignore (Database.insert_names db "XA" "isa" "XB");
          ignore (Database.insert_names db "XB" "isa" "XC");
          ignore (Database.insert_names db "XC" "isa" "XD");
          ignore (Database.closure db);
          ignore (Database.remove_names db "XB" "isa" "XC");
          ignore (Database.closure db)
        in
        let oracle = Lsdb_workload.Shard_gen.to_database gen in
        ignore (Database.closure oracle);
        mutate oracle;
        let lane_rounds =
          Lsdb_obs.Metrics.counter
            ~help:"Closure rounds fanned out to persistent per-shard lanes"
            "lsdb_sharded_lane_rounds_total"
        in
        List.iter
          (fun shards ->
            let order = ref None in
            List.iter
              (fun domains ->
                let db = Lsdb_workload.Shard_gen.to_database ~shards gen in
                let pool = Lsdb_exec.Pool.create ~domains in
                Fun.protect
                  ~finally:(fun () ->
                    Database.set_pool db None;
                    Lsdb_exec.Pool.shutdown pool)
                  (fun () ->
                    Database.set_pool db (Some pool);
                    let before = Lsdb_obs.Metrics.counter_value lane_rounds in
                    ignore (Database.closure db);
                    mutate db;
                    let what =
                      Printf.sprintf "%d shards × %d domains" shards domains
                    in
                    check_same_closure what oracle db;
                    let got =
                      Closure.derived (Database.closure db)
                    in
                    (match !order with
                    | None -> order := Some got
                    | Some reference ->
                        Alcotest.(check bool)
                          (what ^ ": derivation order byte-identical")
                          true
                          (List.equal Fact.equal reference got));
                    if shards > 1 && domains > 1 then
                      Alcotest.(check bool)
                        (what ^ ": lane rounds actually ran")
                        true
                        (Lsdb_obs.Metrics.counter_value lane_rounds > before)))
              [ 1; 2; 4 ])
          [ 2; 8 ]);
    test "closure: governor trip stays a sound subset under lanes" (fun () ->
        let params =
          {
            Lsdb_workload.Shard_gen.default_params with
            facts = 2_000;
            entities = 400;
            memberships = 50;
          }
        in
        let gen =
          Lsdb_workload.Shard_gen.generate ~params (Lsdb_workload.Rng.create 11)
        in
        let full = closure_facts (Lsdb_workload.Shard_gen.to_database gen) in
        List.iter
          (fun domains ->
            let db = Lsdb_workload.Shard_gen.to_database ~shards:8 gen in
            let pool = Lsdb_exec.Pool.create ~domains in
            Fun.protect
              ~finally:(fun () ->
                Database.set_pool db None;
                Lsdb_exec.Pool.shutdown pool)
              (fun () ->
                Database.set_pool db (Some pool);
                let gov = Lsdb_exec.Governor.create ~max_facts:50 () in
                Database.set_governor db (Some gov);
                let partial = Database.closure db in
                let what = Printf.sprintf "%d domains" domains in
                Alcotest.(check bool) (what ^ ": tripped") true
                  (Lsdb_exec.Governor.tripped gov <> None);
                Alcotest.(check bool)
                  (what ^ ": flagged partial")
                  true
                  (Database.closure_partial db);
                (* Worker-domain checkpoints must not have let a single
                   overshoot fact through: everything kept is in the true
                   closure, and nothing from the base tier went missing. *)
                Closure.iter
                  (fun f ->
                    if not (List.exists (Fact.equal f) full) then
                      Alcotest.fail (what ^ ": kept fact outside true closure"))
                  partial;
                Store.iter
                  (fun f ->
                    if not (Closure.mem partial f) then
                      Alcotest.fail (what ^ ": base fact went missing"))
                  (Database.store db);
                Database.set_governor db None;
                check_same_closure
                  (what ^ ": recovers once the governor is lifted")
                  (Lsdb_workload.Shard_gen.to_database gen)
                  db))
          [ 2; 4 ]);
    (* --- base-tier cardinality accounting ---------------------------- *)
    test "sharded closure: base_cardinal tracks the store, not the batch"
      (fun () ->
        (* Regression: extend with a duplicate / retract with a
           non-member used to drift a shadow counter adjusted by
           [List.length facts]; the cardinal must always equal what the
           store actually holds. *)
        let open Lsdb_datalog in
        let edge = 3 in
        let rule =
          Rule.make ~name:"trans"
            ~body:
              [
                Atom.make (Term.Var 0) (Term.Const edge) (Term.Var 1);
                Atom.make (Term.Var 1) (Term.Const edge) (Term.Var 2);
              ]
            ~heads:[ Atom.make (Term.Var 0) (Term.Const edge) (Term.Var 2) ]
            ()
        in
        let store = Store.create ~shards:4 () in
        for i = 0 to 9 do
          ignore (Store.add store (Fact.make i edge (i + 1)))
        done;
        let c = Sharded_closure.compute ~rules:[ rule ] ~shards:4 store in
        Alcotest.(check int) "initial" 10 (Sharded_closure.base_cardinal c);
        (* One genuinely new fact, one duplicate the store refuses. *)
        let fresh = Fact.make 100 edge 101 in
        let dup = Fact.make 0 edge 1 in
        Alcotest.(check bool) "fresh accepted" true (Store.add store fresh);
        Alcotest.(check bool) "duplicate refused" false (Store.add store dup);
        let c = Sharded_closure.extend c [ fresh; dup ] in
        Alcotest.(check int) "after duplicate extend" 11
          (Sharded_closure.base_cardinal c);
        (* One member, one fact that was never in the base tier. *)
        let member = Fact.make 5 edge 6 in
        let ghost = Fact.make 500 edge 501 in
        Alcotest.(check bool) "member removed" true (Store.remove store member);
        Alcotest.(check bool) "ghost refused" false (Store.remove store ghost);
        let c = Sharded_closure.retract c [ member; ghost ] in
        Alcotest.(check int) "after non-member retract" 10
          (Sharded_closure.base_cardinal c);
        Alcotest.(check int) "agrees with the store" (Store.cardinal store)
          (Sharded_closure.base_cardinal c));
    (* --- database and federation plumbing -------------------------- *)
    test "database: set_shards re-partitions and invalidates" (fun () ->
        let db = Paper_examples.organization () in
        ignore (Database.closure db);
        let g0 = Database.generation db in
        Database.set_shards db 4;
        Alcotest.(check int) "shards" 4 (Database.shards db);
        Alcotest.(check bool) "generation bumped" true
          (Database.generation db > g0);
        let g1 = Database.generation db in
        Database.set_shards db 4;
        Alcotest.(check int) "restating is a no-op" g1 (Database.generation db);
        Database.set_shards db 0;
        Alcotest.(check int) "clamped to one shard" 1 (Database.shards db));
    test "database: copy carries the shard count" (fun () ->
        let db = Database.create ~shards:4 () in
        ignore (Database.insert_names db "A" "isa" "B");
        let c = Database.copy db in
        Alcotest.(check int) "shards" 4 (Database.shards c);
        Alcotest.(check bool) "content" true (holds c ("A", "isa", "B")));
    test "federation: ?shards partitions the merged heap" (fun () ->
        let member name facts =
          (name, db_of facts)
        in
        let members =
          [
            member "hr" [ ("JOHN", "in", "EMPLOYEE") ];
            member "org" [ ("EMPLOYEE", "isa", "PERSON") ];
          ]
        in
        let oracle = Federation.create members in
        let f = Federation.create ~shards:4 members in
        Alcotest.(check int) "merged heap is sharded" 4
          (Database.shards (Federation.database f));
        Alcotest.(check bool) "merged inference unchanged" true
          (closure_facts (Federation.database oracle)
          = closure_facts (Federation.database f));
        check_holds (Federation.database f) "cross-member inference"
          ("JOHN", "in", "PERSON"));
    (* --- storage layer --------------------------------------------- *)
    test "sharded heap: round-trips through shard files" (fun () ->
        let dir = Filename.temp_file "lsdb_shardheap" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let path = Filename.concat dir "facts" in
        let h = Lsdb_storage.Sharded_heap.open_ ~shards:4 path in
        Alcotest.(check int) "shard count" 4
          (Lsdb_storage.Sharded_heap.shard_count h);
        let facts =
          List.init 50 (fun i ->
              (Printf.sprintf "E%d" i, "REL", Printf.sprintf "E%d" (i + 1)))
        in
        List.iter
          (fun f ->
            Alcotest.(check bool) "fresh insert" true
              (Lsdb_storage.Sharded_heap.insert h f))
          facts;
        Alcotest.(check bool) "duplicate insert" false
          (Lsdb_storage.Sharded_heap.insert h (List.hd facts));
        Alcotest.(check int) "cardinal" 50
          (Lsdb_storage.Sharded_heap.cardinal h);
        Alcotest.(check int) "shard cardinals sum" 50
          (Array.fold_left ( + ) 0
             (Lsdb_storage.Sharded_heap.shard_cardinals h));
        Alcotest.(check bool) "delete" true
          (Lsdb_storage.Sharded_heap.delete h ("E0", "REL", "E1"));
        Lsdb_storage.Sharded_heap.close h;
        (* Reopen with the same shard count: everything is still there. *)
        let h = Lsdb_storage.Sharded_heap.open_ ~shards:4 path in
        Alcotest.(check int) "cardinal after reopen" 49
          (Lsdb_storage.Sharded_heap.cardinal h);
        Alcotest.(check bool) "membership after reopen" true
          (Lsdb_storage.Sharded_heap.mem h ("E7", "REL", "E8"));
        Alcotest.(check bool) "deletion survived" false
          (Lsdb_storage.Sharded_heap.mem h ("E0", "REL", "E1"));
        let db = Lsdb_storage.Sharded_heap.to_database h in
        Alcotest.(check int) "to_database carries the shard count" 4
          (Database.shards db);
        Alcotest.(check int) "to_database content"
          (49 + List.length Database.axiom_facts)
          (Database.base_cardinal db);
        Lsdb_storage.Sharded_heap.close h);
    test "sharded heap: one shard is a plain fact heap" (fun () ->
        let dir = Filename.temp_file "lsdb_shardheap1" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let path = Filename.concat dir "facts" in
        let h = Lsdb_storage.Sharded_heap.open_ path in
        ignore (Lsdb_storage.Sharded_heap.insert h ("A", "isa", "B"));
        Lsdb_storage.Sharded_heap.close h;
        (* The single-shard layout writes to [path] itself. *)
        let plain = Lsdb_storage.Fact_heap.open_ path in
        Alcotest.(check bool) "plain heap reads it" true
          (Lsdb_storage.Fact_heap.mem plain ("A", "isa", "B"));
        Lsdb_storage.Fact_heap.close plain);
    test "triple index: sharded trees answer like the flat trees" (fun () ->
        let db = Paper_examples.organization () in
        let oracle = Lsdb_storage.Triple_index.of_database db in
        Database.set_shards db 4;
        let sharded = Lsdb_storage.Triple_index.of_database db in
        Alcotest.(check int) "shard count carried over" 4
          (Lsdb_storage.Triple_index.shard_count sharded);
        Alcotest.(check int) "cardinal"
          (Lsdb_storage.Triple_index.cardinal oracle)
          (Lsdb_storage.Triple_index.cardinal sharded);
        let isa = Database.entity db "isa" in
        List.iter
          (fun pat ->
            Alcotest.(check bool) "same answers" true
              (List.sort Fact.compare
                 (Lsdb_storage.Triple_index.match_list oracle pat)
              = List.sort Fact.compare
                  (Lsdb_storage.Triple_index.match_list sharded pat)))
          [
            Store.pattern ();
            Store.pattern ~s:(Database.entity db "JOHN") ();
            Store.pattern ~r:isa ();
            Store.pattern ~t:(Database.entity db "EMPLOYEE") ();
            Store.pattern ~r:isa ~t:(Database.entity db "EMPLOYEE") ();
          ]);
    (* --- the workload generator ------------------------------------ *)
    test "shard_gen: deterministic for a fixed seed" (fun () ->
        let params =
          { Lsdb_workload.Shard_gen.default_params with facts = 2_000 }
        in
        let a =
          Lsdb_workload.Shard_gen.generate ~params
            (Lsdb_workload.Rng.create 42)
        in
        let b =
          Lsdb_workload.Shard_gen.generate ~params
            (Lsdb_workload.Rng.create 42)
        in
        Alcotest.(check bool) "same fact list" true
          (a.Lsdb_workload.Shard_gen.facts = b.Lsdb_workload.Shard_gen.facts);
        let c =
          Lsdb_workload.Shard_gen.generate ~params
            (Lsdb_workload.Rng.create 43)
        in
        Alcotest.(check bool) "different seed differs" false
          (a.Lsdb_workload.Shard_gen.facts = c.Lsdb_workload.Shard_gen.facts));
    test "shard_gen: skew concentrates sources, closure stays identical"
      (fun () ->
        let params =
          {
            Lsdb_workload.Shard_gen.default_params with
            facts = 3_000;
            entities = 500;
            memberships = 60;
          }
        in
        let gen =
          Lsdb_workload.Shard_gen.generate ~params
            (Lsdb_workload.Rng.create 7)
        in
        let oracle = Lsdb_workload.Shard_gen.to_database gen in
        let db = Lsdb_workload.Shard_gen.to_database ~shards:8 gen in
        Alcotest.(check int) "same base heap" (Database.base_cardinal oracle)
          (Database.base_cardinal db);
        check_same_closure "workload closure" oracle db;
        (* Zipf skew: the busiest source entity must own well more than
           the uniform share of the flat graph. *)
        let store = Database.store oracle in
        let busiest = ref 0 in
        Seq.iter
          (fun e ->
            let d = Store.count_fast store (Store.pattern ~s:e ()) in
            if d > !busiest then busiest := d)
          (Store.active_entities store);
        Alcotest.(check bool) "hot key exists" true
          (!busiest > 3 * (3_000 / 500)));
  ]
