(* EX5: every inference example in §3 of the paper, verified mechanically
   against the closure of the reconstructed organization database. *)

open Lsdb
open Testutil

let tests =
  [
    test "§3.1 generalization, source rule: managers work for departments" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "manager works-for department"
          ("MANAGER", "WORKS-FOR", "DEPARTMENT"));
    test "§3.1 generalization, target rule: employees earn compensation" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "employee earns compensation"
          ("EMPLOYEE", "EARNS", "COMPENSATION"));
    test "§3.1 generalization, relationship rule: John is paid by Shipping" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "john is-paid-by shipping" ("JOHN", "IS-PAID-BY", "SHIPPING"));
    test "§3.1 transitivity of generalization" (fun () ->
        let db = db_of [ ("A", "isa", "B"); ("B", "isa", "C"); ("C", "isa", "D") ] in
        check_holds db "A isa C" ("A", "isa", "C");
        check_holds db "A isa D" ("A", "isa", "D"));
    test "§3.2 membership, source rule: John works for some department" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "john works-for department" ("JOHN", "WORKS-FOR", "DEPARTMENT"));
    test "§3.2 membership, target rule: Tom works for some department" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "tom works-for department" ("TOM", "WORKS-FOR", "DEPARTMENT"));
    test "§3.2 members are instances of more general entities" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "isa", "PERSON") ] in
        check_holds db "john in person" ("JOHN", "in", "PERSON"));
    test "§2.2 class relationships do not propagate to members" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "the aggregate fact itself" ("EMPLOYEE", "TOTAL-NUMBER", "180");
        check_not_holds db "john does not have TOTAL-NUMBER 180"
          ("JOHN", "TOTAL-NUMBER", "180"));
    test "§3.3 synonym substitution: Johnny earns $25000" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "johnny earns" ("JOHNNY", "EARNS", "$25000"));
    test "§3.3 synonymy is symmetric and transitive" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "symmetry" ("JOHNNY", "syn", "JOHN");
        (* WAGE ≈ PAY inferred from SALARY ≈ WAGE and SALARY ≈ PAY *)
        check_holds db "transitivity through the hub" ("WAGE", "syn", "PAY"));
    test "§3.3 synonymy is mutual generalization" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "john ⊑ johnny" ("JOHN", "isa", "JOHNNY");
        check_holds db "johnny ⊑ john" ("JOHNNY", "isa", "JOHN"));
    test "§3.3 mutual generalization implies synonymy" (fun () ->
        let db = db_of [ ("CAR", "isa", "AUTOMOBILE"); ("AUTOMOBILE", "isa", "CAR") ] in
        check_holds db "syn introduced" ("CAR", "syn", "AUTOMOBILE"));
    test "§3.4 inversion: course taught-by instructor" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "class-level inverse" ("COURSE", "TAUGHT-BY", "INSTRUCTOR");
        check_holds db "instance-level inverse" ("CS100", "TAUGHT-BY", "HARRY"));
    test "§3.4 inversion facts come in pairs via the (↔,↔,↔) axiom" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "taught-by ↔ teaches" ("TAUGHT-BY", "inv", "TEACHES"));
    test "§3.4 the inverse direction derives facts too" (fun () ->
        let db =
          db_of [ ("COURSE", "TAUGHT-BY", "INSTRUCTOR"); ("TEACHES", "inv", "TAUGHT-BY") ]
        in
        check_holds db "teaches derived" ("INSTRUCTOR", "TEACHES", "COURSE"));
    test "§3.5 ⊥ is symmetric via the (⊥,↔,⊥) axiom" (fun () ->
        let db = Paper_examples.organization () in
        check_holds db "hates ⊥ loves" ("HATES", "contra", "LOVES"));
    test "closure caching: inserts extend, removals retract, never recompute"
      (fun () ->
        let db = Paper_examples.organization () in
        ignore (Database.closure db);
        ignore (Database.closure db);
        Alcotest.(check int) "one computation" 1 (Database.closure_computations db);
        ignore (Database.insert_names db "NEW" "in" "EMPLOYEE");
        check_holds db "extension sees the consequences" ("NEW", "EARNS", "SALARY");
        Alcotest.(check int) "still one computation" 1 (Database.closure_computations db);
        Alcotest.(check int) "one extension" 1 (Database.closure_extensions db);
        ignore (Database.remove_names db "NEW" "in" "EMPLOYEE");
        check_not_holds db "retraction deletes the consequences"
          ("NEW", "EARNS", "SALARY");
        Alcotest.(check int)
          "removal retracts instead of recomputing" 1
          (Database.closure_computations db);
        Alcotest.(check int) "one retraction" 1 (Database.closure_retractions db);
        Alcotest.(check bool)
          "retraction built the support index" true
          (Database.support_size db > 0));
    test "incremental extension equals recomputation from scratch" (fun () ->
        let base = Paper_examples.organization () in
        let additions =
          [
            ("SUE", "in", "MANAGER");
            ("SUE", "syn", "SUSAN");
            ("MANAGER", "LEADS", "TEAM");
            ("LEADS", "inv", "LED-BY");
            ("SUE", "EARNS", "$44000");
          ]
        in
        (* Path A: closure first, then insert one by one, extending each
           time. *)
        let incremental = Paper_examples.organization () in
        ignore (Database.closure incremental);
        List.iter
          (fun (s, r, t) ->
            ignore (Database.insert_names incremental s r t);
            ignore (Database.closure incremental))
          additions;
        (* Path B: insert everything, then compute once from scratch. *)
        List.iter (fun (s, r, t) -> ignore (Database.insert_names base s r t)) additions;
        Database.invalidate base;
        let dump db =
          Closure.to_seq (Database.closure db)
          |> Seq.map (fun f -> Fact.names (Database.symtab db) f)
          |> List.of_seq |> List.sort compare
        in
        Alcotest.(check bool) "same closure" true (dump incremental = dump base);
        Alcotest.(check bool) "really was incremental" true
          (Database.closure_extensions incremental >= 1));
    test "derived facts disappear when their premises are removed" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        check_holds db "derived" ("JOHN", "EARNS", "SALARY");
        ignore (Database.remove_names db "JOHN" "in" "EMPLOYEE");
        check_not_holds db "gone after removal" ("JOHN", "EARNS", "SALARY"));
    test "provenance is available for derived facts" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        let closure = Database.closure db in
        match Closure.provenance closure (fact db ("JOHN", "EARNS", "SALARY")) with
        | Some (rule, premises) ->
            Alcotest.(check string) "rule" "mem-source" rule;
            Alcotest.(check int) "premises" 2 (List.length premises)
        | None -> Alcotest.fail "no provenance");
    test "excluding a builtin rule disables its inferences" (fun () ->
        let db = db_of [ ("JOHN", "in", "EMPLOYEE"); ("EMPLOYEE", "EARNS", "SALARY") ] in
        ignore (Database.exclude db "mem-source");
        check_not_holds db "no membership inference" ("JOHN", "EARNS", "SALARY");
        ignore (Database.include_rule db "mem-source");
        check_holds db "restored" ("JOHN", "EARNS", "SALARY"));
    test "inversion is stratified: no ∀/∃ flip through generalized endpoints"
      (fun () ->
        (* Executing the §3 rules as printed would derive, in the music
           database, (MOZART, FAVORITE-MUSIC, PC#9-WAM): John's favorite
           inverts to (PC#9-WAM, FAVORITE-OF, JOHN), generalizes to
           (PC#9-WAM, FAVORITE-OF, PERSON) — favorite of SOME person —
           and re-inverting that reads it as EVERY person's favorite,
           which then specializes to Mozart. Inversion therefore applies
           to stored facts only. *)
        let db = Paper_examples.music () in
        check_holds db "sound inverse" ("PC#9-WAM", "FAVORITE-OF", "JOHN");
        check_holds db "∃-generalization fine" ("PC#9-WAM", "FAVORITE-OF", "PERSON");
        check_not_holds db "no ∀ flip" ("MOZART", "FAVORITE-MUSIC", "PC#9-WAM");
        check_not_holds db "no ∀ flip via PERSON" ("PERSON", "FAVORITE-MUSIC", "PC#9-WAM"));
    test "user rules participate in the closure" (fun () ->
        let db = db_of [ ("REX", "in", "DOG") ] in
        let rule =
          Rule.make ~name:"dogs-bark"
            ~body:
              [ Template.make (Template.Var "x") (Template.Ent Entity.member)
                  (Template.Ent (Database.entity db "DOG")) ]
            ~heads:
              [ Template.make (Template.Var "x")
                  (Template.Ent (Database.entity db "CAN"))
                  (Template.Ent (Database.entity db "BARK")) ]
            ()
        in
        Database.add_rule db rule;
        check_holds db "rex can bark" ("REX", "CAN", "BARK"));
  ]
