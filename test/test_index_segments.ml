(* Frozen/delta posting segments: the two-tier index's content
   neutrality. Freezing, tombstoning and resurrection must never change
   what the index contains — only how it is laid out — and the packed
   tiers' O(1) counts and galloping intersection must agree with naive
   scans. Every test restores the process-global freeze policy: the
   suites share one process. *)

open Testutil
module Index = Lsdb_datalog.Index
module Triple = Lsdb_datalog.Triple

let with_policy p f =
  let saved = Index.policy () in
  Index.set_policy p;
  Fun.protect ~finally:(fun () -> Index.set_policy saved) f

let t3 (s, r, t) = Triple.make s r t

let contents idx =
  let acc = ref [] in
  Index.iter (fun tr -> acc := tr :: !acc) idx;
  List.sort Triple.compare !acc

let index_of triples =
  let idx = Index.create () in
  List.iter (fun tr -> ignore (Index.add idx (t3 tr))) triples;
  idx

(* A deterministic pseudo-random graph: no Random state shared with the
   other suites. *)
let lcg = ref 42

let rand n =
  lcg := (!lcg * 1103515245) + 12345;
  (!lcg lsr 7) mod n

let random_triples ~entities ~rels n =
  List.init n (fun _ -> (rand entities, rand rels, rand entities))

let tests =
  [
    test "freeze is content-neutral" (fun () ->
        with_policy Index.Never @@ fun () ->
        let triples = random_triples ~entities:30 ~rels:4 300 in
        let idx = index_of triples in
        let before = contents idx in
        Index.freeze idx;
        Alcotest.(check bool) "same content" true (before = contents idx);
        Alcotest.(check int) "cardinal" (List.length before)
          (Index.cardinal idx);
        let stats = Index.tier_stats idx in
        Alcotest.(check int) "all frozen" (List.length before)
          stats.Index.frozen_live;
        Alcotest.(check int) "no delta" 0
          (stats.Index.delta_live + stats.Index.delta_dead));
    test "remove then re-add across the freeze boundary" (fun () ->
        with_policy Index.Never @@ fun () ->
        let idx = index_of [ (1, 2, 3); (1, 2, 4); (5, 2, 3) ] in
        Index.freeze idx;
        (* Tombstone a frozen triple, resurrect it in place. *)
        Alcotest.(check bool) "removed" true (Index.remove idx (t3 (1, 2, 3)));
        Alcotest.(check bool) "gone" false (Index.mem idx (t3 (1, 2, 3)));
        Alcotest.(check int) "count_s down" 1 (Index.count_s idx 1);
        Alcotest.(check bool) "re-added" true (Index.add idx (t3 (1, 2, 3)));
        Alcotest.(check bool) "back" true (Index.mem idx (t3 (1, 2, 3)));
        Alcotest.(check int) "count_s restored" 2 (Index.count_s idx 1);
        Alcotest.(check bool) "no duplicate" true
          (contents idx = List.map t3 [ (1, 2, 3); (1, 2, 4); (5, 2, 3) ]);
        (* Same dance when the fact is delta-resident at removal time. *)
        ignore (Index.add idx (t3 (7, 2, 3)));
        Alcotest.(check bool) "delta removed" true
          (Index.remove idx (t3 (7, 2, 3)));
        Alcotest.(check bool) "delta re-added" true
          (Index.add idx (t3 (7, 2, 3)));
        Index.freeze idx;
        Alcotest.(check bool) "post-freeze content" true
          (contents idx
          = List.map t3 [ (1, 2, 3); (1, 2, 4); (5, 2, 3); (7, 2, 3) ]));
    test "freeze with a 100%-dead delta" (fun () ->
        with_policy Index.Never @@ fun () ->
        let idx = index_of [ (1, 1, 1); (2, 2, 2) ] in
        Index.freeze idx;
        (* Fill the delta, then kill all of it. *)
        let doomed = [ (3, 3, 3); (4, 4, 4); (5, 5, 5) ] in
        List.iter (fun tr -> ignore (Index.add idx (t3 tr))) doomed;
        List.iter (fun tr -> ignore (Index.remove idx (t3 tr))) doomed;
        Index.freeze idx;
        Alcotest.(check bool) "only survivors" true
          (contents idx = List.map t3 [ (1, 1, 1); (2, 2, 2) ]);
        let stats = Index.tier_stats idx in
        Alcotest.(check int) "tombstones dropped" 0 stats.Index.frozen_dead;
        Alcotest.(check int) "delta empty" 0
          (stats.Index.delta_live + stats.Index.delta_dead);
        (* Degenerate case: everything ever added is dead. *)
        let idx = index_of [ (9, 9, 9) ] in
        ignore (Index.remove idx (t3 (9, 9, 9)));
        Index.freeze idx;
        Alcotest.(check int) "empty index" 0 (Index.cardinal idx);
        Alcotest.(check bool) "empty iteration" true (contents idx = []));
    test "counts are exact on every tier mix" (fun () ->
        with_policy Index.Never @@ fun () ->
        let triples = random_triples ~entities:12 ~rels:3 400 in
        let idx = index_of triples in
        Index.freeze idx;
        (* Tombstone some frozen facts, add fresh delta, kill part of it. *)
        let live = contents idx in
        List.iteri
          (fun i tr -> if i mod 5 = 0 then ignore (Index.remove idx tr))
          live;
        List.iter
          (fun tr -> ignore (Index.add idx (t3 tr)))
          (random_triples ~entities:14 ~rels:3 120);
        List.iteri
          (fun i tr -> if i mod 7 = 0 then ignore (Index.remove idx tr))
          (contents idx);
        let naive ~s ~r ~tgt =
          let n = ref 0 in
          Index.iter
            (fun (tr : Triple.t) ->
              if
                (match s with None -> true | Some v -> v = tr.Triple.s)
                && (match r with None -> true | Some v -> v = tr.Triple.r)
                && match tgt with None -> true | Some v -> v = tr.Triple.t
              then incr n)
            idx;
          !n
        in
        let check_pat s r tgt =
          Alcotest.(check int)
            (Printf.sprintf "count (%s,%s,%s)"
               (match s with Some v -> string_of_int v | None -> "_")
               (match r with Some v -> string_of_int v | None -> "_")
               (match tgt with Some v -> string_of_int v | None -> "_"))
            (naive ~s ~r ~tgt)
            (Index.count idx ~s ~r ~tgt)
        in
        for e = 0 to 13 do
          check_pat (Some e) None None;
          check_pat None None (Some e);
          Alcotest.(check int) "count_s" (naive ~s:(Some e) ~r:None ~tgt:None)
            (Index.count_s idx e);
          Alcotest.(check int) "count_t" (naive ~s:None ~r:None ~tgt:(Some e))
            (Index.count_t idx e);
          for r = 0 to 2 do
            check_pat (Some e) (Some r) None;
            check_pat None (Some r) (Some e)
          done
        done;
        check_pat None None None);
    test "intersect agrees with the naive oracle" (fun () ->
        with_policy Index.Never @@ fun () ->
        let entities = 16 and rels = 3 in
        for round = 1 to 12 do
          lcg := round * 7919;
          let idx = index_of (random_triples ~entities ~rels 250) in
          (* Exercise every tier mix: fully delta, fully frozen, frozen
             with tombstones + live delta on top. *)
          if round mod 3 > 0 then Index.freeze idx;
          if round mod 3 = 2 then begin
            List.iteri
              (fun i tr -> if i mod 4 = 0 then ignore (Index.remove idx tr))
              (contents idx);
            List.iter
              (fun tr -> ignore (Index.add idx (t3 tr)))
              (random_triples ~entities ~rels 80)
          end;
          let naive h1 h2 =
            List.filter
              (fun v ->
                Index.mem idx (Index.hinge_triple h1 v)
                && Index.mem idx (Index.hinge_triple h2 v))
              (List.init entities Fun.id)
          in
          let galloped h1 h2 =
            let acc = ref [] in
            Index.intersect idx h1 h2 (fun v -> acc := v :: !acc);
            List.sort_uniq Int.compare !acc
          in
          let hinges =
            List.concat_map
              (fun e ->
                List.concat_map
                  (fun r ->
                    [ Index.Out { s = e; r }; Index.In { r; t = e } ])
                  (List.init rels Fun.id)
                @ [ Index.Via { s = e; t = (e + 5) mod entities } ])
              (List.init entities Fun.id)
          in
          List.iter
            (fun h1 ->
              List.iter
                (fun h2 ->
                  let got = galloped h1 h2 in
                  Alcotest.(check bool) "intersection matches oracle" true
                    (got = naive h1 h2);
                  (* Exactly once each: sort_uniq must be a no-op. *)
                  let raw = ref 0 in
                  Index.intersect idx h1 h2 (fun _ -> incr raw);
                  Alcotest.(check int) "no duplicate emissions"
                    (List.length got) !raw)
                (List.filteri (fun i _ -> i mod 17 = round mod 17) hinges))
            (List.filteri (fun i _ -> i mod 13 = round mod 13) hinges)
        done);
    test "watermark quiesce freezes and stays content-neutral" (fun () ->
        with_policy Index.Watermark @@ fun () ->
        let saved = Index.min_delta () in
        Index.set_min_delta 64;
        Fun.protect ~finally:(fun () -> Index.set_min_delta saved)
        @@ fun () ->
        let idx = Index.create () in
        let triples = random_triples ~entities:40 ~rels:4 2_000 in
        List.iter
          (fun tr ->
            ignore (Index.add idx (t3 tr));
            Index.quiesce idx)
          triples;
        let expected =
          List.sort_uniq Triple.compare (List.map t3 triples)
        in
        Alcotest.(check bool) "content intact" true (contents idx = expected);
        Alcotest.(check bool) "watermark fired" true
          ((Index.tier_stats idx).Index.freezes > 0));
    test "bulk_add fast path matches the add loop" (fun () ->
        let triples =
          Array.of_list (random_triples ~entities:25 ~rels:3 600)
        in
        let arr () = Array.map t3 triples in
        let slow, slow_fresh =
          with_policy Index.Never @@ fun () ->
          let idx = Index.create () in
          let fresh = Index.bulk_add idx (arr ()) in
          (contents idx, fresh)
        in
        let fast, fast_fresh =
          with_policy Index.Always @@ fun () ->
          let idx = Index.create () in
          let fresh = Index.bulk_add idx (arr ()) in
          (contents idx, fresh)
        in
        Alcotest.(check bool) "same content" true (slow = fast);
        Alcotest.(check bool) "same fresh list, same order" true
          (slow_fresh = fast_fresh));
  ]
