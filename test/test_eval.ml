open Lsdb
open Testutil

let tests =
  [
    test "§2.7 all books template" (fun () ->
        let db = Paper_examples.library () in
        check_answers db "books" "(?y, in, BOOK)"
          [ "WAR-AND-PIECES"; "OCAML-IN-ANGER"; "DUST-JACKET" ]);
    test "§2.7 self-citations via repeated variables" (fun () ->
        let db = Paper_examples.library () in
        check_answers db "self-citing books" "(?x, CITES, ?x)" [ "WAR-AND-PIECES" ]);
    test "§2.7 authors who cite themselves" (fun () ->
        let db = Paper_examples.library () in
        check_answers db "self-citing authors"
          "exists x . (?x, in, BOOK) & (?y, in, PERSON) & (?x, CITES, ?x) & (?x, AUTHOR, ?y)"
          [ "ALICE" ]);
    test "§2.7 proposition queries" (fun () ->
        let db = db_of [ ("JOHN", "LIKES", "FELIX"); ("FELIX", "LIKES", "JOHN") ] in
        check_proposition db "mutual" "(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)" true;
        check_proposition db "false conjunct"
          "(JOHN, LIKES, FELIX) & (JOHN, LIKES, MARY)" false);
    test "§2.7 negation via complementary relationship" (fun () ->
        let db = Paper_examples.library () in
        (* Books whose author is not ALICE: (x,AUTHOR,y) ∧ (y,∈,PERSON) ∧
           (y,≠,ALICE). The (y,∈,PERSON) conjunct is the paper's own
           formulation — and necessary: membership inference also derives
           (x, AUTHOR, PERSON), which would otherwise satisfy ≠ ALICE. *)
        check_answers db "books not by alice"
          "(?x, in, BOOK) & exists y . (?x, AUTHOR, ?y) & (?y, in, PERSON) & (?y, neq, ALICE)"
          [ "OCAML-IN-ANGER"; "DUST-JACKET" ]);
    test "§3.6 employees earning over 20000" (fun () ->
        let db = Paper_examples.organization () in
        check_answers db "high earners"
          "(?z, in, EMPLOYEE) & exists y . (?z, EARNS, ?y) & (?y, gt, 20000)"
          [ "JOHN"; "JOHNNY" ]);
    test "conjunct order does not matter (dynamic reordering)" (fun () ->
        let db = Paper_examples.organization () in
        check_answers db "comparator first"
          "exists y . (?y, gt, 20000) & (?z, EARNS, ?y) & (?z, in, EMPLOYEE)"
          [ "JOHN"; "JOHNNY" ]);
    test "disjunction unions answers" (fun () ->
        let db = db_of [ ("A", "R", "X"); ("B", "S", "X") ] in
        check_answers db "either" "(?v, R, X) | (?v, S, X)" [ "A"; "B" ]);
    test "disjunct failing to bind a free variable is unsafe" (fun () ->
        let db = db_of [ ("A", "R", "X") ] in
        Alcotest.(check bool) "raises Unsafe" true
          (try
             ignore (Eval.eval db (q db "(?v, R, X) | (A, R, X)"));
             false
           with Eval.Unsafe _ -> true));
    test "existential projection" (fun () ->
        let db = Paper_examples.payroll () in
        check_answers db "who earns anything" "exists s . (?who, EARNS, ?s) & (?s, in, SALARY)"
          [ "JOHN"; "TOM"; "MARY" ]);
    test "universal quantification over the active domain" (fun () ->
        (* Everybody likes PIZZA; check ∀x (x ∈ PERSON ⇒ …) shaped via
           conjunction: persons p such that ∀f (f ∈ FOOD implies p LIKES f)
           cannot be expressed without negation, so test the plain form:
           the proposition ∀x . (x, ⊑, Δ) holds (every entity is below Δ). *)
        let db = db_of [ ("A", "R", "B") ] in
        check_proposition db "everything ⊑ Δ" "forall x . (?x, isa, top)" true;
        check_proposition db "not everything ⊑ A" "forall x . (?x, isa, A)" false);
    test "forall with unbound companions enumerates the active domain" (fun () ->
        (* Every active entity points to HUB via R, so ∀x (x, R, ?y) has
           exactly y = HUB. *)
        let db =
          db_of
            [
              ("A", "R", "HUB");
              ("B", "R", "HUB");
              ("R", "R", "HUB");
              ("HUB", "R", "HUB");
              (* The axiom facts keep ↔ and ⊥ in the active domain; they
                 must point at the hub too for the universal to hold. *)
              ("inv", "R", "HUB");
              ("contra", "R", "HUB");
            ]
        in
        check_answers db "hub only" "forall x . (?x, R, ?y)" [ "HUB" ]);
    test "rows are distinct" (fun () ->
        let db = db_of [ ("A", "R", "B"); ("A", "S", "B") ] in
        (* Two derivations of the same binding for ?x. *)
        check_answers db "deduplicated" "(A, R, ?x) | (A, S, ?x)" [ "B" ]);
    test "two-variable answers" (fun () ->
        let db = db_of [ ("A", "R", "B"); ("C", "R", "D") ] in
        let answer = Eval.eval db (q db "(?x, R, ?y)") in
        Alcotest.(check int) "two rows" 2 (List.length answer.Eval.rows);
        Alcotest.(check (list string)) "vars" [ "x"; "y" ] answer.Eval.vars);
    test "quantified variable shadows an outer variable of the same name" (fun () ->
        let db = db_of [ ("A", "R", "B"); ("B", "S", "C") ] in
        (* outer ?x from the second atom; inner ∃x over the first. *)
        check_answers db "shadowing" "(exists x . (?x, R, B)) & (B, S, ?x)" [ "C" ]);
    test "queries over inferred and virtual facts combine" (fun () ->
        let db = Paper_examples.organization () in
        (* Who is paid by SHIPPING? inferred via WORKS-FOR ⊑ IS-PAID-BY. *)
        check_answers db "paid by shipping" "(?x, IS-PAID-BY, SHIPPING)"
          [ "JOHN"; "JOHNNY"; "TOM" ]);
    test "column on multi-variable answers raises" (fun () ->
        let db = db_of [ ("A", "R", "B") ] in
        let answer = Eval.eval db (q db "(?x, R, ?y)") in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Eval.column answer);
             false
           with Invalid_argument _ -> true));
    test "selectivity ordering enumerates the bound conjunct first" (fun () ->
        (* 40 HUB facts vs one SEL fact: cost must rank the selective
           conjunct first, so the planner walks ~2 candidates instead of
           ~41. The regression is observable through the candidate
           counter, which both orders bump. *)
        let facts = ref [ ("A1", "SEL", "C") ] in
        for i = 1 to 40 do
          facts :=
            (Printf.sprintf "A%d" i, "HUB", Printf.sprintf "B%d" i) :: !facts
        done;
        let db = db_of !facts in
        let query = q db "(?a, HUB, ?b) & (?a, SEL, ?c)" in
        let candidates () =
          Lsdb_obs.Metrics.counter_value
            (Lsdb_obs.Metrics.counter "lsdb_eval_candidates_total")
        in
        let run ~reorder =
          let before = candidates () in
          let answer = Eval.eval ~reorder db query in
          (List.sort compare (Eval.rows_named (Database.symtab db) answer),
           candidates () - before)
        in
        let planned_rows, planned_walked = run ~reorder:true in
        let naive_rows, naive_walked = run ~reorder:false in
        Alcotest.(check (list (list string))) "same answers" naive_rows planned_rows;
        Alcotest.(check (list (list string))) "the one join row"
          [ [ "A1"; "B1"; "C" ] ] planned_rows;
        Alcotest.(check bool)
          (Printf.sprintf "planned %d < naive %d" planned_walked naive_walked)
          true
          (planned_walked < naive_walked));
  ]
