type kind = Counter | Gauge | Histogram

(* Histogram cell layout: [0 .. nb-1] per-bucket (non-cumulative) counts
   for the finite upper bounds, [nb] the +Inf overflow, [nb+1] the total
   count, [nb+2] the sum in integer nanoseconds. Counters and gauges use
   a single cell. *)
type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by label name *)
  help : string;
  kind : kind;
  buckets : float array;  (* finite upper bounds, seconds; [||] unless histogram *)
  cells : int Atomic.t array;
}

type counter = metric
type gauge = metric
type histogram = metric

type t = {
  lock : Mutex.t;
  tbl : (string * (string * string) list, metric) Hashtbl.t;
}

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ()

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let now () = Unix.gettimeofday ()

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let size_buckets =
  [| 1.0; 8.0; 64.0; 512.0; 4096.0; 32768.0; 262144.0; 2097152.0 |]

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let register registry ~help ~labels ~kind ~buckets name =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let key = (name, labels) in
  Mutex.lock registry.lock;
  let metric =
    match Hashtbl.find_opt registry.tbl key with
    | Some existing ->
        if existing.kind <> kind then begin
          Mutex.unlock registry.lock;
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name existing.kind))
        end;
        existing
    | None ->
        let ncells =
          match kind with Histogram -> Array.length buckets + 3 | _ -> 1
        in
        let metric =
          { name; labels; help; kind; buckets;
            cells = Array.init ncells (fun _ -> Atomic.make 0) }
        in
        Hashtbl.add registry.tbl key metric;
        metric
  in
  Mutex.unlock registry.lock;
  metric

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~help ~labels ~kind:Counter ~buckets:[||] name

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  register registry ~help ~labels ~kind:Gauge ~buckets:[||] name

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = default_buckets) name =
  let ok = ref (Array.length buckets > 0) in
  Array.iteri
    (fun i b -> if i > 0 && buckets.(i - 1) >= b then ok := false)
    buckets;
  if not !ok then
    invalid_arg "Metrics.histogram: buckets must be non-empty and strictly increasing";
  register registry ~help ~labels ~kind:Histogram ~buckets name

let incr (m : counter) = Atomic.incr m.cells.(0)

let add (m : counter) n =
  if n < 0 then invalid_arg "Metrics.add: counters only go up";
  ignore (Atomic.fetch_and_add m.cells.(0) n)

let set (m : gauge) v = Atomic.set m.cells.(0) v
let gauge_add (m : gauge) n = ignore (Atomic.fetch_and_add m.cells.(0) n)

let observe (m : histogram) seconds =
  let nb = Array.length m.buckets in
  let rec slot i = if i >= nb || seconds <= m.buckets.(i) then i else slot (i + 1) in
  Atomic.incr m.cells.(slot 0);
  Atomic.incr m.cells.(nb + 1);
  let ns = int_of_float (seconds *. 1e9) in
  ignore (Atomic.fetch_and_add m.cells.(nb + 2) (max 0 ns))

let time (m : histogram) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    match f () with
    | result ->
        observe m (now () -. t0);
        result
    | exception e ->
        observe m (now () -. t0);
        raise e
  end

let counter_value (m : counter) = Atomic.get m.cells.(0)
let gauge_value (m : gauge) = Atomic.get m.cells.(0)

let histogram_count (m : histogram) =
  Atomic.get m.cells.(Array.length m.buckets + 1)

let histogram_sum (m : histogram) =
  float_of_int (Atomic.get m.cells.(Array.length m.buckets + 2)) /. 1e9

let bucket_counts (m : histogram) =
  let nb = Array.length m.buckets in
  let cumulative = ref 0 in
  let finite =
    List.init nb (fun i ->
        cumulative := !cumulative + Atomic.get m.cells.(i);
        (m.buckets.(i), !cumulative))
  in
  finite @ [ (infinity, !cumulative + Atomic.get m.cells.(nb)) ]

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let sorted_metrics registry =
  Mutex.lock registry.lock;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) registry.tbl [] in
  Mutex.unlock registry.lock;
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    all

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

(* "0.001" rather than "1e-03": Prometheus accepts both, humans prefer
   the former; trailing zeros are trimmed for stability. *)
let render_float f =
  if f = infinity then "+Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.9f" f in
    let len = ref (String.length s) in
    while !len > 1 && s.[!len - 1] = '0' do decr len done;
    if !len > 1 && s.[!len - 1] = '.' then decr len;
    String.sub s 0 !len
  end

(* GC gauges, refreshed at every scrape and at bench-record time so
   perf gates can compare allocation rate, not just wall clock.
   [minor_words] is monotone (a counter in gauge clothing);
   [heap_words] is the current major heap size. *)
let sample_gc ?registry () =
  let st = Gc.quick_stat () in
  set
    (gauge ?registry
       ~help:"Minor-heap bytes allocated since program start"
       "lsdb_gc_minor_allocated_bytes_total")
    (int_of_float (st.Gc.minor_words *. 8.0));
  set
    (gauge ?registry ~help:"Major heap size in bytes"
       "lsdb_gc_major_heap_bytes")
    (st.Gc.heap_words * 8);
  set
    (gauge ?registry ~help:"Major GC collections since program start"
       "lsdb_gc_major_collections_total")
    st.Gc.major_collections

let expose ?(registry = default) () =
  sample_gc ~registry ();
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.name <> !last_family then begin
        last_family := m.name;
        if m.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.kind))
      end;
      match m.kind with
      | Counter | Gauge ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels)
               (Atomic.get m.cells.(0)))
      | Histogram ->
          List.iter
            (fun (le, count) ->
              let labels = m.labels @ [ ("le", render_float le) ] in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name (render_labels labels)
                   count))
            (bucket_counts m);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.name (render_labels m.labels)
               (render_float (histogram_sum m)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels)
               (histogram_count m)))
    (sorted_metrics registry);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dump_json ?(registry = default) () =
  sample_gc ~registry ();
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"metrics\": [";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string buf ", ";
      let labels =
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             m.labels)
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\": \"%s\", \"kind\": \"%s\", \"labels\": {%s}, "
           (json_escape m.name) (kind_name m.kind) labels);
      (match m.kind with
      | Counter | Gauge ->
          Buffer.add_string buf
            (Printf.sprintf "\"value\": %d}" (Atomic.get m.cells.(0)))
      | Histogram ->
          Buffer.add_string buf
            (Printf.sprintf "\"count\": %d, \"sum\": %.9f, \"buckets\": [%s]}"
               (histogram_count m) (histogram_sum m)
               (String.concat ", "
                  (List.map
                     (fun (le, count) ->
                       Printf.sprintf "{\"le\": %s, \"count\": %d}"
                         (if le = infinity then "\"+Inf\""
                          else Printf.sprintf "%.9g" le)
                         count)
                     (bucket_counts m))))))
    (sorted_metrics registry);
  Buffer.add_string buf "]}";
  Buffer.contents buf

let reset ?(registry = default) () =
  Mutex.lock registry.lock;
  Hashtbl.iter
    (fun _ m -> Array.iter (fun cell -> Atomic.set cell 0) m.cells)
    registry.tbl;
  Mutex.unlock registry.lock
