type span = {
  span_name : string;
  offset : float;
  duration : float;
  depth : int;
  meta : (string * string) list;
}

type profile = {
  id : int;
  label : string;
  started_at : float;
  total : float;
  spans : span list;
  dropped_spans : int;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* The threshold is read from whichever domain completes a profile;
   a float ref would be a data race under the memory model. Store
   nanoseconds in an atomic int. *)
let slow_ns = Atomic.make max_int

let set_slow_threshold seconds =
  Atomic.set slow_ns
    (if seconds = infinity then max_int
     else int_of_float (Float.max 0. seconds *. 1e9))

let slow_threshold () =
  let ns = Atomic.get slow_ns in
  if ns = max_int then infinity else float_of_int ns /. 1e9

let max_spans_per_profile = 512
let recent_capacity = 64
let slowlog_capacity = 32

(* An open span on the per-domain stack: completed child spans have
   already been emitted; [meta] grows via [annotate]. *)
type open_span = {
  os_name : string;
  os_start : float;
  os_depth : int;
  mutable os_meta : (string * string) list;
}

type ctx = {
  c_label : string;
  c_started : float;
  mutable c_spans_rev : span list;
  mutable c_count : int;
  mutable c_stack : open_span list;
}

let ctx_key : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let next_id = Atomic.make 0

(* Completed-profile rings, shared across domains. *)
let rings_lock = Mutex.create ()
let recent_ring : profile list ref = ref []
let slow_ring : profile list ref = ref []

let push_bounded ring capacity profile =
  ring := profile :: (if List.length !ring >= capacity then
                        List.filteri (fun i _ -> i < capacity - 1) !ring
                      else !ring)

let publish profile =
  Mutex.lock rings_lock;
  push_bounded recent_ring recent_capacity profile;
  let threshold = Atomic.get slow_ns in
  if threshold <> max_int
     && profile.total *. 1e9 >= float_of_int threshold then
    push_bounded slow_ring slowlog_capacity profile;
  Mutex.unlock rings_lock

let with_query label f =
  if not (Atomic.get enabled_flag) then f ()
  else
    let slot = Domain.DLS.get ctx_key in
    match !slot with
    | Some _ ->
        (* Already profiling on this domain: the nested query is a span. *)
        let ctx = Option.get !slot in
        let t0 = Metrics.now () in
        let depth = List.length ctx.c_stack in
        let finish () =
          if ctx.c_count < max_spans_per_profile then begin
            ctx.c_spans_rev <-
              { span_name = "query:" ^ label; offset = t0 -. ctx.c_started;
                duration = Metrics.now () -. t0; depth; meta = [] }
              :: ctx.c_spans_rev
          end;
          ctx.c_count <- ctx.c_count + 1
        in
        (match f () with
        | result -> finish (); result
        | exception e -> finish (); raise e)
    | None ->
        let started = Metrics.now () in
        let ctx =
          { c_label = label; c_started = started; c_spans_rev = [];
            c_count = 0; c_stack = [] }
        in
        slot := Some ctx;
        let finish () =
          slot := None;
          let total = Metrics.now () -. started in
          let spans =
            List.sort
              (fun a b ->
                match Float.compare a.offset b.offset with
                | 0 -> Int.compare a.depth b.depth
                | c -> c)
              (List.rev ctx.c_spans_rev)
          in
          publish
            {
              id = Atomic.fetch_and_add next_id 1;
              label = ctx.c_label;
              started_at = started;
              total;
              spans;
              dropped_spans = max 0 (ctx.c_count - max_spans_per_profile);
            }
        in
        (match f () with
        | result -> finish (); result
        | exception e -> finish (); raise e)

let span ?(meta = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else
    match !(Domain.DLS.get ctx_key) with
    | None -> f ()
    | Some ctx ->
        let os =
          { os_name = name; os_start = Metrics.now ();
            os_depth = List.length ctx.c_stack; os_meta = meta }
        in
        ctx.c_stack <- os :: ctx.c_stack;
        let finish () =
          (match ctx.c_stack with
          | top :: rest when top == os -> ctx.c_stack <- rest
          | stack ->
              (* A child escaped (exception unwound past it); drop down to
                 and including our frame. *)
              let rec unwind = function
                | top :: rest when top == os -> rest
                | _ :: rest -> unwind rest
                | [] -> []
              in
              ctx.c_stack <- unwind stack);
          if ctx.c_count < max_spans_per_profile then
            ctx.c_spans_rev <-
              { span_name = os.os_name; offset = os.os_start -. ctx.c_started;
                duration = Metrics.now () -. os.os_start; depth = os.os_depth;
                meta = List.rev os.os_meta }
              :: ctx.c_spans_rev;
          ctx.c_count <- ctx.c_count + 1
        in
        (match f () with
        | result -> finish (); result
        | exception e -> finish (); raise e)

let annotate key value =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get ctx_key) with
    | Some { c_stack = os :: _; _ } -> os.os_meta <- (key, value) :: os.os_meta
    | _ -> ()

let recent () =
  Mutex.lock rings_lock;
  let out = !recent_ring in
  Mutex.unlock rings_lock;
  out

let slowlog () =
  Mutex.lock rings_lock;
  let out = !slow_ring in
  Mutex.unlock rings_lock;
  out

let last () = match recent () with p :: _ -> Some p | [] -> None

let clear () =
  Mutex.lock rings_lock;
  recent_ring := [];
  slow_ring := [];
  Mutex.unlock rings_lock

let ms seconds = Printf.sprintf "%.3f ms" (seconds *. 1e3)

let render p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "profile #%d  %s  — total %s, %d span(s)%s\n" p.id p.label
       (ms p.total) (List.length p.spans)
       (if p.dropped_spans > 0 then
          Printf.sprintf " (+%d dropped)" p.dropped_spans
        else ""));
  List.iter
    (fun s ->
      let meta =
        match s.meta with
        | [] -> ""
        | meta ->
            "  ["
            ^ String.concat ", "
                (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) meta)
            ^ "]"
      in
      Buffer.add_string buf
        (Printf.sprintf "  +%-11s %s%-24s %s%s\n" (ms s.offset)
           (String.make (2 * s.depth) ' ')
           s.span_name (ms s.duration) meta))
    p.spans;
  Buffer.contents buf
