(** A domain-safe metrics registry: named counters, gauges and
    fixed-bucket latency histograms, with Prometheus-style text
    exposition and a JSON dump.

    Every cell is an [Atomic.t]; updates from any domain are safe and
    lock-free. Registration (find-or-create by name + label set) takes a
    mutex, so instrumented modules register their handles once at module
    initialization and the hot paths touch atomics only.

    The overhead contract: counter and gauge updates are a single atomic
    read-modify-write and are {e always} applied (keeping cheap
    statistics such as cache hit rates available without opt-in), while
    everything that needs a clock — {!time}, explicit latency
    measurements guarded by {!enabled} — is skipped entirely unless
    {!set_enabled}[ true] has been called. Instrumentation never changes
    the observable behavior of the instrumented code. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Integer that can move both ways. *)

type histogram
(** Fixed-bucket distribution of seconds, with total count and sum. *)

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrumentation site uses. *)

(** {1 The global enable switch} *)

val set_enabled : bool -> unit
(** Turn timed instrumentation on or off (default: off). Counters and
    gauges count regardless; histograms fed through {!time} only record
    while enabled. *)

val enabled : unit -> bool

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — the clock used by
    {!time}, exported so call sites measuring across scopes agree with
    it. *)

(** {1 Registration}

    Find-or-create: registering the same name, label set and kind twice
    returns the same handle; the same name with a different kind raises
    [Invalid_argument]. Labels are sorted internally, so label order
    does not create distinct metrics. *)

val counter :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  ?registry:t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** [buckets] are upper bounds in seconds, strictly increasing; an
    implicit [+Inf] bucket is always appended. Defaults to
    {!default_buckets}. *)

val default_buckets : float array
(** [1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s, 10s] — latency-shaped. *)

val size_buckets : float array
(** [1, 8, 64, 512, 4k, 32k, 256k, 2M] — for histograms over counts
    (batch sizes, exchange volumes) rather than durations. *)

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit

val observe : histogram -> float -> unit
(** Record one observation, in seconds. Always applied (the caller
    already paid for the measurement). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f], recording its wall-clock duration into [h] —
    unless {!enabled} is false, in which case it is exactly [f ()] with
    no clock read. *)

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int

val histogram_sum : histogram -> float
(** Sum of observations, seconds (internally nanosecond-integer). *)

val bucket_counts : histogram -> (float * int) list
(** Cumulative counts per upper bound, ending with [(infinity, count)] —
    the Prometheus [le] convention. *)

(** {1 Exposition} *)

val sample_gc : ?registry:t -> unit -> unit
(** Refresh the GC gauges ([lsdb_gc_minor_allocated_bytes_total],
    [lsdb_gc_major_heap_bytes], [lsdb_gc_major_collections_total]) from
    [Gc.quick_stat]. Called automatically by {!expose} and {!dump_json};
    benches call it directly at record time to gate allocation rate. *)

val expose : ?registry:t -> unit -> string
(** Prometheus text format, version 0.0.4: [# HELP]/[# TYPE] per metric
    family, histograms as [_bucket{le=...}]/[_sum]/[_count]. Families
    and label sets are sorted, so output is deterministic. *)

val dump_json : ?registry:t -> unit -> string
(** The same data as one JSON object: [{"metrics": [...]}]. *)

val reset : ?registry:t -> unit -> unit
(** Zero every cell (handles stay valid). For tests and overhead
    baselines. *)
