(** Span-based query tracing.

    A {e profile} is the record of one top-level operation (normally one
    shell query or probe): a label, a total duration, and the spans that
    ran inside it — parse, evaluation, closure rounds, retraction waves —
    each with its offset, duration, nesting depth and free-form metadata.

    Profiles are collected per domain (domain-local state, no locks on
    the hot path) and published on completion into two bounded global
    ring buffers: the most recent profiles, and the {e slowlog} of
    profiles whose duration met {!set_slow_threshold}. Spans opened on
    pool worker domains while the coordinating domain holds the profile
    are deliberately dropped — per-wave and per-round timing is recorded
    at the barrier by the coordinator, so a profile is always a single
    coherent timeline.

    Tracing is off by default; when off, {!with_query} and {!span} run
    their argument with no clock read. Tracing never changes the result
    of the traced computation. *)

type span = {
  span_name : string;
  offset : float;  (** seconds after profile start *)
  duration : float;  (** seconds *)
  depth : int;  (** nesting depth, 0 = directly under the profile *)
  meta : (string * string) list;
}

type profile = {
  id : int;  (** process-monotone *)
  label : string;
  started_at : float;  (** [Unix.gettimeofday] at profile start *)
  total : float;  (** seconds *)
  spans : span list;  (** in start order *)
  dropped_spans : int;  (** spans beyond the per-profile cap *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_slow_threshold : float -> unit
(** Seconds; profiles at least this slow also enter the slowlog.
    Default: [infinity] (slowlog off). *)

val slow_threshold : unit -> float

val with_query : string -> (unit -> 'a) -> 'a
(** [with_query label f] runs [f] as a traced profile. When tracing is
    disabled, or when a profile is already active on this domain (the
    nested call becomes an ordinary span), this is just [f ()]. The
    profile is published even if [f] raises. *)

val span : ?meta:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Record a timed span inside the active profile; [f ()] untimed when
    tracing is off or no profile is active on this domain. *)

val annotate : string -> string -> unit
(** Attach metadata to the innermost open span (no-op without one). *)

val recent : unit -> profile list
(** Most recent completed profiles, newest first (bounded). *)

val slowlog : unit -> profile list
(** Profiles that met the slow threshold, newest first (bounded). *)

val last : unit -> profile option
val clear : unit -> unit

val render : profile -> string
(** Multi-line human rendering: one line per span, indented by depth,
    with offset, duration and metadata. *)
