(** Shard-parallel semi-naive evaluation over a partitioned fact heap.

    One [t] is one stratum of a closure, evaluated {e in place} over a
    read-only base heap (the caller's store, exposed as a {!base} view)
    plus [N] derived-fact overlays, one per {!Shard} partition: a derived
    triple lives in the overlay of the shard owning its source entity.
    Nothing is ever copied out of the base — on a million-fact heap the
    from-scratch index loads are most of what {!Engine.closure} costs, so
    reading through is where the sharded path's speedup comes from (and
    why cold closures scale with what the rules derive, not with the
    heap).

    Rounds follow the engine's barrier discipline, sharded by owner
    rather than contiguously: the round's delta is partitioned by owning
    shard, each shard's slice is evaluated against the frozen union view
    ({!Engine.round_view} — cross-shard joins read straight through the
    view), and at the single-threaded barrier the emissions are merged
    rule-major then shard-major and each accepted fact is routed to its
    owner's overlay — cross-shard consequences batch into that one
    exchange per round. With a pool, shard slices evaluate on persistent
    per-shard worker lanes ({!Lsdb_exec.Pool.lanes}): lane [i] is pinned
    to shard [i] for the whole fixpoint, lanes beyond the pool size
    multiplex deterministically, and a round fans out only when more than
    one slice is non-empty (a 1-hot skewed delta stays on the caller
    lane). For a fixed shard count the result (fact set, derivation
    order, provenance, rounds) is identical at every pool size; across
    shard counts the fact set is identical but enumeration and
    derivation order are not (the identity gates compare canonically
    sorted sets).

    Retraction is delete/rederive with the same phase structure as
    {!Engine.retract}; deleted base facts are already gone from the
    read-through view when the caller hands them over, so they enter the
    over-deletion cone unconditionally. Governor trips degrade exactly
    like the engine's: sound subsets, never an escaped exception. *)

type base = {
  b_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
  b_mem : Triple.t -> bool;
  b_count : s:int option -> r:int option -> tgt:int option -> int;
      (** Cheap upper bound (posting sizes), for join ordering. *)
  b_cardinal : unit -> int;
}

type t

exception Diverged of int
(** Same safety valve as {!Engine.Diverged}: total cardinal (base +
    overlays) exceeded [max_facts]. *)

val create : ?max_facts:int -> plan:Shard.plan -> base -> t
(** Empty overlays over [base]. [max_facts] defaults to 10M. *)

val plan : t -> Shard.plan

val view : t -> Engine.view
(** The union view (base ∪ overlays): bound-source probes touch the base
    and one overlay; unbound-source probes fan out across all overlays. *)

(** [closure ?pool ?gov rules t initial] — semi-naive fixpoint from
    [initial] (every fact currently visible in the base view, in a
    deterministic order of the caller's choosing), derived facts landing
    in the overlays. Returns the derived triples in derivation order.
    A governor trip yields a sound prefix. *)
val closure :
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  t ->
  Triple.t Seq.t ->
  Triple.t list

(** [extend ?pool ?gov rules t extras] — incremental maintenance under
    insertion: [extras] are base facts the caller has {e already} added
    to the base heap (they are visible through the view). Facts the
    stratum had previously derived are demoted (overlay entry and
    provenance dropped — the base copy now owns them); the rest seed a
    fixpoint. Returns the newly derived triples in derivation order. *)
val extend :
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  t ->
  Triple.t list ->
  Triple.t list

type retraction = {
  removed : Triple.t list;  (** cone facts gone for good, [Triple.compare] order *)
  restored : Triple.t list;  (** cone facts still visible or rederived, same order *)
  over_deleted : int;
  rederive_rounds : int;
}

(** [retract ?pool ?gov rules t deleted] — delete/rederive: [deleted]
    must already be gone from the base heap. The cone of facts whose
    recorded derivation rests on them is over-deleted from the overlays,
    then every cone member still derivable from the surviving view is
    restored. Rederive checks fan out across the pool (read-only). *)
val retract :
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  t ->
  Triple.t list ->
  retraction

(** [demote t fact] — drop [fact]'s overlay entry and provenance (e.g.
    when it was just asserted as a base fact); [true] iff it was in an
    overlay. *)
val demote : t -> Triple.t -> bool

(** [closed_under rules t] — does one application round of [rules] over
    the whole union view produce nothing new? *)
val closed_under : Rule.t list -> t -> bool

val mem : t -> Triple.t -> bool
val cardinal : t -> int
(** Base + overlays (the overlays are disjoint from the base). *)

val derived_count : t -> int
val is_derived : t -> Triple.t -> bool
val provenance : t -> Triple.t -> Engine.provenance option
val iter_provenance : (Triple.t -> Engine.provenance -> unit) -> t -> unit
val record_provenance : t -> Triple.t -> Engine.provenance -> unit
val iter_overlays : (Triple.t -> unit) -> t -> unit
(** Every derived fact, shard-major. *)

val overlays_to_seq : t -> Triple.t Seq.t
(** Every derived fact as a sequence, shard-major. *)

val rounds : t -> int
val support_size : t -> int

val overlay_cardinals : t -> int array
(** Live derived facts per shard — the partition balance. *)

val exchanged : t -> int
(** Cross-shard routings so far: consequences produced while evaluating
    one shard's delta but owned by another shard. *)

val reshard_hint : t -> (int * int * int) option
(** [(shard, permille, streak)] when the imbalance gauge has pinned at or
    above 1500‰ for 3+ consecutive fixpoints: the hottest overlay's shard
    index, the latest reading, and how many fixpoints it has pinned.
    Cleared as soon as a fixpoint observes balance again. *)

val tier_stats : t -> Index.tier_stats
(** Frozen/delta tier sizes summed over all overlays. *)
