(** Semi-naive fixpoint evaluation.

    Computes the closure of a set of ground triples under a set of
    conjunctive rules (§2.6 of the paper), recording for every derived
    triple one derivation (rule name + premises) for explanation.

    Rounds use a barrier discipline: every rule application in a round
    reads the index as of the round start, and the round's consequences
    are merged in deterministically (rule order, then delta order) at a
    single-threaded barrier. A round's delta can therefore be sharded
    across the domains of an [Lsdb_exec.Pool] — pass [?pool] to
    {!closure}/{!extend}/{!retract} — and the result (index, derived
    order, rounds, provenance) is byte-identical for every pool size,
    including none.

    Closures are maintained incrementally in both directions: {!extend}
    for insertions and {!retract} for deletions (delete/rederive, backed
    by a support index inverting the provenance table).

    All three entry points accept an optional {!Lsdb_exec.Governor.t}
    and checkpoint it at round barriers plus amortized ticks inside the
    rule joins. A trip never escapes: the entry point returns a
    {e consistent subset} of the ungoverned result (index, derived list
    and provenance agree with each other at the interruption point;
    retraction leaves unchecked cone facts removed). Callers detect
    partiality with [Governor.tripped] and must treat the result as
    non-cacheable for ungoverned use. *)

type provenance = { rule : string; premises : Triple.t list }

type support
(** Inverse of the provenance table: premise fact ↦ facts whose recorded
    derivation uses it. Built lazily by the first {!retract}, maintained
    incrementally afterwards through {!record_provenance} /
    {!forget_provenance}. *)

type result = {
  index : Index.t;  (** the full closure, base facts included *)
  derived : Triple.t list;  (** derived facts, in derivation order *)
  provenance : provenance Triple.Tbl.t;  (** one derivation per derived fact *)
  rounds : int;  (** number of semi-naive iterations to fixpoint *)
  mutable support : support option;
      (** support index over [provenance]; [None] until a retraction
          needs it *)
}

exception Diverged of int
(** Raised (with the cardinal reached) when [max_facts] is exceeded — a
    safety valve for rule sets that generate unboundedly, which the paper
    notes is possible with unrestricted composition. *)

(** [closure ?max_facts ?pool rules base] computes the closure of [base]
    under [rules]. Duplicate base triples are collapsed. With [?pool],
    each round's delta is evaluated across the pool's domains. With
    [?gov], both the base load and the fixpoint run under the governor's
    checkpoints: a trip yields a sound partial result (a prefix of the
    base plus whatever was derived from it — always a subset of the true
    closure), never an escaped exception. *)
val closure :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  Triple.t Seq.t ->
  result

(** [extend ?max_facts rules result extra] incrementally maintains a
    closure under insertions: the [extra] base triples are added and the
    semi-naive fixpoint continues from them, reusing everything already
    derived. [result.index] and [result.provenance] are updated in place;
    the returned record carries the accumulated [rounds], but [derived]
    is {e not} extended (that would cost O(closure) per call) — the
    second component lists every triple new to the index (base and
    derived), in derivation order, for callers to accumulate or to feed
    to the next stratum. *)
val extend :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  result ->
  Triple.t Seq.t ->
  result * Triple.t list

type retraction = {
  removed : Triple.t list;  (** cone facts gone for good, [Triple.compare] order *)
  restored : Triple.t list;  (** cone facts rederived from survivors, same order *)
  over_deleted : int;  (** size of the over-deleted cone *)
  rederive_rounds : int;  (** semi-naive rounds spent restoring survivors *)
}

(** [retract ?max_facts ?pool rules result deleted] incrementally
    maintains a closure under deletions using delete/rederive: the cone
    of facts whose recorded derivation transitively rests on a [deleted]
    fact is over-deleted, then every cone member still derivable from the
    survivors is restored by the ordinary semi-naive fixpoint.
    [result.index] and [result.provenance] are updated in place; the
    resulting fact set is byte-identical to a from-scratch {!closure}
    over the surviving base facts, at any pool size. [result.derived] is
    {e not} rewritten (same O(closure) argument as {!extend}) — callers
    tracking derivation order filter their own record against
    {!result.provenance}. *)
val retract :
  ?max_facts:int ->
  ?pool:Lsdb_exec.Pool.t ->
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t list ->
  result ->
  Triple.t list ->
  result * retraction

(** [record_provenance result fact prov] replaces [fact]'s recorded
    derivation, keeping the support index (when built) in sync. Used by
    the closure strata to carry stage provenance across. *)
val record_provenance : result -> Triple.t -> provenance -> unit

(** [forget_provenance result fact] drops [fact]'s recorded derivation
    (support index kept in sync) — e.g. when a derived fact is asserted
    as base and must stop depending on its premises. *)
val forget_provenance : result -> Triple.t -> unit

(** Number of edges in the support index; [0] until a retraction has
    forced it. *)
val support_size : result -> int

(** [consequences rules index binding_hook] — single application round used
    by incremental maintenance: derive everything the rules produce from the
    facts currently in [index] without iterating to fixpoint. *)
val step : Rule.t list -> Index.t -> Triple.t list

(** {1 View-based evaluation}

    The join loops read "all facts so far" through three probes only;
    {!view} packages them so the sharded engine ({!Sharded}) can evaluate
    over a base heap plus per-shard derived overlays {e without} copying
    the base into a fresh {!Index.t} — on a million-fact heap the two
    index loads are most of what a from-scratch closure costs. The
    single-heap entry points above all run over {!view_of_index}. *)

type view = {
  v_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
      (** [candidates]: every triple compatible with the pattern. *)
  v_mem : Triple.t -> bool;
  v_count : s:int option -> r:int option -> tgt:int option -> int;
      (** O(1)-ish upper bound on [v_iter]'s yield, for join ordering. *)
}

val view_of_index : Index.t -> view

(** [round_view rules ~full delta] — one semi-naive round of every rule
    against one delta shard, reading [full] as frozen: returns the
    [(head, premises)] emissions buffered per rule (rule order matching
    [rules], emission order deterministic in the delta order), deduplicated
    against [full] and within the shard. Read-only on [full], so shards
    can run on separate pool domains; the caller merges rule-major then
    shard-major and routes accepted heads itself. [?gov] is ticked at
    amortized batches, [Trip] propagates to the caller. *)
val round_view :
  ?gov:Lsdb_exec.Governor.t ->
  Rule.t array ->
  full:view ->
  Triple.t array ->
  (Triple.t * Triple.t list) list array

(** [find_derivation_view rules ~full fact] — is [fact] derivable in one
    rule application from the facts in [full]? Joins most-selective-first
    via [v_count]. Read-only; used by sharded delete/rederive. *)
val find_derivation_view :
  Rule.t list -> full:view -> Triple.t -> provenance option
