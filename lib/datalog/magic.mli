(** Demand-driven closure: a magic-sets / QSQ-style transformation of the
    triple rules, evaluated semi-naively over the existing {!Index}
    machinery.

    Where {!Engine.closure} saturates the whole fact set up front, a
    {!t} starts from the base facts alone and derives only the {e cone}
    a goal can touch: {!demand} seeds a magic predicate from the goal's
    bound arguments (the demanded pattern), unifies it with rule heads
    to create {e activations} (rules specialised by the head binding,
    body reordered most-bound-first — the sideways information passing),
    and runs their joins to fixpoint. Body atoms whose own pattern has
    not been demanded yet queue a sub-demand; facts those sub-demands
    derive re-enter the joins as deltas, so evaluation is semi-naive
    across the whole demand graph.

    Strata mirror {!Lsdb.Closure}: staged rules (inversion) close over
    base facts only, main rules over base ∪ stage. A demanded pattern at
    the main level implies the same demand at the stage level.

    Demanded cones are memoized for the lifetime of the state: demanding
    a pattern already covered by an earlier (possibly more general)
    demand answers straight from the cone indexes. {!insert} maintains
    the cones semi-naively; {!retract} is DRed-style delete/rederive
    over a provenance/support index scoped to the cones.

    Evaluation is deliberately single-threaded: cones are small (that is
    the point of demand), and answer sets are therefore identical for
    every pool size by construction. {!demand} enumerates its answers in
    {!Triple.compare} order. *)

type t

(** The base facts as a read-only view. {!create_shared} evaluates over
    the caller's own fact index instead of copying it, so building a
    demand state is O(1) in the base — a cold start pays only for the
    cone it derives. The view must reflect every base fact at all times;
    the caller keeps it current and reports mutations via {!insert} and
    {!retract}. *)
type base_view = {
  bv_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
      (** iterate base facts matching the pattern ([None] = wildcard) *)
  bv_mem : Triple.t -> bool;
  bv_count : s:int option -> r:int option -> tgt:int option -> int;
      (** upper bound on what [bv_iter] enumerates (selectivity hint) *)
  bv_count_s : int -> int;  (** out-degree hint *)
  bv_count_t : int -> int;  (** in-degree hint *)
  bv_cardinal : unit -> int;
}

exception Diverged of int
(** Total fact count (base + cones) exceeded [max_facts]. *)

type stats = {
  goals : int;  (** external {!demand}/{!mem} calls *)
  memo_hits : int;  (** goals answered by an already-demanded cone *)
  memo_misses : int;  (** goals that ran a derivation *)
  magic_patterns : int;  (** demanded patterns (magic predicates) *)
  activations : int;  (** head-specialised rule instances created *)
  base_facts : int;
  stage_cone_facts : int;  (** facts derived into the stage stratum's cone *)
  full_cone_facts : int;  (** facts derived into the main stratum's cone *)
  deltas : int;  (** delta triples fed through activation joins *)
}

(** [create ?max_facts ~staged_rules ~rules base] copies the base facts
    into a private index; nothing is derived until the first {!demand}. *)
val create :
  ?max_facts:int ->
  ?size_hint:int ->
  staged_rules:Rule.t list ->
  rules:Rule.t list ->
  Triple.t Seq.t ->
  t

(** [create_shared ~staged_rules ~rules view] evaluates directly over
    [view] — no copy, O(1) setup. The caller owns the base: {!insert}
    must be called after (and only after) a new fact entered the view,
    {!retract} after (and only after) one left it. [?owned] is internal
    plumbing for {!create}. *)
val create_shared :
  ?max_facts:int ->
  staged_rules:Rule.t list ->
  rules:Rule.t list ->
  ?owned:Index.t ->
  base_view ->
  t

(** [demand t ~s ~r ~tgt f] derives (or re-uses) the cone of the pattern
    and calls [f] on every closure fact matching it, in {!Triple.compare}
    order. [None] positions are wildcards. *)
val demand :
  t -> s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit

(** [mem t triple] — is [triple] in the closure? Demands the ground
    pattern. *)
val mem : t -> Triple.t -> bool

(** [count_hint t ~s ~r ~tgt] — upper bound on base + already-derived
    cone facts matching the pattern. Never derives; selectivity heuristic
    only (posting lengths include tombstones). *)
val count_hint : t -> s:int option -> r:int option -> tgt:int option -> int

val degree_out : t -> int -> int
(** Out-degree over base + cones; heuristic, like {!count_hint}. *)

val degree_in : t -> int -> int

(** [entity_occurs t e] — does [e] occur (as source, relationship or
    target) in any closure fact? Demands the three single-position
    patterns for [e]. *)
val entity_occurs : t -> int -> bool

(** [insert t triple] adds a base fact and extends every demanded cone
    it reaches (semi-naive, the fact entering as a delta). A cone fact
    asserted as base is demoted to base. On a {!create_shared} state the
    fact must already be in the view. *)
val insert : t -> Triple.t -> unit

(** [retract t triple] removes a base fact: the cone facts whose
    recorded derivation transitively rests on it are over-deleted, then
    every activation re-runs so survivors (including the retracted fact
    itself, if derivable) are restored. On a {!create_shared} state the
    fact must already be gone from the view. *)
val retract : t -> Triple.t -> unit

val cone_cardinal : t -> int
(** Derived facts across both cones. *)

(** {1 Governed evaluation}

    [set_governor t gov] attaches (or clears) a cooperative governor:
    the work loop ticks it per queue step and emission and counts every
    cone fact derived. A trip abandons the remaining queued work — the
    structural half of {!insert}/{!retract} (base update, over-deletion)
    has already completed, so the cones stay a {e subset} of the true
    closure and partial answers remain sound — but demanded patterns may
    now be marked whose cones are incomplete: the state is {e poisoned}
    and must be rebuilt before serving ungoverned goals (the owner,
    {!Lsdb.Database}, does this on the next governor change). *)
val set_governor : t -> Lsdb_exec.Governor.t option -> unit

val poisoned : t -> bool
(** Has a governor trip left the memo tables incomplete? *)

val stats : t -> stats

val tier_stats : t -> Index.tier_stats
(** Frozen/delta tier sizes summed over the cones (and the owned base
    index, when this state built its own). *)
