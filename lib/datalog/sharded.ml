module Pool = Lsdb_exec.Pool
module Governor = Lsdb_exec.Governor
module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace

type base = {
  b_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
  b_mem : Triple.t -> bool;
  b_count : s:int option -> r:int option -> tgt:int option -> int;
  b_cardinal : unit -> int;
}

exception Diverged = Engine.Diverged

(* Observability: sharded evaluation has its own counters next to the
   engine's so the two code paths can be compared from /metrics. *)
let m_rounds =
  Metrics.counter ~help:"Sharded closure rounds executed"
    "lsdb_sharded_rounds_total"

let m_derived =
  Metrics.counter ~help:"Triples derived by sharded rounds"
    "lsdb_sharded_derived_triples_total"

let m_exchanged =
  Metrics.counter
    ~help:"Derived triples routed to a shard other than the one that produced them"
    "lsdb_sharded_exchanged_total"

let m_exchange_batch =
  Metrics.histogram
    ~help:"Cross-shard triples exchanged at each round barrier"
    ~buckets:Metrics.size_buckets "lsdb_sharded_exchange_batch"

let m_imbalance =
  Metrics.gauge
    ~help:
      "Largest overlay over mean overlay cardinal, per-mille (1000 = balanced)"
    "lsdb_sharded_imbalance_permille"

let m_retracts =
  Metrics.counter ~help:"Sharded retractions" "lsdb_sharded_retracts_total"

let m_lane_rounds =
  Metrics.counter
    ~help:"Closure rounds fanned out to persistent per-shard lanes"
    "lsdb_sharded_lane_rounds_total"

let m_solo_rounds =
  Metrics.counter
    ~help:"Closure rounds evaluated inline on the caller lane"
    "lsdb_sharded_solo_rounds_total"

(* Same shape as the engine's support index: premise ↦ facts whose
   recorded derivation uses it, built lazily by the first retraction. *)
type support = {
  deps : unit Triple.Tbl.t Triple.Tbl.t;
  mutable edges : int;
}

type t = {
  plan : Shard.plan;
  base : base;
  overlays : Index.t array;  (* derived facts, routed by source owner *)
  shard_derived : Metrics.counter array;
  lane_delta : Metrics.counter array;  (* delta triples evaluated per lane *)
  provenance : Engine.provenance Triple.Tbl.t;
  mutable support : support option;
  mutable rounds : int;
  mutable derived_total : int;  (* live overlay facts, all shards *)
  mutable exchanged : int;
  max_facts : int;
  (* Reshard-hint state: how many consecutive imbalance observations
     (one per fixpoint) pinned above the threshold, and the latest
     pinned reading as (hottest shard, permille, streak). *)
  mutable hot_streak : int;
  mutable hot_hint : (int * int * int) option;
}

let create ?(max_facts = 10_000_000) ~plan base =
  let nsh = Shard.shards plan in
  {
    plan;
    base;
    overlays = Array.init nsh (fun _ -> Index.create ());
    shard_derived =
      Array.init nsh (fun i ->
          Metrics.counter
            ~help:"Triples derived into each shard's overlay"
            ~labels:[ ("shard", string_of_int i) ]
            "lsdb_sharded_shard_derived_total");
    lane_delta =
      Array.init nsh (fun i ->
          Metrics.counter
            ~help:"Delta triples evaluated by each shard's lane"
            ~labels:[ ("shard", string_of_int i) ]
            "lsdb_sharded_lane_delta_total");
    provenance = Triple.Tbl.create 256;
    support = None;
    rounds = 0;
    derived_total = 0;
    exchanged = 0;
    max_facts;
    hot_streak = 0;
    hot_hint = None;
  }

let plan t = t.plan
let owner t (triple : Triple.t) = Shard.of_entity t.plan triple.s

(* The union view. Overlays are disjoint from the base by construction
   ([add_overlay] refuses anything already visible), so cardinals and
   counts are sums and iteration never yields a fact twice. *)
let view t : Engine.view =
  let nsh = Array.length t.overlays in
  {
    v_mem =
      (fun triple ->
        t.base.b_mem triple
        || Index.mem t.overlays.(Shard.of_entity t.plan triple.s) triple);
    v_iter =
      (fun ~s ~r ~tgt f ->
        t.base.b_iter ~s ~r ~tgt f;
        match s with
        | Some s -> Index.candidates t.overlays.(Shard.of_entity t.plan s) ~s:(Some s) ~r ~tgt f
        | None ->
            for i = 0 to nsh - 1 do
              Index.candidates t.overlays.(i) ~s ~r ~tgt f
            done);
    v_count =
      (fun ~s ~r ~tgt ->
        let base = t.base.b_count ~s ~r ~tgt in
        match s with
        | Some e -> base + Index.count t.overlays.(Shard.of_entity t.plan e) ~s ~r ~tgt
        | None ->
            let n = ref base in
            for i = 0 to nsh - 1 do
              n := !n + Index.count t.overlays.(i) ~s ~r ~tgt
            done;
            !n);
  }

let mem t triple =
  t.base.b_mem triple || Index.mem t.overlays.(owner t triple) triple

let cardinal t = t.base.b_cardinal () + t.derived_total
let derived_count t = Triple.Tbl.length t.provenance
let is_derived t triple = Triple.Tbl.mem t.provenance triple
let provenance t triple = Triple.Tbl.find_opt t.provenance triple
let iter_provenance f t = Triple.Tbl.iter f t.provenance
let iter_overlays f t = Array.iter (Index.iter f) t.overlays

let overlays_to_seq t =
  Seq.concat_map Index.to_seq (Array.to_seq t.overlays)
let rounds t = t.rounds
let exchanged t = t.exchanged
let overlay_cardinals t = Array.map Index.cardinal t.overlays

(* --- support-index maintenance (mirrors Engine's) ------------------- *)

let support_add support fact ({ premises; _ } : Engine.provenance) =
  List.iter
    (fun premise ->
      let cell =
        match Triple.Tbl.find_opt support.deps premise with
        | Some cell -> cell
        | None ->
            let cell = Triple.Tbl.create 4 in
            Triple.Tbl.add support.deps premise cell;
            cell
      in
      if not (Triple.Tbl.mem cell fact) then begin
        Triple.Tbl.add cell fact ();
        support.edges <- support.edges + 1
      end)
    premises

let support_drop support fact ({ premises; _ } : Engine.provenance) =
  List.iter
    (fun premise ->
      match Triple.Tbl.find_opt support.deps premise with
      | None -> ()
      | Some cell ->
          if Triple.Tbl.mem cell fact then begin
            Triple.Tbl.remove cell fact;
            support.edges <- support.edges - 1;
            if Triple.Tbl.length cell = 0 then Triple.Tbl.remove support.deps premise
          end)
    premises

let record_provenance t fact prov =
  (match t.support with
  | Some support -> (
      (match Triple.Tbl.find_opt t.provenance fact with
      | Some old -> support_drop support fact old
      | None -> ());
      support_add support fact prov)
  | None -> ());
  Triple.Tbl.replace t.provenance fact prov

let forget_provenance t fact =
  match Triple.Tbl.find_opt t.provenance fact with
  | None -> ()
  | Some old ->
      (match t.support with
      | Some support -> support_drop support fact old
      | None -> ());
      Triple.Tbl.remove t.provenance fact

let force_support t =
  match t.support with
  | Some support -> support
  | None ->
      let support = { deps = Triple.Tbl.create 256; edges = 0 } in
      Triple.Tbl.iter (fun fact prov -> support_add support fact prov) t.provenance;
      t.support <- Some support;
      support

let support_size t =
  match t.support with Some { edges; _ } -> edges | None -> 0

(* --- overlay mutation ------------------------------------------------ *)

(* Admission to an overlay preserves the disjointness invariant: a fact
   already visible anywhere in the union (base or any overlay) is
   refused, so the union is a set and [cardinal] is a sum. *)
let add_overlay t ~view:(v : Engine.view) triple =
  if v.v_mem triple then false
  else begin
    ignore (Index.add t.overlays.(owner t triple) triple : bool);
    t.derived_total <- t.derived_total + 1;
    true
  end

let demote t triple =
  let removed = Index.remove t.overlays.(owner t triple) triple in
  if removed then t.derived_total <- t.derived_total - 1;
  forget_provenance t triple;
  removed

(* Imbalance above this (hottest overlay ≥ 1.5× the even share) counts
   as pinned; pinned for this many consecutive fixpoints raises the
   reshard hint. The cheap, 1-core-honest nub of adaptive resharding:
   we only *suggest* the split — acting on it stays with the caller. *)
let hint_permille = 1500
let hint_streak = 3

let note_imbalance t =
  let cards = overlay_cardinals t in
  let nsh = Array.length cards in
  let total = Array.fold_left ( + ) 0 cards in
  if nsh > 1 && total > 0 then begin
    let biggest = ref 0 and hottest = ref 0 in
    Array.iteri
      (fun i c ->
        if c > !biggest then begin
          biggest := c;
          hottest := i
        end)
      cards;
    let permille = !biggest * nsh * 1000 / total in
    Metrics.set m_imbalance permille;
    if permille >= hint_permille then begin
      t.hot_streak <- t.hot_streak + 1;
      if t.hot_streak >= hint_streak then
        t.hot_hint <- Some (!hottest, permille, t.hot_streak)
    end
    else begin
      t.hot_streak <- 0;
      t.hot_hint <- None
    end
  end

let reshard_hint t = t.hot_hint

(* --- the sharded fixpoint -------------------------------------------- *)

(* Partition an ordered delta by owning shard; within a shard the slice
   keeps the delta's order, so the partition is deterministic and
   independent of any pool. *)
let partition t triples =
  let nsh = Array.length t.overlays in
  if nsh = 1 then [| Array.of_list triples |]
  else begin
    let bufs = Array.make nsh [] in
    List.iter
      (fun triple ->
        let o = owner t triple in
        bufs.(o) <- triple :: bufs.(o))
      triples;
    Array.map (fun l -> Array.of_list (List.rev l)) bufs
  end

(* One barrier-separated round per iteration: evaluate each shard's
   slice against the frozen union view — on persistent per-shard worker
   lanes when the delta is wide enough to amortize the wake-up — then
   merge rule-major / shard-major — the order a single evaluator would
   emit — routing each accepted head to its owner's overlay. Lane [i] is
   pinned to shard [i] for the whole fixpoint (lanes > pool size
   multiplex deterministically, [Pool.lanes]); the round barrier at the
   merge is the only synchronization point, so results are byte-identical
   to the inline path at every (shards × domains) setting. Trip semantics
   are the engine's: a [Governor.Trip] raised from any lane (worker
   domains checkpoint through the same governor atomics) surfaces on the
   caller after the barrier, and the catch leaves the overlays and
   provenance as of the last completed barrier action. *)
let fixpoint ?pool ?gov t rules ~record initial =
  let rules_arr = Array.of_list rules in
  let fullv = view t in
  let derived_rev = ref [] in
  let rounds = ref 0 in
  let delta = ref (partition t initial) in
  let total_delta deltas = Array.fold_left (fun n a -> n + Array.length a) 0 deltas in
  let nonempty_slices deltas =
    Array.fold_left (fun n a -> if Array.length a > 0 then n + 1 else n) 0 deltas
  in
  let nsh = Array.length t.overlays in
  (* Lanes are created on the first round wide enough to fan out and
     reused for every later round of this fixpoint — the whole point of
     persistence: one wake-up negotiation per round instead of a queue
     round-trip per shard per round. *)
  let lanes = ref None in
  let lanes_for pool =
    match !lanes with
    | Some lg -> lg
    | None ->
        let lg = Pool.lanes pool ~n:nsh in
        lanes := Some lg;
        lg
  in
  Fun.protect ~finally:(fun () -> Option.iter Pool.lanes_close !lanes)
  @@ fun () ->
  (try
     while total_delta !delta > 0 do
       incr rounds;
       Governor.check gov;
       Metrics.incr m_rounds;
       Trace.span "sharded.round"
         ~meta:
           [
             ("round", string_of_int !rounds);
             ("delta", string_of_int (total_delta !delta));
           ]
       @@ fun () ->
       let shard_results =
         match pool with
         | Some pool
           when Pool.size pool > 1
                (* A skewed delta concentrated in one slice (Zipf heads
                   do this constantly) gains nothing from a fan-out:
                   every other lane would evaluate an empty slice while
                   the caller waits at the barrier. *)
                && nonempty_slices !delta > 1
                && total_delta !delta > 32 ->
             let lg = lanes_for pool in
             let out = Array.make nsh [||] in
             Metrics.incr m_lane_rounds;
             Pool.lanes_run lg (fun i ->
                 let slice = !delta.(i) in
                 if Array.length slice > 0 then
                   Metrics.add t.lane_delta.(i) (Array.length slice);
                 out.(i) <- Engine.round_view ?gov rules_arr ~full:fullv slice);
             out
         | _ ->
             Metrics.incr m_solo_rounds;
             Array.map (Engine.round_view ?gov rules_arr ~full:fullv) !delta
       in
       let nsh = Array.length t.overlays in
       let next = Array.make nsh [] in
       let crossed = ref 0 in
       let accepted = ref 0 in
       Array.iteri
         (fun ri (rule : Rule.t) ->
           Array.iteri
             (fun si buffers ->
               List.iter
                 (fun (triple, premises) ->
                   let o = owner t triple in
                   if add_overlay t ~view:fullv triple then begin
                     if o <> si then begin
                       t.exchanged <- t.exchanged + 1;
                       incr crossed
                     end;
                     incr accepted;
                     Metrics.incr t.shard_derived.(o);
                     if cardinal t > t.max_facts then raise (Diverged (cardinal t));
                     derived_rev := triple :: !derived_rev;
                     next.(o) <- triple :: next.(o);
                     record triple { Engine.rule = rule.name; premises };
                     Governor.count_facts gov 1
                   end)
                 buffers.(ri))
             shard_results)
         rules_arr;
       Metrics.add m_derived !accepted;
       Metrics.add m_exchanged !crossed;
       if Array.length t.overlays > 1 then
         Metrics.observe m_exchange_batch (float_of_int !crossed);
       delta := Array.map (fun l -> Array.of_list (List.rev l)) next;
       (* Round barrier: lanes are parked, nothing reads the overlays —
          quiesce each one so hot overlays migrate to packed segments. *)
       Array.iter Index.quiesce t.overlays
     done
   with Governor.Trip _ -> ());
  t.rounds <- t.rounds + !rounds;
  note_imbalance t;
  List.rev !derived_rev

let closure ?pool ?gov rules t initial =
  Trace.span "sharded.closure" @@ fun () ->
  (* The base is already loaded — that is the point: the initial delta
     is just an enumeration, nothing is copied into a fresh index. *)
  let initial =
    try
      let acc = ref [] in
      let loaded = ref 0 in
      Seq.iter
        (fun triple ->
          incr loaded;
          if !loaded land 1023 = 0 then Governor.check gov;
          acc := triple :: !acc)
        initial;
      List.rev !acc
    with Governor.Trip _ -> []
  in
  fixpoint ?pool ?gov t rules ~record:(record_provenance t) initial

let extend ?pool ?gov rules t extras =
  Trace.span "sharded.extend" @@ fun () ->
  (* Demote first: a fact asserted as base that the stratum had derived
     keeps its visibility through the base tier; its overlay copy (and
     recorded derivation) must go or the union would double-count. Its
     consequences are already derived, so it does not seed. *)
  let seeds =
    List.filter
      (fun triple ->
        let was_derived = is_derived t triple in
        if was_derived then ignore (demote t triple : bool);
        (not was_derived) && t.base.b_mem triple)
      extras
  in
  fixpoint ?pool ?gov t rules ~record:(record_provenance t) seeds

type retraction = {
  removed : Triple.t list;
  restored : Triple.t list;
  over_deleted : int;
  rederive_rounds : int;
}

(* Chunk an array for pool mapping, preserving order on concatenation. *)
let chunks_of n arr =
  let len = Array.length arr in
  let per = (len + n - 1) / n in
  Array.init n (fun i ->
      let lo = i * per in
      let hi = min len (lo + per) in
      Array.sub arr lo (max 0 (hi - lo)))

(* Delete/rederive with the engine's phase structure. The deleted base
   facts are {e already} invisible (the caller mutated the base heap
   before telling us), so they enter the cone unconditionally; cone
   members still visible through the base tier need no restoration and
   are skipped by the rederive checks. *)
let retract ?pool ?gov rules t deleted =
  Metrics.incr m_retracts;
  Trace.span "sharded.retract"
    ~meta:[ ("deleted", string_of_int (List.length deleted)) ]
  @@ fun () ->
  let support = force_support t in
  let cone = Triple.Tbl.create 64 in
  let stack = Stack.create () in
  let enter fact =
    if not (Triple.Tbl.mem cone fact) then begin
      Triple.Tbl.add cone fact ();
      Stack.push fact stack
    end
  in
  List.iter enter deleted;
  while not (Stack.is_empty stack) do
    let fact = Stack.pop stack in
    match Triple.Tbl.find_opt support.deps fact with
    | None -> ()
    | Some cell -> Triple.Tbl.iter (fun dep () -> enter dep) cell
  done;
  let cone_list =
    List.sort Triple.compare (Triple.Tbl.fold (fun f () acc -> f :: acc) cone [])
  in
  List.iter (fun fact -> ignore (demote t fact : bool)) cone_list;
  let cone_arr = Array.of_list cone_list in
  let fullv = view t in
  let check fact =
    Governor.tick gov 1;
    if fullv.v_mem fact then None
    else
      match Engine.find_derivation_view rules ~full:fullv fact with
      | Some prov -> Some (fact, prov)
      | None -> None
  in
  (* Trip ⇒ every unchecked cone fact stays removed: still a subset of
     the true closure, so sound. Phases 1-2 above ran ungoverned for the
     same reason the engine's do. *)
  let checked =
    try
      match pool with
      | Some pool when Array.length cone_arr > 1 && Pool.size pool > 1 ->
          let nchunks =
            min (Pool.size pool) (max 1 ((Array.length cone_arr + 15) / 16))
          in
          if nchunks = 1 then Array.map check cone_arr
          else
            Array.concat
              (Array.to_list
                 (Pool.map_array pool (Array.map check) (chunks_of nchunks cone_arr)))
      | _ -> Array.map check cone_arr
    with Governor.Trip _ -> Array.map (fun _ -> None) cone_arr
  in
  let seeds_rev = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (fact, prov) ->
          if add_overlay t ~view:fullv fact then begin
            record_provenance t fact prov;
            seeds_rev := fact :: !seeds_rev
          end)
    checked;
  let rounds_before = t.rounds in
  ignore
    (fixpoint ?pool ?gov t rules ~record:(record_provenance t)
       (List.rev !seeds_rev)
      : Triple.t list);
  let rederive_rounds = t.rounds - rounds_before in
  (* The cone demotion may have tombstoned frozen overlay swaths the
     rederive fixpoint never folded. *)
  Array.iter Index.quiesce t.overlays;
  let v = view t in
  let removed, restored =
    List.partition (fun fact -> not (v.v_mem fact)) cone_list
  in
  { removed; restored; over_deleted = List.length cone_list; rederive_rounds }

let closed_under rules t =
  let v = view t in
  let all = ref [] in
  v.v_iter ~s:None ~r:None ~tgt:None (fun triple -> all := triple :: !all);
  let buffers =
    Engine.round_view (Array.of_list rules) ~full:v (Array.of_list !all)
  in
  Array.for_all (fun emissions -> emissions = []) buffers

let tier_stats t =
  Array.fold_left
    (fun acc overlay -> Index.sum_stats acc (Index.tier_stats overlay))
    Index.zero_stats t.overlays
