module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace
module Governor = Lsdb_exec.Governor

(* Observability handles, registered once at module initialization. *)
let m_goals =
  Metrics.counter ~help:"Demand goals (external pattern/membership demands)"
    "lsdb_demand_goals_total"

let m_cone =
  Metrics.counter ~help:"Cone facts derived by demand evaluation"
    "lsdb_demand_cone_facts_total"

let m_hits =
  Metrics.counter ~help:"Demand goals answered from a memoized cone"
    "lsdb_demand_memo_hits_total"

let m_misses =
  Metrics.counter ~help:"Demand goals that ran a derivation"
    "lsdb_demand_memo_misses_total"

let m_magic =
  Metrics.counter ~help:"Magic predicates (demanded patterns) generated"
    "lsdb_demand_magic_predicates_total"

let m_cone_size =
  Metrics.histogram ~help:"Cone facts derived per demand goal"
    ~buckets:[| 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]
    "lsdb_demand_cone_size"

(* The two strata of Lsdb.Closure: staged rules (inversion) close over
   base facts only; main rules over base ∪ stage. *)
type level = Stage | Full

(* A demanded pattern — the magic predicate seeded from a goal's bound
   arguments. Packed into a Triple (with -1 for wildcards; entity ids are
   non-negative) to key the demanded tables. *)
type pat = { ps : int option; pr : int option; pt : int option }

let pack { ps; pr; pt } =
  let d = function Some e -> e | None -> -1 in
  Triple.make (d ps) (d pr) (d pt)

(* [covered tbl p] — is [p] or any generalization of it (a bound position
   relaxed to a wildcard) already demanded? A more general demanded
   pattern's cone contains everything [p]'s would derive. *)
let covered tbl p =
  let opts = function None -> [ None ] | Some _ as x -> [ x; None ] in
  List.exists
    (fun ps ->
      List.exists
        (fun pr ->
          List.exists
            (fun pt -> Triple.Tbl.mem tbl (pack { ps; pr; pt }))
            (opts p.pt))
        (opts p.pr))
    (opts p.ps)

let matches_demanded tbl (triple : Triple.t) =
  covered tbl { ps = Some triple.s; pr = Some triple.r; pt = Some triple.t }

(* A rule specialised by the {e shape} of a demanded pattern: which head
   variables the demand binds. All demands of one shape share the body,
   the sideways-information-passing order (most-bound-first, greedily —
   boundness only depends on the shape) and the delta-index entries; the
   concrete bound values live in [magic], the magic relation proper, as
   one tuple per seed demand. Keeping the seeds as data rather than as
   per-seed activations is what lets a delta join once per rule shape
   (semi-joining [magic]) instead of once per demanded constant. *)
type activation = {
  level : level;
  rule : Rule.t;
  body : Atom.t array;
  magic_vars : int array;  (* variables a seed demand binds, ascending *)
  order : int list;  (* body indices, SIP order *)
  rest_of : int list array;  (* [order] minus position [k], for delta joins *)
  first : int;  (* head of [order]: the atom every seed demands in full *)
  magic : (int array, unit) Hashtbl.t;  (* seed tuples, values at [magic_vars] *)
  (* Postings over [magic]: (tuple position, value) -> seed tuples with
     that value there. A delta that already binds a magic variable scans
     one posting instead of the whole relation — without this the
     magic-side expansion is quadratic in the cone. *)
  magic_idx : (int * int, int array list ref) Hashtbl.t;
}

type support = { deps : unit Triple.Tbl.t Triple.Tbl.t; mutable edges : int }

(* The base facts as a read-only view. The owner of the facts (the
   store) already indexes them by every bound-position combination;
   sharing that index makes creating a demand state O(1) instead of
   O(base) — cold starts pay only for the cone they derive, not for
   re-indexing facts the query never touches. *)
type base_view = {
  bv_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
  bv_mem : Triple.t -> bool;
  bv_count : s:int option -> r:int option -> tgt:int option -> int;
  bv_count_s : int -> int;
  bv_count_t : int -> int;
  bv_cardinal : unit -> int;
}

type stats = {
  goals : int;
  memo_hits : int;
  memo_misses : int;
  magic_patterns : int;
  activations : int;
  base_facts : int;
  stage_cone_facts : int;
  full_cone_facts : int;
  deltas : int;
}

type t = {
  staged_rules : Rule.t array;
  rules : Rule.t array;
  max_facts : int;
  base : base_view;
  owned : Index.t option;  (* Some when [create] built the base itself *)
  stage_cone : Index.t;  (* derived by staged rules; disjoint from base *)
  full_cone : Index.t;  (* derived by main rules; disjoint from the others *)
  stage_demanded : unit Triple.Tbl.t;
  full_demanded : unit Triple.Tbl.t;
  (* Activation classes, keyed by (level, rule index, bound-var shape). *)
  classes : (int * int * int list, activation) Hashtbl.t;
  mutable acts_stage : activation list;
  mutable acts_full : activation list;
  (* Delta dispatch: activation body positions keyed by the atom's
     constants-only pattern (packed, -1 wildcards). A delta triple
     reaches only the positions one of its 8 generalizations keys —
     without this, every delta would be tried against every activation,
     which is quadratic in the cone. *)
  delta_idx_stage : (activation * int) list ref Triple.Tbl.t;
  delta_idx_full : (activation * int) list ref Triple.Tbl.t;
  pending_demands : (level * pat) Queue.t;
  pending_acts : (activation * int array) Queue.t;
  pending_deltas : (level * Triple.t) Queue.t;
  (* Emissions buffered during a join and merged afterwards, so no index
     is ever mutated while one of its postings is being iterated. *)
  mutable out : (level * Triple.t * string * Triple.t list) list;
  prov : (string * Triple.t list) Triple.Tbl.t;
  mutable support : support option;
  mutable goals : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable magic_patterns : int;
  mutable activations : int;
  mutable deltas : int;
  (* Cooperative governor for the work loop. A trip mid-drain leaves
     demanded patterns marked whose cones are incomplete — [poisoned]
     records that the memo tables can no longer be trusted for
     ungoverned answers; the owner must rebuild the state (the trip is
     sticky, so a governor change is the only path out). *)
  mutable gov : Governor.t option;
  mutable poisoned : bool;
}

exception Diverged of int

let view_of_index idx =
  {
    bv_iter = (fun ~s ~r ~tgt f -> Index.candidates idx ~s ~r ~tgt f);
    bv_mem = (fun triple -> Index.mem idx triple);
    bv_count = (fun ~s ~r ~tgt -> Index.count idx ~s ~r ~tgt);
    bv_count_s = (fun e -> Index.count_s idx e);
    bv_count_t = (fun e -> Index.count_t idx e);
    bv_cardinal = (fun () -> Index.cardinal idx);
  }

let create_shared ?(max_facts = 10_000_000) ~staged_rules ~rules ?owned base =
  let st =
    {
      staged_rules = Array.of_list staged_rules;
      rules = Array.of_list rules;
      max_facts;
      base;
      owned;
      stage_cone = Index.create ();
      full_cone = Index.create ();
      stage_demanded = Triple.Tbl.create 64;
      full_demanded = Triple.Tbl.create 64;
      classes = Hashtbl.create 64;
      acts_stage = [];
      acts_full = [];
      delta_idx_stage = Triple.Tbl.create 256;
      delta_idx_full = Triple.Tbl.create 256;
      pending_demands = Queue.create ();
      pending_acts = Queue.create ();
      pending_deltas = Queue.create ();
      out = [];
      prov = Triple.Tbl.create 256;
      support = None;
      goals = 0;
      memo_hits = 0;
      memo_misses = 0;
      magic_patterns = 0;
      activations = 0;
      deltas = 0;
      gov = None;
      poisoned = false;
    }
  in
  st

let create ?max_facts ?(size_hint = 1024) ~staged_rules ~rules base =
  let idx = Index.create ~size_hint () in
  (* Bulk load: on the virgin index this builds the packed segment in
     one sort instead of per-fact posting inserts. *)
  ignore (Index.bulk_add idx (Array.of_seq base) : Triple.t list);
  create_shared ?max_facts ~staged_rules ~rules ~owned:idx (view_of_index idx)

let table st = function Stage -> st.stage_demanded | Full -> st.full_demanded

let set_governor st gov = st.gov <- gov
let poisoned st = st.poisoned

let cone_cardinal st = Index.cardinal st.stage_cone + Index.cardinal st.full_cone
let total st = st.base.bv_cardinal () + cone_cardinal st

(* --- views ----------------------------------------------------------- *)

let view_iter st level ~s ~r ~tgt f =
  st.base.bv_iter ~s ~r ~tgt f;
  Index.candidates st.stage_cone ~s ~r ~tgt f;
  if level = Full then Index.candidates st.full_cone ~s ~r ~tgt f

let view_mem st level triple =
  st.base.bv_mem triple || Index.mem st.stage_cone triple
  || (level = Full && Index.mem st.full_cone triple)

exception Found

let view_exists st ~s ~r ~tgt =
  try
    view_iter st Full ~s ~r ~tgt (fun _ -> raise Found);
    false
  with Found -> true

(* --- provenance / support (for DRed retraction) ---------------------- *)

let support_add support fact premises =
  List.iter
    (fun premise ->
      let cell =
        match Triple.Tbl.find_opt support.deps premise with
        | Some cell -> cell
        | None ->
            let cell = Triple.Tbl.create 4 in
            Triple.Tbl.add support.deps premise cell;
            cell
      in
      if not (Triple.Tbl.mem cell fact) then begin
        Triple.Tbl.add cell fact ();
        support.edges <- support.edges + 1
      end)
    premises

let support_drop support fact premises =
  List.iter
    (fun premise ->
      match Triple.Tbl.find_opt support.deps premise with
      | None -> ()
      | Some cell ->
          if Triple.Tbl.mem cell fact then begin
            Triple.Tbl.remove cell fact;
            support.edges <- support.edges - 1;
            if Triple.Tbl.length cell = 0 then Triple.Tbl.remove support.deps premise
          end)
    premises

let set_prov st fact rule premises =
  (match st.support with
  | Some support ->
      (match Triple.Tbl.find_opt st.prov fact with
      | Some (_, old) -> support_drop support fact old
      | None -> ());
      support_add support fact premises
  | None -> ());
  Triple.Tbl.replace st.prov fact (rule, premises)

let forget_prov st fact =
  match Triple.Tbl.find_opt st.prov fact with
  | None -> ()
  | Some (_, premises) ->
      (match st.support with
      | Some support -> support_drop support fact premises
      | None -> ());
      Triple.Tbl.remove st.prov fact

let force_support st =
  match st.support with
  | Some support -> support
  | None ->
      let support = { deps = Triple.Tbl.create 256; edges = 0 } in
      Triple.Tbl.iter (fun fact (_, premises) -> support_add support fact premises) st.prov;
      st.support <- Some support;
      support

(* --- activation creation --------------------------------------------- *)

(* Same fail-fast discipline as Engine: check every decidable guard, defer
   the rest (rules are safe, so all are decidable once the body is bound). *)
let guards_ok binding guards =
  List.for_all
    (fun g -> match Guard.check binding g with Some false -> false | Some true | None -> true)
    guards

let unify_head binding (atom : Atom.t) p =
  let bind term v =
    match v with
    | None -> true
    | Some c -> (
        match term with
        | Term.Const c' -> c' = c
        | Term.Var x ->
            if binding.(x) < 0 then begin
              binding.(x) <- c;
              true
            end
            else binding.(x) = c)
  in
  bind atom.s p.ps && bind atom.r p.pr && bind atom.t p.pt

(* Greedy most-bound-first body order: repeatedly pick the atom with the
   most bound positions under the variables bound so far, then mark its
   variables bound. Ties go to the atom with a bound {e source}, then a
   bound {e relationship}: in this schema a bound source selects an
   entity's out-edges (small — an entity's own facts), while a bound
   target can select in-edges of a class, which membership rules make as
   large as the member population. (E.g. for [syn-intro]'s body
   [(s,gen,t); (t,gen,s)] with [t] demanded, starting at [(t,gen,s)]
   enumerates [t]'s few superclasses; starting at [(s,gen,t)] would
   demand every subclass — and every lifted member — of [t].) *)
let sip_order (rule : Rule.t) binding0 =
  let bound = Array.map (fun v -> v >= 0) binding0 in
  let body = Array.of_list rule.body in
  let term_bound = function
    | Term.Const _ -> 1
    | Term.Var v -> if bound.(v) then 1 else 0
  in
  let var_bound = function Term.Const _ -> 0 | Term.Var v -> if bound.(v) then 1 else 0 in
  let score (atom : Atom.t) =
    let s = term_bound atom.s and r = term_bound atom.r and t = term_bound atom.t in
    (* lexicographic: connected to a bound variable (an atom bound only
       through its rule constants scans that relation's whole extent),
       then total bound, then source, then relationship *)
    let connected =
      min 1 (var_bound atom.s + var_bound atom.r + var_bound atom.t)
    in
    ((((connected * 4) + s + r + t) * 2) + s) * 2 + r
  in
  let remaining = ref (List.init (Array.length body) Fun.id) in
  let order = ref [] in
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some j -> if score body.(i) > score body.(j) then Some i else acc)
        None !remaining
    in
    let i = Option.get best in
    remaining := List.filter (( <> ) i) !remaining;
    order := i :: !order;
    List.iter (fun v -> bound.(v) <- true) (Atom.vars body.(i))
  done;
  List.rev !order

let enqueue_demand st level p =
  if not (covered (table st level) p) then Queue.add (level, p) st.pending_demands

let level_int = function Stage -> 0 | Full -> 1

let delta_idx st = function
  | Stage -> st.delta_idx_stage
  | Full -> st.delta_idx_full

(* The packed pattern an atom presents to deltas: rule constants stay
   concrete, every variable — seed-bound or not — is a wildcard. *)
let atom_key (atom : Atom.t) =
  let d = function Term.Const c -> c | Term.Var _ -> -1 in
  Triple.make (d atom.s) (d atom.r) (d atom.t)

let index_activation st act =
  let idx = delta_idx st act.level in
  Array.iteri
    (fun k atom ->
      let key = atom_key atom in
      match Triple.Tbl.find_opt idx key with
      | Some cell -> cell := (act, k) :: !cell
      | None -> Triple.Tbl.replace idx key (ref [ (act, k) ]))
    act.body

let class_for st level ri (rule : Rule.t) binding =
  let shape = ref [] in
  for v = Array.length binding - 1 downto 0 do
    if binding.(v) >= 0 then shape := v :: !shape
  done;
  let key = (level_int level, ri, !shape) in
  match Hashtbl.find_opt st.classes key with
  | Some act -> act
  | None ->
      let body = Array.of_list rule.body in
      let order = sip_order rule binding in
      let rest_of = Array.init (Array.length body) (fun k -> List.filter (( <> ) k) order) in
      let act =
        {
          level;
          rule;
          body;
          magic_vars = Array.of_list !shape;
          order;
          rest_of;
          first = List.hd order;
          magic = Hashtbl.create 16;
          magic_idx = Hashtbl.create 16;
        }
      in
      Hashtbl.add st.classes key act;
      (match level with
      | Stage -> st.acts_stage <- act :: st.acts_stage
      | Full -> st.acts_full <- act :: st.acts_full);
      index_activation st act;
      act

let try_activate st level ri (rule : Rule.t) head p =
  let binding = Array.make (max rule.nvars 1) (-1) in
  if unify_head binding head p && guards_ok binding rule.guards then begin
    let act = class_for st level ri rule binding in
    let tuple = Array.map (fun v -> binding.(v)) act.magic_vars in
    if not (Hashtbl.mem act.magic tuple) then begin
      Hashtbl.add act.magic tuple ();
      Array.iteri
        (fun j c ->
          match Hashtbl.find_opt act.magic_idx (j, c) with
          | Some cell -> cell := tuple :: !cell
          | None -> Hashtbl.replace act.magic_idx (j, c) (ref [ tuple ]))
        tuple;
      st.activations <- st.activations + 1;
      Queue.add (act, tuple) st.pending_acts
    end
  end

let process_demand st (level, p) =
  let tbl = table st level in
  if not (covered tbl p) then begin
    Triple.Tbl.replace tbl (pack p) ();
    st.magic_patterns <- st.magic_patterns + 1;
    Metrics.incr m_magic;
    (* A main-level demand implies the same demand at the stage level:
       full joins read the stage cone, so it must be complete for the
       pattern too. *)
    if level = Full then enqueue_demand st Stage p;
    let rules = match level with Stage -> st.staged_rules | Full -> st.rules in
    Array.iteri
      (fun ri (rule : Rule.t) ->
        List.iter (fun head -> try_activate st level ri rule head p) rule.heads)
      rules
  end

(* --- joins ----------------------------------------------------------- *)

let emit st act binding premises =
  Governor.tick st.gov 1;
  List.iter
    (fun head ->
      match Atom.instantiate binding head with
      | None -> ()
      | Some triple ->
          st.out <- (act.level, triple, act.rule.name, Array.to_list premises) :: st.out)
    act.rule.heads

(* Join the body atoms in [todo] over the level's current views. Each
   atom's instantiated pattern is demanded first: base facts matching it
   are already visible, and derived facts its cone produces re-enter the
   join later as deltas — together that makes the join complete without
   evaluating sub-demands recursively mid-iteration. *)
let rec join st act binding premises todo =
  match todo with
  | [] -> if guards_ok binding act.rule.guards then emit st act binding premises
  | i :: rest ->
      let atom = act.body.(i) in
      let s = Term.subst binding atom.s
      and r = Term.subst binding atom.r
      and tgt = Term.subst binding atom.t in
      enqueue_demand st act.level { ps = s; pr = r; pt = tgt };
      view_iter st act.level ~s ~r ~tgt (fun triple ->
          match Atom.match_against binding atom triple with
          | None -> ()
          | Some newly ->
              premises.(i) <- triple;
              if guards_ok binding act.rule.guards then join st act binding premises rest;
              List.iter (fun v -> binding.(v) <- -1) newly)

let dummy = Triple.make (-1) (-1) (-1)

let run_act st (act, tuple) =
  let binding = Array.make (max act.rule.nvars 1) (-1) in
  Array.iteri (fun j v -> binding.(v) <- tuple.(j)) act.magic_vars;
  let premises = Array.make (Array.length act.body) dummy in
  join st act binding premises act.order

let magic_unbound binding act =
  Array.exists (fun v -> binding.(v) < 0) act.magic_vars

(* Does a (possibly partial) binding agree with a seed tuple? *)
let tuple_consistent binding act tuple =
  let n = Array.length act.magic_vars in
  let rec go j =
    j >= n
    ||
    let b = binding.(act.magic_vars.(j)) in
    (b < 0 || b = tuple.(j)) && go (j + 1)
  in
  go 0

(* Delta join with the magic relation as a semi-join partner. As soon as
   every magic variable is bound, one hash probe of [act.magic] settles
   whether any seed demanded this branch, and the rest is the ordinary
   join (issuing the same per-binding sub-demands the seed's own
   evaluation would). While magic variables remain unbound there are two
   ways forward, chosen per atom:

   - {e enumerate the view} and let the later magic probe prune. Sound
     only when the cone is already complete for the atom under every
     seed: true for the SIP-first atom (each seed's evaluation demanded
     it in full, with only the seed's constants bound) and for any atom
     whose instantiated pattern is covered by a demanded pattern.

   - {e expand the consistent seed tuples}, which reduces to the
     per-seed evaluation (demands and all) for exactly the seeds that
     can still match — the fallback that keeps completeness for atoms
     whose facts only seed-specific sub-demands would derive. *)
let rec djoin st act binding premises todo =
  if not (magic_unbound binding act) then begin
    if Hashtbl.mem act.magic (Array.map (fun v -> binding.(v)) act.magic_vars) then
      join st act binding premises todo
  end
  else
    match todo with
    | [] -> ()  (* unreachable: rules are safe, so an empty todo binds all vars *)
    | i :: rest ->
        let atom = act.body.(i) in
        let s = Term.subst binding atom.s
        and r = Term.subst binding atom.r
        and tgt = Term.subst binding atom.t in
        if i = act.first || covered (table st act.level) { ps = s; pr = r; pt = tgt }
        then
          view_iter st act.level ~s ~r ~tgt (fun triple ->
              match Atom.match_against binding atom triple with
              | None -> ()
              | Some newly ->
                  premises.(i) <- triple;
                  if guards_ok binding act.rule.guards then djoin st act binding premises rest;
                  List.iter (fun v -> binding.(v) <- -1) newly)
        else begin
          let expand tuple =
            if tuple_consistent binding act tuple then begin
              let newly = ref [] in
              Array.iteri
                (fun j v ->
                  if binding.(v) < 0 then begin
                    binding.(v) <- tuple.(j);
                    newly := v :: !newly
                  end)
                act.magic_vars;
              if guards_ok binding act.rule.guards then join st act binding premises todo;
              List.iter (fun v -> binding.(v) <- -1) !newly
            end
          in
          (* Probe a posting for some already-bound magic variable; only
             the fully-unbound case has to scan the whole relation. *)
          let bound = ref (-1) in
          Array.iteri
            (fun j v -> if !bound < 0 && binding.(v) >= 0 then bound := j)
            act.magic_vars;
          if !bound < 0 then Hashtbl.iter (fun tuple () -> expand tuple) act.magic
          else
            match
              Hashtbl.find_opt act.magic_idx (!bound, binding.(act.magic_vars.(!bound)))
            with
            | None -> ()
            | Some cell -> List.iter expand !cell
        end

let delta_join_at st act k dtriple =
  let binding = Array.make (max act.rule.nvars 1) (-1) in
  match Atom.match_against binding act.body.(k) dtriple with
  | None -> ()
  | Some _ ->
      let premises = Array.make (Array.length act.body) dummy in
      premises.(k) <- dtriple;
      if guards_ok binding act.rule.guards then
        djoin st act binding premises act.rest_of.(k)

(* A delta can only match body position k if the position's key agrees
   with the delta everywhere the key is concrete — i.e. the key is one of
   the delta's 8 generalizations. Probing those keys replaces the scan
   over every activation of the level. *)
let process_delta st (level, dtriple) =
  st.deltas <- st.deltas + 1;
  let idx = delta_idx st level in
  let probe s r t =
    match Triple.Tbl.find_opt idx (Triple.make s r t) with
    | None -> ()
    | Some cell -> List.iter (fun (act, k) -> delta_join_at st act k dtriple) !cell
  in
  let { Triple.s; r; t } = dtriple in
  probe s r t;
  probe s r (-1);
  probe s (-1) t;
  probe s (-1) (-1);
  probe (-1) r t;
  probe (-1) r (-1);
  probe (-1) (-1) t;
  probe (-1) (-1) (-1)

(* --- merge barrier --------------------------------------------------- *)

let push_delta st level triple = Queue.add (level, triple) st.pending_deltas

let check_diverged st = if total st > st.max_facts then raise (Diverged (total st))

(* Fold one buffered emission into the cones. The demanded-pattern filter
   is what keeps the evaluation goal-directed: a head that matches no
   demanded pattern is dropped — if a later demand covers it, that
   demand's own activations re-derive it from premises still in the
   views. *)
let merge_one st (level, triple, rule_name, premises) =
  match level with
  | Stage ->
      if
        (not (st.base.bv_mem triple))
        && (not (Index.mem st.stage_cone triple))
        && matches_demanded st.stage_demanded triple
      then
        if Index.mem st.full_cone triple then begin
          (* The main stratum derived it first, but it belongs to the
             stage stratum (its derivation used stage-level premises
             only) — move it, making it visible to stage joins. *)
          ignore (Index.remove st.full_cone triple);
          ignore (Index.add st.stage_cone triple);
          set_prov st triple rule_name premises;
          push_delta st Stage triple
        end
        else begin
          ignore (Index.add st.stage_cone triple);
          set_prov st triple rule_name premises;
          Metrics.incr m_cone;
          check_diverged st;
          Governor.count_facts st.gov 1;
          push_delta st Stage triple;
          push_delta st Full triple
        end
  | Full ->
      if
        (not (st.base.bv_mem triple))
        && (not (Index.mem st.stage_cone triple))
        && (not (Index.mem st.full_cone triple))
        && matches_demanded st.full_demanded triple
      then begin
        ignore (Index.add st.full_cone triple);
        set_prov st triple rule_name premises;
        Metrics.incr m_cone;
        check_diverged st;
        Governor.count_facts st.gov 1;
        push_delta st Full triple
      end

let merge st =
  let emissions = List.rev st.out in
  st.out <- [];
  List.iter (merge_one st) emissions

(* Work loop: demands create activations; a fresh activation runs its
   full join; a delta triple re-joins against every activation of its
   level. Joins never mutate the indexes (emissions buffer until the
   join's merge), and every queue drains to empty — facts, demanded
   patterns and activations all grow monotonically and are bounded. *)
let drain st =
  let continue = ref true in
  while !continue do
    Governor.tick st.gov 1;
    if not (Queue.is_empty st.pending_demands) then
      process_demand st (Queue.pop st.pending_demands)
    else if not (Queue.is_empty st.pending_acts) then begin
      run_act st (Queue.pop st.pending_acts);
      merge st
    end
    else if not (Queue.is_empty st.pending_deltas) then begin
      process_delta st (Queue.pop st.pending_deltas);
      merge st
    end
    else continue := false
  done

(* Drain under the governor: a trip abandons the remaining queued work
   and poisons the memo tables. The structural phase of the operation
   (base add/remove, over-deletion) has already completed when this runs,
   so the cones are always a subset of the true fixpoint — sound for the
   partial answers the caller surfaces. *)
let drain_governed st =
  (try drain st
   with Governor.Trip _ ->
     st.poisoned <- true;
     Queue.clear st.pending_demands;
     Queue.clear st.pending_acts;
     Queue.clear st.pending_deltas;
     st.out <- []);
  (* The drain loop is single-threaded and buffers emissions between
     joins, so a completed (or abandoned) drain is a quiesce point for
     the cones and the owned base. *)
  Index.quiesce st.stage_cone;
  Index.quiesce st.full_cone;
  match st.owned with Some idx -> Index.quiesce idx | None -> ()

(* --- the external goal API ------------------------------------------- *)

let pat_string p =
  let part = function Some e -> string_of_int e | None -> "*" in
  Printf.sprintf "(%s,%s,%s)" (part p.ps) (part p.pr) (part p.pt)

(* Make sure the pattern's cone is derived, with goal/memo accounting. *)
let ensure st p =
  st.goals <- st.goals + 1;
  Metrics.incr m_goals;
  if covered st.full_demanded p then begin
    st.memo_hits <- st.memo_hits + 1;
    Metrics.incr m_hits
  end
  else begin
    st.memo_misses <- st.memo_misses + 1;
    Metrics.incr m_misses;
    let before = cone_cardinal st in
    (Trace.span "demand.eval" ~meta:[ ("pattern", pat_string p) ] @@ fun () ->
     enqueue_demand st Full p;
     drain_governed st);
    Metrics.observe m_cone_size (float_of_int (cone_cardinal st - before))
  end

let demand st ~s ~r ~tgt f =
  ensure st { ps = s; pr = r; pt = tgt };
  let acc = ref [] in
  view_iter st Full ~s ~r ~tgt (fun triple -> acc := triple :: !acc);
  List.iter f (List.sort Triple.compare !acc)

let mem st triple =
  ensure st { ps = Some triple.Triple.s; pr = Some triple.r; pt = Some triple.t };
  view_mem st Full triple

let count_hint st ~s ~r ~tgt =
  st.base.bv_count ~s ~r ~tgt
  + Index.count st.stage_cone ~s ~r ~tgt
  + Index.count st.full_cone ~s ~r ~tgt

let degree_out st e =
  st.base.bv_count_s e + Index.count_s st.stage_cone e + Index.count_s st.full_cone e

let degree_in st e =
  st.base.bv_count_t e + Index.count_t st.stage_cone e + Index.count_t st.full_cone e

let entity_occurs st e =
  ensure st { ps = Some e; pr = None; pt = None };
  ensure st { ps = None; pr = Some e; pt = None };
  ensure st { ps = None; pr = None; pt = Some e };
  view_exists st ~s:(Some e) ~r:None ~tgt:None
  || view_exists st ~s:None ~r:(Some e) ~tgt:None
  || view_exists st ~s:None ~r:None ~tgt:(Some e)

(* --- incremental maintenance ----------------------------------------- *)

let insert st triple =
  (* With a shared base the caller has already added the fact to it (and
     only calls on a genuinely new fact), so the pre-insert views are
     reconstructed from the cones alone. *)
  let was_base =
    match st.owned with Some idx -> Index.mem idx triple | None -> false
  in
  let in_stage_view = was_base || Index.mem st.stage_cone triple in
  let in_full_view = in_stage_view || Index.mem st.full_cone triple in
  (* A cone fact asserted as base is demoted: same fact set, but it no
     longer depends on its premises. *)
  if Index.remove st.stage_cone triple then forget_prov st triple;
  if Index.remove st.full_cone triple then forget_prov st triple;
  let added =
    match st.owned with Some idx -> Index.add idx triple | None -> not was_base
  in
  if added then begin
    check_diverged st;
    if not in_stage_view then push_delta st Stage triple;
    if not in_full_view then push_delta st Full triple;
    drain_governed st
  end

let retract st triple =
  (* With a shared base the caller has already removed the fact (and only
     calls when the removal really happened). *)
  let was_base =
    match st.owned with Some idx -> Index.mem idx triple | None -> true
  in
  if was_base then begin
    let support = force_support st in
    (* Over-delete the cone: every fact whose recorded derivation
       transitively rests on [triple]. Recorded derivations are
       well-founded, so everything outside the cone stays derivable. *)
    let doomed = ref [] in
    let seen = Triple.Tbl.create 16 in
    let rec visit fact =
      match Triple.Tbl.find_opt support.deps fact with
      | None -> ()
      | Some cell ->
          let dependents = Triple.Tbl.fold (fun d () acc -> d :: acc) cell [] in
          List.iter
            (fun d ->
              if not (Triple.Tbl.mem seen d) then begin
                Triple.Tbl.add seen d ();
                doomed := d :: !doomed;
                visit d
              end)
            dependents
    in
    visit triple;
    List.iter
      (fun d ->
        ignore (Index.remove st.stage_cone d);
        ignore (Index.remove st.full_cone d);
        forget_prov st d)
      !doomed;
    (match st.owned with Some idx -> ignore (Index.remove idx triple) | None -> ());
    (* Rederive: re-run every seeded activation so over-deleted survivors
       — and the retracted fact itself, when still derivable — are
       restored. *)
    let requeue act =
      Hashtbl.iter (fun tuple () -> Queue.add (act, tuple) st.pending_acts) act.magic
    in
    List.iter requeue st.acts_stage;
    List.iter requeue st.acts_full;
    drain_governed st
  end

let stats st =
  {
    goals = st.goals;
    memo_hits = st.memo_hits;
    memo_misses = st.memo_misses;
    magic_patterns = st.magic_patterns;
    activations = st.activations;
    base_facts = st.base.bv_cardinal ();
    stage_cone_facts = Index.cardinal st.stage_cone;
    full_cone_facts = Index.cardinal st.full_cone;
    deltas = st.deltas;
  }

let tier_stats st =
  let acc = Index.sum_stats (Index.tier_stats st.stage_cone) (Index.tier_stats st.full_cone) in
  match st.owned with
  | Some idx -> Index.sum_stats acc (Index.tier_stats idx)
  | None -> acc
