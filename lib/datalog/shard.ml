type plan = int

let plan n = max 1 n
let shards plan = plan

(* Multiplicative hashing with an avalanche finisher: interned entity
   ids are small consecutive integers, so without the finisher shard 0
   would own every hub entity allocated early (the axioms, the
   generators' class entities). Constants are the usual 32-bit
   Murmur3-style mix. *)
let mix e =
  let h = e * 0x9e3779b1 in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85ebca6b in
  let h = h lxor (h lsr 13) in
  h land max_int

let of_entity plan e = if plan = 1 then 0 else mix e mod plan
let of_triple plan (triple : Triple.t) = of_entity plan triple.s

(* FNV-1a, 64-bit offset/prime truncated to OCaml's int. Stable across
   sessions and platforms (for a fixed int width), unlike interned ids. *)
let of_name ~shards name =
  let shards = max 1 shards in
  if shards = 1 then 0
  else begin
    let h = ref 0x1bf29ce484222325 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x100000001b3)
      name;
    (!h land max_int) mod shards
  end
