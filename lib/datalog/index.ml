module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) land max_int
end

module Pair_tbl = Hashtbl.Make (Pair)
module Int_tbl = Hashtbl.Make (Int)

(* Buckets track their length so [count] can answer selectivity probes
   without walking the list. *)
type cell = { mutable items : Triple.t list; mutable len : int }

(* Deletion is tombstoned: [remove] unregisters the triple from [all] and
   marks it [deleted]; the posting lists are left alone and skip dead
   entries during iteration. Eagerly filtering the lists would be
   O(bucket) per removal — hub keys (a hot relationship, a big class)
   have posting lists proportional to the whole index, which made each
   retraction scan and reallocate them. Tombstones make removal O(1);
   [compact] rebuilds the lists (preserving order) once the dead fraction
   passes 1/8, so iteration overhead stays bounded and re-adding a
   tombstoned triple is O(1) too (its postings are still in place). *)
type t = {
  all : unit Triple.Tbl.t;
  by_sr : cell Pair_tbl.t;
  by_st : cell Pair_tbl.t;
  by_rt : cell Pair_tbl.t;
  by_s : cell Int_tbl.t;
  by_r : cell Int_tbl.t;
  by_t : cell Int_tbl.t;
  deleted : unit Triple.Tbl.t;
  mutable dead : int;
}

let create ?(size_hint = 1024) () =
  {
    all = Triple.Tbl.create size_hint;
    by_sr = Pair_tbl.create size_hint;
    by_st = Pair_tbl.create size_hint;
    by_rt = Pair_tbl.create size_hint;
    by_s = Int_tbl.create size_hint;
    by_r = Int_tbl.create size_hint;
    by_t = Int_tbl.create size_hint;
    deleted = Triple.Tbl.create 16;
    dead = 0;
  }

let push_pair tbl key triple =
  match Pair_tbl.find_opt tbl key with
  | Some cell ->
      cell.items <- triple :: cell.items;
      cell.len <- cell.len + 1
  | None -> Pair_tbl.add tbl key { items = [ triple ]; len = 1 }

let push_int tbl key triple =
  match Int_tbl.find_opt tbl key with
  | Some cell ->
      cell.items <- triple :: cell.items;
      cell.len <- cell.len + 1
  | None -> Int_tbl.add tbl key { items = [ triple ]; len = 1 }

let add idx (triple : Triple.t) =
  if Triple.Tbl.mem idx.all triple then false
  else begin
    Triple.Tbl.add idx.all triple ();
    if Triple.Tbl.mem idx.deleted triple then begin
      (* Resurrection: the postings never went away. *)
      Triple.Tbl.remove idx.deleted triple;
      idx.dead <- idx.dead - 1
    end
    else begin
      push_pair idx.by_sr (triple.s, triple.r) triple;
      push_pair idx.by_st (triple.s, triple.t) triple;
      push_pair idx.by_rt (triple.r, triple.t) triple;
      push_int idx.by_s triple.s triple;
      push_int idx.by_r triple.r triple;
      push_int idx.by_t triple.t triple
    end;
    true
  end

let compact idx =
  let live = idx.all in
  let sweep_cell cell =
    cell.items <- List.filter (fun t -> Triple.Tbl.mem live t) cell.items;
    cell.len <- List.length cell.items;
    cell.len = 0
  in
  let doomed_pairs tbl =
    Pair_tbl.fold (fun key cell acc -> if sweep_cell cell then key :: acc else acc) tbl []
    |> List.iter (Pair_tbl.remove tbl)
  and doomed_ints tbl =
    Int_tbl.fold (fun key cell acc -> if sweep_cell cell then key :: acc else acc) tbl []
    |> List.iter (Int_tbl.remove tbl)
  in
  doomed_pairs idx.by_sr;
  doomed_pairs idx.by_st;
  doomed_pairs idx.by_rt;
  doomed_ints idx.by_s;
  doomed_ints idx.by_r;
  doomed_ints idx.by_t;
  Triple.Tbl.reset idx.deleted;
  idx.dead <- 0

let remove idx (triple : Triple.t) =
  if not (Triple.Tbl.mem idx.all triple) then false
  else begin
    Triple.Tbl.remove idx.all triple;
    Triple.Tbl.add idx.deleted triple ();
    idx.dead <- idx.dead + 1;
    if idx.dead > 64 && idx.dead * 8 > Triple.Tbl.length idx.all then compact idx;
    true
  end

let mem idx triple = Triple.Tbl.mem idx.all triple
let cardinal idx = Triple.Tbl.length idx.all
let iter f idx = Triple.Tbl.iter (fun triple () -> f triple) idx.all
let to_seq idx = Triple.Tbl.to_seq_keys idx.all

let iter_cell idx cell f =
  if idx.dead = 0 then List.iter f cell.items
  else
    List.iter
      (fun t -> if not (Triple.Tbl.mem idx.deleted t) then f t)
      cell.items

let iter_pair idx tbl key f =
  match Pair_tbl.find_opt tbl key with
  | Some cell -> iter_cell idx cell f
  | None -> ()

let iter_int idx tbl key f =
  match Int_tbl.find_opt tbl key with
  | Some cell -> iter_cell idx cell f
  | None -> ()

let candidates idx ~s ~r ~tgt f =
  match (s, r, tgt) with
  | Some s, Some r, Some t ->
      let triple = Triple.make s r t in
      if mem idx triple then f triple
  | Some s, Some r, None -> iter_pair idx idx.by_sr (s, r) f
  | Some s, None, Some t -> iter_pair idx idx.by_st (s, t) f
  | None, Some r, Some t -> iter_pair idx idx.by_rt (r, t) f
  | Some s, None, None -> iter_int idx idx.by_s s f
  | None, Some r, None -> iter_int idx idx.by_r r f
  | None, None, Some t -> iter_int idx idx.by_t t f
  | None, None, None -> iter f idx

let pair_len tbl key =
  match Pair_tbl.find_opt tbl key with Some cell -> cell.len | None -> 0

let int_len tbl key =
  match Int_tbl.find_opt tbl key with Some cell -> cell.len | None -> 0

(* Upper bound on how many triples [candidates] will enumerate for the
   pattern: posting-list lengths include tombstoned entries, so this can
   overcount by at most the dead fraction — fine for join ordering. *)
let count idx ~s ~r ~tgt =
  match (s, r, tgt) with
  | Some s, Some r, Some t -> if mem idx (Triple.make s r t) then 1 else 0
  | Some s, Some r, None -> pair_len idx.by_sr (s, r)
  | Some s, None, Some t -> pair_len idx.by_st (s, t)
  | None, Some r, Some t -> pair_len idx.by_rt (r, t)
  | Some s, None, None -> int_len idx.by_s s
  | None, Some r, None -> int_len idx.by_r r
  | None, None, Some t -> int_len idx.by_t t
  | None, None, None -> cardinal idx

(* Option-free single-key probes: the out-degree (by_s) and in-degree
   (by_t) of an entity. The bidirectional path search sums these over a
   whole frontier when deciding which side to expand, so they skip the
   option boxing of [count]. *)
let count_s idx s = int_len idx.by_s s
let count_t idx t = int_len idx.by_t t
