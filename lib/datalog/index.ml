module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77) land max_int
end

module Pair_tbl = Hashtbl.Make (Pair)

(* Int-keyed tables are on the fixpoint's dedup path; [Int.hash] is the
   generic byte-mixing hash and costs a C call per probe. Two integer
   ops suffice — the shift-xor folds the high half down because packed
   pair keys carry one coordinate in the high bits and [Hashtbl] masks
   the low bits for the bucket index. *)
module Ikey = struct
  type t = int

  let equal (a : int) b = a = b

  let hash v =
    let h = v * 0x9e3779b1 in
    (h lxor (h lsr 31)) land max_int
end

module Int_tbl = Hashtbl.Make (Ikey)

(* Frozen-tier tables key coordinate pairs as one packed int: entity ids
   are symtab-interned and bounded by fact count, far below 2^31, so the
   packing is injective. Packed keys are immediate values — probing a
   frozen access path allocates nothing, unlike a boxed (int * int) key.
   The delta tier keeps tuple keys: it is the pre-segment layout. *)
let key2 a b = (a lsl 31) lor b

(* ------------------------------------------------------------------ *)
(* Delta tier: the mutable tail. Recent inserts keep the list-cell
   representation; cells track their length and their tombstone count so
   selectivity probes stay O(1) and exact. *)

type cell = {
  mutable items : Triple.t list;
  mutable len : int;  (* including tombstoned entries *)
  mutable dead : int;  (* tombstoned entries still in [items] *)
}

(* ------------------------------------------------------------------ *)
(* Frozen tier: one immutable packed segment. The spine [tri] holds the
   segment's triples sorted by [Triple.compare] (s, then r, then t); a
   triple's id is its slot. [fs]/[fr]/[ft] mirror the three coordinates
   into flat int arrays so binary search and galloping touch cache-linear
   memory instead of chasing record pointers.

   Because the spine sort is (s,r,t)-lexicographic, the [by_s] and
   [by_sr] access paths are contiguous id ranges ([r_s]/[r_sr]); the
   other four paths are packed id postings in ascending id order, which
   makes each posting's free coordinate ascend too: within [p_rt] key
   (r,t) the source ascends, within [p_st] key (s,t) the relationship
   ascends, and within an [r_sr] range the target ascends — exactly the
   sorted-set shape galloping intersection needs.

   Removal tombstones ids in [dead_bits] (folded away by the next
   freeze); sparse per-key tombstone counters keep [count] exact between
   freezes without a full sweep. *)

type seg = {
  tri : Triple.t array;
  fs : int array;
  fr : int array;
  ft : int array;
  dead_bits : Bytes.t;
  mutable ndead : int;
  r_s : (int * int) Int_tbl.t;  (* s -> [lo,hi) *)
  r_sr : (int * int) Int_tbl.t;  (* key2 s r -> [lo,hi) *)
  p_r : int array Int_tbl.t;
  p_t : int array Int_tbl.t;
  p_st : int array Int_tbl.t;  (* key2 s t *)
  p_rt : int array Int_tbl.t;  (* key2 r t *)
  d_s : int Int_tbl.t;  (* per-key tombstone counts, sparse *)
  d_r : int Int_tbl.t;
  d_t : int Int_tbl.t;
  d_sr : int Int_tbl.t;
  d_st : int Int_tbl.t;
  d_rt : int Int_tbl.t;
}

(* Safe to share: a segment is only ever mutated at ids it contains, and
   the empty segment contains none. *)
let empty_seg =
  {
    tri = [||];
    fs = [||];
    fr = [||];
    ft = [||];
    dead_bits = Bytes.empty;
    ndead = 0;
    r_s = Int_tbl.create 1;
    r_sr = Int_tbl.create 1;
    p_r = Int_tbl.create 1;
    p_t = Int_tbl.create 1;
    p_st = Int_tbl.create 1;
    p_rt = Int_tbl.create 1;
    d_s = Int_tbl.create 1;
    d_r = Int_tbl.create 1;
    d_t = Int_tbl.create 1;
    d_sr = Int_tbl.create 1;
    d_st = Int_tbl.create 1;
    d_rt = Int_tbl.create 1;
  }

type t = {
  mutable fz : seg;
  dmem : unit Triple.Tbl.t;  (* live delta triples *)
  ddead : unit Triple.Tbl.t;  (* tombstoned delta triples (postings in place) *)
  by_sr : cell Pair_tbl.t;
  by_st : cell Pair_tbl.t;
  by_rt : cell Pair_tbl.t;
  by_s : cell Int_tbl.t;
  by_r : cell Int_tbl.t;
  by_t : cell Int_tbl.t;
  mutable freezes : int;
}

let create ?(size_hint = 1024) () =
  {
    fz = empty_seg;
    dmem = Triple.Tbl.create size_hint;
    ddead = Triple.Tbl.create 16;
    by_sr = Pair_tbl.create size_hint;
    by_st = Pair_tbl.create size_hint;
    by_rt = Pair_tbl.create size_hint;
    by_s = Int_tbl.create size_hint;
    by_r = Int_tbl.create size_hint;
    by_t = Int_tbl.create size_hint;
    freezes = 0;
  }

(* --- frozen-tier primitives ----------------------------------------- *)

let seg_len fz = Array.length fz.tri
let seg_live fz = seg_len fz - fz.ndead

let is_dead fz id =
  Char.code (Bytes.unsafe_get fz.dead_bits (id lsr 3)) land (1 lsl (id land 7))
  <> 0

let set_dead fz id =
  let b = id lsr 3 in
  Bytes.unsafe_set fz.dead_bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get fz.dead_bits b) lor (1 lsl (id land 7))));
  fz.ndead <- fz.ndead + 1

let clear_dead fz id =
  let b = id lsr 3 in
  Bytes.unsafe_set fz.dead_bits b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get fz.dead_bits b)
       land lnot (1 lsl (id land 7))
       land 0xff));
  fz.ndead <- fz.ndead - 1

(* The id of [x] in the segment (dead or alive), or -1: range lookup on
   (s,r), then binary search on the target coordinate within it.
   [find]-with-exception rather than [find_opt]: this runs once per
   dedup probe of the fixpoint, and the [Some] box would be a minor
   allocation per probe. *)
let seg_find fz (x : Triple.t) =
  match Int_tbl.find fz.r_sr (key2 x.Triple.s x.Triple.r) with
  | exception Not_found -> -1
  | l, h ->
      let tv = x.Triple.t in
      let lo = ref l and hi = ref h and res = ref (-1) in
      while !res < 0 && !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        let v = Array.unsafe_get fz.ft mid in
        if v = tv then res := mid else if v < tv then lo := mid + 1 else hi := mid
      done;
      !res

let frozen_mem fz x =
  let id = seg_find fz x in
  id >= 0 && not (is_dead fz id)

let bump_int tbl k by =
  match Int_tbl.find_opt tbl k with
  | Some n ->
      let n = n + by in
      if n = 0 then Int_tbl.remove tbl k else Int_tbl.replace tbl k n
  | None -> if by <> 0 then Int_tbl.add tbl k by

let bump_frozen_dead fz (x : Triple.t) by =
  bump_int fz.d_s x.Triple.s by;
  bump_int fz.d_r x.Triple.r by;
  bump_int fz.d_t x.Triple.t by;
  bump_int fz.d_sr (key2 x.Triple.s x.Triple.r) by;
  bump_int fz.d_st (key2 x.Triple.s x.Triple.t) by;
  bump_int fz.d_rt (key2 x.Triple.r x.Triple.t) by

let dead_i tbl k = match Int_tbl.find tbl k with n -> n | exception Not_found -> 0

(* --- membership / size ---------------------------------------------- *)

(* Probe the bigger tier first: during a closure the frozen segment
   holds the base facts and re-derivations mostly land there, so one
   lookup settles the common hit. Tier disjointness makes either order
   correct; empty tiers are skipped without hashing the triple. *)
let mem idx x =
  let dn = Triple.Tbl.length idx.dmem in
  if seg_live idx.fz >= dn then
    frozen_mem idx.fz x || (dn > 0 && Triple.Tbl.mem idx.dmem x)
  else Triple.Tbl.mem idx.dmem x || frozen_mem idx.fz x
let cardinal idx = Triple.Tbl.length idx.dmem + seg_live idx.fz

(* --- delta-tier mutation -------------------------------------------- *)

let push_pair tbl key triple =
  match Pair_tbl.find_opt tbl key with
  | Some cell ->
      cell.items <- triple :: cell.items;
      cell.len <- cell.len + 1
  | None -> Pair_tbl.add tbl key { items = [ triple ]; len = 1; dead = 0 }

let push_int tbl key triple =
  match Int_tbl.find_opt tbl key with
  | Some cell ->
      cell.items <- triple :: cell.items;
      cell.len <- cell.len + 1
  | None -> Int_tbl.add tbl key { items = [ triple ]; len = 1; dead = 0 }

(* Adjust the six posting cells' tombstone counts for a delta triple
   whose liveness just flipped. The cells are guaranteed to exist: a
   delta triple's postings stay in place until [compact], which also
   empties [ddead]. *)
let cell_dead_delta idx (x : Triple.t) by =
  let on_pair tbl key =
    match Pair_tbl.find_opt tbl key with
    | Some cell -> cell.dead <- cell.dead + by
    | None -> ()
  and on_int tbl key =
    match Int_tbl.find_opt tbl key with
    | Some cell -> cell.dead <- cell.dead + by
    | None -> ()
  in
  on_pair idx.by_sr (x.Triple.s, x.Triple.r);
  on_pair idx.by_st (x.Triple.s, x.Triple.t);
  on_pair idx.by_rt (x.Triple.r, x.Triple.t);
  on_int idx.by_s x.Triple.s;
  on_int idx.by_r x.Triple.r;
  on_int idx.by_t x.Triple.t

let add idx (x : Triple.t) =
  if Triple.Tbl.length idx.dmem > 0 && Triple.Tbl.mem idx.dmem x then false
  else if Triple.Tbl.length idx.ddead > 0 && Triple.Tbl.mem idx.ddead x
  then begin
    (* Delta resurrection: the postings never went away. *)
    Triple.Tbl.remove idx.ddead x;
    Triple.Tbl.add idx.dmem x ();
    cell_dead_delta idx x (-1);
    true
  end
  else
    let id = seg_find idx.fz x in
    if id >= 0 then
      if is_dead idx.fz id then begin
        (* Frozen resurrection: clear the tombstone in place. *)
        clear_dead idx.fz id;
        bump_frozen_dead idx.fz x (-1);
        true
      end
      else false
    else begin
      Triple.Tbl.add idx.dmem x ();
      push_pair idx.by_sr (x.Triple.s, x.Triple.r) x;
      push_pair idx.by_st (x.Triple.s, x.Triple.t) x;
      push_pair idx.by_rt (x.Triple.r, x.Triple.t) x;
      push_int idx.by_s x.Triple.s x;
      push_int idx.by_r x.Triple.r x;
      push_int idx.by_t x.Triple.t x;
      true
    end

(* Delta-tier sweep: rebuild each posting cell without its tombstoned
   entries, counting during the filter fold (one pass per cell; cells
   with no tombstones are skipped outright). The frozen tier is not
   touched — its tombstones fold away at the next freeze. *)
let compact idx =
  let gone = idx.ddead in
  let sweep_cell cell =
    if cell.dead > 0 then begin
      let kept, n =
        List.fold_left
          (fun (acc, n) x ->
            if Triple.Tbl.mem gone x then (acc, n) else (x :: acc, n + 1))
          ([], 0) cell.items
      in
      cell.items <- List.rev kept;
      cell.len <- n;
      cell.dead <- 0
    end;
    cell.len = 0
  in
  let doomed_pairs tbl =
    Pair_tbl.fold
      (fun key cell acc -> if sweep_cell cell then key :: acc else acc)
      tbl []
    |> List.iter (Pair_tbl.remove tbl)
  and doomed_ints tbl =
    Int_tbl.fold
      (fun key cell acc -> if sweep_cell cell then key :: acc else acc)
      tbl []
    |> List.iter (Int_tbl.remove tbl)
  in
  doomed_pairs idx.by_sr;
  doomed_pairs idx.by_st;
  doomed_pairs idx.by_rt;
  doomed_ints idx.by_s;
  doomed_ints idx.by_r;
  doomed_ints idx.by_t;
  Triple.Tbl.reset idx.ddead

let remove idx (x : Triple.t) =
  if Triple.Tbl.mem idx.dmem x then begin
    Triple.Tbl.remove idx.dmem x;
    Triple.Tbl.add idx.ddead x ();
    cell_dead_delta idx x 1;
    let dd = Triple.Tbl.length idx.ddead in
    if dd > 64 && dd * 8 > Triple.Tbl.length idx.dmem then compact idx;
    true
  end
  else
    let id = seg_find idx.fz x in
    if id >= 0 && not (is_dead idx.fz id) then begin
      (* O(1): tombstone only; the next freeze folds it away. *)
      set_dead idx.fz id;
      bump_frozen_dead idx.fz x 1;
      true
    end
    else false

(* --- iteration ------------------------------------------------------ *)

let iter f idx =
  let fz = idx.fz in
  let n = seg_len fz in
  if fz.ndead = 0 then
    for id = 0 to n - 1 do
      f (Array.unsafe_get fz.tri id)
    done
  else
    for id = 0 to n - 1 do
      if not (is_dead fz id) then f (Array.unsafe_get fz.tri id)
    done;
  Triple.Tbl.iter (fun x () -> f x) idx.dmem

let to_seq idx =
  let fz = idx.fz in
  let n = seg_len fz in
  let rec frozen id () =
    if id >= n then Triple.Tbl.to_seq_keys idx.dmem ()
    else if is_dead fz id then frozen (id + 1) ()
    else Seq.Cons (fz.tri.(id), frozen (id + 1))
  in
  frozen 0

let iter_cell idx cell f =
  if cell.dead = 0 then List.iter f cell.items
  else
    List.iter
      (fun x -> if not (Triple.Tbl.mem idx.ddead x) then f x)
      cell.items

let iter_pair idx tbl key f =
  match Pair_tbl.find_opt tbl key with
  | Some cell -> iter_cell idx cell f
  | None -> ()

let iter_int idx tbl key f =
  match Int_tbl.find_opt tbl key with
  | Some cell -> iter_cell idx cell f
  | None -> ()

let iter_range fz lo hi f =
  if fz.ndead = 0 then
    for id = lo to hi - 1 do
      f (Array.unsafe_get fz.tri id)
    done
  else
    for id = lo to hi - 1 do
      if not (is_dead fz id) then f (Array.unsafe_get fz.tri id)
    done

let iter_ids fz ids f =
  let n = Array.length ids in
  if fz.ndead = 0 then
    for i = 0 to n - 1 do
      f (Array.unsafe_get fz.tri (Array.unsafe_get ids i))
    done
  else
    for i = 0 to n - 1 do
      let id = Array.unsafe_get ids i in
      if not (is_dead fz id) then f (Array.unsafe_get fz.tri id)
    done

let frozen_range tbl key f fz =
  match Int_tbl.find tbl key with
  | lo, hi -> iter_range fz lo hi f
  | exception Not_found -> ()

let frozen_posting tbl key f fz =
  match Int_tbl.find tbl key with
  | ids -> iter_ids fz ids f
  | exception Not_found -> ()

let candidates idx ~s ~r ~tgt f =
  let fz = idx.fz in
  match (s, r, tgt) with
  | Some s, Some r, Some t ->
      let x = Triple.make s r t in
      if mem idx x then f x
  | Some s, Some r, None ->
      frozen_range fz.r_sr (key2 s r) f fz;
      iter_pair idx idx.by_sr (s, r) f
  | Some s, None, Some t ->
      frozen_posting fz.p_st (key2 s t) f fz;
      iter_pair idx idx.by_st (s, t) f
  | None, Some r, Some t ->
      frozen_posting fz.p_rt (key2 r t) f fz;
      iter_pair idx idx.by_rt (r, t) f
  | Some s, None, None ->
      frozen_range fz.r_s s f fz;
      iter_int idx idx.by_s s f
  | None, Some r, None ->
      frozen_posting fz.p_r r f fz;
      iter_int idx idx.by_r r f
  | None, None, Some t ->
      frozen_posting fz.p_t t f fz;
      iter_int idx idx.by_t t f
  | None, None, None -> iter f idx

(* --- exact O(1) counts ---------------------------------------------- *)

let cell_live_pair tbl key =
  match Pair_tbl.find_opt tbl key with
  | Some cell -> cell.len - cell.dead
  | None -> 0

let cell_live_int tbl key =
  match Int_tbl.find_opt tbl key with
  | Some cell -> cell.len - cell.dead
  | None -> 0

let frozen_live_range tbl dead key =
  match Int_tbl.find tbl key with
  | lo, hi -> hi - lo - dead_i dead key
  | exception Not_found -> 0

let frozen_live_posting tbl dead key =
  match Int_tbl.find tbl key with
  | ids -> Array.length ids - dead_i dead key
  | exception Not_found -> 0

let count idx ~s ~r ~tgt =
  let fz = idx.fz in
  match (s, r, tgt) with
  | Some s, Some r, Some t -> if mem idx (Triple.make s r t) then 1 else 0
  | Some s, Some r, None ->
      frozen_live_range fz.r_sr fz.d_sr (key2 s r)
      + cell_live_pair idx.by_sr (s, r)
  | Some s, None, Some t ->
      frozen_live_posting fz.p_st fz.d_st (key2 s t)
      + cell_live_pair idx.by_st (s, t)
  | None, Some r, Some t ->
      frozen_live_posting fz.p_rt fz.d_rt (key2 r t)
      + cell_live_pair idx.by_rt (r, t)
  | Some s, None, None ->
      frozen_live_range fz.r_s fz.d_s s + cell_live_int idx.by_s s
  | None, Some r, None ->
      frozen_live_posting fz.p_r fz.d_r r + cell_live_int idx.by_r r
  | None, None, Some t ->
      frozen_live_posting fz.p_t fz.d_t t + cell_live_int idx.by_t t
  | None, None, None -> cardinal idx

let count_s idx s =
  frozen_live_range idx.fz.r_s idx.fz.d_s s + cell_live_int idx.by_s s

let count_t idx t =
  frozen_live_posting idx.fz.p_t idx.fz.d_t t + cell_live_int idx.by_t t

(* --- freezing ------------------------------------------------------- *)

let dummy_triple = Triple.make 0 0 0

(* Build a segment over [tris], which must be sorted by [Triple.compare]
   and duplicate-free. Contiguous ranges (r_s/r_sr) come from one run
   scan; scattered postings are built count-then-fill, with the count
   tables reused as fill cursors — no cons cell is allocated per fact. *)
let build_seg (tris : Triple.t array) : seg =
  let n = Array.length tris in
  let fs = Array.make n 0 and fr = Array.make n 0 and ft = Array.make n 0 in
  for id = 0 to n - 1 do
    let x = Array.unsafe_get tris id in
    Array.unsafe_set fs id x.Triple.s;
    Array.unsafe_set fr id x.Triple.r;
    Array.unsafe_set ft id x.Triple.t
  done;
  let r_s = Int_tbl.create (max 16 (n / 8)) in
  let r_sr = Int_tbl.create (max 16 (n / 4)) in
  let i = ref 0 in
  while !i < n do
    let s = fs.(!i) in
    let j = ref !i in
    while !j < n && fs.(!j) = s do
      let r = fr.(!j) in
      let k = ref !j in
      while !k < n && fs.(!k) = s && fr.(!k) = r do
        incr k
      done;
      Int_tbl.add r_sr (key2 s r) (!j, !k);
      j := !k
    done;
    Int_tbl.add r_s s (!i, !j);
    i := !j
  done;
  let c_r = Int_tbl.create (max 16 (n / 8)) in
  let c_t = Int_tbl.create (max 16 (n / 8)) in
  let c_st = Int_tbl.create (max 16 (n / 4)) in
  let c_rt = Int_tbl.create (max 16 (n / 4)) in
  let ci tbl k =
    Int_tbl.replace tbl k
      (1 + match Int_tbl.find tbl k with v -> v | exception Not_found -> 0)
  in
  for id = 0 to n - 1 do
    ci c_r fr.(id);
    ci c_t ft.(id);
    ci c_st (key2 fs.(id) ft.(id));
    ci c_rt (key2 fr.(id) ft.(id))
  done;
  let c_to_p c =
    let p = Int_tbl.create (max 1 (Int_tbl.length c)) in
    Int_tbl.iter (fun k n -> Int_tbl.add p k (Array.make n 0)) c;
    Int_tbl.filter_map_inplace (fun _ _ -> Some 0) c;
    p
  in
  let p_r = c_to_p c_r in
  let p_t = c_to_p c_t in
  let p_st = c_to_p c_st in
  let p_rt = c_to_p c_rt in
  let fi ptbl ctbl k id =
    let arr = Int_tbl.find ptbl k in
    let c = Int_tbl.find ctbl k in
    arr.(c) <- id;
    Int_tbl.replace ctbl k (c + 1)
  in
  for id = 0 to n - 1 do
    fi p_r c_r fr.(id) id;
    fi p_t c_t ft.(id) id;
    fi p_st c_st (key2 fs.(id) ft.(id)) id;
    fi p_rt c_rt (key2 fr.(id) ft.(id)) id
  done;
  {
    tri = tris;
    fs;
    fr;
    ft;
    dead_bits = Bytes.make ((n + 7) / 8) '\000';
    ndead = 0;
    r_s;
    r_sr;
    p_r;
    p_t;
    p_st;
    p_rt;
    d_s = Int_tbl.create 16;
    d_r = Int_tbl.create 16;
    d_t = Int_tbl.create 16;
    d_sr = Int_tbl.create 16;
    d_st = Int_tbl.create 16;
    d_rt = Int_tbl.create 16;
  }

let clear_delta idx =
  Triple.Tbl.reset idx.dmem;
  Triple.Tbl.reset idx.ddead;
  Pair_tbl.reset idx.by_sr;
  Pair_tbl.reset idx.by_st;
  Pair_tbl.reset idx.by_rt;
  Int_tbl.reset idx.by_s;
  Int_tbl.reset idx.by_r;
  Int_tbl.reset idx.by_t

let freeze idx =
  let fz = idx.fz in
  let dn = Triple.Tbl.length idx.dmem in
  if dn = 0 && fz.ndead = 0 then
    (* Nothing to fold into the spine: just drop the (entirely dead, if
       anything) delta postings. Covers the 100%-dead-delta case without
       a rebuild. *)
    clear_delta idx
  else begin
    let delta = Array.make dn dummy_triple in
    let w = ref 0 in
    Triple.Tbl.iter
      (fun x () ->
        delta.(!w) <- x;
        incr w)
      idx.dmem;
    Array.sort Triple.compare delta;
    (* Merge the frozen live run (already sorted) with the sorted delta.
       The two sets are disjoint — [add] resurrects rather than
       re-inserting — so this is a strict interleave. *)
    let n = seg_len fz in
    let merged = Array.make (seg_live fz + dn) dummy_triple in
    let out = ref 0 and fi = ref 0 and di = ref 0 in
    let skip () =
      while !fi < n && is_dead fz !fi do
        incr fi
      done
    in
    skip ();
    while !fi < n && !di < dn do
      if Triple.compare fz.tri.(!fi) delta.(!di) < 0 then begin
        merged.(!out) <- fz.tri.(!fi);
        incr out;
        incr fi;
        skip ()
      end
      else begin
        merged.(!out) <- delta.(!di);
        incr out;
        incr di
      end
    done;
    while !fi < n do
      merged.(!out) <- fz.tri.(!fi);
      incr out;
      incr fi;
      skip ()
    done;
    while !di < dn do
      merged.(!out) <- delta.(!di);
      incr out;
      incr di
    done;
    idx.fz <- build_seg merged;
    clear_delta idx
  end;
  idx.freezes <- idx.freezes + 1

(* --- freeze policy -------------------------------------------------- *)

type policy = Always | Never | Watermark

let freeze_policy = ref Watermark
let freeze_min_delta = ref 8192
let set_policy p = freeze_policy := p
let policy () = !freeze_policy
let set_min_delta n = freeze_min_delta := max 1 n
let min_delta () = !freeze_min_delta

let wants_freeze idx =
  let fz = idx.fz in
  let dn = Triple.Tbl.length idx.dmem + Triple.Tbl.length idx.ddead in
  let fn = seg_len fz in
  (dn >= !freeze_min_delta && dn * 4 >= fn)
  || (fz.ndead > 64 && fz.ndead * 8 > fn)

let quiesce idx =
  match !freeze_policy with
  | Never -> ()
  | Always -> freeze idx
  | Watermark -> if wants_freeze idx then freeze idx

(* --- bulk load ------------------------------------------------------ *)

let bulk_add idx (arr : Triple.t array) =
  let n = Array.length arr in
  let virgin =
    seg_len idx.fz = 0
    && Triple.Tbl.length idx.dmem = 0
    && Triple.Tbl.length idx.ddead = 0
  in
  let fast =
    virgin
    &&
    match !freeze_policy with
    | Never -> false
    | Always -> true
    | Watermark -> n >= !freeze_min_delta
  in
  if not fast then begin
    let fresh = ref [] in
    Array.iter (fun x -> if add idx x then fresh := x :: !fresh) arr;
    List.rev !fresh
  end
  else begin
    (* Sort a permutation by (triple, first occurrence): run heads are
       the distinct triples in spine order AND carry the earliest input
       position, which recovers the fresh-triple order an add loop would
       have reported. Builds the frozen segment directly — no per-fact
       hashtable insert, no posting cons cells. *)
    let perm = Array.init n (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = Triple.compare arr.(i) arr.(j) in
        if c <> 0 then c else Int.compare i j)
      perm;
    let distinct = ref 0 in
    for k = 0 to n - 1 do
      if k = 0 || Triple.compare arr.(perm.(k)) arr.(perm.(k - 1)) <> 0 then
        incr distinct
    done;
    let tris = Array.make !distinct dummy_triple in
    let firsts = Array.make !distinct 0 in
    let w = ref 0 in
    for k = 0 to n - 1 do
      if k = 0 || Triple.compare arr.(perm.(k)) arr.(perm.(k - 1)) <> 0 then begin
        tris.(!w) <- arr.(perm.(k));
        firsts.(!w) <- perm.(k);
        incr w
      end
    done;
    idx.fz <- build_seg tris;
    idx.freezes <- idx.freezes + 1;
    Array.sort Int.compare firsts;
    Array.fold_right (fun p acc -> arr.(p) :: acc) firsts []
  end

(* --- tier statistics ------------------------------------------------ *)

type tier_stats = {
  frozen_live : int;
  frozen_dead : int;
  delta_live : int;
  delta_dead : int;
  freezes : int;
}

let tier_stats idx =
  {
    frozen_live = seg_live idx.fz;
    frozen_dead = idx.fz.ndead;
    delta_live = Triple.Tbl.length idx.dmem;
    delta_dead = Triple.Tbl.length idx.ddead;
    freezes = idx.freezes;
  }

let zero_stats =
  { frozen_live = 0; frozen_dead = 0; delta_live = 0; delta_dead = 0; freezes = 0 }

let sum_stats a b =
  {
    frozen_live = a.frozen_live + b.frozen_live;
    frozen_dead = a.frozen_dead + b.frozen_dead;
    delta_live = a.delta_live + b.delta_live;
    delta_dead = a.delta_dead + b.delta_dead;
    freezes = a.freezes + b.freezes;
  }

(* --- galloping intersection ----------------------------------------- *)

type hinge = Out of { s : int; r : int } | In of { r : int; t : int } | Via of { s : int; t : int }

let hinge_triple h v =
  match h with
  | Out { s; r } -> Triple.make s r v
  | In { r; t } -> Triple.make v r t
  | Via { s; t } -> Triple.make s v t

(* A hinge's frozen posting: [f_len] ids whose free coordinate
   ([f_proj].(id)) ascends. [f_ids == no_ids] marks a contiguous range
   starting at [f_lo] (ids are positions); otherwise ids come from the
   posting array. Real postings are never length zero, so the physical
   equality is unambiguous. *)
let no_ids : int array = [||]

type fspan = { f_ids : int array; f_lo : int; f_len : int; f_proj : int array }

let fspan_of idx h =
  let fz = idx.fz in
  let empty proj = { f_ids = no_ids; f_lo = 0; f_len = 0; f_proj = proj } in
  match h with
  | Out { s; r } -> (
      match Int_tbl.find fz.r_sr (key2 s r) with
      | lo, hi -> { f_ids = no_ids; f_lo = lo; f_len = hi - lo; f_proj = fz.ft }
      | exception Not_found -> empty fz.ft)
  | In { r; t } -> (
      match Int_tbl.find fz.p_rt (key2 r t) with
      | ids ->
          { f_ids = ids; f_lo = 0; f_len = Array.length ids; f_proj = fz.fs }
      | exception Not_found -> empty fz.fs)
  | Via { s; t } -> (
      match Int_tbl.find fz.p_st (key2 s t) with
      | ids ->
          { f_ids = ids; f_lo = 0; f_len = Array.length ids; f_proj = fz.fr }
      | exception Not_found -> empty fz.fr)

let sp_id sp i =
  if sp.f_ids == no_ids then sp.f_lo + i else Array.unsafe_get sp.f_ids i

let sp_val sp i = Array.unsafe_get sp.f_proj (sp_id sp i)

(* Least index in [lo, f_len) whose value is >= v: exponential probe from
   [lo], then binary search inside the bracket. *)
let gallop_ge sp v lo =
  let len = sp.f_len in
  if lo >= len || sp_val sp lo >= v then lo
  else begin
    let step = ref 1 and prev = ref lo and cur = ref (lo + 1) in
    while !cur < len && sp_val sp !cur < v do
      prev := !cur;
      step := !step lsl 1;
      cur := !cur + !step
    done;
    let lo = ref (!prev + 1) and hi = ref (min !cur len) in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if sp_val sp mid < v then lo := mid + 1 else hi := mid
    done;
    !lo
  end

(* Symmetric gallop: each miss skips the other side forward past the
   gap, so runtime is O(min log max) instead of O(min + max). Tombstoned
   ids participate in the search but are filtered at emission — a value
   is emitted only when both sides' ids are live. *)
let intersect_frozen fz a b emit =
  if a.f_len > 0 && b.f_len > 0 then begin
    let a, b = if a.f_len <= b.f_len then (a, b) else (b, a) in
    let i = ref 0 and j = ref 0 in
    while !i < a.f_len && !j < b.f_len do
      let v = sp_val a !i in
      j := gallop_ge b v !j;
      if !j < b.f_len then begin
        let w = sp_val b !j in
        if w = v then begin
          if
            (not (is_dead fz (sp_id a !i))) && not (is_dead fz (sp_id b !j))
          then emit v;
          incr i;
          incr j
        end
        else i := gallop_ge a w !i
      end
    done
  end

(* Live delta triples matching the hinge, projected to the free
   coordinate. *)
let delta_hinge_iter idx h f =
  match h with
  | Out { s; r } -> iter_pair idx idx.by_sr (s, r) (fun x -> f x.Triple.t)
  | In { r; t } -> iter_pair idx idx.by_rt (r, t) (fun x -> f x.Triple.s)
  | Via { s; t } -> iter_pair idx idx.by_st (s, t) (fun x -> f x.Triple.r)

(* [intersect idx h1 h2 emit]: every entity that fills both hinges' free
   position, each exactly once, in a deterministic order for a fixed
   index state. Frozen×frozen matches gallop (ascending entity order);
   the delta tiers are reconciled by probing the opposite side — the
   three parts are disjoint because a hinge's frozen and delta value
   sets are. *)
let intersect idx h1 h2 emit =
  intersect_frozen idx.fz (fspan_of idx h1) (fspan_of idx h2) emit;
  delta_hinge_iter idx h1 (fun v -> if mem idx (hinge_triple h2 v) then emit v);
  delta_hinge_iter idx h2 (fun v ->
      if frozen_mem idx.fz (hinge_triple h1 v) then emit v)
