module Pool = Lsdb_exec.Pool

type provenance = { rule : string; premises : Triple.t list }

type result = {
  index : Index.t;
  derived : Triple.t list;
  provenance : provenance Triple.Tbl.t;
  rounds : int;
}

exception Diverged of int

(* Check every guard that is fully bound; fail fast on the first violated
   one. Guards whose variables are still unbound are deferred to a later
   atom (and are guaranteed checkable at the end because rules are safe). *)
let guards_ok binding guards =
  List.for_all
    (fun g -> match Guard.check binding g with Some false -> false | Some true | None -> true)
    guards

let atom_pattern binding (atom : Atom.t) =
  ( Term.subst binding atom.s,
    Term.subst binding atom.r,
    Term.subst binding atom.t )

(* Semi-naive body evaluation: every produced binding uses at least one
   premise from [delta]; the remaining atoms are matched against [full].
   [delta] is an {e ordered array} and is iterated outermost, each triple
   tried at every body position — so the emission order depends only on
   the delta order and on [full], never on how the delta happens to be
   sharded across domains (the parallel rounds rely on exactly this).
   Leading with the delta triple also binds variables that make the
   remaining full-index probes selective. [emit binding premises] is
   called for each complete match, premises in body order. *)
let eval_rule (rule : Rule.t) ~full ~delta ~emit =
  let binding = Array.make (max rule.nvars 1) (-1) in
  let body = Array.of_list rule.body in
  let n = Array.length body in
  let premises = Array.make n (Triple.make (-1) (-1) (-1)) in
  let rest_of = Array.init n (fun k -> List.filter (fun i -> i <> k) (List.init n Fun.id)) in
  let rec go = function
    | [] ->
        if guards_ok binding rule.guards then emit binding (Array.to_list premises)
    | i :: rest ->
        let atom = body.(i) in
        let s, r, tgt = atom_pattern binding atom in
        Index.candidates full ~s ~r ~tgt (fun triple ->
            match Atom.match_against binding atom triple with
            | None -> ()
            | Some newly ->
                premises.(i) <- triple;
                if guards_ok binding rule.guards then go rest;
                List.iter (fun v -> binding.(v) <- -1) newly)
  in
  Array.iter
    (fun dtriple ->
      for k = 0 to n - 1 do
        match Atom.match_against binding body.(k) dtriple with
        | None -> ()
        | Some newly ->
            premises.(k) <- dtriple;
            if guards_ok binding rule.guards then go rest_of.(k);
            List.iter (fun v -> binding.(v) <- -1) newly
      done)
    delta

(* One semi-naive round over a frozen [full]: evaluate every rule against
   one delta shard, buffering (head, premises) emissions per rule. The
   index is not mutated here, so shards can run on separate domains; a
   local seen-table bounds the buffers (keeping the first emission in the
   shard's rule-major stream, which is also the one the deterministic
   barrier merge would keep). *)
let round_shard rules ~full shard =
  let seen = Triple.Tbl.create 64 in
  let buffers = Array.make (Array.length rules) [] in
  Array.iteri
    (fun ri (rule : Rule.t) ->
      eval_rule rule ~full ~delta:shard ~emit:(fun binding premises ->
          List.iter
            (fun head ->
              match Atom.instantiate binding head with
              | None -> ()
              | Some triple ->
                  if (not (Index.mem full triple)) && not (Triple.Tbl.mem seen triple)
                  then begin
                    Triple.Tbl.add seen triple ();
                    buffers.(ri) <- (triple, premises) :: buffers.(ri)
                  end)
            rule.heads))
    rules;
  Array.map List.rev buffers

(* Split [delta] into contiguous shards, preserving order. *)
let shards_of nshards delta =
  let len = Array.length delta in
  let per = (len + nshards - 1) / nshards in
  Array.init nshards (fun i ->
      let lo = i * per in
      let hi = min len (lo + per) in
      Array.sub delta lo (max 0 (hi - lo)))

(* The shared semi-naive driver: iterate rules from [initial] as the
   first delta, adding the consequences to [full] and recording
   provenance at a single-threaded barrier after each round, until no new
   triples appear. Rounds see [full] as of the round start (whether run
   on one domain or many), so for a fixed input the derived order,
   round count and provenance are identical for every [pool]/shard
   configuration. Returns the derived triples (in order) and the number
   of rounds. *)
let fixpoint ?pool ~max_facts rules ~full ~provenance initial =
  let rules = Array.of_list rules in
  let derived_rev = ref [] in
  let delta = ref (Array.of_list initial) in
  let rounds = ref 0 in
  while Array.length !delta > 0 do
    incr rounds;
    let shard_results =
      match pool with
      | Some pool when Array.length !delta > 1 && Pool.size pool > 1 ->
          (* At least ~32 delta triples per shard: below that the join
             work cannot amortize the fan-out. *)
          let nshards =
            min (Pool.size pool) (max 1 ((Array.length !delta + 31) / 32))
          in
          if nshards = 1 then [| round_shard rules ~full !delta |]
          else
            Pool.map_array pool (round_shard rules ~full) (shards_of nshards !delta)
      | _ -> [| round_shard rules ~full !delta |]
    in
    (* Barrier: merge rule-major then shard-major — the same stream a
       single shard would emit — deduplicate against the index, extend
       it, and record provenance, all single-threaded. *)
    let next_rev = ref [] in
    Array.iteri
      (fun ri (rule : Rule.t) ->
        Array.iter
          (fun buffers ->
            List.iter
              (fun (triple, premises) ->
                if Index.add full triple then begin
                  if Index.cardinal full > max_facts then
                    raise (Diverged (Index.cardinal full));
                  next_rev := triple :: !next_rev;
                  derived_rev := triple :: !derived_rev;
                  Triple.Tbl.replace provenance triple
                    { rule = rule.name; premises }
                end)
              buffers.(ri))
          shard_results)
      rules;
    delta := Array.of_list (List.rev !next_rev)
  done;
  (List.rev !derived_rev, !rounds)

let closure ?(max_facts = 10_000_000) ?pool rules base =
  let full = Index.create () in
  let provenance = Triple.Tbl.create 256 in
  let initial = ref [] in
  Seq.iter
    (fun triple -> if Index.add full triple then initial := triple :: !initial)
    base;
  let derived, rounds =
    fixpoint ?pool ~max_facts rules ~full ~provenance (List.rev !initial)
  in
  { index = full; derived; provenance; rounds }

let extend ?(max_facts = 10_000_000) ?pool rules result extra =
  let fresh = ref [] in
  Seq.iter
    (fun triple -> if Index.add result.index triple then fresh := triple :: !fresh)
    extra;
  let fresh = List.rev !fresh in
  let derived, rounds =
    fixpoint ?pool ~max_facts rules ~full:result.index ~provenance:result.provenance
      fresh
  in
  (* [derived] is deliberately NOT concatenated onto [result.derived]:
     that would make each extension O(closure size). Callers that track
     the full derivation order accumulate the returned segment. *)
  ({ result with rounds = result.rounds + rounds }, fresh @ derived)

let step rules index =
  let out = ref [] in
  let delta = Array.of_seq (Index.to_seq index) in
  List.iter
    (fun (rule : Rule.t) ->
      eval_rule rule ~full:index ~delta ~emit:(fun binding _premises ->
          List.iter
            (fun head ->
              match Atom.instantiate binding head with
              | Some triple -> if not (Index.mem index triple) then out := triple :: !out
              | None -> ())
            rule.heads))
    rules;
  !out
