module Pool = Lsdb_exec.Pool
module Governor = Lsdb_exec.Governor
module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace

type provenance = { rule : string; premises : Triple.t list }

(* Observability handles, registered once at module initialization. *)
let m_rounds =
  Metrics.counter ~help:"Semi-naive closure rounds executed"
    "lsdb_engine_closure_rounds_total"

let m_delta =
  Metrics.counter ~help:"Delta triples fed into closure rounds"
    "lsdb_engine_delta_triples_total"

let m_derived =
  Metrics.counter ~help:"Triples derived by closure rounds"
    "lsdb_engine_derived_triples_total"

let m_closures =
  Metrics.counter ~help:"Full closure computations" "lsdb_engine_closures_total"

let m_extends =
  Metrics.counter ~help:"Incremental extensions" "lsdb_engine_extends_total"

let m_retracts =
  Metrics.counter ~help:"Incremental retractions" "lsdb_engine_retracts_total"

let m_cone =
  Metrics.counter ~help:"Over-deleted cone facts across retractions"
    "lsdb_engine_retract_cone_facts_total"

let m_rederive_checks =
  Metrics.counter ~help:"Single-fact rederivation checks during retractions"
    "lsdb_engine_rederive_checks_total"

let m_restored =
  Metrics.counter ~help:"Cone facts restored by rederivation"
    "lsdb_engine_restored_facts_total"

let m_round_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per closure round"
    "lsdb_engine_round_seconds"

let m_retract_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per retraction (all phases)"
    "lsdb_engine_retract_seconds"

(* The support index inverts the provenance table: premise fact ↦ the set
   of facts whose {e recorded} derivation uses it. Built lazily on the
   first retraction, maintained incrementally afterwards. *)
type support = {
  deps : unit Triple.Tbl.t Triple.Tbl.t;
  mutable edges : int;
}

type result = {
  index : Index.t;
  derived : Triple.t list;
  provenance : provenance Triple.Tbl.t;
  rounds : int;
  mutable support : support option;
}

exception Diverged of int

(* --- support-index maintenance ------------------------------------- *)

let support_add support fact { premises; _ } =
  List.iter
    (fun premise ->
      let cell =
        match Triple.Tbl.find_opt support.deps premise with
        | Some cell -> cell
        | None ->
            let cell = Triple.Tbl.create 4 in
            Triple.Tbl.add support.deps premise cell;
            cell
      in
      if not (Triple.Tbl.mem cell fact) then begin
        Triple.Tbl.add cell fact ();
        support.edges <- support.edges + 1
      end)
    premises

let support_drop support fact { premises; _ } =
  List.iter
    (fun premise ->
      match Triple.Tbl.find_opt support.deps premise with
      | None -> ()
      | Some cell ->
          if Triple.Tbl.mem cell fact then begin
            Triple.Tbl.remove cell fact;
            support.edges <- support.edges - 1;
            if Triple.Tbl.length cell = 0 then Triple.Tbl.remove support.deps premise
          end)
    premises

(* [record_provenance] and [forget_provenance] are the only writes to the
   provenance table once a result exists: they keep the support index (if
   built) in sync with the recorded derivations. *)
let record_provenance result fact prov =
  (match result.support with
  | Some support -> (
      (match Triple.Tbl.find_opt result.provenance fact with
      | Some old -> support_drop support fact old
      | None -> ());
      support_add support fact prov)
  | None -> ());
  Triple.Tbl.replace result.provenance fact prov

let forget_provenance result fact =
  match Triple.Tbl.find_opt result.provenance fact with
  | None -> ()
  | Some old ->
      (match result.support with
      | Some support -> support_drop support fact old
      | None -> ());
      Triple.Tbl.remove result.provenance fact

let force_support result =
  match result.support with
  | Some support -> support
  | None ->
      let support = { deps = Triple.Tbl.create 256; edges = 0 } in
      Triple.Tbl.iter (fun fact prov -> support_add support fact prov) result.provenance;
      result.support <- Some support;
      support

let support_size result =
  match result.support with Some { edges; _ } -> edges | None -> 0

(* A read-only window onto "all facts so far": the single-heap paths
   wrap one {!Index.t}, the sharded paths ({!Sharded}) a base heap plus
   per-shard derived overlays. The join loops below only ever need these
   three probes, so evaluating over a view costs one closure indirection
   per probe and spares the sharded engine from copying the base into a
   fresh index. *)
type view = {
  v_iter : s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit;
  v_mem : Triple.t -> bool;
  v_count : s:int option -> r:int option -> tgt:int option -> int;
}

let view_of_index idx =
  {
    v_iter = (fun ~s ~r ~tgt f -> Index.candidates idx ~s ~r ~tgt f);
    v_mem = (fun triple -> Index.mem idx triple);
    v_count = (fun ~s ~r ~tgt -> Index.count idx ~s ~r ~tgt);
  }

(* Check every guard that is fully bound; fail fast on the first violated
   one. Guards whose variables are still unbound are deferred to a later
   atom (and are guaranteed checkable at the end because rules are safe). *)
let guards_ok binding guards =
  List.for_all
    (fun g -> match Guard.check binding g with Some false -> false | Some true | None -> true)
    guards

let atom_pattern binding (atom : Atom.t) =
  ( Term.subst binding atom.s,
    Term.subst binding atom.r,
    Term.subst binding atom.t )

(* Semi-naive body evaluation: every produced binding uses at least one
   premise from [delta]; the remaining atoms are matched against [full].
   [delta] is an {e ordered array} and is iterated outermost, each triple
   tried at every body position — so the emission order depends only on
   the delta order and on [full], never on how the delta happens to be
   sharded across domains (the parallel rounds rely on exactly this).
   Leading with the delta triple also binds variables that make the
   remaining full-index probes selective. [emit binding premises] is
   called for each complete match, premises in body order. *)
let eval_rule (rule : Rule.t) ~(full : view) ~delta ~emit =
  let binding = Array.make (max rule.nvars 1) (-1) in
  let body = Array.of_list rule.body in
  let n = Array.length body in
  let premises = Array.make n (Triple.make (-1) (-1) (-1)) in
  let rest_of = Array.init n (fun k -> List.filter (fun i -> i <> k) (List.init n Fun.id)) in
  let rec go = function
    | [] ->
        if guards_ok binding rule.guards then emit binding (Array.to_list premises)
    | i :: rest ->
        let atom = body.(i) in
        let s, r, tgt = atom_pattern binding atom in
        full.v_iter ~s ~r ~tgt (fun triple ->
            match Atom.match_against binding atom triple with
            | None -> ()
            | Some newly ->
                premises.(i) <- triple;
                if guards_ok binding rule.guards then go rest;
                List.iter (fun v -> binding.(v) <- -1) newly)
  in
  Array.iter
    (fun dtriple ->
      for k = 0 to n - 1 do
        match Atom.match_against binding body.(k) dtriple with
        | None -> ()
        | Some newly ->
            premises.(k) <- dtriple;
            if guards_ok binding rule.guards then go rest_of.(k);
            List.iter (fun v -> binding.(v) <- -1) newly
      done)
    delta

(* One semi-naive round over a frozen [full]: evaluate every rule against
   one delta shard, buffering (head, premises) emissions per rule. The
   index is not mutated here, so shards can run on separate domains; a
   local seen-table bounds the buffers (keeping the first emission in the
   shard's rule-major stream, which is also the one the deterministic
   barrier merge would keep). *)
let round_shard ?gov rules ~(full : view) shard =
  let seen = Triple.Tbl.create 64 in
  let buffers = Array.make (Array.length rules) [] in
  (* Work units accumulate in a lane-local ticker and reach the governor
     in batches: two atomic RMWs per emission (and per rule on small
     deltas) cost more than the joins they were metering on the
     incremental kernels B19 gates (see {!Governor.ticker}). *)
  let tk = Governor.ticker gov in
  Array.iteri
    (fun ri (rule : Rule.t) ->
      Governor.bump tk (Array.length shard);
      eval_rule rule ~full ~delta:shard ~emit:(fun binding premises ->
          Governor.bump tk 1;
          List.iter
            (fun head ->
              match Atom.instantiate binding head with
              | None -> ()
              | Some triple ->
                  if (not (full.v_mem triple)) && not (Triple.Tbl.mem seen triple)
                  then begin
                    Triple.Tbl.add seen triple ();
                    buffers.(ri) <- (triple, premises) :: buffers.(ri)
                  end)
            rule.heads))
    rules;
  Governor.flush_ticks tk;
  Array.map List.rev buffers

(* Split [delta] into contiguous shards, preserving order. *)
let shards_of nshards delta =
  let len = Array.length delta in
  let per = (len + nshards - 1) / nshards in
  Array.init nshards (fun i ->
      let lo = i * per in
      let hi = min len (lo + per) in
      Array.sub delta lo (max 0 (hi - lo)))

(* The shared semi-naive driver: iterate rules from [initial] as the
   first delta, adding the consequences to [full] and recording
   provenance (via [record], which also maintains the support index when
   one is built) at a single-threaded barrier after each round, until no
   new triples appear. Rounds see [full] as of the round start (whether
   run on one domain or many), so for a fixed input the derived order,
   round count and provenance are identical for every [pool]/shard
   configuration. Returns the derived triples (in order) and the number
   of rounds. *)
let fixpoint ?pool ?gov ~max_facts rules ~full ~record initial =
  let rules = Array.of_list rules in
  let fullv = view_of_index full in
  let derived_rev = ref [] in
  let delta = ref (Array.of_list initial) in
  let rounds = ref 0 in
  (* A governor trip anywhere in a round leaves the index and provenance
     exactly as of the last completed barrier action: shard evaluation is
     read-only, and within the barrier each accepted triple's index add,
     derived accumulation and provenance record are adjacent. Catching
     [Trip] here therefore yields a consistent (sound, possibly
     incomplete) derivation — no entry point above re-raises it. *)
  (try
     while Array.length !delta > 0 do
       incr rounds;
       Governor.check gov;
       Metrics.incr m_rounds;
       Metrics.add m_delta (Array.length !delta);
       Trace.span "closure.round"
         ~meta:
           [
             ("round", string_of_int !rounds);
             ("delta", string_of_int (Array.length !delta));
           ]
       @@ fun () ->
       Metrics.time m_round_seconds @@ fun () ->
       let shard_results =
         match pool with
         | Some pool when Array.length !delta > 1 && Pool.size pool > 1 ->
             (* At least ~32 delta triples per shard: below that the join
                work cannot amortize the fan-out. *)
             let nshards =
               min (Pool.size pool) (max 1 ((Array.length !delta + 31) / 32))
             in
             if nshards = 1 then [| round_shard ?gov rules ~full:fullv !delta |]
             else
               Pool.map_array pool
                 (round_shard ?gov rules ~full:fullv)
                 (shards_of nshards !delta)
         | _ -> [| round_shard ?gov rules ~full:fullv !delta |]
       in
       (* Barrier: merge rule-major then shard-major — the same stream a
          single shard would emit — deduplicate against the index, extend
          it, and record provenance, all single-threaded. *)
       let next_rev = ref [] in
       Array.iteri
         (fun ri (rule : Rule.t) ->
           Array.iter
             (fun buffers ->
               List.iter
                 (fun (triple, premises) ->
                   if Index.add full triple then begin
                     if Index.cardinal full > max_facts then
                       raise (Diverged (Index.cardinal full));
                     next_rev := triple :: !next_rev;
                     derived_rev := triple :: !derived_rev;
                     record triple { rule = rule.name; premises };
                     (* After [record]: the fact that trips the budget is
                        fully accounted for, so the partial state stays
                        consistent. *)
                     Governor.count_facts gov 1
                   end)
                 buffers.(ri))
             shard_results)
         rules;
       Metrics.add m_derived (List.length !next_rev);
       Trace.annotate "derived" (string_of_int (List.length !next_rev));
       delta := Array.of_list (List.rev !next_rev);
       (* Round barrier: single-threaded, nothing iterating the index —
          the natural quiesce point for folding the delta tier into the
          packed segment. *)
       Index.quiesce full
     done
   with Governor.Trip _ -> ());
  (List.rev !derived_rev, !rounds)

let closure ?(max_facts = 10_000_000) ?pool ?gov rules base =
  Metrics.incr m_closures;
  Trace.span "engine.closure" @@ fun () ->
  let full = Index.create () in
  let provenance = Triple.Tbl.create 256 in
  (* Base loading is governed at checkpoint granularity too: on large
     heaps the index build alone can dwarf a wall deadline, and a prefix
     of the base is still a subset of the true closure — sound for the
     positive queries partial answers serve. A trip here also makes the
     first fixpoint round trip immediately, so nothing is derived from
     the partial base. The base is materialized first and bulk-loaded:
     on a fresh index [Index.bulk_add] sorts once and builds the packed
     segment directly instead of paying the per-fact hashtable insert
     and posting cons of an add loop. *)
  let buf = ref [] and nbuf = ref 0 in
  (try
     Seq.iter
       (fun triple ->
         incr nbuf;
         if !nbuf land 1023 = 0 then Governor.check gov;
         buf := triple :: !buf)
       base
   with Governor.Trip _ -> ());
  let arr = Array.make !nbuf (Triple.make 0 0 0) in
  let w = ref (!nbuf - 1) in
  List.iter
    (fun triple ->
      arr.(!w) <- triple;
      decr w)
    !buf;
  buf := [];
  let initial = Index.bulk_add full arr in
  let derived, rounds =
    fixpoint ?pool ?gov ~max_facts rules ~full
      ~record:(fun triple prov -> Triple.Tbl.replace provenance triple prov)
      initial
  in
  { index = full; derived; provenance; rounds; support = None }

let extend ?(max_facts = 10_000_000) ?pool ?gov rules result extra =
  Metrics.incr m_extends;
  Trace.span "engine.extend" @@ fun () ->
  let fresh = ref [] in
  Seq.iter
    (fun triple -> if Index.add result.index triple then fresh := triple :: !fresh)
    extra;
  let fresh = List.rev !fresh in
  let derived, rounds =
    fixpoint ?pool ?gov ~max_facts rules ~full:result.index
      ~record:(record_provenance result) fresh
  in
  Index.quiesce result.index;
  (* [derived] is deliberately NOT concatenated onto [result.derived]:
     that would make each extension O(closure size). Callers that track
     the full derivation order accumulate the returned segment. *)
  ({ result with rounds = result.rounds + rounds }, fresh @ derived)

(* --- incremental retraction (delete/rederive) ----------------------- *)

type retraction = {
  removed : Triple.t list;
  restored : Triple.t list;
  over_deleted : int;
  rederive_rounds : int;
}

exception Derivation of provenance

(* Goal-directed single-fact check: is [fact] derivable in one rule
   application from the facts currently in [full]? Unify each rule head
   with [fact], then join the body over the index exactly as [eval_rule]
   does. Read-only, so shards of these checks can run on separate
   domains. Any derivation found is well-founded: [fact] itself is not in
   [full] when this runs (phase 2 removed it), so it cannot support
   itself.

   Body atoms are joined most-selective-first ([Index.count] under the
   bindings accumulated so far), not in written order: with the head
   fully bound, a rule usually has one body atom pinned to the deleted
   fact's entities (a handful of candidates) and another anchored only on
   a hub key (thousands) — leading with the hub atom made each check cost
   a bucket scan per cone fact. *)
let find_derivation rules ~(full : view) fact =
  let check (rule : Rule.t) =
    let binding = Array.make (max rule.nvars 1) (-1) in
    let body = Array.of_list rule.body in
    let n = Array.length body in
    let premises = Array.make n (Triple.make (-1) (-1) (-1)) in
    let rec go remaining =
      match remaining with
      | [] ->
          if guards_ok binding rule.guards then
            raise
              (Derivation { rule = rule.name; premises = Array.to_list premises })
      | _ ->
          let best = ref (-1) and best_n = ref max_int in
          List.iter
            (fun i ->
              let s, r, tgt = atom_pattern binding body.(i) in
              let c = full.v_count ~s ~r ~tgt in
              if c < !best_n then begin
                best := i;
                best_n := c
              end)
            remaining;
          let i = !best in
          let rest = List.filter (fun j -> j <> i) remaining in
          let atom = body.(i) in
          let s, r, tgt = atom_pattern binding atom in
          full.v_iter ~s ~r ~tgt (fun triple ->
              match Atom.match_against binding atom triple with
              | None -> ()
              | Some newly ->
                  premises.(i) <- triple;
                  if guards_ok binding rule.guards then go rest;
                  List.iter (fun v -> binding.(v) <- -1) newly)
    in
    List.iter
      (fun head ->
        Array.fill binding 0 (Array.length binding) (-1);
        match Atom.match_against binding head fact with
        | None -> ()
        | Some _ -> if guards_ok binding rule.guards then go (List.init n Fun.id))
      rule.heads
  in
  match List.iter check rules with
  | () -> None
  | exception Derivation prov -> Some prov

(* Delete/rederive. Phase 1 walks the support index to collect the cone
   of facts whose recorded derivation transitively rests on a deleted
   fact (the over-deletion: a fact may have other derivations — recorded
   provenance keeps only one, so the cone is a superset of what must
   go). Phase 2 removes the cone from the index and forgets its
   provenance. Phase 3 re-checks each cone fact against the surviving
   index for an alternative one-step derivation (sharded across the pool;
   read-only, so no barrier is needed until the seeds are merged in
   deterministic cone order). Phase 4 runs the ordinary semi-naive
   fixpoint from those seeds, restoring everything reachable again. The
   rules are monotone and the index is a subset of the old closure
   throughout, so rederivation can only restore cone members — the final
   fact set equals a from-scratch recompute, at any pool size. *)
let retract ?(max_facts = 10_000_000) ?pool ?gov rules result deleted =
  Metrics.incr m_retracts;
  Trace.span "engine.retract"
    ~meta:[ ("deleted", string_of_int (List.length deleted)) ]
  @@ fun () ->
  Metrics.time m_retract_seconds @@ fun () ->
  let support = force_support result in
  let cone = Triple.Tbl.create 64 in
  let stack = Stack.create () in
  let enter fact =
    if not (Triple.Tbl.mem cone fact) then begin
      Triple.Tbl.add cone fact ();
      Stack.push fact stack
    end
  in
  List.iter (fun fact -> if Index.mem result.index fact then enter fact) deleted;
  while not (Stack.is_empty stack) do
    let fact = Stack.pop stack in
    match Triple.Tbl.find_opt support.deps fact with
    | None -> ()
    | Some cell -> Triple.Tbl.iter (fun dep () -> enter dep) cell
  done;
  let cone_list =
    List.sort Triple.compare (Triple.Tbl.fold (fun f () acc -> f :: acc) cone [])
  in
  List.iter
    (fun fact ->
      ignore (Index.remove result.index fact : bool);
      forget_provenance result fact)
    cone_list;
  let cone_arr = Array.of_list cone_list in
  Metrics.add m_cone (Array.length cone_arr);
  Metrics.add m_rederive_checks (Array.length cone_arr);
  Trace.annotate "cone" (string_of_int (Array.length cone_arr));
  let fullv = view_of_index result.index in
  let check fact =
    Governor.tick gov 1;
    match find_derivation rules ~full:fullv fact with
    | Some prov -> Some (fact, prov)
    | None -> None
  in
  (* A trip during the rederive checks degrades every unchecked cone fact
     to "not rederived": it stays removed, which keeps the closure a
     subset of the true fixpoint (sound; the caller drops the cache on a
     tripped maintenance pass anyway). Phases 1-2 above run ungoverned —
     interrupting the removal loop could leave a deleted base fact in the
     index, which would be unsound in the other direction. *)
  let checked =
    try
      match pool with
      | Some pool when Array.length cone_arr > 1 && Pool.size pool > 1 ->
          (* Same amortization threshold spirit as the fixpoint rounds:
             each check is a full body join, so shards can be smaller. *)
          let nshards =
            min (Pool.size pool) (max 1 ((Array.length cone_arr + 15) / 16))
          in
          if nshards = 1 then Array.map check cone_arr
          else
            Array.concat
              (Array.to_list
                 (Pool.map_array pool (Array.map check) (shards_of nshards cone_arr)))
      | _ -> Array.map check cone_arr
    with Governor.Trip _ -> Array.map (fun _ -> None) cone_arr
  in
  let seeds_rev = ref [] in
  Array.iter
    (function
      | None -> ()
      | Some (fact, prov) ->
          ignore (Index.add result.index fact : bool);
          record_provenance result fact prov;
          seeds_rev := fact :: !seeds_rev)
    checked;
  let _, rederive_rounds =
    fixpoint ?pool ?gov ~max_facts rules ~full:result.index
      ~record:(record_provenance result)
      (List.rev !seeds_rev)
  in
  (* End-of-retract quiesce: the cone removal above may have tombstoned
     a large frozen swath that the (possibly empty) rederive fixpoint
     never folded. *)
  Index.quiesce result.index;
  let removed, restored =
    List.partition (fun fact -> not (Index.mem result.index fact)) cone_list
  in
  Metrics.add m_restored (List.length restored);
  Trace.annotate "restored" (string_of_int (List.length restored));
  ( { result with rounds = result.rounds + rederive_rounds },
    {
      removed;
      restored;
      over_deleted = List.length cone_list;
      rederive_rounds;
    } )

let round_view = round_shard
let find_derivation_view = find_derivation

let step rules index =
  let out = ref [] in
  let delta = Array.of_seq (Index.to_seq index) in
  let full = view_of_index index in
  List.iter
    (fun (rule : Rule.t) ->
      eval_rule rule ~full ~delta ~emit:(fun binding _premises ->
          List.iter
            (fun head ->
              match Atom.instantiate binding head with
              | Some triple -> if not (Index.mem index triple) then out := triple :: !out
              | None -> ())
            rule.heads))
    rules;
  !out
