(** Evaluation index over ground triples: a two-tier posting store.

    The {e frozen tier} is one immutable packed segment — the triples
    sorted by [Triple.compare] in a flat spine with struct-of-arrays
    coordinate mirrors, contiguous ranges for the [s]/[(s,r)] access
    paths and packed id postings for the other four. Iteration over it is
    cache-linear, membership is a binary search, counts are exact, and
    two postings can be intersected by galloping ({!intersect}).

    The {e delta tier} keeps recent inserts in the classic mutable list
    cells. {!freeze} folds the delta (and any tombstones) into a new
    segment; {!quiesce} applies the current {!policy} and is called by
    the engines at closure-round barriers — the natural single-threaded
    quiesce points — so indexes migrate toward the packed layout as they
    grow while small, churning indexes stay pure delta. *)

type t

val create : ?size_hint:int -> unit -> t

(** [add t triple] is [true] if the triple was new, [false] if already
    present (in which case the index is unchanged). Re-adding a
    tombstoned triple resurrects it in place in either tier. *)
val add : t -> Triple.t -> bool

(** [remove t triple] is [true] iff the triple was present. O(1) in both
    tiers: a frozen triple flips a tombstone bit (folded away by the
    next freeze); a delta triple is tombstoned in its cells, which are
    compacted in bulk once tombstones exceed 1/8 of the live delta. *)
val remove : t -> Triple.t -> bool

val mem : t -> Triple.t -> bool
val cardinal : t -> int

(** Frozen tier first (ascending [Triple.compare] order), then the delta
    tier. Deterministic for a fixed index state. *)
val iter : (Triple.t -> unit) -> t -> unit

val to_seq : t -> Triple.t Seq.t

(** [candidates t ~s ~r ~t:tgt f] applies [f] to every stored triple
    compatible with the pattern; [None] positions are wildcards. The
    triples passed to [f] are guaranteed to match the bound positions. *)
val candidates :
  t -> s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit

(** [count t ~s ~r ~tgt] is the exact number of triples [candidates]
    enumerates for the same pattern, in O(1): frozen ranges/postings
    minus their sparse per-key tombstone counts, plus live delta cell
    lengths. *)
val count : t -> s:int option -> r:int option -> tgt:int option -> int

(** [count_s t e] / [count_t t e] — the exact O(1) out-degree and
    in-degree of an entity; option-free variants of {!count} for
    selectivity sums over whole frontiers. *)
val count_s : t -> int -> int

val count_t : t -> int -> int

(** {2 Freezing} *)

(** [freeze t] unconditionally folds the delta tier and every tombstone
    into a fresh packed segment (old segment + live delta, merged in
    sorted order). Content-neutral: membership, candidates and counts
    answer identically before and after. Must only be called at quiesce
    points — never while an iteration over the index is in flight. *)
val freeze : t -> unit

(** How {!quiesce} decides. [Watermark] (the default) freezes when the
    delta reaches both {!min_delta} and a quarter of the frozen spine,
    or when frozen tombstones pass 1/8 of the spine. [Always]/[Never]
    exist for the identity gates and the list-cell baseline: a process
    global, deliberately — benches and torture drivers flip whole runs
    at a time. *)
type policy = Always | Never | Watermark

val set_policy : policy -> unit
val policy : unit -> policy

val set_min_delta : int -> unit
val min_delta : unit -> int

(** [quiesce t] applies the freeze policy; called by the engines at
    round barriers and after retractions. *)
val quiesce : t -> unit

(** [bulk_add t triples] adds every triple, returning the fresh ones in
    first-occurrence order — observably identical to folding {!add}. On
    a virgin index (and a policy that freezes) it instead sorts once and
    builds the frozen segment directly, skipping the per-fact hashtable
    and posting-cell allocation of the add loop entirely; this is the
    fast path for cold closure base loads. *)
val bulk_add : t -> Triple.t array -> Triple.t list

type tier_stats = {
  frozen_live : int;
  frozen_dead : int;
  delta_live : int;
  delta_dead : int;
  freezes : int;  (** segment rebuilds since creation *)
}

val tier_stats : t -> tier_stats
val zero_stats : tier_stats
val sum_stats : tier_stats -> tier_stats -> tier_stats

(** {2 Galloping intersection}

    A {e hinge} is a posting path with exactly one free position: [Out]
    fixes source and relationship (free target), [In] fixes relationship
    and target (free source), [Via] fixes the endpoints (free
    relationship). *)

type hinge = Out of { s : int; r : int } | In of { r : int; t : int } | Via of { s : int; t : int }

(** The triple a hinge denotes once its free position is filled. *)
val hinge_triple : hinge -> int -> Triple.t

(** [intersect t h1 h2 emit] calls [emit] on every entity that fills
    both hinges' free position, exactly once each, deterministically for
    a fixed index state. Frozen postings are intersected by symmetric
    galloping (exponential probe + binary search) over the packed
    coordinate arrays; delta-resident matches are reconciled by probing
    the opposite tier. *)
val intersect : t -> hinge -> hinge -> (int -> unit) -> unit
