(** Evaluation index over ground triples.

    The fixpoint only ever adds facts; incremental retraction
    ({!Engine.retract}) additionally removes them. Every bound-position
    pattern is answered from the most selective available hash index. *)

type t

val create : ?size_hint:int -> unit -> t

(** [add t triple] is [true] if the triple was new, [false] if already
    present (in which case the index is unchanged). *)
val add : t -> Triple.t -> bool

(** [remove t triple] is [true] iff the triple was present. O(1):
    removal tombstones the triple and leaves the posting lists in place
    (iteration skips dead entries); the lists are compacted in bulk once
    the dead fraction exceeds 1/8 of the live index, so the amortized
    cost stays constant even for triples sitting in hub buckets. *)
val remove : t -> Triple.t -> bool

val mem : t -> Triple.t -> bool
val cardinal : t -> int
val iter : (Triple.t -> unit) -> t -> unit
val to_seq : t -> Triple.t Seq.t

(** [candidates t ~s ~r ~t:tgt f] applies [f] to every stored triple
    compatible with the pattern; [None] positions are wildcards. The
    triples passed to [f] are guaranteed to match the bound positions. *)
val candidates :
  t -> s:int option -> r:int option -> tgt:int option -> (Triple.t -> unit) -> unit

(** [count t ~s ~r ~tgt] is an upper bound on the number of triples
    [candidates] would enumerate for the same pattern, in O(1): posting
    lists track their length, but the length includes tombstoned entries,
    so the bound overcounts by at most the dead fraction. Intended for
    join-order selection, not exact cardinalities. *)
val count : t -> s:int option -> r:int option -> tgt:int option -> int

(** [count_s t e] / [count_t t e] — the O(1) out-degree ([by_s] postings)
    and in-degree ([by_t] postings) of an entity; option-free variants of
    {!count} for selectivity sums over whole frontiers. Same tombstone
    caveat as {!count}. *)
val count_s : t -> int -> int

val count_t : t -> int -> int
