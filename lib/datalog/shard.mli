(** Deterministic hash partitioning of facts by source entity.

    A heap with no schema has no natural partitioning key, which is
    exactly why a mechanical one works: every fact is routed by a fixed
    avalanche hash of its source entity, so any loosely structured heap
    splits into [n] shards without coordination, and two processes (or
    two runs) always agree on the owner of a fact. The closure overlays
    ({!Sharded}), the in-memory heap ([Lsdb.Store]) and the persistent
    heap ([Lsdb_storage.Sharded_heap]) all route through this module, so
    their partitions line up.

    Interned entity ids are not stable across sessions, so the
    persistent layer routes by {e name} ({!of_name}) while the in-memory
    layers route by id ({!of_entity}); both are deterministic within
    their domain. *)

type plan
(** An immutable partitioning plan: just the shard count, carried as an
    abstract value so a plan built once is threaded through rather than
    re-derived. *)

val plan : int -> plan
(** [plan n] — a plan with [max 1 n] shards. *)

val shards : plan -> int
(** Number of shards ([>= 1]). *)

val of_entity : plan -> int -> int
(** [of_entity plan e] — the shard owning facts whose source is entity
    [e]; in [\[0, shards plan)]. Deterministic in [(shards plan, e)]
    only. *)

val of_triple : plan -> Triple.t -> int
(** Owner shard of a ground triple: [of_entity plan triple.s]. *)

val of_name : shards:int -> string -> int
(** FNV-1a over the source {e name}, for layers that outlive the symbol
    table (persistent heaps). Deterministic in [(shards, name)]. *)
