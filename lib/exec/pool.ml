module Metrics = Lsdb_obs.Metrics

type t = {
  size : int;
  mutex : Mutex.t;  (* guards [jobs] and [stopped] *)
  nonempty : Condition.t;
  jobs : (float * (unit -> unit)) Queue.t;
      (* enqueue timestamp (0. when timing is disabled) and the job *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

(* Observability: one handle per fact of pool life, registered once at
   module initialization. Counters are aggregated per lane (one atomic
   add per lane per fan-out), never per item. *)
let m_lanes =
  Metrics.gauge ~help:"Lanes (including the caller) of the most recently created pool"
    "lsdb_pool_lanes"

let m_maps =
  Metrics.counter ~help:"Parallel fan-outs executed" "lsdb_pool_maps_total"

let m_jobs =
  Metrics.counter ~help:"Queued lane jobs picked up by worker domains"
    "lsdb_pool_jobs_total"

let m_items_caller =
  Metrics.counter ~help:"Work items claimed by the calling domain's lane"
    ~labels:[ ("lane", "caller") ]
    "lsdb_pool_items_total"

let m_items_worker =
  Metrics.counter ~help:"Work items claimed by worker-domain lanes"
    ~labels:[ ("lane", "worker") ]
    "lsdb_pool_items_total"

let m_queue_wait =
  Metrics.histogram ~help:"Seconds a lane job waited in the queue before pickup"
    "lsdb_pool_queue_wait_seconds"

let worker_loop t () =
  let rec run () =
    Mutex.lock t.mutex;
    let rec next () =
      if t.stopped then None
      else if Queue.is_empty t.jobs then begin
        Condition.wait t.nonempty t.mutex;
        next ()
      end
      else Some (Queue.pop t.jobs)
    in
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some (enqueued_at, job) ->
        Metrics.incr m_jobs;
        if enqueued_at > 0. then
          Metrics.observe m_queue_wait (Metrics.now () -. enqueued_at);
        (* Jobs are wrappers built by [map_array] and never raise; the
           guard keeps a misbehaving job from killing the worker. *)
        (try job () with _ -> ());
        run ()
  in
  run ()

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  Metrics.set m_lanes size;
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let map_array t f input =
  if t.stopped then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    Metrics.incr m_maps;
    (* Every lane (workers and the caller) claims indices from the shared
       cursor until the input is exhausted. Results and errors land at
       their input index, so scheduling cannot perturb the output. Item
       counts are accumulated locally and flushed once per lane. *)
    let lane items_counter () =
      let claimed = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          incr claimed;
          (match f input.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          if 1 + Atomic.fetch_and_add completed 1 = n then begin
            Mutex.lock finished;
            Condition.broadcast all_done;
            Mutex.unlock finished
          end;
          loop ()
        end
      in
      loop ();
      if !claimed > 0 then Metrics.add items_counter !claimed
    in
    let helpers = min (t.size - 1) (n - 1) in
    if helpers > 0 then begin
      let enqueued_at = if Metrics.enabled () then Metrics.now () else 0. in
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        Queue.push (enqueued_at, lane m_items_worker) t.jobs
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex
    end;
    lane m_items_caller ();
    Mutex.lock finished;
    while Atomic.get completed < n do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index completed without error *))
      results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let fold t ~f ~combine ~init xs = List.fold_left combine init (map t f xs)
