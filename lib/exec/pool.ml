module Metrics = Lsdb_obs.Metrics

type t = {
  size : int;
  mutex : Mutex.t;  (* guards [jobs], [stopped] and [lane_groups] *)
  nonempty : Condition.t;
  jobs : (float * (unit -> unit)) Queue.t;
      (* enqueue timestamp (0. when timing is disabled) and the job *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  escaped : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first exception a queued job let escape; re-raised on the caller
         path at the next pool operation instead of vanishing *)
  mutable lane_groups : lanes list;  (* open groups, closed by [shutdown] *)
}

(* A lane group: [lg_n] persistent lane handles multiplexed over
   [lg_groups] executors — the caller plus [lg_groups - 1] pool workers,
   each worker bound to the group for the group's lifetime by a
   long-running mailbox job. Lane [i] always runs on executor
   [i mod lg_groups], so a shard lane stays on the same domain from round
   to round (warm overlay caches); the per-round synchronization is one
   condition broadcast to start and one completion count at the barrier. *)
and lanes = {
  lg_pool : t;
  lg_n : int;
  lg_groups : int;  (* executors, caller included; >= 1 *)
  lg_mutex : Mutex.t;  (* guards the five mutable fields below *)
  lg_start : Condition.t;
  lg_done : Condition.t;
  mutable lg_fn : int -> unit;  (* current round's lane body *)
  mutable lg_round : int;  (* round generation; bumping it starts a round *)
  mutable lg_remaining : int;  (* worker groups still running this round *)
  mutable lg_closed : bool;
  lg_errors : (exn * Printexc.raw_backtrace) option array;
      (* per-lane, reset each round; distinct domains write distinct
         indices, read after the barrier *)
}

let default_domains () = Domain.recommended_domain_count ()

(* Observability: one handle per fact of pool life, registered once at
   module initialization. Counters are aggregated per lane (one atomic
   add per lane per fan-out), never per item. *)
let m_lanes =
  Metrics.gauge ~help:"Lanes (including the caller) of the most recently created pool"
    "lsdb_pool_lanes"

let m_maps =
  Metrics.counter ~help:"Parallel fan-outs executed" "lsdb_pool_maps_total"

let m_jobs =
  Metrics.counter ~help:"Queued lane jobs picked up by worker domains"
    "lsdb_pool_jobs_total"

let m_job_exceptions =
  Metrics.counter
    ~help:"Exceptions that escaped a queued job (invariant violations)"
    "lsdb_pool_job_exceptions_total"

let m_items_caller =
  Metrics.counter ~help:"Work items claimed by the calling domain's lane"
    ~labels:[ ("lane", "caller") ]
    "lsdb_pool_items_total"

let m_items_worker =
  Metrics.counter ~help:"Work items claimed by worker-domain lanes"
    ~labels:[ ("lane", "worker") ]
    "lsdb_pool_items_total"

let m_queue_wait =
  Metrics.histogram ~help:"Seconds a lane job waited in the queue before pickup"
    "lsdb_pool_queue_wait_seconds"

let m_lane_groups =
  Metrics.counter ~help:"Persistent lane groups created"
    "lsdb_pool_lane_groups_total"

let m_lane_rounds =
  Metrics.counter ~help:"Barrier-separated rounds run through lane groups"
    "lsdb_pool_lane_rounds_total"

let m_barrier_wait =
  Metrics.histogram
    ~help:"Seconds the caller waited at a lane-round barrier for the slowest lane"
    "lsdb_pool_barrier_wait_seconds"

(* Record the first exception a job lets escape; the next caller-path
   entry point ([map_array], [lanes_run]) re-raises it. The map/lane
   wrappers catch their own items' exceptions, so anything landing here
   is a wrapper invariant violation (or a raw [submit] job) — exactly
   the class of failure that must not vanish silently: a [Diverged] or
   [Governor.Trip] that escaped its lane would otherwise turn a divergent
   closure into a silently incomplete one. *)
let note_escape t e =
  Metrics.incr m_job_exceptions;
  ignore
    (Atomic.compare_and_set t.escaped None
       (Some (e, Printexc.get_raw_backtrace ()))
      : bool)

let reraise_escaped t =
  match Atomic.exchange t.escaped None with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let worker_loop t () =
  let rec run () =
    Mutex.lock t.mutex;
    let rec next () =
      if t.stopped then None
      else if Queue.is_empty t.jobs then begin
        Condition.wait t.nonempty t.mutex;
        next ()
      end
      else Some (Queue.pop t.jobs)
    in
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some (enqueued_at, job) ->
        Metrics.incr m_jobs;
        if enqueued_at > 0. then
          Metrics.observe m_queue_wait (Metrics.now () -. enqueued_at);
        (* The guard keeps a misbehaving job from killing the worker, but
           the exception is counted and parked for the caller path — never
           dropped on the floor. *)
        (try job () with e -> note_escape t e);
        run ()
  in
  run ()

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopped = false;
      workers = [];
      escaped = Atomic.make None;
      lane_groups = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  Metrics.set m_lanes size;
  t

let size t = t.size

let submit t job =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push (0., job) t.jobs;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

(* --- persistent lane groups ----------------------------------------- *)

let lane_worker lg g () =
  let run_lane fn i =
    try fn i
    with e -> lg.lg_errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let rec loop last_round =
    Mutex.lock lg.lg_mutex;
    while (not lg.lg_closed) && lg.lg_round = last_round do
      Condition.wait lg.lg_start lg.lg_mutex
    done;
    let closed = lg.lg_closed in
    let round = lg.lg_round in
    let fn = lg.lg_fn in
    Mutex.unlock lg.lg_mutex;
    if not closed then begin
      let i = ref g in
      while !i < lg.lg_n do
        run_lane fn !i;
        i := !i + lg.lg_groups
      done;
      Mutex.lock lg.lg_mutex;
      lg.lg_remaining <- lg.lg_remaining - 1;
      if lg.lg_remaining = 0 then Condition.broadcast lg.lg_done;
      Mutex.unlock lg.lg_mutex;
      loop round
    end
  in
  loop 0

let lanes t ~n =
  if n < 1 then invalid_arg "Pool.lanes: n must be >= 1";
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.lanes: pool is shut down"
  end;
  let groups = max 1 (min t.size n) in
  let lg =
    {
      lg_pool = t;
      lg_n = n;
      lg_groups = groups;
      lg_mutex = Mutex.create ();
      lg_start = Condition.create ();
      lg_done = Condition.create ();
      lg_fn = ignore;
      lg_round = 0;
      lg_remaining = 0;
      lg_closed = false;
      lg_errors = Array.make n None;
    }
  in
  Metrics.incr m_lane_groups;
  if groups > 1 then begin
    t.lane_groups <- lg :: t.lane_groups;
    for g = 1 to groups - 1 do
      Queue.push (0., lane_worker lg g) t.jobs
    done;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mutex;
  lg

let lanes_size lg = lg.lg_n

let lanes_run lg f =
  if lg.lg_closed then invalid_arg "Pool.lanes_run: lane group is closed";
  reraise_escaped lg.lg_pool;
  Array.fill lg.lg_errors 0 lg.lg_n None;
  Metrics.incr m_lane_rounds;
  let run_lane i =
    try f i
    with e -> lg.lg_errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  if lg.lg_groups = 1 then
    (* Single executor: every lane runs on the caller, in order. All
       lanes still run even if one fails, matching the multi-group path
       (which cannot stop stragglers), so failure behavior is identical
       at every pool size. *)
    for i = 0 to lg.lg_n - 1 do
      run_lane i
    done
  else begin
    Mutex.lock lg.lg_mutex;
    lg.lg_fn <- f;
    lg.lg_round <- lg.lg_round + 1;
    lg.lg_remaining <- lg.lg_groups - 1;
    Condition.broadcast lg.lg_start;
    Mutex.unlock lg.lg_mutex;
    (* The caller is executor 0 and always makes progress. *)
    let i = ref 0 in
    while !i < lg.lg_n do
      run_lane !i;
      i := !i + lg.lg_groups
    done;
    let wait_start = if Metrics.enabled () then Metrics.now () else 0. in
    Mutex.lock lg.lg_mutex;
    while lg.lg_remaining > 0 do
      Condition.wait lg.lg_done lg.lg_mutex
    done;
    Mutex.unlock lg.lg_mutex;
    if wait_start > 0. then
      Metrics.observe m_barrier_wait (Metrics.now () -. wait_start)
  end;
  (* Deterministic failure propagation, as in [map_array]: the
     lowest-indexed failing lane's exception is the one the caller
     sees. [Governor.Trip] and [Diverged]-class exceptions raised on
     worker domains reach the caller path here. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    lg.lg_errors

let lanes_close lg =
  if not lg.lg_closed then begin
    Mutex.lock lg.lg_mutex;
    lg.lg_closed <- true;
    Condition.broadcast lg.lg_start;
    Mutex.unlock lg.lg_mutex;
    if lg.lg_groups > 1 then begin
      Mutex.lock lg.lg_pool.mutex;
      lg.lg_pool.lane_groups <-
        List.filter (fun l -> l != lg) lg.lg_pool.lane_groups;
      Mutex.unlock lg.lg_pool.mutex
    end
  end

let shutdown t =
  Mutex.lock t.mutex;
  let groups = t.lane_groups in
  t.lane_groups <- [];
  Mutex.unlock t.mutex;
  (* Release any worker still bound to an unclosed lane group, or the
     join below would wait forever on a domain blocked at [lg_start]. *)
  List.iter
    (fun lg ->
      Mutex.lock lg.lg_mutex;
      lg.lg_closed <- true;
      Condition.broadcast lg.lg_start;
      Mutex.unlock lg.lg_mutex)
    groups;
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let map_array t f input =
  if t.stopped then invalid_arg "Pool.map: pool is shut down";
  reraise_escaped t;
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    Metrics.incr m_maps;
    (* Every lane (workers and the caller) claims indices from the shared
       cursor until the input is exhausted. Results and errors land at
       their input index, so scheduling cannot perturb the output. Item
       counts are accumulated locally and flushed once per lane. *)
    let lane items_counter () =
      let claimed = ref 0 in
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          incr claimed;
          (match f input.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          if 1 + Atomic.fetch_and_add completed 1 = n then begin
            Mutex.lock finished;
            Condition.broadcast all_done;
            Mutex.unlock finished
          end;
          loop ()
        end
      in
      loop ();
      if !claimed > 0 then Metrics.add items_counter !claimed
    in
    let helpers = min (t.size - 1) (n - 1) in
    if helpers > 0 then begin
      let enqueued_at = if Metrics.enabled () then Metrics.now () else 0. in
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        Queue.push (enqueued_at, lane m_items_worker) t.jobs
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex
    end;
    lane m_items_caller ();
    Mutex.lock finished;
    while Atomic.get completed < n do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index completed without error *))
      results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let fold t ~f ~combine ~init xs = List.fold_left combine init (map t f xs)
