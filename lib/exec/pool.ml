type t = {
  size : int;
  mutex : Mutex.t;  (* guards [jobs] and [stopped] *)
  nonempty : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

let worker_loop t () =
  let rec run () =
    Mutex.lock t.mutex;
    let rec next () =
      if t.stopped then None
      else if Queue.is_empty t.jobs then begin
        Condition.wait t.nonempty t.mutex;
        next ()
      end
      else Some (Queue.pop t.jobs)
    in
    let job = next () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
        (* Jobs are wrappers built by [map_array] and never raise; the
           guard keeps a misbehaving job from killing the worker. *)
        (try job () with _ -> ());
        run ()
  in
  run ()

let create ~domains =
  let size = max 1 domains in
  let t =
    {
      size;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopped <- true;
  t.workers <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let map_array t f input =
  if t.stopped then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length input in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let finished = Mutex.create () in
    let all_done = Condition.create () in
    (* Every lane (workers and the caller) claims indices from the shared
       cursor until the input is exhausted. Results and errors land at
       their input index, so scheduling cannot perturb the output. *)
    let lane () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (match f input.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          if 1 + Atomic.fetch_and_add completed 1 = n then begin
            Mutex.lock finished;
            Condition.broadcast all_done;
            Mutex.unlock finished
          end;
          loop ()
        end
      in
      loop ()
    in
    let helpers = min (t.size - 1) (n - 1) in
    if helpers > 0 then begin
      Mutex.lock t.mutex;
      for _ = 1 to helpers do
        Queue.push lane t.jobs
      done;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex
    end;
    lane ();
    Mutex.lock finished;
    while Atomic.get completed < n do
      Condition.wait all_done finished
    done;
    Mutex.unlock finished;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index completed without error *))
      results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let fold t ~f ~combine ~init xs = List.fold_left combine init (map t f xs)
