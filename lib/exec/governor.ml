type reason = Deadline | Fact_budget | Work_budget | Wave_budget | Cancelled

exception Trip of reason

type 'a outcome =
  | Complete of 'a
  | Partial of {
      value : 'a;
      reason : reason;
      elapsed_s : float;
      work : int;
      facts : int;
    }

(* Budgets are stored denormalized ([max_int] / [infinity] = unlimited) so
   the hot path compares without an Option match. All mutable state is
   atomic: ticks arrive from every pool domain, and [cancel] from a signal
   handler. *)
type t = {
  deadline : float;  (* absolute Metrics.now time; infinity = none *)
  max_facts : int;
  max_work : int;
  max_waves : int;
  started : float;
  has_deadline : bool;
  cancel_flag : bool Atomic.t;
  work : int Atomic.t;
  facts : int Atomic.t;
  waves : int Atomic.t;
  unchecked : int Atomic.t;  (* work units since the last full checkpoint *)
  trip : reason option Atomic.t;  (* sticky: set once, never cleared *)
}

let reason_string = function
  | Deadline -> "deadline"
  | Fact_budget -> "fact-budget"
  | Work_budget -> "work-budget"
  | Wave_budget -> "wave-budget"
  | Cancelled -> "cancelled"

let m_checkpoints =
  Lsdb_obs.Metrics.counter ~help:"Full governor checkpoints executed"
    "lsdb_governor_checkpoints_total"

let m_trip reason =
  Lsdb_obs.Metrics.counter ~help:"Governor budget trips by reason"
    ~labels:[ ("reason", reason_string reason) ]
    "lsdb_governor_trips_total"

let h_checkpoint =
  Lsdb_obs.Metrics.histogram ~help:"Latency of full governor checkpoints"
    "lsdb_governor_checkpoint_seconds"

(* Full checkpoint every this many accumulated work units. A power of two
   near 1k keeps deadline latency well under a millisecond on the fact
   walks that tick 1 per fact, while making the common tick two atomic
   adds and two loads (B19 gates the resulting overhead < 5%). *)
let checkpoint_interval = 1024

let create ?deadline_ms ?max_facts ?max_work ?max_waves () =
  let has_deadline = deadline_ms <> None in
  (* One clock read per governor, so [elapsed_s] is meaningful even for a
     cancellation-only token; the hot checkpoint path still reads the
     clock only when a deadline is armed. *)
  let now = Lsdb_obs.Metrics.now () in
  {
    deadline =
      (match deadline_ms with
      | Some ms -> now +. (ms /. 1000.)
      | None -> infinity);
    max_facts = Option.value max_facts ~default:max_int;
    max_work = Option.value max_work ~default:max_int;
    max_waves = Option.value max_waves ~default:max_int;
    started = now;
    has_deadline;
    cancel_flag = Atomic.make false;
    work = Atomic.make 0;
    facts = Atomic.make 0;
    waves = Atomic.make 0;
    unchecked = Atomic.make 0;
    trip = Atomic.make None;
  }

let cancel t = Atomic.set t.cancel_flag true
let cancelled t = Atomic.get t.cancel_flag
let tripped t = Atomic.get t.trip

let is_tripped = function None -> false | Some t -> tripped t <> None

let elapsed_s t = Lsdb_obs.Metrics.now () -. t.started

let work_done t = Atomic.get t.work
let facts_done t = Atomic.get t.facts

let describe t =
  let parts = ref [] in
  if t.max_waves <> max_int then
    parts := Printf.sprintf "waves=%d" t.max_waves :: !parts;
  if t.max_work <> max_int then
    parts := Printf.sprintf "work=%d" t.max_work :: !parts;
  if t.max_facts <> max_int then
    parts := Printf.sprintf "facts=%d" t.max_facts :: !parts;
  if t.has_deadline then
    parts :=
      Printf.sprintf "deadline=%.0fms" ((t.deadline -. t.started) *. 1000.)
      :: !parts;
  if !parts = [] then "no budget (cancellation only)"
  else String.concat " " !parts

(* Record the trip stickily: the first CAS wins and owns the metrics
   bump; concurrent/later trippers re-raise the recorded reason so the
   whole stack unwinds consistently toward one cause. *)
let trip_with t reason =
  let recorded =
    if Atomic.compare_and_set t.trip None (Some reason) then begin
      Lsdb_obs.Metrics.incr (m_trip reason);
      reason
    end
    else match Atomic.get t.trip with Some r -> r | None -> reason
  in
  raise (Trip recorded)

let full_check t =
  Lsdb_obs.Metrics.incr m_checkpoints;
  (match Atomic.get t.trip with Some r -> raise (Trip r) | None -> ());
  if Atomic.get t.cancel_flag then trip_with t Cancelled;
  if t.has_deadline then begin
    let start = Lsdb_obs.Metrics.now () in
    if start > t.deadline then trip_with t Deadline;
    Lsdb_obs.Metrics.observe h_checkpoint (Lsdb_obs.Metrics.now () -. start)
  end

let check = function
  | None -> ()
  | Some t ->
      Atomic.set t.unchecked 0;
      full_check t

let tick gov n =
  match gov with
  | None -> ()
  | Some t ->
      let work = Atomic.fetch_and_add t.work n + n in
      if work > t.max_work then trip_with t Work_budget;
      let unchecked = Atomic.fetch_and_add t.unchecked n + n in
      if unchecked >= checkpoint_interval then begin
        Atomic.set t.unchecked 0;
        full_check t
      end

type ticker = { tk_gov : t option; tk_batch : int; mutable tk_pending : int }

let ticker ?(batch = 256) gov = { tk_gov = gov; tk_batch = batch; tk_pending = 0 }

let flush_ticks tk =
  if tk.tk_pending > 0 then begin
    let n = tk.tk_pending in
    tk.tk_pending <- 0;
    tick tk.tk_gov n
  end

let bump tk n =
  tk.tk_pending <- tk.tk_pending + n;
  if tk.tk_pending >= tk.tk_batch then flush_ticks tk

let count_facts gov n =
  match gov with
  | None -> ()
  | Some t ->
      let facts = Atomic.fetch_and_add t.facts n + n in
      if facts > t.max_facts then trip_with t Fact_budget

let count_wave = function
  | None -> ()
  | Some t ->
      let waves = Atomic.fetch_and_add t.waves 1 + 1 in
      if waves > t.max_waves then trip_with t Wave_budget;
      full_check t

let finish gov value =
  match gov with
  | None -> Complete value
  | Some t -> (
      match tripped t with
      | None -> Complete value
      | Some reason ->
          Partial
            {
              value;
              reason;
              elapsed_s = elapsed_s t;
              work = work_done t;
              facts = facts_done t;
            })

module Retry = struct
  type policy = { attempts : int; base_delay_s : float; max_delay_s : float }

  let default = { attempts = 4; base_delay_s = 0.002; max_delay_s = 0.05 }
  let none = { attempts = 1; base_delay_s = 0.; max_delay_s = 0. }

  let run ?(policy = default) ?on_retry ?on_giveup ~retry_on f =
    let attempts = max 1 policy.attempts in
    let rec go attempt =
      try f ()
      with e when retry_on e ->
        if attempt >= attempts then begin
          (match on_giveup with Some g -> g e | None -> ());
          raise e
        end
        else begin
          (match on_retry with Some r -> r ~attempt e | None -> ());
          let delay =
            Float.min policy.max_delay_s
              (policy.base_delay_s *. Float.pow 2. (float_of_int (attempt - 1)))
          in
          if delay > 0. then Unix.sleepf delay;
          go (attempt + 1)
        end
    in
    go 1
end
