(** A small domain pool for data-parallel fan-outs.

    The pool owns [domains - 1] long-lived worker domains; the calling
    domain is always the remaining lane, so every parallel operation makes
    progress even when the workers are busy (which also makes nested
    {!map} calls on the same pool deadlock-free). Work items are claimed
    from a shared atomic cursor, but results are written back by input
    index, so {!map} is deterministic: output order equals input order
    regardless of scheduling.

    The pool is intended for read-only fan-outs over shared structures
    (retraction waves, closure rounds): callers must ensure the shared
    data is not mutated for the duration of a call — see
    [Database.prepare_readers]. *)

type t

(** [create ~domains] starts a pool with [domains] total lanes
    ([domains - 1] spawned worker domains; values [<= 1] spawn none and
    make every operation run inline on the caller). *)
val create : domains:int -> t

(** Total lanes, including the calling domain. Always [>= 1]. *)
val size : t -> int

(** [map pool f xs] applies [f] to every element, in parallel, returning
    results in input order. If one or more applications raise, the items
    still all run, and the exception of the {e lowest-indexed} failing
    item is re-raised in the caller (with its backtrace) — so failure
    behavior is deterministic too.

    Raises [Invalid_argument] if the pool has been shut down. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Array counterpart of {!map}. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [fold pool ~f ~combine ~init xs] maps [f] in parallel, then combines
    the results sequentially in input order — deterministic for any
    [combine], associative or not. *)
val fold : t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc

(** [submit pool job] enqueues a fire-and-forget job for a worker domain
    (run inline by the next pool operation's caller lane only if no
    worker exists). Unlike {!map}, there is no completion handle. If
    [job] raises, the exception is counted in
    [lsdb_pool_job_exceptions_total] and parked; the next {!map},
    {!map_array} or {!lanes_run} call on this pool re-raises it in the
    caller — escaped exceptions (e.g. [Governor.Trip]-class) are never
    silently dropped.

    Raises [Invalid_argument] if the pool has been shut down. *)
val submit : t -> (unit -> unit) -> unit

(** {2 Persistent lanes}

    A {!lanes} group binds [min (size pool) n] executors — the caller
    plus up to [size pool - 1] worker domains — to [n] persistent lane
    indices for many barrier-separated rounds. Lane [i] always runs on
    executor [i mod groups], so a per-shard lane keeps shard affinity
    (warm caches) from round to round; when [n] exceeds the pool size,
    lanes multiplex onto the available executors. Compared with calling
    {!map_array} per round, a group pays the enqueue/wake cost once at
    creation instead of every round.

    Usage discipline: a group occupies its workers for its whole
    lifetime, so create it, run rounds, and {!lanes_close} it within one
    bounded scope (e.g. [Fun.protect]); do not keep two groups of the
    same pool open at once, or run {!map} on the pool while a group is
    open — those workers are busy and the caller lane would do all the
    work. *)

type lanes

(** [lanes pool ~n] creates a persistent group of [n] lanes.
    Raises [Invalid_argument] if [n < 1] or the pool is shut down. *)
val lanes : t -> n:int -> lanes

(** Number of lanes in the group. *)
val lanes_size : lanes -> int

(** [lanes_run g f] runs one round: [f i] executes for every lane
    [i < lanes_size g], in parallel across the group's executors, and
    returns once all lanes finish (the round barrier). The caller domain
    is executor 0 and always makes progress. As with {!map}, if lanes
    raise, all lanes still run and the {e lowest-indexed} failing lane's
    exception is re-raised in the caller with its backtrace —
    deterministic failure propagation, including [Governor.Trip] raised
    from a worker-domain checkpoint.

    Raises [Invalid_argument] if the group is closed. *)
val lanes_run : lanes -> (int -> unit) -> unit

(** Release the group's workers back to the pool. Idempotent. Must not
    race with a {!lanes_run} in progress. *)
val lanes_close : lanes -> unit

(** Stop the workers and join them. Idempotent. Closes any lane groups
    still open (so a leaked group cannot deadlock the join). Outstanding
    operations must have completed; subsequent {!map}/{!fold} calls raise
    [Invalid_argument]. *)
val shutdown : t -> unit

(** What the runtime recommends for this machine
    ([Domain.recommended_domain_count]). *)
val default_domains : unit -> int
