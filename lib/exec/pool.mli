(** A small domain pool for data-parallel fan-outs.

    The pool owns [domains - 1] long-lived worker domains; the calling
    domain is always the remaining lane, so every parallel operation makes
    progress even when the workers are busy (which also makes nested
    {!map} calls on the same pool deadlock-free). Work items are claimed
    from a shared atomic cursor, but results are written back by input
    index, so {!map} is deterministic: output order equals input order
    regardless of scheduling.

    The pool is intended for read-only fan-outs over shared structures
    (retraction waves, closure rounds): callers must ensure the shared
    data is not mutated for the duration of a call — see
    [Database.prepare_readers]. *)

type t

(** [create ~domains] starts a pool with [domains] total lanes
    ([domains - 1] spawned worker domains; values [<= 1] spawn none and
    make every operation run inline on the caller). *)
val create : domains:int -> t

(** Total lanes, including the calling domain. Always [>= 1]. *)
val size : t -> int

(** [map pool f xs] applies [f] to every element, in parallel, returning
    results in input order. If one or more applications raise, the items
    still all run, and the exception of the {e lowest-indexed} failing
    item is re-raised in the caller (with its backtrace) — so failure
    behavior is deterministic too.

    Raises [Invalid_argument] if the pool has been shut down. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Array counterpart of {!map}. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

(** [fold pool ~f ~combine ~init xs] maps [f] in parallel, then combines
    the results sequentially in input order — deterministic for any
    [combine], associative or not. *)
val fold : t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc

(** Stop the workers and join them. Idempotent. Outstanding operations
    must have completed; subsequent {!map}/{!fold} calls raise
    [Invalid_argument]. *)
val shutdown : t -> unit

(** What the runtime recommends for this machine
    ([Domain.recommended_domain_count]). *)
val default_domains : unit -> int
