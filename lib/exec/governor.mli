(** Per-query resource governor: wall deadline, derived-fact budget, work
    budget, probe-wave budget and a cooperative cancellation token.

    A governor is created per query (or per request, in a future server
    front end) and threaded through every long-running loop of the
    evaluation stack — semi-naive closure rounds, demand cone walks,
    probe waves, composition frontier expansions, join iteration. The
    loops call {!tick}/{!check} at cheap amortized checkpoints; when a
    budget is exceeded the governor {e trips} — once, stickily — and the
    checkpoint raises the internal {!Trip} exception. Entry points catch
    it and return whatever sound partial answers they had already
    derived; no exception ever crosses into user code. The caller reads
    the outcome with {!finish}: [Complete] when the governor never
    tripped, [Partial] (with the trip reason) otherwise.

    Soundness discipline: every structure a governed evaluation leaves
    behind is a {e subset} of the ungoverned result (facts derived before
    the trip are genuinely derivable; nothing bogus is ever added), so
    partial answer sets are always sound. Completeness-sensitive caches
    (the closure cache, demand memos, generation-keyed answer caches)
    must not survive a trip — [Database.set_governor] enforces that.

    An untripped governor must be behaviorally invisible: every
    intervention is raise-only, so results are byte-identical to an
    ungoverned run (bench B19 gates the overhead). *)

type t

type reason = Deadline | Fact_budget | Work_budget | Wave_budget | Cancelled

exception Trip of reason
(** Internal control flow between checkpoints and entry points. Library
    entry points catch it; it never propagates to user code. *)

(** The typed outcome a governed entry point surfaces to its caller. *)
type 'a outcome =
  | Complete of 'a
  | Partial of {
      value : 'a;  (** sound partial answers derived before the trip *)
      reason : reason;
      elapsed_s : float;  (** wall-clock since {!create} *)
      work : int;  (** work units ticked *)
      facts : int;  (** derived facts counted *)
    }

(** [create ()] with no budget is a pure cancellation token (near-zero
    overhead: no clock is ever read). [deadline_ms] is relative to now;
    [max_facts] bounds derived facts, [max_work] total work units
    (candidate facts walked, delta triples joined, frontier nodes
    expanded), [max_waves] probe broadening waves. *)
val create :
  ?deadline_ms:float -> ?max_facts:int -> ?max_work:int -> ?max_waves:int -> unit -> t

(** Request cooperative cancellation (safe from a signal handler or
    another domain); the next checkpoint trips with [Cancelled]. *)
val cancel : t -> unit

val cancelled : t -> bool

(** The sticky trip reason, if the governor has tripped. Once set it
    never clears: every later {!tick}/{!check} re-raises immediately, so
    post-trip governed work degrades to near-no-ops while the stack
    unwinds through its catch points. *)
val tripped : t -> reason option

val is_tripped : t option -> bool

val elapsed_s : t -> float
val work_done : t -> int
val facts_done : t -> int

(** Budgets as configured (for display). *)
val describe : t -> string

(** {1 Checkpoints — called from evaluation loops} *)

(** [tick gov n] records [n] units of work. Cheap: two atomic adds; the
    full checkpoint (cancellation flag, deadline clock read) runs only
    every {!checkpoint_interval} accumulated units. Raises {!Trip} when
    a budget is exceeded. [tick None n] is a no-op. *)
val tick : t option -> int -> unit

(** Forced full checkpoint — for loop heads executed rarely (round
    barriers, wave boundaries) where deadline latency matters more than
    amortization. Raises {!Trip}. *)
val check : t option -> unit

(** [count_facts gov n] — [n] facts were derived; trips with
    [Fact_budget] past the budget. *)
val count_facts : t option -> int -> unit

(** One probe broadening wave is starting; trips with [Wave_budget] past
    the budget. *)
val count_wave : t option -> unit

val checkpoint_interval : int

(** {1 Batched ticking — shard lanes}

    Two atomic RMWs per {!tick} cost more than the joins they meter on
    tight per-emission loops, and with several shard lanes ticking the
    same governor the contention multiplies. A [ticker] accumulates work
    units in a plain local counter and forwards them in batches: each
    lane owns one, so the governor sees one aggregated [tick] per
    [batch] units per lane. The un-forwarded slop is at most
    [batch - 1] per lane, well inside the checkpoint interval for the
    default batch of 256. *)

type ticker

(** [ticker gov] — a fresh local accumulator forwarding to [gov].
    [ticker None] never forwards (all operations are near-free). *)
val ticker : ?batch:int -> t option -> ticker

(** [bump tk n] records [n] local units; forwards (and may raise
    {!Trip}) once the batch fills. *)
val bump : ticker -> int -> unit

(** Forward whatever is pending. Call at the end of the lane's loop so
    no work goes unmetered. Raises {!Trip} like {!tick}. *)
val flush_ticks : ticker -> unit

(** {1 Outcomes} *)

(** Wrap a value in the typed outcome: [Complete] if [gov] is absent or
    never tripped, [Partial] otherwise. *)
val finish : t option -> 'a -> 'a outcome

val reason_string : reason -> string

(** {1 Bounded-exponential-backoff retry}

    For transient faults (storage writes hitting a momentary [EIO]-shaped
    error): retry with exponentially growing sleeps, bounded in both
    attempt count and per-sleep duration. Permanent failures (anything
    [retry_on] rejects) propagate immediately. *)
module Retry : sig
  type policy = {
    attempts : int;  (** total tries, including the first *)
    base_delay_s : float;  (** sleep before the first retry *)
    max_delay_s : float;  (** per-sleep cap *)
  }

  val default : policy
  (** 4 attempts, 2 ms base, 50 ms cap. *)

  val none : policy
  (** A single attempt — retries disabled. *)

  (** [run ~retry_on f] runs [f], retrying when it raises an exception
      [retry_on] accepts. [on_retry] is called before each sleep;
      [on_giveup] just before re-raising once attempts are exhausted. *)
  val run :
    ?policy:policy ->
    ?on_retry:(attempt:int -> exn -> unit) ->
    ?on_giveup:(exn -> unit) ->
    retry_on:(exn -> bool) ->
    (unit -> 'a) ->
    'a
end
