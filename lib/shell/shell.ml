open Lsdb
module Metrics = Lsdb_obs.Metrics
module Trace = Lsdb_obs.Trace
module Governor = Lsdb_exec.Governor

type mutation =
  | Inserted of Fact.t
  | Removed of Fact.t
  | Rule_included of string
  | Rule_excluded of string
  | Limit_set of int

type t = {
  db : Database.t;
  session : Navigation.session;
  defs : Definitions.t;
  journal : mutation -> unit;
  (* Session budgets, applied to every query command via a fresh
     per-query governor (see [governed]). *)
  mutable deadline_ms : float option;
  mutable max_facts : int option;
  mutable max_work : int option;
  mutable max_waves : int option;
  (* The governor of the query currently executing, if any — the handle a
     SIGINT handler cancels through. *)
  mutable active_gov : Governor.t option;
}

let create ?(journal = fun _ -> ()) db =
  {
    db;
    session = Navigation.start db;
    defs = Definitions.create ();
    journal;
    deadline_ms = None;
    max_facts = None;
    max_work = None;
    max_waves = None;
    active_gov = None;
  }

let database t = t.db
let active_governor t = t.active_gov
let set_deadline_ms t ms = t.deadline_ms <- ms

let demos =
  [
    ("music", Paper_examples.music);
    ("organization", Paper_examples.organization);
    ("campus", Paper_examples.campus);
    ("library", Paper_examples.library);
    ("payroll", Paper_examples.payroll);
  ]

let help =
  {|commands:
  try NAME                      all facts including the entity (§6.1)
  find TEXT                     entities whose name contains TEXT
  nav NAME                      neighborhood table, visits the entity (§4.1)
  back                          step back in the navigation history
  history                       the browsing trail
  assoc NAME NAME               all associations between two entities
  t TEMPLATE                    render a navigation template as a table
  q QUERY                       evaluate a standard query (§2.7)
  probe QUERY                   query with automatic retraction (§5.2)
  explain (S, R, T)             why is this fact in the database?
  relation CLASS [REL CLASS]…   the §6.1 relation operator
  define NAME(?p) := QUERY      define a retrieval operator (§6)
  call NAME [ARG]…              invoke a defined operator
  ops | undefine NAME           list / remove defined operators
  insert (S, R, T)              add a fact (with integrity check)
  remove (S, R, T)              remove a base fact
  rules                         list rules with enabled markers
  include NAME | exclude NAME   toggle a rule (§6.1)
  limit N                       set the composition chain bound (§6.1)
  check                         report contradictions in the closure
  stats                         database statistics
  .closure [eager|demand]       show / set the closure mode (demand derives on demand)
  .shards [N]                   show / set the fact-heap shard count (re-partitions)
  .deadline [MS|off]            per-query wall deadline; a trip returns partial answers
  .budget [facts N|work N|waves N|off]  per-query derivation/work/wave budgets
  .stats                        observability counters (engine, probing, pool, storage)
  .profile [on|off]             show the last query profile / toggle tracing
  .slowlog [MS]                 show slow queries / set the slow threshold
  .metrics                      Prometheus-format metrics dump
  save FILE | load FILE         text fact-file I/O
  script FILE                   run a file of commands
  help | quit

query syntax: (JOHN, *, *)   (?x, in, BOOK) & (?x, CITES, ?x)
              exists y . (?x, AUTHOR, ?y) & (?y, neq, ALICE)|}

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let answer_text db answer =
  match answer.Eval.vars with
  | [] -> if answer.Eval.rows <> [] then "true" else "false"
  | vars ->
      if answer.Eval.rows = [] then "(no answers)"
      else Pretty.grid ~headers:vars (Eval.rows_named (Database.symtab db) answer)

let stats_text db =
  (* In demand mode, statistics must not force the eager closure — that
     would defeat the whole point of the mode. Report the derived-cone
     sizes instead. *)
  let closure_line =
    match Database.closure_mode db with
    | Database.Eager ->
        let closure = Database.closure db in
        Printf.sprintf "closure: %d (%d derived, %d rounds)" (Closure.cardinal closure)
          (Closure.derived_count closure) (Closure.rounds closure)
    | Database.Demand -> (
        match Database.demand_stats db with
        | Some s ->
            Printf.sprintf
              "closure (demand): %d cone facts derived (%d stage, %d full) over %d \
               base facts"
              (s.Lsdb_datalog.Magic.stage_cone_facts + s.Lsdb_datalog.Magic.full_cone_facts)
              s.Lsdb_datalog.Magic.stage_cone_facts s.Lsdb_datalog.Magic.full_cone_facts
              s.Lsdb_datalog.Magic.base_facts
        | None -> "closure (demand): no goals demanded yet")
  in
  String.concat "\n"
    [
      Printf.sprintf "entities: %d" (Database.entity_count db);
      Printf.sprintf "base facts: %d" (Database.base_cardinal db);
      (let n = Database.shards db in
       if n = 1 then "shards: 1"
       else
         let cards = Store.shard_cardinals (Database.store db) in
         let total = Array.fold_left ( + ) 0 cards in
         let biggest = Array.fold_left max 0 cards in
         Printf.sprintf "shards: %d (largest %d of %d base facts)" n biggest
           total);
      closure_line;
      Printf.sprintf "closure mode: %s"
        (match Database.closure_mode db with
        | Database.Eager -> "eager"
        | Database.Demand -> "demand");
      Printf.sprintf "composition limit: %d" (Database.limit db);
      Printf.sprintf "rules: %d enabled / %d"
        (List.length (Database.enabled_rules db))
        (List.length (Database.rules db));
      Printf.sprintf "closure maintenance: %d computed, %d extensions, %d retractions"
        (Database.closure_computations db)
        (Database.closure_extensions db)
        (Database.closure_retractions db);
      Printf.sprintf "support index: %d edges" (Database.support_size db);
      (let { Match_layer.hits; misses; evictions; size } =
         Match_layer.cache_stats_for db
       in
       Printf.sprintf "answer cache: %d hits / %d misses, %d entries, %d evicted"
         hits misses size evictions);
    ]

(* Reading the observability counters back out goes through the same
   find-or-create registration the instrumented modules use: asking for a
   name + label set returns the existing handle. *)
let obs_stats_text db =
  let c ?labels name = Metrics.counter_value (Metrics.counter ?labels name) in
  let outcome o = c ~labels:[ ("outcome", o) ] "lsdb_probing_outcomes_total" in
  let lane l = c ~labels:[ ("lane", l) ] "lsdb_pool_items_total" in
  let { Match_layer.hits; misses; evictions; size } =
    Match_layer.cache_stats_for db
  in
  String.concat "\n"
    [
      Printf.sprintf
        "probing: %d probes (%d answered, %d retracted, %d exhausted), %d \
         waves, %d broadenings tried / %d succeeded"
        (c "lsdb_probing_probes_total")
        (outcome "answered") (outcome "retracted") (outcome "exhausted")
        (c "lsdb_probing_waves_total")
        (c "lsdb_probing_broadenings_attempted_total")
        (c "lsdb_probing_broadenings_succeeded_total");
      Printf.sprintf
        "engine: %d closures, %d extensions, %d retractions; %d rounds, %d \
         delta in / %d derived"
        (c "lsdb_engine_closures_total")
        (c "lsdb_engine_extends_total")
        (c "lsdb_engine_retracts_total")
        (c "lsdb_engine_closure_rounds_total")
        (c "lsdb_engine_delta_triples_total")
        (c "lsdb_engine_derived_triples_total");
      Printf.sprintf "retraction cones: %d facts over-deleted, %d restored"
        (c "lsdb_engine_retract_cone_facts_total")
        (c "lsdb_engine_restored_facts_total");
      Printf.sprintf
        "sharded: %d rounds, %d derived, %d cross-shard exchanged, %d \
         retractions; imbalance %d‰"
        (c "lsdb_sharded_rounds_total")
        (c "lsdb_sharded_derived_triples_total")
        (c "lsdb_sharded_exchanged_total")
        (c "lsdb_sharded_retracts_total")
        (Metrics.gauge_value
           (Metrics.gauge "lsdb_sharded_imbalance_permille"));
      Printf.sprintf
        "demand: %d goals (%d memo hits / %d misses), %d magic patterns, %d \
         cone facts derived"
        (c "lsdb_demand_goals_total")
        (c "lsdb_demand_memo_hits_total")
        (c "lsdb_demand_memo_misses_total")
        (c "lsdb_demand_magic_predicates_total")
        (c "lsdb_demand_cone_facts_total");
      (let direction d =
         c ~labels:[ ("direction", d) ] "lsdb_composition_expansions_total"
       in
       Printf.sprintf
         "composition: %d searches (%d truncated, %d empty at the join), %d \
          paths, %d meet nodes; expansions %d forward / %d backward"
         (c "lsdb_composition_searches_total")
         (c "lsdb_composition_truncated_total")
         (c "lsdb_composition_empty_meets_total")
         (c "lsdb_composition_paths_total")
         (c "lsdb_composition_meet_nodes_total")
         (direction "forward") (direction "backward"));
      Printf.sprintf
        "pool: %d fan-outs, %d worker jobs; items %d caller / %d worker"
        (c "lsdb_pool_maps_total") (c "lsdb_pool_jobs_total") (lane "caller")
        (lane "worker");
      Printf.sprintf "storage: %d log appends, %d syncs, %d compactions"
        (c "lsdb_log_appends_total") (c "lsdb_log_syncs_total")
        (c "lsdb_store_compactions_total");
      (let trip r = c ~labels:[ ("reason", r) ] "lsdb_governor_trips_total" in
       Printf.sprintf
         "governor: %d checkpoints; trips %d deadline / %d facts / %d work / \
          %d waves / %d cancelled"
         (c "lsdb_governor_checkpoints_total")
         (trip "deadline") (trip "fact-budget") (trip "work-budget")
         (trip "wave-budget") (trip "cancelled"));
      Printf.sprintf
        "degradation: %d storage retries (%d gave up), %d federation members \
         skipped"
        (c "lsdb_storage_retries_total")
        (c "lsdb_storage_retry_giveups_total")
        (c "lsdb_federation_skipped_members_total");
      (let { Lsdb_datalog.Index.frozen_live; frozen_dead; delta_live;
             delta_dead; freezes } =
         Database.tier_stats db
       in
       Printf.sprintf
         "index tiers (this db): frozen %d live / %d dead, delta %d live / \
          %d dead, %d freezes"
         frozen_live frozen_dead delta_live delta_dead freezes);
      (match Database.reshard_hint db with
      | Some (shard, permille, streak) ->
          Printf.sprintf
            "reshard hint: shard %d held %d‰ of derived facts for %d \
             fixpoints — consider .shards %d to split it"
            shard permille streak
            (2 * Database.shards db)
      | None -> "reshard hint: none (derived facts balanced)");
      Printf.sprintf
        "answer cache (this db): %d hits / %d misses, %d entries, %d evicted"
        hits misses size evictions;
      Printf.sprintf "timed instrumentation: %s; tracing: %s"
        (if Metrics.enabled () then "on" else "off")
        (if Trace.enabled () then "on" else "off");
    ]

let rec chunk_pairs out = function
  | [] -> []
  | [ last ] ->
      Buffer.add_string out (Printf.sprintf "(ignoring dangling column spec %S)\n" last);
      []
  | rel :: cls :: rest -> (rel, cls) :: chunk_pairs out rest

let parse_fact out db text =
  match Query_parser.parse_template db text with
  | tpl -> (
      match Template.to_fact tpl with
      | Some fact -> Some fact
      | None ->
          Buffer.add_string out "facts may not contain variables\n";
          None)
  | exception Query_parser.Parse_error msg ->
      Buffer.add_string out (Printf.sprintf "parse error: %s\n" msg);
      None

(* Commands that evaluate over the closure and can therefore run long.
   Each gets a fresh governor carrying the session budgets — even with no
   budgets set, the token is what a Ctrl-C handler cancels through. *)
let query_commands =
  [ "try"; "nav"; "assoc"; "t"; "q"; "probe"; "explain"; "relation"; "call"; "check" ]

let governed t out f =
  let gov =
    Governor.create ?deadline_ms:t.deadline_ms ?max_facts:t.max_facts
      ?max_work:t.max_work ?max_waves:t.max_waves ()
  in
  t.active_gov <- Some gov;
  Database.set_governor t.db (Some gov);
  Fun.protect
    ~finally:(fun () ->
      t.active_gov <- None;
      (* This transition discards any partial closure / poisoned demand
         state the tripped query left behind. *)
      Database.set_governor t.db None)
    f;
  match Governor.tripped gov with
  | None -> ()
  | Some reason ->
      let ms = Governor.elapsed_s gov *. 1e3 in
      Buffer.add_string out
        (match reason with
        | Governor.Cancelled ->
            Printf.sprintf "(cancelled after %.1f ms — answers may be incomplete)\n"
              ms
        | _ ->
            Printf.sprintf
              "warning: %s tripped after %.1f ms (%d work units, %d derived \
               facts) — answers are a sound subset\n"
              (Governor.reason_string reason)
              ms (Governor.work_done gov) (Governor.facts_done gov))

let rec execute t line =
  let out = Buffer.create 256 in
  (* [Sys.Break] must escape: it is the REPL's "second Ctrl-C, exit now"
     signal, and swallowing it here would trap the user in the loop. *)
  (try run t out (split_words line) with
  | Sys.Break as e -> raise e
  | e -> Buffer.add_string out ("error: " ^ Printexc.to_string e ^ "\n"));
  Buffer.contents out

and run t out words =
  match words with
  | cmd :: _ when List.mem (String.lowercase_ascii cmd) query_commands ->
      governed t out (fun () -> dispatch t out words)
  | _ -> dispatch t out words

and dispatch t out words =
  let say fmt = Printf.ksprintf (fun s -> Buffer.add_string out (s ^ "\n")) fmt in
  let db = t.db in
  match words with
  | [] -> ()
  | cmd :: rest -> (
      let rest_text () = String.concat " " rest in
      match (String.lowercase_ascii cmd, rest) with
      | "help", _ -> say "%s" help
      | "try", [ name ] -> say "%s" (Operators.try_render db name)
      | "find", [ needle ] -> (
          match Search.substring db needle with
          | [] -> say "no entity name contains %S" needle
          | hits ->
              List.iter (fun e -> say "  %s" (Database.entity_name db e)) hits)
      | "nav", [ name ] -> (
          match Database.find_entity db name with
          | Some e ->
              ignore (Navigation.visit t.session e);
              say "%s" (Navigation.render_source_table db e)
          | None -> say "no such entity: %s" name)
      | "back", _ -> (
          match Navigation.back t.session with
          | Some e -> say "%s" (Navigation.render_source_table db e)
          | None -> say "(at the start of history)")
      | "history", _ ->
          say "%s"
            (String.concat " → "
               (List.rev_map (Database.entity_name db) (Navigation.history t.session)))
      | "assoc", [ a; b ] -> (
          match (Database.find_entity db a, Database.find_entity db b) with
          | Some src, Some tgt ->
              say "%s"
                (Trace.with_query
                   (Printf.sprintf "assoc %s %s" a b)
                   (fun () -> Navigation.render_associations db ~src ~tgt))
          | _ -> say "unknown entity")
      | "t", _ :: _ -> (
          match Query_parser.parse_template db (rest_text ()) with
          | tpl -> say "%s" (Navigation.render_template db tpl)
          | exception Query_parser.Parse_error msg -> say "parse error: %s" msg)
      | "q", _ :: _ -> (
          match Query_parser.parse db (rest_text ()) with
          | query ->
              let answer =
                Trace.with_query ("q " ^ rest_text ()) (fun () -> Eval.eval db query)
              in
              say "%s" (answer_text db answer)
          | exception Query_parser.Parse_error msg -> say "parse error: %s" msg)
      | "probe", _ :: _ -> (
          match Query_parser.parse_with_unknowns db (rest_text ()) with
          | query, unknowns ->
              if unknowns <> [] then say "(new names: %s)" (String.concat ", " unknowns);
              let outcome =
                Trace.with_query
                  ("probe " ^ rest_text ())
                  (fun () -> Probing.probe db query)
              in
              Buffer.add_string out (Probing.render_menu db query outcome);
              (match outcome with
              | Probing.Retracted { successes; _ } ->
                  List.iteri
                    (fun i success ->
                      say "--- %d: %s" (i + 1)
                        (Query.to_string (Database.symtab db) success.Probing.query);
                      say "%s" (answer_text db success.Probing.answer))
                    successes
              | Probing.Answered answer -> say "%s" (answer_text db answer)
              | Probing.Exhausted _ -> ())
          | exception Query_parser.Parse_error msg -> say "parse error: %s" msg)
      | "explain", _ :: _ -> (
          match parse_fact out db (rest_text ()) with
          | Some fact -> Buffer.add_string out (Explain.render db (Explain.explain db fact))
          | None -> ())
      | "relation", cls :: columns ->
          let view = Operators.relation db cls (chunk_pairs out columns) in
          say "%s" (View.render db view)
      | "define", _ :: _ -> (
          match Definitions.define_text db t.defs (rest_text ()) with
          | () -> say "defined"
          | exception Definitions.Error msg -> say "%s" msg)
      | "call", name :: args -> (
          match Definitions.invoke_names db t.defs name args with
          | answer -> say "%s" (answer_text db answer)
          | exception Definitions.Error msg -> say "%s" msg)
      | "ops", _ ->
          let listing = Definitions.show (Database.symtab db) t.defs in
          say "%s" (if listing = "" then "(no operators defined)" else listing)
      | "undefine", [ name ] ->
          say "%s" (if Definitions.remove t.defs name then "removed" else "no such operator")
      | "insert", _ :: _ -> (
          match parse_fact out db (rest_text ()) with
          | Some fact -> (
              match Integrity.insert_checked db fact with
              | Ok true ->
                  t.journal (Inserted fact);
                  say "inserted"
              | Ok false -> say "already present"
              | Error violations ->
                  say "rejected:";
                  List.iter (fun v -> say "  %s" (Integrity.describe db v)) violations)
          | None -> ())
      | "remove", _ :: _ -> (
          match parse_fact out db (rest_text ()) with
          | Some fact ->
              if Database.remove db fact then begin
                t.journal (Removed fact);
                say "removed"
              end
              else say "not a base fact"
          | None -> ())
      | "rules", _ -> say "%s" (Operators.show_rules db)
      | "include", [ name ] ->
          if Operators.include_rule db name then begin
            t.journal (Rule_included name);
            say "enabled"
          end
          else say "no such rule"
      | "exclude", [ name ] ->
          if Operators.exclude db name then begin
            t.journal (Rule_excluded name);
            say "disabled"
          end
          else say "no such rule"
      | "limit", [ n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 ->
              Operators.limit db n;
              t.journal (Limit_set n);
              say "composition limit = %d" n
          | _ -> say "limit needs a positive integer")
      | "check", _ -> (
          match Integrity.violations db with
          | [] -> say "no contradictions"
          | violations -> List.iter (fun v -> say "%s" (Integrity.describe db v)) violations)
      | "stats", _ -> say "%s" (stats_text db)
      | ".closure", [] ->
          say "closure mode: %s"
            (match Database.closure_mode db with
            | Database.Eager -> "eager"
            | Database.Demand -> "demand")
      | ".closure", [ "eager" ] ->
          Database.set_closure_mode db Database.Eager;
          say "closure mode: eager"
      | ".closure", [ "demand" ] ->
          Database.set_closure_mode db Database.Demand;
          say "closure mode: demand"
      | ".closure", _ -> say ".closure takes 'eager' or 'demand'"
      | ".shards", [] ->
          let n = Database.shards db in
          say "shards: %d" n;
          if n > 1 then
            say "balance: [%s]"
              (String.concat "; "
                 (Array.to_list
                    (Array.map string_of_int
                       (Store.shard_cardinals (Database.store db)))))
      | ".shards", [ n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 ->
              Database.set_shards db n;
              say "shards = %d (heap re-partitioned, caches dropped)" n
          | _ -> say ".shards needs a positive shard count")
      | ".shards", _ -> say ".shards takes one argument: N"
      | ".deadline", [] -> (
          match t.deadline_ms with
          | Some ms -> say "deadline: %g ms" ms
          | None -> say "deadline: off")
      | ".deadline", [ "off" ] ->
          t.deadline_ms <- None;
          say "deadline off"
      | ".deadline", [ ms ] -> (
          match float_of_string_opt ms with
          | Some ms when ms > 0. ->
              t.deadline_ms <- Some ms;
              say "deadline = %g ms" ms
          | _ -> say ".deadline needs a positive duration in milliseconds, or 'off'")
      | ".deadline", _ -> say ".deadline takes one argument: MS or 'off'"
      | ".budget", [] ->
          let show name v =
            match v with
            | Some n -> say "%s budget: %d" name n
            | None -> say "%s budget: off" name
          in
          show "fact" t.max_facts;
          show "work" t.max_work;
          show "wave" t.max_waves
      | ".budget", [ "off" ] ->
          t.max_facts <- None;
          t.max_work <- None;
          t.max_waves <- None;
          say "budgets off"
      | ".budget", [ kind; n ] -> (
          match (kind, int_of_string_opt n) with
          | "facts", Some n when n > 0 ->
              t.max_facts <- Some n;
              say "fact budget = %d" n
          | "work", Some n when n > 0 ->
              t.max_work <- Some n;
              say "work budget = %d" n
          | "waves", Some n when n > 0 ->
              t.max_waves <- Some n;
              say "wave budget = %d" n
          | _ -> say ".budget needs 'facts N', 'work N', 'waves N' (N positive) or 'off'")
      | ".budget", _ -> say ".budget needs 'facts N', 'work N', 'waves N' or 'off'"
      | ".stats", _ -> say "%s" (obs_stats_text db)
      | ".metrics", _ -> Buffer.add_string out (Metrics.expose ())
      | ".profile", [] -> (
          match Trace.last () with
          | Some p -> Buffer.add_string out (Trace.render p)
          | None ->
              if Trace.enabled () then say "(no profiles recorded yet)"
              else say "(tracing is off — '.profile on' to enable)")
      | ".profile", [ "on" ] ->
          Metrics.set_enabled true;
          Trace.set_enabled true;
          say "profiling on"
      | ".profile", [ "off" ] ->
          Metrics.set_enabled false;
          Trace.set_enabled false;
          say "profiling off"
      | ".slowlog", [] -> (
          match Trace.slowlog () with
          | [] ->
              if Trace.slow_threshold () = infinity then
                say "(slowlog is off — '.slowlog MS' to set a threshold)"
              else say "(no queries above %.1f ms)" (Trace.slow_threshold () *. 1e3)
          | profiles ->
              List.iter (fun p -> Buffer.add_string out (Trace.render p)) profiles)
      | ".slowlog", [ ms ] -> (
          match float_of_string_opt ms with
          | Some ms when ms >= 0. ->
              Trace.set_slow_threshold (ms /. 1e3);
              Metrics.set_enabled true;
              Trace.set_enabled true;
              say "slowlog threshold = %s ms (tracing on)"
                (if Float.is_integer ms then Printf.sprintf "%.0f" ms
                 else Printf.sprintf "%g" ms)
          | _ -> say ".slowlog needs a non-negative threshold in milliseconds")
      | "save", [ path ] ->
          Fact_file.save_file db path;
          say "saved to %s" path
      | "load", [ path ] -> (
          match Fact_file.load_file db path with
          | n -> say "loaded %d facts" n
          | exception Fact_file.Syntax_error { line; message } ->
              say "%s:%d: %s" path line message
          | exception Sys_error msg -> say "%s" msg)
      | "script", [ path ] -> (
          match
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | text -> Buffer.add_string out (run_script t text)
          | exception Sys_error msg -> say "%s" msg)
      | _ -> say "unknown command %S — type 'help'" cmd)

and run_script t text =
  let out = Buffer.create 1024 in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        Buffer.add_string out (Printf.sprintf "lsdb> %s\n" line);
        Buffer.add_string out (execute t line)
      end)
    (String.split_on_char '\n' text);
  Buffer.contents out
