(** The browser's command interpreter, as a library: one session state
    (database + navigation trail + defined operators), one entry point
    that turns a command line into printable output. The [lsdb-browse]
    binary is a thin REPL around this; tests drive it directly.

    Commands (see {!help}): [try], [nav], [back], [history], [assoc],
    [t], [q], [probe], [explain], [relation], [define]/[call]/[ops]/
    [undefine], [insert]/[remove], [rules]/[include]/[exclude]/[limit],
    [check], [stats], [save]/[load]/[script]. *)

type t

(** A successful base mutation, reported to [journal] just after it was
    applied to the database. A persistent backend uses this to log shell
    mutations (see [Persistent.journal]); the default journal ignores
    them. The [load] command's bulk fact loads are not journalled. *)
type mutation =
  | Inserted of Lsdb.Fact.t
  | Removed of Lsdb.Fact.t
  | Rule_included of string
  | Rule_excluded of string
  | Limit_set of int

val create : ?journal:(mutation -> unit) -> Lsdb.Database.t -> t
val database : t -> Lsdb.Database.t

(** The governor of the query command currently executing, if any. Every
    query command ([q], [probe], [assoc], …) runs under a fresh
    {!Lsdb_exec.Governor.t} carrying the session's [.deadline]/[.budget]
    settings; a budget trip appends a warning to the command output and
    the answers shown are a sound subset. A SIGINT handler cancels the
    in-flight query by calling {!Lsdb_exec.Governor.cancel} on this
    handle — from the interrupted query's point of view the cancellation
    is just another budget trip. *)
val active_governor : t -> Lsdb_exec.Governor.t option

(** Set the session deadline programmatically — the backing field of the
    [.deadline] command, exposed for [lsdb-browse --deadline-ms]. *)
val set_deadline_ms : t -> float option -> unit

(** Execute one command line; returns the output text (possibly empty,
    never raises — errors are reported in the output). The one exception
    is [Sys.Break], which propagates so a REPL's interrupt handling can
    exit through its cleanup paths. *)
val execute : t -> string -> string

(** Execute every line of a script (["#"] comments and blank lines are
    skipped), concatenating the outputs with the commands echoed. *)
val run_script : t -> string -> string

(** The built-in example databases, by name. *)
val demos : (string * (unit -> Lsdb.Database.t)) list

val help : string
