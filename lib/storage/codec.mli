(** Binary encoding primitives for the storage layer: LEB128 varints,
    length-prefixed strings, and CRC-32 (IEEE 802.3, implemented here —
    the container is sealed, nothing is vendored). *)

(** {1 Writing} *)

type writer

val writer : ?size_hint:int -> unit -> writer
val contents : writer -> string
val length : writer -> int

val write_varint : writer -> int -> unit  (** non-negative *)

val write_string : writer -> string -> unit  (** varint length prefix *)

val write_byte : writer -> int -> unit

val write_raw : writer -> string -> unit  (** no length prefix *)

(** {1 Reading} *)

type reader

exception Corrupt of string

val reader : ?pos:int -> string -> reader
val pos : reader -> int
val at_end : reader -> bool

val read_varint : reader -> int
val read_string : reader -> string
val read_byte : reader -> int

(** {1 Integrity} *)

(** CRC-32 of a substring. *)
val crc32 : ?pos:int -> ?len:int -> string -> int32

(** {1 Framing}

    A frame is [varint length ∥ payload ∥ crc32(payload) as 4 LE bytes].
    Frames survive partial trailing writes: a torn final frame is detected
    and reported as the clean end of the stream. *)

val frame : string -> string
(** The framed bytes of one payload, for callers that buffer writes
    themselves (the VFS-backed log). *)

val write_frame : out_channel -> string -> unit

(** [read_frame buffer ~pos] returns [Some (payload, next_pos)], [None] at
    a clean end (end of buffer or torn final frame), and raises [Corrupt]
    on a checksum mismatch in a non-final position. *)
val read_frame : string -> pos:int -> (string * int) option

(** The primitive under {!read_frame}, for salvage scanners that must
    keep going past damage: [`Bad_crc next] is a well-delimited frame
    whose checksum fails (skippable as a unit), [`Torn] means no frame
    parses at [pos] (rescan byte-by-byte), [`End] is a clean end. *)
val parse_frame :
  string ->
  pos:int ->
  [ `Frame of string * int | `Bad_crc of int | `Torn | `End ]
