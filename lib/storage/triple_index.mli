(** The ordered storage strategy: three B+trees holding each fact in SPO,
    POS and OSP key order, so every bound-position pattern is a prefix or
    point scan. Drop-in alternative to the hash-indexed {!Lsdb.Store} for
    experiment B2/B6 comparisons.

    Like the store, the trees can be hash-partitioned by source entity
    ([shards]): source-bound patterns then scan one shard's SPO tree,
    POS/OSP probes run the same prefix scan per shard (results
    shard-major, each shard's slice still in key order). *)

type t

val create : ?branching:int -> ?shards:int -> unit -> t

(** Number of shards ([1] = the classic unpartitioned trees). *)
val shard_count : t -> int

(** Facts per shard (partition balance). *)
val shard_cardinals : t -> int array

val add : t -> Lsdb.Fact.t -> bool
val remove : t -> Lsdb.Fact.t -> bool
val mem : t -> Lsdb.Fact.t -> bool
val cardinal : t -> int

val iter : (Lsdb.Fact.t -> unit) -> t -> unit

(** Same contract as [Lsdb.Store.match_pattern]. *)
val match_pattern : t -> Lsdb.Store.pattern -> (Lsdb.Fact.t -> unit) -> unit

val match_list : t -> Lsdb.Store.pattern -> Lsdb.Fact.t list

(** Load every base fact of a database; the shard count carries over. *)
val of_database : Lsdb.Database.t -> t
