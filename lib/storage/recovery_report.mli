(** What {!Persistent.open_dir} found and decided while bringing a
    database directory back up. A clean open yields a report with all
    counters zero; after a crash (or worse), the report says exactly
    which bytes were sacrificed and why the log was or wasn't applied. *)

type epoch_decision =
  | Fresh  (** no snapshot and no log header: nothing to reconcile *)
  | Applied  (** log epoch matched the snapshot (or legacy, headerless log) *)
  | Ignored_stale
      (** the log's epoch predates the snapshot: a crash interrupted
          compaction after the snapshot rename but before the log was
          reset — its operations are already folded into the snapshot
          and were NOT replayed (exactly-once) *)
  | Replayed_future
      (** salvage only: the log claims a later epoch than the snapshot
          (lost snapshot rename); its operations were replayed as a
          best effort *)

type t = {
  mode : [ `Strict | `Salvage ];
  snapshot_epoch : int;
  log_epoch : int option;  (** [None]: headerless (legacy) or absent log *)
  epoch_decision : epoch_decision;
  snapshot_unreadable : bool;
      (** salvage only: the snapshot failed to decode and was abandoned;
          recovery started from an empty database *)
  frames_read : int;  (** intact log frames decoded (header excluded) *)
  ops_applied : int;  (** operations actually replayed into the database *)
  frames_skipped : int;  (** corrupt mid-log frames dropped (salvage) *)
  bytes_truncated : int;  (** torn tail bytes discarded *)
  tmp_removed : bool;  (** a leftover [snapshot.lsdb.tmp] was deleted *)
  log_rewritten : bool;
      (** the log file was rewritten from its surviving operations to
          clear torn/corrupt regions or a stale epoch *)
}

val clean : mode:[ `Strict | `Salvage ] -> snapshot_epoch:int -> t
(** All-zero report for the given mode/epoch. *)

val is_clean : t -> bool
(** True when recovery had nothing to repair: no skipped frames, no
    truncated bytes, no stale log, no abandoned snapshot. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
