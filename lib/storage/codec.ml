type writer = Buffer.t

let writer ?(size_hint = 256) () = Buffer.create size_hint
let contents = Buffer.contents
let length = Buffer.length

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_byte buf b = Buffer.add_char buf (Char.chr (b land 0xff))
let write_raw buf s = Buffer.add_string buf s

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let reader ?(pos = 0) data = { data; pos }
let pos r = r.pos
let at_end r = r.pos >= String.length r.data

let read_byte r =
  if r.pos >= String.length r.data then raise (Corrupt "unexpected end of input");
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_varint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_string r =
  let len = read_varint r in
  if len < 0 || r.pos + len > String.length r.data then
    raise (Corrupt "string length out of bounds");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

(* CRC-32 (IEEE), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code data.[i]))) 0xffl) in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let le32_of_int32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (Int32.to_int (Int32.logand v 0xffl)));
  Bytes.set b 1 (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xffl)));
  Bytes.set b 2 (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xffl)));
  Bytes.set b 3 (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xffl)));
  Bytes.to_string b

let int32_of_le32 s pos =
  let byte i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let frame payload =
  let w = writer ~size_hint:(String.length payload + 8) () in
  write_varint w (String.length payload);
  write_raw w payload;
  write_raw w (le32_of_int32 (crc32 payload));
  contents w

let write_frame oc payload = output_string oc (frame payload)

let parse_frame data ~pos =
  if pos >= String.length data then `End
  else
    let r = reader ~pos data in
    match read_varint r with
    | exception Corrupt _ -> `Torn (* unparseable length prefix *)
    | len ->
        let body_start = r.pos in
        if len < 0 || body_start + len + 4 > String.length data then `Torn
        else
          let payload = String.sub data body_start len in
          let stored = int32_of_le32 data (body_start + len) in
          if Int32.equal stored (crc32 payload) then
            `Frame (payload, body_start + len + 4)
          else `Bad_crc (body_start + len + 4)

let read_frame data ~pos =
  match parse_frame data ~pos with
  | `End | `Torn -> None
  | `Frame (payload, next) -> Some (payload, next)
  | `Bad_crc next ->
      if next = String.length data then None (* corrupt final frame: torn *)
      else raise (Corrupt "frame checksum mismatch")
