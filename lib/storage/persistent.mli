(** A durable loosely structured database: a directory holding a binary
    snapshot plus an append-only operation log. Opening replays
    [snapshot ∥ log]; {!compact} folds the log into a fresh snapshot.
    All mutators mirror {!Lsdb.Database} and log before returning.

    Crash safety: {!sync} really fsyncs (an op acked before a successful
    [sync] survives any crash), {!compact} is atomic at every step
    (snapshot written aside, verified, renamed into place, directory
    fsynced, log reset under a bumped epoch — an interrupted compaction
    reopens to exactly-once application), and {!open_dir} can salvage a
    torn or corrupt store instead of failing. All I/O flows through a
    {!Vfs.t}, so every one of those claims is tested by fault
    injection (see [test/test_crash.ml] and the crash-torture driver). *)

type t

(** [Always]: every logged mutation is flushed and fsynced before the
    mutator returns — maximal durability, one fsync per op.
    [On_demand] (default): records are buffered until {!sync},
    {!compact} or {!close} — the throughput choice; a crash may lose
    operations acked since the last sync, but never synced ones. *)
type sync_mode = Always | On_demand

(** [open_dir dir] — create the directory if needed, load the snapshot
    if present, reconcile epochs, replay the log.

    [recovery] (default [`Strict]): [`Strict] raises [Failure] with a
    descriptive message (naming the path, what is corrupt, and the
    salvage escape hatch) on any mid-file damage; [`Salvage] keeps every
    record that still parses — truncating a torn tail, skipping corrupt
    frames, abandoning an undecodable snapshot — and repairs the files
    so the next open is clean. Either way {!recovery_report} says what
    happened. A torn {e tail} on the log (the normal shape of a crash)
    is tolerated even by [`Strict].

    [retry] (default: off) makes the operation log retry transient
    storage faults with bounded exponential backoff; see {!Log.open_}.
    The policy survives {!compact} (the reopened log inherits it). *)
val open_dir :
  ?vfs:Vfs.t ->
  ?recovery:[ `Strict | `Salvage ] ->
  ?sync_mode:sync_mode ->
  ?retry:Lsdb_exec.Governor.Retry.policy ->
  string ->
  t

(** The in-memory database (query/browse freely; do not mutate directly —
    unlogged mutations are lost at the next open). *)
val database : t -> Lsdb.Database.t

(** What {!open_dir} found and repaired. *)
val recovery_report : t -> Recovery_report.t

val sync_mode : t -> sync_mode

(** Compaction epoch of the current snapshot (0 until first compact). *)
val epoch : t -> int

(** {1 Logged mutations} *)

(** Append [op] to the log {e without} applying it to {!database} — for
    callers (e.g. the shell) that have already mutated {!database}
    directly and only need the mutation made durable. *)
val journal : t -> Log.op -> unit

val insert : t -> Lsdb.Fact.t -> bool
val insert_names : t -> string -> string -> string -> bool
val remove : t -> Lsdb.Fact.t -> bool
val declare_class_relationship : t -> Lsdb.Entity.t -> unit
val declare_individual_relationship : t -> Lsdb.Entity.t -> unit
val set_limit : t -> int -> unit
val exclude : t -> string -> bool
val include_rule : t -> string -> bool

(** {1 Durability} *)

(** Flush and fsync the log: on return, every acked op is durable. *)
val sync : t -> unit

(** Fold the log into a fresh snapshot under a bumped epoch; atomic
    against crashes at any point (see the protocol comment in the
    implementation). On failure after the snapshot has advanced, the
    store refuses further mutations until reopened. *)
val compact : t -> unit

val close : t -> unit

(** Number of log records since the last compaction. *)
val log_length : t -> int

val snapshot_path : t -> string
val log_path : t -> string
