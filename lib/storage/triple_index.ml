open Lsdb
module Shard = Lsdb_datalog.Shard

(* One shard: three B+trees over the facts the shard owns. *)
type sub = { spo : Bptree.t; pos : Bptree.t; osp : Bptree.t }

type t = { plan : Shard.plan; subs : sub array }

let create ?branching ?(shards = 1) () =
  let plan = Shard.plan shards in
  let make_sub () =
    {
      spo = Bptree.create ?branching ();
      pos = Bptree.create ?branching ();
      osp = Bptree.create ?branching ();
    }
  in
  { plan; subs = Array.init (Shard.shards plan) (fun _ -> make_sub ()) }

let shard_count t = Array.length t.subs
let sub_of t s = t.subs.(Shard.of_entity t.plan s)

let keys (fact : Fact.t) =
  ((fact.s, fact.r, fact.t), (fact.r, fact.t, fact.s), (fact.t, fact.s, fact.r))

let add t fact =
  let sub = sub_of t fact.Fact.s in
  let spo, pos, osp = keys fact in
  let added = Bptree.insert sub.spo spo in
  if added then begin
    ignore (Bptree.insert sub.pos pos);
    ignore (Bptree.insert sub.osp osp)
  end;
  added

let remove t fact =
  let sub = sub_of t fact.Fact.s in
  let spo, pos, osp = keys fact in
  let removed = Bptree.delete sub.spo spo in
  if removed then begin
    ignore (Bptree.delete sub.pos pos);
    ignore (Bptree.delete sub.osp osp)
  end;
  removed

let mem t fact =
  let spo, _, _ = keys fact in
  Bptree.mem (sub_of t fact.Fact.s).spo spo

let cardinal t =
  Array.fold_left (fun n sub -> n + Bptree.cardinal sub.spo) 0 t.subs

let shard_cardinals t = Array.map (fun sub -> Bptree.cardinal sub.spo) t.subs

let iter f t =
  Array.iter
    (fun sub -> Bptree.iter (fun (s, r, tgt) -> f (Fact.make s r tgt)) sub.spo)
    t.subs

(* Source-bound patterns are prefix scans of one shard's SPO tree; the
   POS/OSP orders fan out across shards (each scan stays a prefix scan,
   results come shard-major). *)
let match_pattern t (pat : Store.pattern) f =
  match (pat.s, pat.r, pat.t) with
  | Some s, Some r, Some tgt ->
      let fact = Fact.make s r tgt in
      if mem t fact then f fact
  | Some s, Some r, None ->
      Bptree.iter_prefix2 (sub_of t s).spo s r (fun (s, r, tgt) ->
          f (Fact.make s r tgt))
  | Some s, None, None ->
      Bptree.iter_prefix1 (sub_of t s).spo s (fun (s, r, tgt) ->
          f (Fact.make s r tgt))
  | None, Some r, Some tgt ->
      Array.iter
        (fun sub ->
          Bptree.iter_prefix2 sub.pos r tgt (fun (r, tgt, s) ->
              f (Fact.make s r tgt)))
        t.subs
  | None, Some r, None ->
      Array.iter
        (fun sub ->
          Bptree.iter_prefix1 sub.pos r (fun (r, tgt, s) ->
              f (Fact.make s r tgt)))
        t.subs
  | Some s, None, Some tgt ->
      Bptree.iter_prefix2 (sub_of t s).osp tgt s (fun (tgt, s, r) ->
          f (Fact.make s r tgt))
  | None, None, Some tgt ->
      Array.iter
        (fun sub ->
          Bptree.iter_prefix1 sub.osp tgt (fun (tgt, s, r) ->
              f (Fact.make s r tgt)))
        t.subs
  | None, None, None -> iter f t

let match_list t pat =
  let acc = ref [] in
  match_pattern t pat (fun fact -> acc := fact :: !acc);
  !acc

let of_database db =
  let t = create ~shards:(Database.shards db) () in
  Store.iter (fun fact -> ignore (add t fact)) (Database.store db);
  t
