module Shard = Lsdb_datalog.Shard

type t = { paths : string array; heaps : Fact_heap.t array; nshards : int }

let shard_path base i = Printf.sprintf "%s.shard%d" base i

let open_ ?(shards = 1) path =
  let nshards = max 1 shards in
  let paths =
    if nshards = 1 then [| path |]
    else Array.init nshards (shard_path path)
  in
  { paths; heaps = Array.map Fact_heap.open_ paths; nshards }

let shard_count t = t.nshards

let heap_of t (s, _, _) =
  t.heaps.(Shard.of_name ~shards:t.nshards s)

let insert t fact = Fact_heap.insert (heap_of t fact) fact
let delete t fact = Fact_heap.delete (heap_of t fact) fact
let mem t fact = Fact_heap.mem (heap_of t fact) fact

let cardinal t =
  Array.fold_left (fun n heap -> n + Fact_heap.cardinal heap) 0 t.heaps

let shard_cardinals t = Array.map Fact_heap.cardinal t.heaps
let iter f t = Array.iter (Fact_heap.iter f) t.heaps
let sync t = Array.iter Fact_heap.sync t.heaps
let close t = Array.iter Fact_heap.close t.heaps
let pages t = Array.fold_left (fun n heap -> n + Fact_heap.pages heap) 0 t.heaps

let to_database t =
  let db = Lsdb.Database.create ~shards:t.nshards () in
  iter (fun (s, r, tgt) -> ignore (Lsdb.Database.insert_names db s r tgt)) t;
  db

let add_database t db =
  let added = ref 0 in
  let symtab = Lsdb.Database.symtab db in
  Lsdb.Store.iter
    (fun fact -> if insert t (Lsdb.Fact.names symtab fact) then incr added)
    (Lsdb.Database.store db);
  !added
