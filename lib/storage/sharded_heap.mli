(** A disk-resident fact heap hash-partitioned by source {e name} across
    N {!Fact_heap} page files ([base.shard0] … [base.shardN-1]): the
    on-disk counterpart of the in-memory store's sharding. Names are
    routed with {!Lsdb_datalog.Shard.of_name} — stable across processes
    and restarts, unlike entity ids, which depend on interning order.

    Every operation has the same contract as {!Fact_heap}'s; insertion,
    deletion and membership touch exactly one shard file. With a single
    shard the layout {e is} a plain [Fact_heap] at [base] (no suffix), so
    existing heaps open unchanged.

    The shard count is a property of the files: reopening must pass the
    same [shards] the heap was written with (facts routed to a shard file
    that is not opened are simply invisible — the same failure mode as
    opening the wrong path). *)

type t

(** Open or create the [shards] paged files rooted at [path]. *)
val open_ : ?shards:int -> string -> t

val shard_count : t -> int

(** Facts per shard file (partition balance on disk). *)
val shard_cardinals : t -> int array

(** [insert t (s, r, tgt)] — [true] iff the fact was not present. *)
val insert : t -> string * string * string -> bool

val delete : t -> string * string * string -> bool
val mem : t -> string * string * string -> bool
val cardinal : t -> int
val iter : (string * string * string -> unit) -> t -> unit

(** Flush every shard's pages to disk. *)
val sync : t -> unit

val close : t -> unit

(** Load every fact into a fresh database with a matching in-memory
    shard count. *)
val to_database : t -> Lsdb.Database.t

(** Append every base fact of a database (names preserved); returns how
    many were new. *)
val add_database : t -> Lsdb.Database.t -> int

(** Pages used across all shard files. *)
val pages : t -> int
