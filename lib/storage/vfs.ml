exception Fault of string
exception Crashed of string

type fault =
  | Crash
  | Torn_write of int
  | Short_write of int
  | Fsync_raises
  | Fsync_lies
  | No_space
  | Bit_flip of int

(* ------------------------------------------------------------------ *)
(* Faulty backend: an in-memory filesystem with a two-level durability
   model. Each inode carries a live image (what reads see while the
   process runs) and a durable image (what survives a crash, updated by
   fsync). The namespace is likewise two-level: [live] is the running
   view, [durable_ns] the set of name→inode bindings a crash preserves.
   A file's creation becomes durable with its first content fsync
   (ext4-practical); renames and removals only become durable at
   [fsync_dir]. Directories are durable from creation — the interesting
   crash windows are about file contents and renames, not mkdir. *)

type inode = {
  mutable data : Bytes.t;  (* live image; capacity >= len *)
  mutable len : int;
  mutable durable : string option;  (* None: content never synced *)
}

type node = Fdir | Ffile of inode

type fstate = {
  live : (string, node) Hashtbl.t;
  durable_ns : (string, inode) Hashtbl.t;
  durable_dirs : (string, unit) Hashtbl.t;
  armed : (string, int ref * fault) Hashtbl.t;
  hits : (string, int) Hashtbl.t;
  mutable crashed : bool;
}

type t = Real | Faulty of fstate

type file =
  | Rfile of { fd : Unix.file_descr; mutable closed : bool }
  | Mfile of { st : fstate; ino : inode; path : string; mutable cursor : int }

let real = Real

let faulty () =
  Faulty
    {
      live = Hashtbl.create 16;
      durable_ns = Hashtbl.create 16;
      durable_dirs = Hashtbl.create 4;
      armed = Hashtbl.create 4;
      hits = Hashtbl.create 16;
      crashed = false;
    }

let is_faulty = function Real -> false | Faulty _ -> true

(* ------------------------------------------------------------------ *)
(* Failpoints                                                          *)

let check_alive st =
  if st.crashed then raise (Crashed "simulated crash (pending reboot)")

let crash_now st site =
  st.crashed <- true;
  raise (Crashed (Printf.sprintf "simulated crash at %s" site))

(* Record a hit at [site] and return the fault to apply, if one fires. *)
let fire st site =
  match site with
  | None -> None
  | Some site -> (
      Hashtbl.replace st.hits site
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.hits site));
      match Hashtbl.find_opt st.armed site with
      | None -> None
      | Some (countdown, fault) ->
          if !countdown > 0 then begin
            decr countdown;
            None
          end
          else begin
            Hashtbl.remove st.armed site;
            Some (site, fault)
          end)

let arm t ~site ?(after = 0) fault =
  match t with
  | Real -> invalid_arg "Vfs.arm: cannot arm faults on the real backend"
  | Faulty st -> Hashtbl.replace st.armed site (ref after, fault)

let disarm_all = function Real -> () | Faulty st -> Hashtbl.reset st.armed

let site_hits = function
  | Real -> []
  | Faulty st ->
      List.sort compare (Hashtbl.fold (fun s n acc -> (s, n) :: acc) st.hits [])

(* ------------------------------------------------------------------ *)
(* Faulty inode helpers                                                *)

let live_contents ino = Bytes.sub_string ino.data 0 ino.len

let ensure_capacity ino n =
  if Bytes.length ino.data < n then begin
    let data = Bytes.make (max n ((2 * Bytes.length ino.data) + 64)) '\x00' in
    Bytes.blit ino.data 0 data 0 ino.len;
    ino.data <- data
  end

let live_blit ino ~off s ~slen =
  ensure_capacity ino (off + slen);
  if off > ino.len then Bytes.fill ino.data ino.len (off - ino.len) '\x00';
  Bytes.blit_string s 0 ino.data off slen;
  ino.len <- max ino.len (off + slen)

let find_inode st path =
  match Hashtbl.find_opt st.live path with
  | Some (Ffile ino) -> Some ino
  | Some Fdir -> invalid_arg (Printf.sprintf "Vfs: %s is a directory" path)
  | None -> None

let create_inode st path =
  match find_inode st path with
  | Some ino -> ino
  | None ->
      let ino = { data = Bytes.create 256; len = 0; durable = None } in
      Hashtbl.replace st.live path (Ffile ino);
      ino

(* A file's name binding becomes durable with its first content fsync,
   but an existing binding — possibly under the old name of a rename —
   is only moved by [fsync_dir]. *)
let bind_if_unbound st path ino =
  let bound = Hashtbl.fold (fun _ i acc -> acc || i == ino) st.durable_ns false in
  if not bound then Hashtbl.replace st.durable_ns path ino

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (i mod 8))));
  Bytes.to_string b

let flip_in_write s k =
  if String.length s = 0 then s else flip_byte s (k mod String.length s)

(* ------------------------------------------------------------------ *)
(* Namespace operations                                                *)

let file_exists t path =
  match t with
  | Real -> Sys.file_exists path
  | Faulty st ->
      check_alive st;
      Hashtbl.mem st.live path

let is_directory t path =
  match t with
  | Real -> Sys.file_exists path && Sys.is_directory path
  | Faulty st ->
      check_alive st;
      Hashtbl.find_opt st.live path = Some Fdir

let mkdir t path =
  match t with
  | Real -> Sys.mkdir path 0o755
  | Faulty st ->
      check_alive st;
      Hashtbl.replace st.live path Fdir;
      Hashtbl.replace st.durable_dirs path ()

let remove t path =
  match t with
  | Real -> Sys.remove path
  | Faulty st ->
      check_alive st;
      Hashtbl.remove st.live path

let rename ?site t src dst =
  match t with
  | Real -> Sys.rename src dst
  | Faulty st -> (
      check_alive st;
      match fire st site with
      | Some (s, _) -> crash_now st s (* any fault at a rename site = die there *)
      | None -> (
          match Hashtbl.find_opt st.live src with
          | None -> raise (Fault (Printf.sprintf "rename: %s does not exist" src))
          | Some node ->
              Hashtbl.remove st.live src;
              Hashtbl.replace st.live dst node))

let under_dir dir path = String.equal (Filename.dirname path) dir

let fsync_dir ?site t dir =
  match t with
  | Real -> (
      (* Some filesystems refuse fsync on directories; best effort. *)
      try
        let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
        Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
      with Unix.Unix_error _ -> ())
  | Faulty st -> (
      check_alive st;
      match fire st site with
      | Some (s, (Crash | Torn_write _ | Short_write _ | Bit_flip _)) ->
          crash_now st s
      | Some (_, Fsync_lies) -> ()
      | Some (s, (Fsync_raises | No_space)) ->
          raise (Fault (Printf.sprintf "fsync_dir failed at %s" s))
      | None ->
          (* Persist the directory's current name set: creations,
             removals and renames under [dir] all become durable. *)
          let stale =
            Hashtbl.fold
              (fun p _ acc -> if under_dir dir p then p :: acc else acc)
              st.durable_ns []
          in
          List.iter (Hashtbl.remove st.durable_ns) stale;
          Hashtbl.iter
            (fun p node ->
              match node with
              | Ffile ino when under_dir dir p ->
                  Hashtbl.replace st.durable_ns p ino
              | _ -> ())
            st.live)

let read_file t path =
  match t with
  | Real ->
      if (not (Sys.file_exists path)) || Sys.is_directory path then None
      else begin
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      end
  | Faulty st -> (
      check_alive st;
      match find_inode st path with
      | None -> None
      | Some ino -> Some (live_contents ino))

(* ------------------------------------------------------------------ *)
(* File handles                                                        *)

let open_real flags path =
  Rfile { fd = Unix.openfile path flags 0o644; closed = false }

let open_append t path =
  match t with
  | Real -> open_real [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] path
  | Faulty st ->
      check_alive st;
      let ino = create_inode st path in
      Mfile { st; ino; path; cursor = ino.len }

let open_trunc t path =
  match t with
  | Real -> open_real [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] path
  | Faulty st ->
      check_alive st;
      let ino = create_inode st path in
      ino.len <- 0;
      Mfile { st; ino; path; cursor = 0 }

let open_rw t path =
  match t with
  | Real -> open_real [ Unix.O_RDWR; Unix.O_CREAT ] path
  | Faulty st ->
      check_alive st;
      let ino = create_inode st path in
      Mfile { st; ino; path; cursor = 0 }

let real_write_all fd s off len =
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write_substring fd s off remaining in
      go (off + n) (remaining - n)
    end
  in
  go off len

(* Apply a write (with possible fault) of [s] landing at [off]; returns
   how many bytes the caller should consider written. *)
let faulty_write st ino path ~site ~off s =
  check_alive st;
  let slen = String.length s in
  match fire st site with
  | None ->
      live_blit ino ~off s ~slen;
      slen
  | Some (name, Crash) -> crash_now st name
  | Some (name, Torn_write n) ->
      (* The fragment hits the platter as the process dies: the durable
         image becomes everything written so far plus the first [n]
         bytes of this write — background writeback is assumed to have
         flushed earlier live bytes, the deterministic worst case for a
         torn tail. *)
      let n = min n slen in
      live_blit ino ~off (String.sub s 0 n) ~slen:n;
      ino.durable <- Some (live_contents ino);
      bind_if_unbound st path ino;
      crash_now st name
  | Some (_, Short_write n) ->
      let n = min n slen in
      live_blit ino ~off (String.sub s 0 n) ~slen:n;
      n
  | Some (name, (No_space | Fsync_raises)) ->
      raise (Fault (Printf.sprintf "write failed at %s: no space" name))
  | Some (_, Fsync_lies) ->
      live_blit ino ~off s ~slen;
      slen
  | Some (_, Bit_flip k) ->
      live_blit ino ~off (flip_in_write s k) ~slen;
      slen

let write ?site file data =
  match file with
  | Rfile r -> real_write_all r.fd data 0 (String.length data)
  | Mfile m ->
      let n = faulty_write m.st m.ino m.path ~site ~off:m.cursor data in
      m.cursor <- m.cursor + n

let pwrite ?site file ~off data =
  match file with
  | Rfile r ->
      ignore (Unix.lseek r.fd off Unix.SEEK_SET);
      real_write_all r.fd (Bytes.to_string data) 0 (Bytes.length data)
  | Mfile m ->
      ignore (faulty_write m.st m.ino m.path ~site ~off (Bytes.to_string data))

let pread file ~off buf =
  match file with
  | Rfile r ->
      ignore (Unix.lseek r.fd off Unix.SEEK_SET);
      let rec go pos =
        if pos >= Bytes.length buf then pos
        else
          let n = Unix.read r.fd buf pos (Bytes.length buf - pos) in
          if n = 0 then pos else go (pos + n)
      in
      go 0
  | Mfile { st; ino; _ } ->
      check_alive st;
      let n = max 0 (min (Bytes.length buf) (ino.len - off)) in
      if n > 0 then Bytes.blit ino.data off buf 0 n;
      n

let size = function
  | Rfile r -> (Unix.fstat r.fd).Unix.st_size
  | Mfile { st; ino; _ } ->
      check_alive st;
      ino.len

let fsync ?site file =
  match file with
  | Rfile r -> Unix.fsync r.fd
  | Mfile { st; ino; path; _ } -> (
      check_alive st;
      match fire st site with
      | None ->
          ino.durable <- Some (live_contents ino);
          bind_if_unbound st path ino
      | Some (_, Fsync_lies) -> ()
      | Some (name, (Fsync_raises | No_space)) ->
          raise (Fault (Printf.sprintf "fsync failed at %s" name))
      | Some (name, (Crash | Torn_write _ | Short_write _ | Bit_flip _)) ->
          crash_now st name)

let close = function
  | Rfile r ->
      if not r.closed then begin
        r.closed <- true;
        try Unix.close r.fd with Unix.Unix_error _ -> ()
      end
  | Mfile _ -> ()

(* ------------------------------------------------------------------ *)
(* Crash simulation                                                    *)

let simulate_crash = function
  | Real -> invalid_arg "Vfs.simulate_crash: real backend"
  | Faulty st ->
      Hashtbl.reset st.live;
      Hashtbl.iter (fun d () -> Hashtbl.replace st.live d Fdir) st.durable_dirs;
      Hashtbl.iter
        (fun path ino ->
          let contents = Option.value ~default:"" ino.durable in
          ino.data <- Bytes.of_string contents;
          ino.len <- String.length contents;
          Hashtbl.replace st.live path (Ffile ino))
        st.durable_ns;
      Hashtbl.reset st.armed;
      st.crashed <- false

let corrupt_durable t path ~byte =
  match t with
  | Real ->
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let buf = Bytes.create 1 in
          ignore (Unix.lseek fd byte Unix.SEEK_SET);
          if Unix.read fd buf 0 1 = 1 then begin
            Bytes.set buf 0
              (Char.chr (Char.code (Bytes.get buf 0) lxor (1 lsl (byte mod 8))));
            ignore (Unix.lseek fd byte Unix.SEEK_SET);
            ignore (Unix.write fd buf 0 1)
          end)
  | Faulty st -> (
      match find_inode st path with
      | None -> invalid_arg (Printf.sprintf "Vfs.corrupt_durable: %s missing" path)
      | Some ino ->
          if byte < ino.len then
            Bytes.set ino.data byte
              (Char.chr (Char.code (Bytes.get ino.data byte) lxor (1 lsl (byte mod 8))));
          ino.durable <-
            Option.map
              (fun d -> if byte < String.length d then flip_byte d byte else d)
              ino.durable)
