(** Binary snapshots: a compact full dump of a database's base state
    (name dictionary, fact triples over dictionary ids, relationship
    declarations, composition limit, disabled rules). Loading a snapshot
    is O(data) with no log replay — the fast-restart half of experiment
    B6. User-defined rules are not captured (they live in code or in
    {!Lsdb.Fact_file} form); builtin rule enablement is. *)

val magic : string

(** Serialize the base state. The [epoch] (default 0) is stamped in the
    header; compaction bumps it so reopen can tell a stale log from a
    current one (see {!Persistent.compact}). *)
val encode : ?epoch:int -> Lsdb.Database.t -> string

exception Corrupt of string

(** Rebuild a fresh database from a snapshot. *)
val decode : string -> Lsdb.Database.t

(** Like {!decode}, also returning the header epoch. *)
val decode_full : string -> int * Lsdb.Database.t

(** Durable write (write + fsync), via the given {!Vfs.t} — but not
    atomic: callers replacing a live snapshot must write a sibling file
    and rename it into place. *)
val save : ?vfs:Vfs.t -> ?epoch:int -> Lsdb.Database.t -> string -> unit

val load : ?vfs:Vfs.t -> string -> Lsdb.Database.t
