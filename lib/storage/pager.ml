let page_size = 4096

module Int_tbl = Hashtbl.Make (Int)

type entry = { data : bytes; mutable last_use : int }

type t = {
  file : Vfs.file;
  cache : entry Int_tbl.t;
  dirty : unit Int_tbl.t;
  mutable pages : int;
  mutable clock : int;
  capacity : int;  (* max cached pages *)
}

let open_ ?(vfs = Vfs.real) ?(cache_capacity = 1024) path =
  let file = Vfs.open_rw vfs path in
  let len = Vfs.size file in
  if len mod page_size <> 0 then begin
    Vfs.close file;
    invalid_arg (Printf.sprintf "Pager.open_: %s is not page-aligned" path)
  end;
  if cache_capacity < 8 then invalid_arg "Pager.open_: cache_capacity must be >= 8";
  {
    file;
    cache = Int_tbl.create 64;
    dirty = Int_tbl.create 16;
    pages = len / page_size;
    clock = 0;
    capacity = cache_capacity;
  }

let page_count t = t.pages

let check_page t page =
  if page < 0 || page >= t.pages then
    invalid_arg (Printf.sprintf "Pager: page %d out of range (%d pages)" page t.pages)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let write_out t page data =
  Vfs.pwrite ~site:"pager.write" t.file ~off:(page * page_size) data

let flush_dirty t =
  Int_tbl.iter
    (fun page () ->
      match Int_tbl.find_opt t.cache page with
      | None -> ()
      | Some entry -> write_out t page entry.data)
    t.dirty;
  Int_tbl.reset t.dirty

(* Batch eviction: when the cache overflows, flush everything dirty and
   drop the least-recently-used half. Writers never lose data — eviction
   only removes clean entries. *)
let maybe_evict t =
  if Int_tbl.length t.cache > t.capacity then begin
    flush_dirty t;
    let entries =
      Int_tbl.fold (fun page entry acc -> (entry.last_use, page) :: acc) t.cache []
    in
    let sorted = List.sort compare entries in
    let to_drop = List.length sorted / 2 in
    List.iteri
      (fun i (_, page) -> if i < to_drop then Int_tbl.remove t.cache page)
      sorted
  end

let cache_put t page data =
  Int_tbl.replace t.cache page { data; last_use = tick t };
  maybe_evict t

let alloc t =
  let page = t.pages in
  t.pages <- t.pages + 1;
  cache_put t page (Bytes.make page_size '\x00');
  Int_tbl.replace t.dirty page ();
  page

let read t page =
  check_page t page;
  match Int_tbl.find_opt t.cache page with
  | Some entry ->
      entry.last_use <- tick t;
      Bytes.copy entry.data
  | None ->
      let data = Bytes.create page_size in
      let n = Vfs.pread t.file ~off:(page * page_size) data in
      (* Allocated but never flushed: reads as zeros. *)
      if n < page_size then Bytes.fill data n (page_size - n) '\x00';
      cache_put t page data;
      Bytes.copy data

let write t page data =
  check_page t page;
  if Bytes.length data <> page_size then
    invalid_arg "Pager.write: page must be exactly page_size bytes";
  Int_tbl.replace t.cache page { data = Bytes.copy data; last_use = tick t };
  Int_tbl.replace t.dirty page ();
  maybe_evict t

let sync t =
  flush_dirty t;
  Vfs.fsync ~site:"pager.fsync" t.file

let close t =
  sync t;
  Vfs.close t.file

let dirty_count t = Int_tbl.length t.dirty
let cached_count t = Int_tbl.length t.cache
