(** A paged file: fixed-size pages addressed by id, with a bounded
    write-back cache (LRU batch eviction; dirty pages are flushed before
    being dropped). The substrate under {!Heap_file}. All I/O goes
    through a {!Vfs.t} (sites ["pager.write"], ["pager.fsync"]), and
    {!sync} really fsyncs. *)

type t

val page_size : int  (** 4096 bytes *)

(** Open or create. [cache_capacity] is the maximal number of cached
    pages (default 1024 ≈ 4 MiB; minimum 8). *)
val open_ : ?vfs:Vfs.t -> ?cache_capacity:int -> string -> t

val page_count : t -> int

(** Allocate a zeroed page at the end; returns its id. *)
val alloc : t -> int

(** A copy of the page's bytes. *)
val read : t -> int -> bytes

(** Replace a page (must be exactly [page_size] bytes). *)
val write : t -> int -> bytes -> unit

(** Flush dirty pages and the OS buffers. *)
val sync : t -> unit

val close : t -> unit

(** Pages currently dirty (for tests). *)
val dirty_count : t -> int

(** Pages currently cached (for tests). *)
val cached_count : t -> int
