(** The append-only operation log: every database mutation as one framed,
    checksummed record. Replaying a log onto a fresh database rebuilds the
    state; names (not ids) are logged so logs survive re-interning.

    A log may begin with a {e header frame} stamping the epoch of the
    snapshot it extends (see {!Persistent.compact}); headerless logs are
    legacy and always replayed. All file I/O goes through a {!Vfs.t}
    (instrumented sites ["log.write"], ["log.fsync"], ["logtrunc.*"]),
    and {!sync} is a real [fsync], not a buffer flush. *)

type op =
  | Insert of string * string * string
  | Remove of string * string * string
  | Declare_class of string
  | Declare_individual of string
  | Set_limit of int
  | Exclude_rule of string
  | Include_rule of string

val op_equal : op -> op -> bool
val pp_op : Format.formatter -> op -> unit

(** [encode op] / [decode payload] — one record. *)
val encode : op -> string

val decode : string -> op  (** raises {!Codec.Corrupt} *)

(** A decoded frame payload: an operation, or the epoch header. *)
type record = Header of int | Op of op

val decode_record : string -> record  (** raises {!Codec.Corrupt} *)

val encode_header : int -> string

(** {1 Appending} *)

type t

(** Open (creating if missing) for appending. If [epoch] is given and
    the file is empty, an epoch header frame is written first.

    [retry] (default: off) retries transient faults ({!Vfs.Fault}) on
    the write/fsync paths with bounded exponential backoff
    ({!Lsdb_exec.Governor.Retry}); the append buffer is cleared only
    after a successful write, so a retried flush resends the identical
    bytes and no frame is duplicated or dropped. {!Vfs.Crashed} always
    propagates immediately. Retries and give-ups are counted in
    [lsdb_storage_retries_total] / [lsdb_storage_retry_giveups_total]. *)
val open_ :
  ?vfs:Vfs.t -> ?retry:Lsdb_exec.Governor.Retry.policy -> ?epoch:int -> string -> t

val append : t -> op -> unit

(** Flush buffered records and [fsync] the file: when this returns
    without raising, every appended record is durable. *)
val sync : t -> unit

val close : t -> unit

(** {1 Reading} *)

type read_result = {
  header_epoch : int option;  (** [None]: headerless legacy log *)
  ops : op list;
  frames_read : int;  (** intact operation frames *)
  frames_skipped : int;  (** corrupt frames dropped (salvage only) *)
  bytes_truncated : int;  (** torn tail discarded *)
}

(** Read a log file ([{empty} …] if absent). [`Strict] raises
    {!Codec.Corrupt} on any mid-file damage (a torn {e tail} is always
    tolerated — that is the normal shape of a crash); [`Salvage] keeps
    every record that still parses, counting what it dropped. *)
val read_log : ?vfs:Vfs.t -> mode:[ `Strict | `Salvage ] -> string -> read_result

(** Strict read of every intact record ([[]] if absent); tolerates a
    torn final record. *)
val read_all : ?vfs:Vfs.t -> string -> op list

(** Apply an operation to a database. *)
val apply : Lsdb.Database.t -> op -> unit

(** [replay path db] applies all records; returns how many. *)
val replay : ?vfs:Vfs.t -> string -> Lsdb.Database.t -> int

(** Atomically replace [path] with a clean log holding exactly
    [header epoch ∥ ops]: sibling [.tmp], fsync, rename, directory
    fsync. Crash-safe at every step. *)
val write_fresh : ?vfs:Vfs.t -> epoch:int -> ops:op list -> string -> unit

(** Derive the op that records a mutation, for callers wrapping
    {!Lsdb.Database}. *)
val op_of_insert : Lsdb.Database.t -> Lsdb.Fact.t -> op

val op_of_remove : Lsdb.Database.t -> Lsdb.Fact.t -> op
