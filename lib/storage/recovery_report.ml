type epoch_decision = Fresh | Applied | Ignored_stale | Replayed_future

type t = {
  mode : [ `Strict | `Salvage ];
  snapshot_epoch : int;
  log_epoch : int option;
  epoch_decision : epoch_decision;
  snapshot_unreadable : bool;
  frames_read : int;
  ops_applied : int;
  frames_skipped : int;
  bytes_truncated : int;
  tmp_removed : bool;
  log_rewritten : bool;
}

let clean ~mode ~snapshot_epoch =
  {
    mode;
    snapshot_epoch;
    log_epoch = None;
    epoch_decision = Fresh;
    snapshot_unreadable = false;
    frames_read = 0;
    ops_applied = 0;
    frames_skipped = 0;
    bytes_truncated = 0;
    tmp_removed = false;
    log_rewritten = false;
  }

let is_clean t =
  (not t.snapshot_unreadable)
  && t.frames_skipped = 0 && t.bytes_truncated = 0 && (not t.tmp_removed)
  && match t.epoch_decision with
     | Fresh | Applied -> true
     | Ignored_stale | Replayed_future -> false

let decision_string = function
  | Fresh -> "fresh (nothing to reconcile)"
  | Applied -> "applied (log epoch matches snapshot)"
  | Ignored_stale -> "ignored stale log (already folded into snapshot)"
  | Replayed_future -> "replayed future-epoch log (best effort)"

let pp ppf t =
  let mode = match t.mode with `Strict -> "strict" | `Salvage -> "salvage" in
  Format.fprintf ppf "@[<v>recovery (%s): %s@," mode
    (if is_clean t then "clean" else "repaired");
  Format.fprintf ppf "  snapshot epoch %d%s, log epoch %s@," t.snapshot_epoch
    (if t.snapshot_unreadable then " (snapshot unreadable, abandoned)" else "")
    (match t.log_epoch with Some e -> string_of_int e | None -> "none");
  Format.fprintf ppf "  epoch decision: %s@," (decision_string t.epoch_decision);
  Format.fprintf ppf "  frames: %d read, %d skipped; %d op(s) applied@,"
    t.frames_read t.frames_skipped t.ops_applied;
  Format.fprintf ppf "  torn tail: %d byte(s) truncated%s%s@]" t.bytes_truncated
    (if t.tmp_removed then "; leftover snapshot.tmp removed" else "")
    (if t.log_rewritten then "; log rewritten clean" else "")

let to_string t = Format.asprintf "%a" pp t
