type op =
  | Insert of string * string * string
  | Remove of string * string * string
  | Declare_class of string
  | Declare_individual of string
  | Set_limit of int
  | Exclude_rule of string
  | Include_rule of string

let op_equal (a : op) (b : op) = a = b

let pp_op ppf = function
  | Insert (s, r, t) -> Format.fprintf ppf "insert (%s, %s, %s)" s r t
  | Remove (s, r, t) -> Format.fprintf ppf "remove (%s, %s, %s)" s r t
  | Declare_class r -> Format.fprintf ppf "class %s" r
  | Declare_individual r -> Format.fprintf ppf "individual %s" r
  | Set_limit n -> Format.fprintf ppf "limit %d" n
  | Exclude_rule name -> Format.fprintf ppf "exclude %s" name
  | Include_rule name -> Format.fprintf ppf "include %s" name

let tag = function
  | Insert _ -> 1
  | Remove _ -> 2
  | Declare_class _ -> 3
  | Declare_individual _ -> 4
  | Set_limit _ -> 5
  | Exclude_rule _ -> 6
  | Include_rule _ -> 7

let encode op =
  let w = Codec.writer () in
  Codec.write_byte w (tag op);
  (match op with
  | Insert (s, r, t) | Remove (s, r, t) ->
      Codec.write_string w s;
      Codec.write_string w r;
      Codec.write_string w t
  | Declare_class name | Declare_individual name | Exclude_rule name | Include_rule name
    ->
      Codec.write_string w name
  | Set_limit n -> Codec.write_varint w n);
  Codec.contents w

let decode payload =
  let r = Codec.reader payload in
  let op =
    match Codec.read_byte r with
    | 1 ->
        let s = Codec.read_string r in
        let rel = Codec.read_string r in
        let t = Codec.read_string r in
        Insert (s, rel, t)
    | 2 ->
        let s = Codec.read_string r in
        let rel = Codec.read_string r in
        let t = Codec.read_string r in
        Remove (s, rel, t)
    | 3 -> Declare_class (Codec.read_string r)
    | 4 -> Declare_individual (Codec.read_string r)
    | 5 -> Set_limit (Codec.read_varint r)
    | 6 -> Exclude_rule (Codec.read_string r)
    | 7 -> Include_rule (Codec.read_string r)
    | n -> raise (Codec.Corrupt (Printf.sprintf "unknown log tag %d" n))
  in
  if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes in log record");
  op

(* A header frame (tag 0) stamps the log with the epoch of the snapshot
   it extends; the reopen protocol ignores logs whose epoch predates the
   snapshot's (they were already folded in by a compaction that crashed
   before resetting the log). Headerless logs predate epochs and are
   always replayed. *)
let encode_header epoch =
  let w = Codec.writer ~size_hint:8 () in
  Codec.write_byte w 0;
  Codec.write_varint w epoch;
  Codec.contents w

type record = Header of int | Op of op

let decode_record payload =
  if String.length payload > 0 && payload.[0] = '\x00' then begin
    let r = Codec.reader ~pos:1 payload in
    let epoch = Codec.read_varint r in
    if not (Codec.at_end r) then raise (Codec.Corrupt "trailing bytes in log header");
    Header epoch
  end
  else Op (decode payload)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

(* Appends are buffered here (not in an out_channel) so that every byte
   reaching the file goes through one instrumented Vfs.write, and sync
   is a real fsync — a flush alone leaves the data in the OS cache,
   where a power cut still eats it. *)

let flush_threshold = 32 * 1024

module Metrics = Lsdb_obs.Metrics

let m_appends =
  Metrics.counter ~help:"Log records appended" "lsdb_log_appends_total"

let m_bytes =
  Metrics.counter ~help:"Log bytes written to the VFS"
    "lsdb_log_bytes_written_total"

let m_syncs = Metrics.counter ~help:"Log fsyncs" "lsdb_log_syncs_total"

let m_retries =
  Metrics.counter ~help:"Transient storage faults retried with backoff"
    "lsdb_storage_retries_total"

let m_giveups =
  Metrics.counter ~help:"Storage retry sequences that exhausted their attempts"
    "lsdb_storage_retry_giveups_total"

let m_fsync_seconds =
  Metrics.histogram ~help:"Wall-clock seconds per log fsync"
    "lsdb_log_fsync_seconds"

type t = {
  vfs : Vfs.t;
  file : Vfs.file;
  buf : Buffer.t;
  retry : Lsdb_exec.Governor.Retry.policy option;
}

(* Retry transient faults ({!Vfs.Fault}: ENOSPC-/EIO-shaped, the write
   landed no bytes) with bounded exponential backoff. {!Vfs.Crashed} is
   latched process death and must propagate immediately — retrying it
   would turn a crash test into a hang. Off by default: callers that
   want the existing fail-fast semantics (and the crash-torture suite's
   fault-propagation assertions) are untouched. *)
let with_retry t f =
  match t.retry with
  | None -> f ()
  | Some policy ->
      Lsdb_exec.Governor.Retry.run ~policy
        ~retry_on:(function Vfs.Fault _ -> true | _ -> false)
        ~on_retry:(fun ~attempt:_ _ -> Metrics.incr m_retries)
        ~on_giveup:(fun _ -> Metrics.incr m_giveups)
        f

let flush t =
  if Buffer.length t.buf > 0 then begin
    Metrics.add m_bytes (Buffer.length t.buf);
    (* The buffer is cleared only after the write succeeds, so a retried
       attempt resends the identical bytes — no frame is ever duplicated
       and none is dropped. *)
    with_retry t (fun () -> Vfs.write ~site:"log.write" t.file (Buffer.contents t.buf));
    Buffer.clear t.buf
  end

let open_ ?(vfs = Vfs.real) ?retry ?epoch path =
  let file = Vfs.open_append vfs path in
  let t = { vfs; file; buf = Buffer.create 1024; retry } in
  (match epoch with
  | Some e when Vfs.size file = 0 ->
      Buffer.add_string t.buf (Codec.frame (encode_header e));
      flush t
  | _ -> ());
  t

let append t op =
  Metrics.incr m_appends;
  Buffer.add_string t.buf (Codec.frame (encode op));
  if Buffer.length t.buf >= flush_threshold then flush t

let sync t =
  Metrics.incr m_syncs;
  flush t;
  Metrics.time m_fsync_seconds @@ fun () ->
  with_retry t (fun () -> Vfs.fsync ~site:"log.fsync" t.file)

let close t =
  flush t;
  Vfs.close t.file

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type read_result = {
  header_epoch : int option;
  ops : op list;
  frames_read : int;
  frames_skipped : int;
  bytes_truncated : int;
}

let empty_result =
  { header_epoch = None; ops = []; frames_read = 0; frames_skipped = 0;
    bytes_truncated = 0 }

let classify_frame ~first payload (header, ops, nread, nskip) =
  match decode_record payload with
  | Header e when first -> (Some e, ops, nread, nskip)
  | Header _ -> (header, ops, nread, nskip + 1) (* misplaced header *)
  | Op op -> (header, op :: ops, nread + 1, nskip)
  | exception Codec.Corrupt _ -> (header, ops, nread, nskip + 1)

let strict_scan data =
  let len = String.length data in
  let rec go pos first (header, ops, nread, _) =
    match Codec.read_frame data ~pos with
    | None ->
        {
          header_epoch = header;
          ops = List.rev ops;
          frames_read = nread;
          frames_skipped = 0;
          bytes_truncated = len - pos;
        }
    | Some (payload, next) ->
        (* In strict mode an undecodable record is corruption, period. *)
        let acc =
          match decode_record payload with
          | Header e when first -> (Some e, ops, nread, 0)
          | Header _ -> raise (Codec.Corrupt "misplaced log header frame")
          | Op op -> (header, op :: ops, nread + 1, 0)
        in
        go next false acc
  in
  go 0 true (None, [], 0, 0)

(* Salvage: walk the file keeping everything that still parses. A
   well-delimited frame with a bad checksum is dropped as a unit; where
   no frame parses at all we rescan byte by byte until one does (a
   maximal garbage run counts as one skipped frame). A garbage run that
   reaches the end of the file is a torn tail, not a skipped frame. *)
let salvage_scan data =
  let len = String.length data in
  let acc = ref (None, [], 0, 0) in
  let pos = ref 0 in
  let first = ref true in
  let run_start = ref (-1) in
  let end_run () =
    if !run_start >= 0 then begin
      let header, ops, nread, nskip = !acc in
      acc := (header, ops, nread, nskip + 1);
      run_start := -1
    end
  in
  while !pos < len do
    match Codec.parse_frame data ~pos:!pos with
    | `Frame (payload, next) ->
        end_run ();
        acc := classify_frame ~first:!first payload !acc;
        first := false;
        pos := next
    | `Bad_crc next ->
        end_run ();
        let header, ops, nread, nskip = !acc in
        acc := (header, ops, nread, nskip + 1);
        first := false;
        pos := next
    | `Torn | `End ->
        if !run_start < 0 then run_start := !pos;
        incr pos
  done;
  let truncated = if !run_start >= 0 then len - !run_start else 0 in
  let header, ops, nread, nskip = !acc in
  {
    header_epoch = header;
    ops = List.rev ops;
    frames_read = nread;
    frames_skipped = nskip;
    bytes_truncated = truncated;
  }

let read_log ?(vfs = Vfs.real) ~mode path =
  match Vfs.read_file vfs path with
  | None -> empty_result
  | Some data -> (
      match mode with `Strict -> strict_scan data | `Salvage -> salvage_scan data)

let read_all ?vfs path = (read_log ?vfs ~mode:`Strict path).ops

let apply db = function
  | Insert (s, r, t) -> ignore (Lsdb.Database.insert_names db s r t)
  | Remove (s, r, t) -> ignore (Lsdb.Database.remove_names db s r t)
  | Declare_class name ->
      Lsdb.Database.declare_class_relationship db (Lsdb.Database.entity db name)
  | Declare_individual name ->
      Lsdb.Database.declare_individual_relationship db (Lsdb.Database.entity db name)
  | Set_limit n -> Lsdb.Database.set_limit db n
  | Exclude_rule name -> ignore (Lsdb.Database.exclude db name)
  | Include_rule name -> ignore (Lsdb.Database.include_rule db name)

let replay ?vfs path db =
  let ops = read_all ?vfs path in
  List.iter (apply db) ops;
  List.length ops

(* Atomically replace [path] with a clean log holding [header ∥ ops]:
   written to a sibling .tmp, fsynced, renamed into place, directory
   fsynced. Used by compaction (to reset the log under a new epoch) and
   by recovery (to clear torn or corrupt regions). *)
let write_fresh ?(vfs = Vfs.real) ~epoch ~ops path =
  let tmp = path ^ ".tmp" in
  let w = Codec.writer ~size_hint:4096 () in
  Codec.write_raw w (Codec.frame (encode_header epoch));
  List.iter (fun op -> Codec.write_raw w (Codec.frame (encode op))) ops;
  let file = Vfs.open_trunc vfs tmp in
  Vfs.write ~site:"logtrunc.write" file (Codec.contents w);
  Vfs.fsync ~site:"logtrunc.fsync" file;
  Vfs.close file;
  Vfs.rename ~site:"logtrunc.rename" vfs tmp path;
  Vfs.fsync_dir ~site:"dir.fsync" vfs (Filename.dirname path)

let op_of_insert db fact =
  let s, r, t = Lsdb.Fact.names (Lsdb.Database.symtab db) fact in
  Insert (s, r, t)

let op_of_remove db fact =
  let s, r, t = Lsdb.Fact.names (Lsdb.Database.symtab db) fact in
  Remove (s, r, t)
