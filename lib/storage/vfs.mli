(** The storage layer's view of the filesystem.

    Every byte the storage layer persists flows through a {!t}: the
    {!real} backend is a thin veneer over [Unix], while a {!faulty}
    backend is a fully in-memory filesystem that models durability the
    way crash-consistency folklore says disks behave — written bytes are
    only *live* until an [fsync] makes them *durable*, renames are only
    durable after the containing directory is fsynced, and a simulated
    crash ({!simulate_crash}) throws away everything that never became
    durable.

    Faults are injected at named {e sites} (["log.write"],
    ["snapshot.fsync"], …): each instrumented operation in the storage
    layer passes its site name, and {!arm} schedules a fault to fire on
    the [after]+1-th hit of that site. This is how the crash-torture
    driver enumerates every crash point of a workload without touching
    the code under test. *)

type t
type file

(** An injected, survivable I/O error (disk full, fsync failure). The
    message names the site and fault. *)
exception Fault of string

(** The simulated process died. Once raised, every subsequent operation
    on the same faulty [t] re-raises until {!simulate_crash} "reboots"
    it. Never raised by the {!real} backend. *)
exception Crashed of string

type fault =
  | Crash  (** die at this site; the operation has no effect *)
  | Torn_write of int
      (** die mid-write: only the first [n] bytes of this write reach
          the durable image (even without an fsync — they hit the
          platter as the process died) *)
  | Short_write of int
      (** the write silently persists only its first [n] bytes but
          reports success — a lying kernel/NFS *)
  | Fsync_raises  (** fsync fails loudly with {!Fault} *)
  | Fsync_lies
      (** fsync reports success without making anything durable; a
          later crash drops the unsynced bytes *)
  | No_space  (** the operation fails with {!Fault} (ENOSPC) *)
  | Bit_flip of int
      (** single-bit corruption: bit [n mod 8] of byte [n mod len] of
          the written buffer is flipped; the call succeeds *)

val real : t
(** Pass-through to the actual filesystem. {!arm} is rejected. *)

val faulty : unit -> t
(** A fresh, empty in-memory filesystem with fault injection. *)

val is_faulty : t -> bool

(** {1 Failpoints} (faulty backends only) *)

val arm : t -> site:string -> ?after:int -> fault -> unit
(** Fire [fault] on the [after]+1-th subsequent hit of [site]
    (default [after = 0]: the next hit). One fault per site; re-arming
    replaces. Faults are one-shot. *)

val disarm_all : t -> unit

val site_hits : t -> (string * int) list
(** How many times each site has been hit, for enumerating crash
    points: run the workload fault-free, then arm each [(site, k)]. *)

val simulate_crash : t -> unit
(** Reboot after a crash: revert every file to its durable image, drop
    files whose creation never became durable, undo renames that were
    never followed by a directory fsync, clear armed faults and the
    crashed latch. *)

val corrupt_durable : t -> string -> byte:int -> unit
(** Test helper: flip one bit of byte [byte] in the durable image of a
    file — corruption at rest, as opposed to a {!Bit_flip} in flight.
    Works on both backends (on {!real} it edits the file in place). *)

(** {1 Namespace} *)

val file_exists : t -> string -> bool
val is_directory : t -> string -> bool
val mkdir : t -> string -> unit
val remove : t -> string -> unit

val rename : ?site:string -> t -> string -> string -> unit
(** Atomic replace. On a faulty backend the rename is visible
    immediately but durable only after {!fsync_dir}. *)

val fsync_dir : ?site:string -> t -> string -> unit
(** Make the directory's current name set (creations, removals,
    renames) durable. On the real backend: open + fsync the directory;
    errors from filesystems that refuse directory fsync are ignored. *)

val read_file : t -> string -> string option
(** Whole contents, [None] if absent. *)

(** {1 File handles} *)

val open_append : t -> string -> file
(** Create if missing; writes go to the end. *)

val open_trunc : t -> string -> file
(** Create or truncate to empty. *)

val open_rw : t -> string -> file
(** Create if missing; random access via {!pread}/{!pwrite}. *)

val write : ?site:string -> file -> string -> unit
(** Sequential write at the handle's cursor. *)

val pwrite : ?site:string -> file -> off:int -> bytes -> unit
val pread : file -> off:int -> bytes -> int
(** [pread file ~off buf] fills [buf] from [off]; short only at EOF.
    Returns bytes read. *)

val size : file -> int
val fsync : ?site:string -> file -> unit
val close : file -> unit
(** Never raises on a crashed faulty backend (safe in cleanup paths). *)
