let magic = "LSDB\x02"

exception Corrupt of string

let encode ?(epoch = 0) db =
  let open Lsdb in
  let symtab = Database.symtab db in
  let w = Codec.writer ~size_hint:4096 () in
  Codec.write_raw w magic;
  Codec.write_varint w epoch;
  (* Dictionary: map every entity id used below to a dense index. The
     specials are implicit (they exist in every database), so only user
     entities are written. *)
  let dict = Hashtbl.create 256 in
  let names = ref [] in
  let count = ref 0 in
  let index_of e =
    if Entity.is_special e then e
    else
      match Hashtbl.find_opt dict e with
      | Some i -> i
      | None ->
          let i = Entity.special_count + !count in
          incr count;
          Hashtbl.add dict e i;
          names := Symtab.name symtab e :: !names;
          i
  in
  let axioms = Fact.Set.of_list Database.axiom_facts in
  let facts =
    List.filter (fun fact -> not (Fact.Set.mem fact axioms)) (Database.facts db)
  in
  let encoded_facts =
    List.map
      (fun (fact : Fact.t) -> (index_of fact.s, index_of fact.r, index_of fact.t))
      facts
  in
  let declarations =
    List.map
      (fun (e, is_class) -> (index_of e, is_class))
      (Relclass.declarations (Database.relclass db))
  in
  let disabled =
    List.filter_map
      (fun ((rule : Rule.t), enabled) -> if enabled then None else Some rule.name)
      (Database.rules db)
  in
  Codec.write_varint w (List.length !names);
  List.iter (Codec.write_string w) (List.rev !names);
  Codec.write_varint w (Database.limit db);
  Codec.write_varint w (List.length declarations);
  List.iter
    (fun (i, is_class) ->
      Codec.write_varint w i;
      Codec.write_byte w (if is_class then 1 else 0))
    declarations;
  Codec.write_varint w (List.length disabled);
  List.iter (Codec.write_string w) disabled;
  Codec.write_varint w (List.length encoded_facts);
  List.iter
    (fun (s, r, t) ->
      Codec.write_varint w s;
      Codec.write_varint w r;
      Codec.write_varint w t)
    encoded_facts;
  let body = Codec.contents w in
  let framed = Codec.writer ~size_hint:(String.length body + 8) () in
  Codec.write_raw framed body;
  Codec.write_raw framed (Printf.sprintf "%08lx" (Codec.crc32 body));
  Codec.contents framed

let decode_full data =
  let open Lsdb in
  if String.length data < String.length magic + 8 then raise (Corrupt "truncated snapshot");
  let body_len = String.length data - 8 in
  let body = String.sub data 0 body_len in
  let stored = String.sub data body_len 8 in
  if not (String.equal stored (Printf.sprintf "%08lx" (Codec.crc32 body))) then
    raise (Corrupt "snapshot checksum mismatch");
  if not (String.equal (String.sub body 0 (String.length magic)) magic) then
    raise (Corrupt "bad snapshot magic");
  let r = Codec.reader ~pos:(String.length magic) body in
  let wrap f = try f () with Codec.Corrupt msg -> raise (Corrupt msg) in
  wrap (fun () ->
      let epoch = Codec.read_varint r in
      let db = Database.create () in
      let name_count = Codec.read_varint r in
      let ids = Array.make name_count 0 in
      for i = 0 to name_count - 1 do
        ids.(i) <- Database.entity db (Codec.read_string r)
      done;
      let entity_of i =
        if i < Entity.special_count then i
        else begin
          let idx = i - Entity.special_count in
          if idx >= name_count then raise (Corrupt "entity index out of range");
          ids.(idx)
        end
      in
      let limit = Codec.read_varint r in
      if limit >= 1 then Database.set_limit db limit;
      let decl_count = Codec.read_varint r in
      for _ = 1 to decl_count do
        let e = entity_of (Codec.read_varint r) in
        if Codec.read_byte r = 1 then Database.declare_class_relationship db e
        else Database.declare_individual_relationship db e
      done;
      let disabled_count = Codec.read_varint r in
      for _ = 1 to disabled_count do
        ignore (Database.exclude db (Codec.read_string r))
      done;
      let fact_count = Codec.read_varint r in
      for _ = 1 to fact_count do
        let s = entity_of (Codec.read_varint r) in
        let rel = entity_of (Codec.read_varint r) in
        let t = entity_of (Codec.read_varint r) in
        ignore (Database.insert db (Fact.make s rel t))
      done;
      if not (Codec.at_end r) then raise (Corrupt "trailing bytes in snapshot");
      (epoch, db))

let decode data = snd (decode_full data)

(* [save] is a plain durable write (write ∥ fsync). It is NOT atomic
   against a crash mid-write — callers that overwrite a live snapshot
   must write to a sibling file and rename; see Persistent.compact. *)
let save ?(vfs = Vfs.real) ?epoch db path =
  let file = Vfs.open_trunc vfs path in
  Fun.protect
    ~finally:(fun () -> Vfs.close file)
    (fun () ->
      Vfs.write ~site:"snapshot.write" file (encode ?epoch db);
      Vfs.fsync ~site:"snapshot.fsync" file)

let load ?(vfs = Vfs.real) path =
  match Vfs.read_file vfs path with
  | None -> raise (Corrupt (Printf.sprintf "snapshot %s does not exist" path))
  | Some data -> decode data
