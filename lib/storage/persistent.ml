type sync_mode = Always | On_demand

module Metrics = Lsdb_obs.Metrics

let m_opens =
  Metrics.counter ~help:"Persistent directories opened" "lsdb_store_opens_total"

let recovery_counter outcome =
  Metrics.counter ~help:"Recovery epoch decisions by outcome"
    ~labels:[ ("outcome", outcome) ]
    "lsdb_store_recovery_total"

let m_recover_fresh = recovery_counter "fresh"
let m_recover_applied = recovery_counter "applied"
let m_recover_ignored_stale = recovery_counter "ignored_stale"
let m_recover_replayed_future = recovery_counter "replayed_future"

let m_salvaged_frames =
  Metrics.counter ~help:"Log frames dropped during salvage recovery"
    "lsdb_store_salvaged_frames_total"

let m_truncated_bytes =
  Metrics.counter ~help:"Torn-tail bytes truncated during recovery"
    "lsdb_store_truncated_bytes_total"

let m_compactions =
  Metrics.counter ~help:"Completed compactions" "lsdb_store_compactions_total"

let compaction_phase phase =
  Metrics.histogram ~help:"Wall-clock seconds per compaction phase"
    ~labels:[ ("phase", phase) ]
    "lsdb_store_compaction_phase_seconds"

let m_phase_sync = compaction_phase "log_sync"
let m_phase_snapshot = compaction_phase "snapshot_write"
let m_phase_verify = compaction_phase "verify"
let m_phase_rename = compaction_phase "rename"
let m_phase_reset = compaction_phase "log_reset"

type t = {
  dir : string;
  vfs : Vfs.t;
  db : Lsdb.Database.t;
  sync_mode : sync_mode;
  retry : Lsdb_exec.Governor.Retry.policy option;
  report : Recovery_report.t;
  mutable log : Log.t;
  mutable log_length : int;
  mutable epoch : int;
  mutable poisoned : string option;
      (* set when compaction failed after the point of no return: the
         snapshot advanced an epoch but the log could not be reset, so
         new appends would land in a stale log and be ignored on reopen.
         Mutations are refused until the directory is reopened. *)
}

let snapshot_file dir = Filename.concat dir "snapshot.lsdb"
let snapshot_tmp dir = Filename.concat dir "snapshot.lsdb.tmp"
let log_file dir = Filename.concat dir "log.lsdb"
let log_tmp dir = Filename.concat dir "log.lsdb.tmp"

let fail_corrupt dir what detail =
  failwith
    (Printf.sprintf
       "Persistent.open_dir: %s: corrupt %s (%s) — the store was likely \
        interrupted mid-write; reopen with ~recovery:`Salvage to keep every \
        record that survives"
       dir what detail)

let open_dir ?(vfs = Vfs.real) ?(recovery = `Strict) ?(sync_mode = On_demand)
    ?retry dir =
  if not (Vfs.file_exists vfs dir) then Vfs.mkdir vfs dir
  else if not (Vfs.is_directory vfs dir) then
    invalid_arg (Printf.sprintf "Persistent.open_dir: %s is not a directory" dir);
  (* A leftover .tmp is a compaction that died before its rename; the
     real copy is whatever the rename target still holds. *)
  let tmp_removed = ref false in
  List.iter
    (fun tmp ->
      if Vfs.file_exists vfs tmp then begin
        Vfs.remove vfs tmp;
        tmp_removed := true
      end)
    [ snapshot_tmp dir; log_tmp dir ];
  let snapshot_epoch, db, snapshot_unreadable =
    match Vfs.read_file vfs (snapshot_file dir) with
    | None -> (0, Lsdb.Database.create (), false)
    | Some data -> (
        match Snapshot.decode_full data with
        | epoch, db -> (epoch, db, false)
        | exception Snapshot.Corrupt msg -> (
            match recovery with
            | `Strict -> fail_corrupt dir "snapshot" msg
            | `Salvage -> (0, Lsdb.Database.create (), true)))
  in
  let read =
    match recovery with
    | `Salvage -> Log.read_log ~vfs ~mode:`Salvage (log_file dir)
    | `Strict -> (
        try Log.read_log ~vfs ~mode:`Strict (log_file dir)
        with Codec.Corrupt msg -> fail_corrupt dir "log" msg)
  in
  let decision, ops =
    match read.Log.header_epoch with
    | None ->
        if read.Log.ops = [] && snapshot_epoch = 0 && not snapshot_unreadable then
          (Recovery_report.Fresh, [])
        else (Recovery_report.Applied, read.Log.ops)
    | Some e when e = snapshot_epoch -> (Recovery_report.Applied, read.Log.ops)
    | Some e when e < snapshot_epoch -> (Recovery_report.Ignored_stale, [])
    | Some e -> (
        match recovery with
        | `Strict ->
            fail_corrupt dir "log"
              (Printf.sprintf "log epoch %d is ahead of snapshot epoch %d" e
                 snapshot_epoch)
        | `Salvage -> (Recovery_report.Replayed_future, read.Log.ops))
  in
  Metrics.incr m_opens;
  Metrics.incr
    (match decision with
    | Recovery_report.Fresh -> m_recover_fresh
    | Recovery_report.Applied -> m_recover_applied
    | Recovery_report.Ignored_stale -> m_recover_ignored_stale
    | Recovery_report.Replayed_future -> m_recover_replayed_future);
  Metrics.add m_salvaged_frames read.Log.frames_skipped;
  Metrics.add m_truncated_bytes read.Log.bytes_truncated;
  List.iter (Log.apply db) ops;
  (* Physically repair the log when anything was dropped or the epoch is
     off: appending after a torn tail would otherwise turn the tear into
     mid-file corruption at the next open. *)
  let needs_rewrite =
    read.Log.frames_skipped > 0
    || read.Log.bytes_truncated > 0
    || (match decision with
       | Recovery_report.Ignored_stale | Recovery_report.Replayed_future -> true
       | Recovery_report.Fresh | Recovery_report.Applied -> false)
    || snapshot_unreadable
  in
  if snapshot_unreadable then
    (* The snapshot is beyond help; drop it so the salvaged log alone
       defines the state (and a later Strict open succeeds again). *)
    Vfs.remove vfs (snapshot_file dir);
  let epoch = if snapshot_unreadable then 0 else snapshot_epoch in
  if needs_rewrite then Log.write_fresh ~vfs ~epoch ~ops (log_file dir);
  let log = Log.open_ ~vfs ?retry ~epoch (log_file dir) in
  let report =
    {
      Recovery_report.mode = recovery;
      snapshot_epoch;
      log_epoch = read.Log.header_epoch;
      epoch_decision = decision;
      snapshot_unreadable;
      frames_read = read.Log.frames_read;
      ops_applied = List.length ops;
      frames_skipped = read.Log.frames_skipped;
      bytes_truncated = read.Log.bytes_truncated;
      tmp_removed = !tmp_removed;
      log_rewritten = needs_rewrite;
    }
  in
  {
    dir;
    vfs;
    db;
    sync_mode;
    retry;
    report;
    log;
    log_length = List.length ops;
    epoch;
    poisoned = None;
  }

let database t = t.db
let recovery_report t = t.report
let sync_mode t = t.sync_mode
let epoch t = t.epoch

let check_usable t =
  match t.poisoned with
  | None -> ()
  | Some why ->
      failwith
        (Printf.sprintf
           "Persistent: store is read-only after a failed compaction (%s); \
            close and reopen the directory"
           why)

let record t op =
  Log.append t.log op;
  t.log_length <- t.log_length + 1;
  match t.sync_mode with Always -> Log.sync t.log | On_demand -> ()

let journal t op =
  check_usable t;
  record t op

let insert t fact =
  check_usable t;
  let added = Lsdb.Database.insert t.db fact in
  if added then record t (Log.op_of_insert t.db fact);
  added

let insert_names t s r tgt =
  insert t (Lsdb.Fact.of_names (Lsdb.Database.symtab t.db) s r tgt)

let remove t fact =
  check_usable t;
  let op = Log.op_of_remove t.db fact in
  let removed = Lsdb.Database.remove t.db fact in
  if removed then record t op;
  removed

let declare_class_relationship t e =
  check_usable t;
  Lsdb.Database.declare_class_relationship t.db e;
  record t (Log.Declare_class (Lsdb.Database.entity_name t.db e))

let declare_individual_relationship t e =
  check_usable t;
  Lsdb.Database.declare_individual_relationship t.db e;
  record t (Log.Declare_individual (Lsdb.Database.entity_name t.db e))

let set_limit t n =
  check_usable t;
  Lsdb.Database.set_limit t.db n;
  record t (Log.Set_limit n)

let exclude t name =
  check_usable t;
  let ok = Lsdb.Database.exclude t.db name in
  if ok then record t (Log.Exclude_rule name);
  ok

let include_rule t name =
  check_usable t;
  let ok = Lsdb.Database.include_rule t.db name in
  if ok then record t (Log.Include_rule name);
  ok

let sync t = Log.sync t.log

(* Crash-safe compaction:

     1. fsync the log (pre-compaction state is durable whatever happens)
     2. write the snapshot, stamped epoch+1, to snapshot.lsdb.tmp; fsync
     3. read it back and decode — never rename an unverifiable snapshot
        over a good one
     4. rename tmp → snapshot.lsdb; fsync the directory
     5. atomically replace the log with an empty one stamped epoch+1

   A crash before 4 reopens to the old snapshot + old log (epoch match:
   replayed once). A crash after 4 but inside 5 reopens to the new
   snapshot + the old log, whose stale epoch says its operations are
   already folded in — they are ignored, never applied twice. *)
let compact t =
  check_usable t;
  Metrics.time m_phase_sync (fun () -> Log.sync t.log);
  let epoch' = t.epoch + 1 in
  let tmp = snapshot_tmp t.dir in
  (try
     Metrics.time m_phase_snapshot (fun () ->
         Snapshot.save ~vfs:t.vfs ~epoch:epoch' t.db tmp);
     Metrics.time m_phase_verify @@ fun () ->
     match Vfs.read_file t.vfs tmp with
     | None -> failwith "Persistent.compact: snapshot vanished before verification"
     | Some data -> (
         match Snapshot.decode_full data with
         | e, _ when e = epoch' -> ()
         | _ ->
             failwith
               "Persistent.compact: aborted, snapshot verification read back a \
                wrong epoch; the previous snapshot and log are intact"
         | exception Snapshot.Corrupt msg ->
             failwith
               (Printf.sprintf
                  "Persistent.compact: aborted, snapshot failed verification \
                   (%s); the previous snapshot and log are intact"
                  msg))
   with e ->
     (try Vfs.remove t.vfs tmp with _ -> ());
     raise e);
  Metrics.time m_phase_rename (fun () ->
      Vfs.rename ~site:"snapshot.rename" t.vfs tmp (snapshot_file t.dir);
      Vfs.fsync_dir ~site:"dir.fsync" t.vfs t.dir);
  (* Point of no return: the snapshot now carries epoch'. If the log
     reset fails we must refuse further appends — they would land in a
     stale-epoch log and be ignored at the next open. *)
  (try
     Metrics.time m_phase_reset (fun () ->
         Log.write_fresh ~vfs:t.vfs ~epoch:epoch' ~ops:[] (log_file t.dir);
         Log.close t.log;
         t.log <- Log.open_ ~vfs:t.vfs ?retry:t.retry ~epoch:epoch' (log_file t.dir))
   with e ->
     t.poisoned <- Some (Printexc.to_string e);
     raise e);
  t.epoch <- epoch';
  t.log_length <- 0;
  Metrics.incr m_compactions

let close t =
  (match t.poisoned with None -> Log.sync t.log | Some _ -> ());
  Log.close t.log

let log_length t = t.log_length
let snapshot_path t = snapshot_file t.dir
let log_path t = log_file t.dir
