(** The unified matching layer: one entry point answering a bound-position
    pattern from the fused view of (1) the closure (stored + inferred
    facts), (2) the virtual facts of §3.6/§2.3, and (3) on-demand
    composition facts (§3.7).

    Query evaluation, navigation and probing all match through here, which
    is what makes the paper's "unified access strategy for schema and
    data" (§2.6) literal: there is exactly one way to ask. *)

type opts = {
  virtual_math : bool;  (** answer comparator templates from the oracle *)
  virtual_hierarchy : bool;  (** reflexive ⊑ and Δ/∇ facts *)
  composition : bool;  (** honor composed relationships and path search *)
}

(** Everything on: what query evaluation uses. *)
val eval_opts : opts

(** Composition on, virtual facts off: what the §4.1 navigation tables
    show (no Δ/reflexive noise, but composed paths do appear). *)
val nav_opts : opts

(** Facts only. *)
val plain_opts : opts

(** [candidates db ?opts pattern emit] enumerates matching facts. Stored
    facts that fall under the oracle's authority (e.g. a stored reflexive
    generalization, or a stored numeric comparison) are suppressed in
    favor of the oracle so nothing is emitted twice.

    Answers are served from a bounded per-domain cache keyed by
    (database, opts, pattern) and stamped with {!Database.generation}:
    repeated probes of the same neighborhood (star templates during
    navigation) replay the stored answer — in the original emission
    order — instead of re-enumerating closure, oracle and composition
    views. Any database mutation bumps the generation and the entry
    misses. *)
val candidates : ?opts:opts -> Database.t -> Store.pattern -> (Fact.t -> unit) -> unit

(** Counters for the answer cache. [hits]/[misses]/[evictions] are kept
    per database (in the process metrics registry, labeled by database
    uid) and cover every domain; [size] is the calling domain's entry
    count. *)
type cache_stats = { hits : int; misses : int; evictions : int; size : int }

val cache_stats_for : Database.t -> cache_stats
(** The cache counters of one database: [hits]/[misses]/[evictions] are
    that database's totals across all domains; [size] counts the calling
    domain's entries for that database. *)

val match_list : ?opts:opts -> Database.t -> Store.pattern -> Fact.t list
val count : ?opts:opts -> Database.t -> Store.pattern -> int
val exists : ?opts:opts -> Database.t -> Store.pattern -> bool

(** [holds db ?opts fact] — ground-fact membership in the fused view. *)
val holds : ?opts:opts -> Database.t -> Fact.t -> bool

(** The active domain used for virtual-fact enumeration: entities
    occurring in the closure. *)
val domain : Database.t -> unit -> Entity.t Seq.t
