type answer = { vars : string list; rows : Entity.t array list }

exception Unsafe of string

(* Alpha-rename quantified variables apart from free variables and from
   each other, so the evaluator can use one flat environment. *)
let alpha_rename q =
  let counter = ref 0 in
  let rec go subst = function
    | Query.Atom tpl ->
        let rename = function
          | Template.Var v as term -> (
              match List.assoc_opt v subst with
              | Some v' -> Template.Var v'
              | None -> term)
          | Template.Ent _ as term -> term
        in
        Query.Atom
          (Template.make (rename tpl.src) (rename tpl.rel) (rename tpl.tgt))
    | Query.And (a, b) -> Query.And (go subst a, go subst b)
    | Query.Or (a, b) -> Query.Or (go subst a, go subst b)
    | Query.Exists (v, body) ->
        incr counter;
        let v' = Printf.sprintf "%s#%d" v !counter in
        Query.Exists (v', go ((v, v') :: subst) body)
    | Query.Forall (v, body) ->
        incr counter;
        let v' = Printf.sprintf "%s#%d" v !counter in
        Query.Forall (v', go ((v, v') :: subst) body)
  in
  go [] q

let rec flatten_conj = function
  | Query.And (a, b) -> flatten_conj a @ flatten_conj b
  | q -> [ q ]

let pattern_of env (tpl : Template.t) =
  let value = function
    | Template.Ent e -> Some e
    | Template.Var v -> Hashtbl.find_opt env v
  in
  Store.pattern ?s:(value tpl.src) ?r:(value tpl.rel) ?t:(value tpl.tgt) ()

(* Cost for dynamic conjunct ordering, compared lexicographically as
   (group, estimate):

   - group 0 — fully bound atoms: membership checks, cheapest; virtual
     relationships (estimate 1) after indexed ones (estimate 0).
   - group 1 — indexed atoms with unbound variables: ranked by real
     selectivity, the O(1) posting-list count of the pattern under the
     current bindings ({!Closure.count_pattern}) — i.e. how many
     candidate facts enumeration would actually walk. Hierarchy extremes
     count as wildcards, mirroring the match layer's rewrite.
   - group 2 — enumeration-driven atoms: comparators, ⊑ (whose virtual
     extent ranges over the domain), Δ relationships, unbound
     relationship variables, and composed relationships (answered by
     chain walks, not postings); ranked by unbound-variable count as
     before, and always after indexed atoms, whose counts they lack.
   - groups 3/4 — disjunctive/existential, then universal subformulas.

   Selectivity goes through {!Database.count_hint}: eager mode forces the
   closure on the first group-1 probe (atom satisfaction forces it
   anyway); demand mode counts base + derived-cone postings without
   forcing anything. *)
let cost db env = function
  | Query.Atom tpl ->
      let unbound =
        List.filter (fun v -> not (Hashtbl.mem env v)) (Template.distinct_vars tpl)
      in
      let rel_entity =
        match tpl.Template.rel with
        | Template.Ent e -> Some e
        | Template.Var v -> Hashtbl.find_opt env v
      in
      let enumeration_driven =
        match rel_entity with
        | Some e ->
            Entity.is_comparator e || e = Entity.gen || e = Entity.top
            || Composition.is_composed (Database.symtab db) e
        | None -> true
      in
      if unbound = [] then (0, if enumeration_driven then 1 else 0)
      else if enumeration_driven then (2, List.length unbound)
      else
        let pat = pattern_of env tpl in
        let wild = function
          | Some e when e = Entity.top || e = Entity.bottom -> None
          | bound -> bound
        in
        ( 1,
          Database.count_hint db
            { Store.s = wild pat.Store.s; r = pat.Store.r; t = wild pat.Store.t } )
  | Query.Or _ | Query.Exists _ -> (3, 0)
  | Query.Forall _ -> (4, 0)
  | Query.And _ -> assert false (* conjunctions are flattened *)


(* Bind the template's variables to the fact's entities, extending [env];
   returns the newly bound variables (for undo) or [None] on mismatch
   (repeated variables must agree). *)
let try_bind env (tpl : Template.t) (fact : Fact.t) =
  let bind term value newly =
    match term with
    | Template.Ent e -> if Entity.equal e value then Some newly else None
    | Template.Var v -> (
        match Hashtbl.find_opt env v with
        | Some bound -> if Entity.equal bound value then Some newly else None
        | None ->
            Hashtbl.replace env v value;
            Some (v :: newly))
  in
  let undo newly = List.iter (Hashtbl.remove env) newly in
  match bind tpl.src fact.s [] with
  | None -> None
  | Some newly -> (
      match bind tpl.rel fact.r newly with
      | None ->
          undo newly;
          None
      | Some newly -> (
          match bind tpl.tgt fact.t newly with
          | None ->
              undo newly;
              None
          | Some newly -> Some newly))

exception Sat

(* Candidate facts walked while satisfying atoms — what conjunct ordering
   tries to minimize; the selectivity regression test reads its deltas. *)
let m_candidates =
  Lsdb_obs.Metrics.counter ~help:"Facts enumerated while satisfying query atoms"
    "lsdb_eval_candidates_total"

let m_fused =
  Lsdb_obs.Metrics.counter
    ~help:"Conjunct pairs satisfied by posting-list intersection"
    "lsdb_eval_fused_intersections_total"

(* A conjunct is a {e hinge} (a posting path with one free position, see
   {!Lsdb_datalog.Index.hinge}) when, under the current bindings, it is
   an atom with exactly one unbound variable, occupying exactly one
   non-relationship position, whose bound positions are all non-special,
   non-composed entities. Those conditions make [Match_layer.candidates]
   coincide with [Database.closure_match] for the pattern whatever the
   [opts]: no extremity rewrite (no Δ/∇ bound), no oracle suppression
   and no virtual candidates (relationship neither comparator nor ⊑),
   no composition candidates (relationship bound and not composed). Two
   hinges sharing their free variable can then be satisfied by a single
   intersection instead of nested enumeration. *)
let hinge_of symtab env = function
  | Query.Atom (tpl : Template.t) -> (
      let value = function
        | Template.Ent e -> Some e
        | Template.Var v -> Hashtbl.find_opt env v
      in
      let free = function
        | Template.Var v when not (Hashtbl.mem env v) -> Some v
        | _ -> None
      in
      let plain_ent = function
        | Some e -> not (Entity.is_special e)
        | None -> false
      in
      let plain_rel = function
        | Some e ->
            (not (Entity.is_special e))
            && not (Composition.is_composed symtab e)
        | None -> false
      in
      match (free tpl.src, free tpl.rel, free tpl.tgt) with
      | Some v, None, None ->
          let r = value tpl.rel and t = value tpl.tgt in
          if plain_rel r && plain_ent t then
            Some
              (v, Lsdb_datalog.Index.In { r = Option.get r; t = Option.get t })
          else None
      | None, None, Some v ->
          let s = value tpl.src and r = value tpl.rel in
          if plain_ent s && plain_rel r then
            Some
              (v, Lsdb_datalog.Index.Out { s = Option.get s; r = Option.get r })
          else None
      | _ -> None)
  | _ -> None

let eval ?(opts = Match_layer.eval_opts) ?(reorder = true) db q =
  Lsdb_obs.Trace.span "eval" @@ fun () ->
  let gov = Database.governor db in
  (* Candidate enumeration ticks through a plain local counter flushed
     every 256 units: two atomic RMWs per candidate outweigh the bind
     they meter (B19 gates the governed overhead under 5%). *)
  let pending = ref 0 in
  let bump () =
    incr pending;
    if !pending >= 256 then begin
      let n = !pending in
      pending := 0;
      Lsdb_exec.Governor.tick gov n
    end
  in
  let q = alpha_rename q in
  let symtab = Database.symtab db in
  let env : (string, Entity.t) Hashtbl.t = Hashtbl.create 16 in
  let rec sat q k =
    match q with
    | Query.Atom tpl ->
        let enumerated = ref 0 in
        Fun.protect
          ~finally:(fun () -> Lsdb_obs.Metrics.add m_candidates !enumerated)
        @@ fun () ->
        Match_layer.candidates ~opts db (pattern_of env tpl) (fun fact ->
            incr enumerated;
            bump ();
            match try_bind env tpl fact with
            | Some newly ->
                k ();
                List.iter (Hashtbl.remove env) newly
            | None -> ())
    | Query.And _ -> sat_conj (flatten_conj q) k
    | Query.Or (a, b) ->
        sat a k;
        sat b k
    | Query.Exists (_, body) -> sat body k
    | Query.Forall (v, body) ->
        (* Free variables of the body other than [v] that are still
           unbound range over the active domain (§2.7's unrestricted
           formula grammar, under the finite reading): enumerate them,
           then check the universal for each assignment. *)
        let unbound =
          List.filter
            (fun w -> w <> v && not (Hashtbl.mem env w))
            (Query.free_vars body)
        in
        let check_forall () =
          Seq.for_all
            (fun e ->
              Hashtbl.replace env v e;
              let holds_for_e =
                try
                  sat body (fun () -> raise Sat);
                  false
                with Sat -> true
              in
              Hashtbl.remove env v;
              holds_for_e)
            (Match_layer.domain db ())
        in
        let rec assign = function
          | [] -> if check_forall () then k ()
          | w :: rest ->
              Seq.iter
                (fun e ->
                  Hashtbl.replace env w e;
                  assign rest;
                  Hashtbl.remove env w)
                (Match_layer.domain db ())
        in
        assign unbound
  and sat_conj pending k =
    match pending with
    | [] -> k ()
    | first :: rest when not reorder -> sat first (fun () -> sat_conj rest k)
    | _ ->
        (* Carry each candidate's cost through the fold so it is computed
           once per conjunct, not recomputed for the running best at
           every comparison ([cost] reads at most one O(1) posting-list
           count per conjunct). Strict [<] keeps the first minimum, as
           before. *)
        let best =
          List.fold_left
            (fun acc q ->
              match acc with
              | None -> Some (cost db env q, q)
              | Some (best_cost, _) ->
                  let c = cost db env q in
                  if c < best_cost then Some (c, q) else acc)
            None pending
        in
        let _, chosen = Option.get best in
        let rest = List.filter (fun q -> q != chosen) pending in
        let fused =
          (* Pair fusion: when the chosen conjunct is a hinge and some
             other conjunct hinges on the same variable, one intersection
             ({!Database.intersect_join} — galloped over packed postings
             on the eager single heap) replaces enumerate-then-check.
             Each emitted entity is a fact match in both atoms, so the
             continuation semantics are unchanged. *)
          match hinge_of symtab env chosen with
          | None -> false
          | Some (v, h1) -> (
              let partner =
                List.find_opt
                  (fun q ->
                    match hinge_of symtab env q with
                    | Some (v2, _) -> String.equal v2 v
                    | None -> false)
                  rest
              in
              match partner with
              | None -> false
              | Some p ->
                  let h2 =
                    match hinge_of symtab env p with
                    | Some (_, h2) -> h2
                    | None -> assert false
                  in
                  let rest = List.filter (fun q -> q != p) rest in
                  Lsdb_obs.Metrics.incr m_fused;
                  Database.intersect_join db h1 h2 (fun e ->
                      Lsdb_obs.Metrics.incr m_candidates;
                      bump ();
                      Hashtbl.replace env v e;
                      sat_conj rest k;
                      Hashtbl.remove env v);
                  true)
        in
        if not fused then sat chosen (fun () -> sat_conj rest k)
  in
  let vars = Query.free_vars q in
  let seen = Hashtbl.create 64 in
  let rows = ref [] in
  let emit () =
    let row =
      Array.of_list
        (List.map
           (fun v ->
             match Hashtbl.find_opt env v with
             | Some e -> e
             | None ->
                 raise
                   (Unsafe
                      (Printf.sprintf "free variable ?%s left unbound by a disjunct" v)))
           vars)
    in
    let key = Array.to_list row in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      rows := row :: !rows
    end
  in
  (* A governor trip abandons the remaining search; the rows emitted so
     far are each genuine answers (every binding was checked against the
     closure before emission), so the partial answer set is sound. *)
  (try
     (match vars with
     | [] ->
         (* Proposition: record an empty row iff satisfiable. *)
         (try
            sat q (fun () -> raise Sat)
          with Sat -> rows := [ [||] ])
     | _ -> sat q emit);
     (* Flush the batched work count inside the guard: an exact-boundary
        work-budget trip on the last candidates must not escape. *)
     if !pending > 0 then Lsdb_exec.Governor.tick gov !pending
   with Lsdb_exec.Governor.Trip _ -> ());
  (* Canonical row order: enumeration order depends on the closure mode
     (the eager index yields hash order, demand cones Fact.compare
     order) and must not leak into answers. *)
  { vars; rows = List.sort Stdlib.compare !rows }

let holds ?opts db q = (eval ?opts db q).rows <> []

let column answer =
  match answer.vars with
  | [ _ ] -> List.map (fun row -> row.(0)) answer.rows
  | vars ->
      invalid_arg
        (Printf.sprintf "Eval.column: query has %d free variables" (List.length vars))

let rows_named symtab answer =
  List.map (fun row -> List.map (Symtab.name symtab) (Array.to_list row)) answer.rows
