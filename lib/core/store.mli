(** The heap of facts: a mutable, fully indexed set of triples,
    hash-partitioned by source entity across [shards] internal shards
    ({!Lsdb_datalog.Shard}).

    Supports insertion, deletion and matching for every bound-position
    pattern in O(1) expected time per result; source-bound operations
    touch exactly one shard, source-unbound probes fan out across all of
    them. With the default single shard the layout is the classic
    unpartitioned heap. A deliberately naive linear [match_scan] is also
    exposed so the benchmarks can quantify what the indexes buy
    (experiment B2) — the paper leaves "suitable storage strategies"
    open (§6.2). *)

type t

(** Bound-position pattern; [None] is a wildcard. *)
type pattern = { s : Entity.t option; r : Entity.t option; t : Entity.t option }

val pattern : ?s:Entity.t -> ?r:Entity.t -> ?t:Entity.t -> unit -> pattern

val create : ?size_hint:int -> ?shards:int -> unit -> t

(** Number of internal shards ([>= 1]). *)
val shards : t -> int

(** The routing plan, for layers that co-partition with the heap (the
    sharded closure's overlays). *)
val shard_plan : t -> Lsdb_datalog.Shard.plan

(** Facts per shard — the partition balance (B20's imbalance gauge). *)
val shard_cardinals : t -> int array

(** [reshard t n] re-partitions in place: the handle stays valid, every
    fact is re-routed. O(heap). Iteration order changes — callers must
    invalidate anything derived from it (the database bumps its
    generation and drops its closure caches). *)
val reshard : t -> int -> unit

(** [add t fact] is [true] iff the fact was not already present. *)
val add : t -> Fact.t -> bool

(** [remove t fact] is [true] iff the fact was present. *)
val remove : t -> Fact.t -> bool

val mem : t -> Fact.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit

val iter : (Fact.t -> unit) -> t -> unit
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_seq : t -> Fact.t Seq.t
val to_list : t -> Fact.t list

(** Indexed pattern matching. *)
val match_pattern : t -> pattern -> (Fact.t -> unit) -> unit

val match_list : t -> pattern -> Fact.t list
val count_matches : t -> pattern -> int

(** [count_fast t pat] — the number of facts matching [pat] in O(1)
    (O(shards) for source-unbound patterns), from posting-bucket sizes.
    Exact, unlike the closure index's tombstone-inclusive counts; the
    cheap selectivity probe behind the sharded closure's join ordering. *)
val count_fast : t -> pattern -> int

val exists_match : t -> pattern -> bool

(** Unindexed full-scan matching (baseline for B2). Same results as
    [match_pattern], radically different cost profile. *)
val match_scan : t -> pattern -> (Fact.t -> unit) -> unit

(** Distinct entities appearing in some fact, with multiplicity ignored. *)
val active_entities : t -> Entity.t Seq.t

(** Does the entity appear in some stored fact? O(1). *)
val entity_active : t -> Entity.t -> bool

val copy : t -> t
