(** The heap of facts: a mutable, fully indexed set of triples.

    Supports insertion, deletion and matching for every bound-position
    pattern in O(1) expected time per result. A deliberately naive linear
    [match_scan] is also exposed so the benchmarks can quantify what the
    indexes buy (experiment B2) — the paper leaves "suitable storage
    strategies" open (§6.2). *)

type t

(** Bound-position pattern; [None] is a wildcard. *)
type pattern = { s : Entity.t option; r : Entity.t option; t : Entity.t option }

val pattern : ?s:Entity.t -> ?r:Entity.t -> ?t:Entity.t -> unit -> pattern

val create : ?size_hint:int -> unit -> t

(** [add t fact] is [true] iff the fact was not already present. *)
val add : t -> Fact.t -> bool

(** [remove t fact] is [true] iff the fact was present. *)
val remove : t -> Fact.t -> bool

val mem : t -> Fact.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit

val iter : (Fact.t -> unit) -> t -> unit
val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_seq : t -> Fact.t Seq.t
val to_list : t -> Fact.t list

(** Indexed pattern matching. *)
val match_pattern : t -> pattern -> (Fact.t -> unit) -> unit

val match_list : t -> pattern -> Fact.t list
val count_matches : t -> pattern -> int
val exists_match : t -> pattern -> bool

(** Unindexed full-scan matching (baseline for B2). Same results as
    [match_pattern], radically different cost profile. *)
val match_scan : t -> pattern -> (Fact.t -> unit) -> unit

(** Distinct entities appearing in some fact, with multiplicity ignored. *)
val active_entities : t -> Entity.t Seq.t

(** Does the entity appear in some stored fact? O(1). *)
val entity_active : t -> Entity.t -> bool

val copy : t -> t
