type t = {
  merged : Database.t;
  member_names : string list;
  skipped_members : (string * string) list;
  origin_table : string list Fact.Tbl.t;
}

let m_skipped =
  Lsdb_obs.Metrics.counter
    ~help:"Federation members skipped because their heap failed to open"
    "lsdb_federation_skipped_members_total"

let merge_member merged origin_table (member_name, member_db) =
      let member_symtab = Database.symtab member_db in
      Store.iter
        (fun fact ->
          let s, r, tgt = Fact.names member_symtab fact in
          let merged_fact = Fact.of_names (Database.symtab merged) s r tgt in
          ignore (Database.insert merged merged_fact);
          (* Members are merged one at a time, so a duplicate sighting of
             this fact within the current member always has this member
             at the head — an O(1) check, not a List.mem scan. *)
          match Fact.Tbl.find_opt origin_table merged_fact with
          | Some (m :: _) when String.equal m member_name -> ()
          | existing ->
              Fact.Tbl.replace origin_table merged_fact
                (member_name :: Option.value ~default:[] existing))
        (Database.store member_db);
      (* Carry over class declarations and non-builtin rules. *)
      List.iter
        (fun (e, is_class) ->
          let e' = Database.entity merged (Symtab.name member_symtab e) in
          if is_class then Database.declare_class_relationship merged e'
          else Database.declare_individual_relationship merged e')
        (Relclass.declarations (Database.relclass member_db));
      let remap e = Database.entity merged (Symtab.name member_symtab e) in
      List.iter
        (fun ((rule : Rule.t), enabled) ->
          if Builtin_rules.find rule.name = None then begin
            Database.add_rule merged (Rule.map_entities remap rule);
            if not enabled then ignore (Database.exclude merged rule.name)
          end)
    (Database.rules member_db)

let create ?shards members =
  let merged = Database.create ?shards () in
  let origin_table = Fact.Tbl.create 256 in
  List.iter (merge_member merged origin_table) members;
  { merged; member_names = List.map fst members; skipped_members = []; origin_table }

let create_lenient ?shards members =
  let merged = Database.create ?shards () in
  let origin_table = Fact.Tbl.create 256 in
  let merged_names = ref [] in
  let skipped = ref [] in
  List.iter
    (fun (member_name, open_member) ->
      (* A member whose heap fails to open or validate degrades to a
         skipped member: the federation is partial, not dead. Only the
         thunk is guarded — a failure during the merge proper would leave
         half a member's facts in the view, which is worse than failing. *)
      match open_member () with
      | member_db ->
          merge_member merged origin_table (member_name, member_db);
          merged_names := member_name :: !merged_names
      | exception e ->
          Lsdb_obs.Metrics.incr m_skipped;
          skipped := (member_name, Printexc.to_string e) :: !skipped)
    members;
  {
    merged;
    member_names = List.rev !merged_names;
    skipped_members = List.rev !skipped;
    origin_table;
  }

let database t = t.merged
let members t = t.member_names
let skipped t = t.skipped_members

let origins t fact =
  Option.value ~default:[] (Fact.Tbl.find_opt t.origin_table fact)

let add_bridge t a b =
  let fact = Fact.of_names (Database.symtab t.merged) a "≈" b in
  ignore (Database.insert t.merged fact)

let shared_facts t =
  Fact.Tbl.fold
    (fun fact origin_list acc ->
      match origin_list with _ :: _ :: _ -> fact :: acc | _ -> acc)
    t.origin_table []
